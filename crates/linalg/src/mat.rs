//! Row-major dense matrices.

use crate::{dot, EPS};

/// Chunk count for [`Mat::tmatvec_threads`] — fixed so the summation
/// grouping never depends on the thread count.
const TMATVEC_PIECES: usize = 64;

/// A dense, row-major `rows x cols` matrix of `f64`.
///
/// This intentionally implements only the operations the workspace needs;
/// it is not a general linear-algebra library.
///
/// ```
/// use lesm_linalg::Mat;
///
/// let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(a.matvec(&[1.0, 0.0]), vec![1.0, 3.0]);
/// assert_eq!(a.matmul(&Mat::identity(2)), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Dense matrix product `self * other`.
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Mat) -> Mat {
        self.matmul_threads(other, 1)
    }

    /// [`matmul`](Self::matmul) with output rows blocked across `threads`
    /// workers (`0` = all available cores).
    ///
    /// Each output row is produced by the same serial kernel regardless of
    /// the partition, so the product is bit-identical for any thread count.
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_threads(&self, other: &Mat, threads: usize) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        if self.rows == 0 || other.cols == 0 {
            return out;
        }
        lesm_par::par_for_rows(&mut out.data, other.cols, threads, |i, out_row| {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(other.row(k)) {
                    *o += a * b;
                }
            }
        });
        out
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// `self^T * x` without materializing the transpose.
    pub fn tmatvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            let xr = x[r];
            if xr == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += xr * a;
            }
        }
        out
    }

    /// `self^T * x` as a blocked parallel reduction over row chunks
    /// (`0` threads = all available cores).
    ///
    /// The chunk layout is fixed (independent of the thread count), so the
    /// result is bit-identical for any thread count — though it may differ
    /// in the last bit from the strictly serial [`tmatvec`](Self::tmatvec),
    /// whose summation is not chunked.
    pub fn tmatvec_threads(&self, x: &[f64], threads: usize) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "dimension mismatch");
        let grain = lesm_par::grain_for_pieces(self.rows, TMATVEC_PIECES);
        lesm_par::par_buffer_reduce(self.rows, grain, threads, self.cols, |range, out| {
            for r in range {
                let xr = x[r];
                if xr == 0.0 {
                    continue;
                }
                for (o, &a) in out.iter_mut().zip(self.row(r)) {
                    *o += xr * a;
                }
            }
        })
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute off-diagonal entry (square matrices only).
    pub fn max_offdiag(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// Orthonormalizes the columns in place with modified Gram–Schmidt.
    ///
    /// Columns that become (numerically) zero are replaced by zero vectors;
    /// the return value is the number of independent columns kept.
    pub fn orthonormalize_cols(&mut self) -> usize {
        let mut kept = 0;
        for c in 0..self.cols {
            // Subtract projections on previously processed columns.
            for p in 0..c {
                let proj: f64 = (0..self.rows).map(|r| self[(r, c)] * self[(r, p)]).sum();
                for r in 0..self.rows {
                    let v = self[(r, p)];
                    self[(r, c)] -= proj * v;
                }
            }
            let n: f64 = (0..self.rows).map(|r| self[(r, c)] * self[(r, c)]).sum::<f64>().sqrt();
            if n > EPS {
                for r in 0..self.rows {
                    self[(r, c)] /= n;
                }
                kept += 1;
            } else {
                for r in 0..self.rows {
                    self[(r, c)] = 0.0;
                }
            }
        }
        kept
    }
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn threaded_matmul_and_tmatvec_bit_identical() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let a = Mat::from_vec(37, 19, (0..37 * 19).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Mat::from_vec(19, 23, (0..19 * 23).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let x: Vec<f64> = (0..37).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let serial_mm = a.matmul(&b);
        let serial_tv = a.tmatvec_threads(&x, 1);
        for threads in 2..=8 {
            assert_eq!(serial_mm, a.matmul_threads(&b, threads), "matmul threads={threads}");
            assert_eq!(serial_tv, a.tmatvec_threads(&x, threads), "tmatvec threads={threads}");
        }
    }

    #[test]
    fn matvec_and_tmatvec_agree_with_transpose() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.tmatvec(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn gram_schmidt_orthonormal() {
        let mut a = Mat::from_vec(3, 2, vec![1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let kept = a.orthonormalize_cols();
        assert_eq!(kept, 2);
        let c0 = a.col(0);
        let c1 = a.col(1);
        assert!((dot(&c0, &c0) - 1.0).abs() < 1e-10);
        assert!((dot(&c1, &c1) - 1.0).abs() < 1e-10);
        assert!(dot(&c0, &c1).abs() < 1e-10);
    }

    #[test]
    fn gram_schmidt_detects_dependence() {
        let mut a = Mat::from_vec(3, 2, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(a.orthonormalize_cols(), 1);
    }

    use crate::dot;
}
