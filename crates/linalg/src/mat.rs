//! Row-major dense matrices.
//!
//! The kernels here are register-blocked (DESIGN.md §12): `matmul`
//! processes [`MATMUL_MR`] output rows per step against a transposed
//! packed panel of the left operand, and `tmatvec` fuses four input rows
//! per accumulator pass. Blocking changes neither the per-element
//! summation order nor the zero-coefficient skip of the original scalar
//! kernels, so every product is bit-identical to its naive reference —
//! the proptests in `tests/proptests.rs` pin that down.

use crate::{dot, EPS};
use std::ops::Range;

/// Chunk count for [`Mat::tmatvec_threads`] — fixed so the summation
/// grouping never depends on the thread count.
const TMATVEC_PIECES: usize = 64;

/// Output rows per register block in [`Mat::matmul_threads`]. Four rows
/// share each load of a right-hand-side row, quartering its memory
/// traffic, and give the autovectorizer four independent accumulator
/// streams.
const MATMUL_MR: usize = 4;

/// A dense, row-major `rows x cols` matrix of `f64`.
///
/// This intentionally implements only the operations the workspace needs;
/// it is not a general linear-algebra library.
///
/// ```
/// use lesm_linalg::Mat;
///
/// let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(a.matvec(&[1.0, 0.0]), vec![1.0, 3.0]);
/// assert_eq!(a.matmul(&Mat::identity(2)), a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Mat {
    /// Creates a `rows x cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix from row-major data.
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length must be rows*cols");
        Self { rows, cols, data }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `r`.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    #[deprecated(note = "allocates a Vec per call; iterate with `col_iter` instead")]
    pub fn col(&self, c: usize) -> Vec<f64> {
        self.col_iter(c).collect()
    }

    /// Iterates over column `c` top to bottom without allocating.
    pub fn col_iter(&self, c: usize) -> impl Iterator<Item = f64> + '_ {
        assert!(c < self.cols, "column {c} out of range");
        (0..self.rows).map(move |r| self.data[r * self.cols + c])
    }

    /// The raw row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the raw row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Mat {
        let mut t = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Transposes a square matrix in place (no allocation).
    ///
    /// Panics if the matrix is not square.
    pub fn transpose_in_place(&mut self) {
        assert_eq!(self.rows, self.cols, "transpose_in_place requires a square matrix");
        for r in 0..self.rows {
            for c in 0..r {
                self.data.swap(r * self.cols + c, c * self.cols + r);
            }
        }
    }

    /// Dense matrix product `self * other`.
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Mat) -> Mat {
        self.matmul_threads(other, 1)
    }

    /// [`matmul`](Self::matmul) with output row blocks spread across
    /// `threads` workers (`0` = all available cores).
    ///
    /// The kernel packs `self` into a transposed panel once, then walks
    /// [`MATMUL_MR`] output rows at a time: for each inner index `k` the
    /// panel yields the block's coefficients as one contiguous quad and a
    /// single load of `other.row(k)` feeds all four accumulator rows.
    /// Per output element the sum still runs over `k` in increasing order
    /// and still skips zero coefficients, so the product is bit-identical
    /// to the naive row-at-a-time kernel — for any thread count.
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul_threads(&self, other: &Mat, threads: usize) -> Mat {
        assert_eq!(self.cols, other.rows, "inner dimensions must agree");
        let mut out = Mat::zeros(self.rows, other.cols);
        if self.rows == 0 || other.cols == 0 {
            return out;
        }
        // Transposed packed panel: panel.row(k)[i] = self[(i, k)].
        let panel = self.transpose();
        let n = other.cols;
        let hint = lesm_par::WorkHint::items(self.rows, self.cols * n);
        lesm_par::par_for_blocks_hinted(
            &mut out.data,
            MATMUL_MR * n,
            threads,
            hint,
            |blk, out_block| {
                let i0 = blk * MATMUL_MR;
                if out_block.len() == MATMUL_MR * n {
                    let (o0, rest) = out_block.split_at_mut(n);
                    let (o1, rest) = rest.split_at_mut(n);
                    let (o2, o3) = rest.split_at_mut(n);
                    for k in 0..self.cols {
                        let a = &panel.row(k)[i0..i0 + MATMUL_MR];
                        let (a0, a1, a2, a3) = (a[0], a[1], a[2], a[3]);
                        let br = other.row(k);
                        if a0 != 0.0 && a1 != 0.0 && a2 != 0.0 && a3 != 0.0 {
                            for j in 0..n {
                                let b = br[j];
                                o0[j] += a0 * b;
                                o1[j] += a1 * b;
                                o2[j] += a2 * b;
                                o3[j] += a3 * b;
                            }
                        } else {
                            // A zero coefficient: keep the seed kernel's
                            // skip semantics row by row for this k.
                            for (o, coef) in
                                [(&mut *o0, a0), (&mut *o1, a1), (&mut *o2, a2), (&mut *o3, a3)]
                            {
                                if coef == 0.0 {
                                    continue;
                                }
                                for (x, &b) in o.iter_mut().zip(br) {
                                    *x += coef * b;
                                }
                            }
                        }
                    }
                } else {
                    // Ragged tail block: plain row-at-a-time kernel.
                    for (r, out_row) in out_block.chunks_mut(n).enumerate() {
                        for k in 0..self.cols {
                            let coef = panel.row(k)[i0 + r];
                            if coef == 0.0 {
                                continue;
                            }
                            for (x, &b) in out_row.iter_mut().zip(other.row(k)) {
                                *x += coef * b;
                            }
                        }
                    }
                }
            },
        );
        out
    }

    /// Fused `self^T * other` without materializing the transpose.
    ///
    /// Bit-identical to `self.transpose().matmul(other)`: each output
    /// element sums over the rows of `self` in increasing order with the
    /// same zero-coefficient skip.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        self.matmul_tn_threads(other, 1)
    }

    /// [`matmul_tn`](Self::matmul_tn) with output rows spread across
    /// `threads` workers (`0` = all available cores).
    ///
    /// Panics if the two operands disagree on row count.
    pub fn matmul_tn_threads(&self, other: &Mat, threads: usize) -> Mat {
        assert_eq!(self.rows, other.rows, "row counts must agree");
        let mut out = Mat::zeros(self.cols, other.cols);
        if self.cols == 0 || other.cols == 0 {
            return out;
        }
        let n = other.cols;
        let hint = lesm_par::WorkHint::items(self.cols, self.rows * n);
        lesm_par::par_for_rows_hinted(&mut out.data, n, threads, hint, |ka, out_row| {
            for r in 0..self.rows {
                let coef = self.data[r * self.cols + ka];
                if coef == 0.0 {
                    continue;
                }
                for (o, &b) in out_row.iter_mut().zip(other.row(r)) {
                    *o += coef * b;
                }
            }
        });
        out
    }

    /// Fused `self * other^T` without materializing the transpose.
    ///
    /// Each output element is `dot(self.row(i), other.row(j))` — both
    /// operands are walked unit-stride, which is the natural kernel when
    /// both matrices hold their vectors as rows (the transposed-basis
    /// layout `eig.rs` uses).
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        self.matmul_nt_threads(other, 1)
    }

    /// [`matmul_nt`](Self::matmul_nt) with output rows spread across
    /// `threads` workers (`0` = all available cores).
    ///
    /// Panics if the two operands disagree on column count.
    pub fn matmul_nt_threads(&self, other: &Mat, threads: usize) -> Mat {
        assert_eq!(self.cols, other.cols, "column counts must agree");
        let mut out = Mat::zeros(self.rows, other.rows);
        if self.rows == 0 || other.rows == 0 {
            return out;
        }
        let n = other.rows;
        let hint = lesm_par::WorkHint::items(self.rows, self.cols * n);
        lesm_par::par_for_rows_hinted(&mut out.data, n, threads, hint, |i, out_row| {
            let a = self.row(i);
            for (o, j) in out_row.iter_mut().zip(0..n) {
                *o = dot(a, other.row(j));
            }
        });
        out
    }

    /// Matrix-vector product `self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, x.len(), "dimension mismatch");
        (0..self.rows).map(|r| dot(self.row(r), x)).collect()
    }

    /// Accumulates `x[r] * row_r` into `out` for `r` in `rows`, four rows
    /// per pass.
    ///
    /// Bit-identical to the row-at-a-time loop it replaces: `+` is
    /// left-associative, so the fused update `((((o + x0·a0) + x1·a1) +
    /// x2·a2) + x3·a3)` is the exact grouping of four sequential row
    /// updates, and any block containing a zero weight falls back to the
    /// per-row loop so the zero-skip semantics are preserved too.
    fn tmatvec_accum(&self, x: &[f64], rows: Range<usize>, out: &mut [f64]) {
        let cols = self.cols;
        let mut r = rows.start;
        while r + MATMUL_MR <= rows.end {
            let (x0, x1, x2, x3) = (x[r], x[r + 1], x[r + 2], x[r + 3]);
            if x0 != 0.0 && x1 != 0.0 && x2 != 0.0 && x3 != 0.0 {
                let block = &self.data[r * cols..(r + MATMUL_MR) * cols];
                let (a0, rest) = block.split_at(cols);
                let (a1, rest) = rest.split_at(cols);
                let (a2, a3) = rest.split_at(cols);
                for j in 0..cols {
                    out[j] = out[j] + x0 * a0[j] + x1 * a1[j] + x2 * a2[j] + x3 * a3[j];
                }
            } else {
                for rr in r..r + MATMUL_MR {
                    let xr = x[rr];
                    if xr == 0.0 {
                        continue;
                    }
                    for (o, &a) in out.iter_mut().zip(self.row(rr)) {
                        *o += xr * a;
                    }
                }
            }
            r += MATMUL_MR;
        }
        for rr in r..rows.end {
            let xr = x[rr];
            if xr == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(rr)) {
                *o += xr * a;
            }
        }
    }

    /// `self^T * x` without materializing the transpose.
    pub fn tmatvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "dimension mismatch");
        let mut out = vec![0.0; self.cols];
        self.tmatvec_accum(x, 0..self.rows, &mut out);
        out
    }

    /// `self^T * x` as a blocked parallel reduction over row chunks
    /// (`0` threads = all available cores).
    ///
    /// The chunk layout is fixed (independent of the thread count), so the
    /// result is bit-identical for any thread count — though it may differ
    /// in the last bit from the strictly serial [`tmatvec`](Self::tmatvec),
    /// whose summation is not chunked.
    pub fn tmatvec_threads(&self, x: &[f64], threads: usize) -> Vec<f64> {
        assert_eq!(self.rows, x.len(), "dimension mismatch");
        let grain = lesm_par::grain_for_pieces(self.rows, TMATVEC_PIECES);
        let hint = lesm_par::WorkHint::items(self.rows, self.cols);
        lesm_par::par_buffer_reduce_hinted(
            self.rows,
            grain,
            threads,
            hint,
            self.cols,
            |range, out| self.tmatvec_accum(x, range, out),
        )
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute off-diagonal entry (square matrices only).
    pub fn max_offdiag(&self) -> f64 {
        assert_eq!(self.rows, self.cols);
        let mut m = 0.0f64;
        for i in 0..self.rows {
            for j in 0..self.cols {
                if i != j {
                    m = m.max(self[(i, j)].abs());
                }
            }
        }
        m
    }

    /// Orthonormalizes the columns in place with modified Gram–Schmidt.
    ///
    /// Columns that become (numerically) zero are replaced by zero vectors;
    /// the return value is the number of independent columns kept.
    pub fn orthonormalize_cols(&mut self) -> usize {
        let mut scratch = Vec::new();
        self.orthonormalize_cols_scratch(&mut scratch)
    }

    /// [`orthonormalize_cols`](Self::orthonormalize_cols) reusing a
    /// caller-owned scratch buffer for the transposed working copy.
    ///
    /// Modified Gram–Schmidt is column-oriented, which on a row-major
    /// layout means every dot product strides by `cols`. The kernel
    /// therefore works on a transposed copy held in `scratch` (columns
    /// contiguous), then writes the result back. The operation order —
    /// projection dots, subtractions, norm, scaling, all over row index
    /// in increasing order — matches the strided original exactly, so
    /// the result is bit-identical; iteration-level callers (`eig.rs`)
    /// keep one scratch alive to avoid the per-call allocation.
    pub fn orthonormalize_cols_scratch(&mut self, scratch: &mut Vec<f64>) -> usize {
        let (rows, cols) = (self.rows, self.cols);
        scratch.clear();
        scratch.resize(rows * cols, 0.0);
        for r in 0..rows {
            let row = &self.data[r * cols..(r + 1) * cols];
            for (c, &v) in row.iter().enumerate() {
                scratch[c * rows + r] = v;
            }
        }
        let kept = mgs_rows(scratch, cols, rows);
        for r in 0..rows {
            for c in 0..cols {
                self.data[r * cols + c] = scratch[c * rows + r];
            }
        }
        kept
    }

    /// Orthonormalizes the *rows* in place with modified Gram–Schmidt —
    /// the natural variant when basis vectors are stored as contiguous
    /// rows (the transposed layout the subspace iteration uses); no
    /// scratch or transposition needed.
    ///
    /// Rows that become (numerically) zero are replaced by zero vectors;
    /// the return value is the number of independent rows kept.
    pub fn orthonormalize_rows(&mut self) -> usize {
        mgs_rows(&mut self.data, self.rows, self.cols)
    }
}

/// Modified Gram–Schmidt over the `len`-sized rows of a flat buffer:
/// every vector is contiguous, so the projection dots and updates are
/// unit-stride. Shared by the row- and column-oriented entry points.
fn mgs_rows(data: &mut [f64], n_vecs: usize, len: usize) -> usize {
    let mut kept = 0;
    for c in 0..n_vecs {
        // Subtract projections on previously processed vectors.
        let (done, rest) = data.split_at_mut(c * len);
        let vec_c = &mut rest[..len];
        for p in 0..c {
            let vec_p = &done[p * len..(p + 1) * len];
            let proj = dot(vec_c, vec_p);
            for (x, &v) in vec_c.iter_mut().zip(vec_p) {
                *x -= proj * v;
            }
        }
        let n = dot(vec_c, vec_c).sqrt();
        if n > EPS {
            for x in vec_c.iter_mut() {
                *x /= n;
            }
            kept += 1;
        } else {
            vec_c.fill(0.0);
        }
    }
    kept
}

impl std::ops::Index<(usize, usize)> for Mat {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Mat {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul() {
        let a = Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Mat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn transpose_in_place_matches_transpose() {
        let mut a = Mat::from_vec(3, 3, (0..9).map(|i| i as f64).collect());
        let want = a.transpose();
        a.transpose_in_place();
        assert_eq!(a, want);
    }

    #[test]
    fn col_iter_matches_indexing() {
        let a = Mat::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let c1: Vec<f64> = a.col_iter(1).collect();
        assert_eq!(c1, vec![2.0, 4.0, 6.0]);
        #[allow(deprecated)]
        let legacy = a.col(1);
        assert_eq!(c1, legacy);
    }

    #[test]
    fn matmul_tn_matches_transpose_then_matmul() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(4);
        let a = Mat::from_vec(13, 7, (0..13 * 7).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Mat::from_vec(13, 5, (0..13 * 5).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let want = a.transpose().matmul(&b);
        assert_eq!(want, a.matmul_tn(&b));
        for threads in 2..=4 {
            assert_eq!(want, a.matmul_tn_threads(&b, threads), "threads={threads}");
        }
    }

    #[test]
    fn threaded_matmul_and_tmatvec_bit_identical() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(9);
        let a = Mat::from_vec(37, 19, (0..37 * 19).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let b = Mat::from_vec(19, 23, (0..19 * 23).map(|_| rng.gen_range(-1.0..1.0)).collect());
        let x: Vec<f64> = (0..37).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let serial_mm = a.matmul(&b);
        let serial_tv = a.tmatvec_threads(&x, 1);
        for threads in 2..=8 {
            assert_eq!(serial_mm, a.matmul_threads(&b, threads), "matmul threads={threads}");
            assert_eq!(serial_tv, a.tmatvec_threads(&x, threads), "tmatvec threads={threads}");
        }
    }

    #[test]
    fn matvec_and_tmatvec_agree_with_transpose() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = vec![1.0, -1.0];
        assert_eq!(a.tmatvec(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn gram_schmidt_orthonormal() {
        let mut a = Mat::from_vec(3, 2, vec![1.0, 1.0, 1.0, 0.0, 0.0, 1.0]);
        let kept = a.orthonormalize_cols();
        assert_eq!(kept, 2);
        let c0: Vec<f64> = a.col_iter(0).collect();
        let c1: Vec<f64> = a.col_iter(1).collect();
        assert!((dot(&c0, &c0) - 1.0).abs() < 1e-10);
        assert!((dot(&c1, &c1) - 1.0).abs() < 1e-10);
        assert!(dot(&c0, &c1).abs() < 1e-10);
    }

    #[test]
    fn gram_schmidt_detects_dependence() {
        let mut a = Mat::from_vec(3, 2, vec![1.0, 2.0, 1.0, 2.0, 1.0, 2.0]);
        assert_eq!(a.orthonormalize_cols(), 1);
    }

    #[test]
    fn gram_schmidt_scratch_reuse_is_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(21);
        let mut scratch = Vec::new();
        for (rows, cols) in [(9usize, 4usize), (5, 5), (12, 3)] {
            let data: Vec<f64> = (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let mut fresh = Mat::from_vec(rows, cols, data.clone());
            let mut reused = Mat::from_vec(rows, cols, data);
            let k1 = fresh.orthonormalize_cols();
            let k2 = reused.orthonormalize_cols_scratch(&mut scratch);
            assert_eq!(k1, k2);
            assert_eq!(fresh, reused);
        }
    }

    use crate::dot;
}
