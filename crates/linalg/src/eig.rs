//! Symmetric eigensolvers.
//!
//! Two solvers cover every use in the workspace:
//!
//! * [`jacobi_eigen`] — classic cyclic Jacobi rotation for *small* dense
//!   symmetric matrices (topic-count sized, `k <= ~100`).
//! * [`topk_eigen`] — matrix-free subspace (orthogonal) iteration that
//!   extracts the top-k eigenpairs of a large symmetric positive
//!   semi-definite operator given only a `y = A x` callback. STROD uses this
//!   to whiten the vocabulary-sized second moment without materializing it.

use crate::mat::Mat;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A symmetric linear operator `A: R^n -> R^n` presented matrix-free.
///
/// `Sync` is a supertrait so that operators can be shared across the scoped
/// worker threads of [`topk_eigen_threads`].
pub trait SymOp: Sync {
    /// Dimension `n` of the operator.
    fn dim(&self) -> usize;
    /// Computes `y = A x`. `y` has length `dim()` and arrives zeroed.
    fn apply(&self, x: &[f64], y: &mut [f64]);
}

/// A dense symmetric matrix viewed as a [`SymOp`].
impl SymOp for Mat {
    fn dim(&self) -> usize {
        debug_assert_eq!(self.rows(), self.cols());
        self.rows()
    }
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let out = self.matvec(x);
        y.copy_from_slice(&out);
    }
}

/// Result of an eigendecomposition: `values[i]` pairs with column `i` of
/// `vectors` (an `n x k` matrix whose columns are orthonormal eigenvectors).
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, sorted in descending order.
    pub values: Vec<f64>,
    /// `n x k` matrix of eigenvectors (column `i` pairs with `values[i]`).
    pub vectors: Mat,
}

/// Full eigendecomposition of a small dense symmetric matrix by cyclic
/// Jacobi rotations.
///
/// Eigenpairs are returned sorted by descending eigenvalue. Intended for
/// matrices up to a few hundred rows; cost is `O(n^3)` per sweep.
///
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &Mat, max_sweeps: usize, tol: f64) -> Eigen {
    assert_eq!(a.rows(), a.cols(), "jacobi_eigen needs a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Mat::identity(n);
    for _ in 0..max_sweeps {
        if m.max_offdiag() < tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() < tol * 1e-3 {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = 0.5 * (aqq - app) / apq;
                // Stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Apply the rotation G(p, q, theta) on both sides: m = G^T m G.
                for i in 0..n {
                    let mip = m[(i, p)];
                    let miq = m[(i, q)];
                    m[(i, p)] = c * mip - s * miq;
                    m[(i, q)] = s * mip + c * miq;
                }
                for j in 0..n {
                    let mpj = m[(p, j)];
                    let mqj = m[(q, j)];
                    m[(p, j)] = c * mpj - s * mqj;
                    m[(q, j)] = s * mpj + c * mqj;
                }
                for i in 0..n {
                    let vip = v[(i, p)];
                    let viq = v[(i, q)];
                    v[(i, p)] = c * vip - s * viq;
                    v[(i, q)] = s * vip + c * viq;
                }
            }
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].total_cmp(&m[(i, i)]));
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut vectors = Mat::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = v[(r, old_c)];
        }
    }
    Eigen { values, vectors }
}

/// Top-`k` eigenpairs of a symmetric PSD operator by subspace iteration.
///
/// Starts from a random `n x k` block (seeded deterministically), repeatedly
/// applies the operator and re-orthonormalizes, then solves the small
/// projected eigenproblem with Jacobi (a Rayleigh–Ritz step). Convergence is
/// declared when the Ritz values stabilize to `tol` relative change.
pub fn topk_eigen(op: &dyn SymOp, k: usize, max_iters: usize, tol: f64, seed: u64) -> Eigen {
    topk_eigen_threads(op, k, max_iters, tol, seed, 1)
}

/// [`topk_eigen`] with the per-column operator applications and the dense
/// products fanned out over `threads` workers (`0` = all available cores).
///
/// Columns are applied independently and the matrix products are blocked
/// by output row, so the decomposition is bit-identical for any thread
/// count.
///
/// Internally the basis is held *transposed* (`k x n`, one contiguous row
/// per basis vector), which makes every step allocation-free inside the
/// iteration loop: operator applications write straight into a reused
/// `k x n` block, the Rayleigh–Ritz projection is a fused
/// [`Mat::matmul_nt`], the Ritz rotation a fused [`Mat::matmul_tn`], and
/// re-orthonormalization runs on contiguous rows
/// ([`Mat::orthonormalize_rows`]).
pub fn topk_eigen_threads(
    op: &dyn SymOp,
    k: usize,
    max_iters: usize,
    tol: f64,
    seed: u64,
    threads: usize,
) -> Eigen {
    let n = op.dim();
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // qt row c is basis vector c. The RNG is drawn in the same (r, c)
    // order as the untransposed layout used, so the starting subspace is
    // unchanged for a given seed.
    let mut qt = Mat::zeros(k, n);
    for r in 0..n {
        for c in 0..k {
            qt[(c, r)] = rng.gen_range(-1.0..1.0);
        }
    }
    qt.orthonormalize_rows();
    // aqt row c is A * (basis vector c), written in place each iteration.
    // Each row is an independent operator application, so the fan-out is
    // exact. The per-application cost is operator-defined and can be
    // large (sparse corpus sweeps), so the work hint stays HEAVY.
    let mut aqt = Mat::zeros(k, n);
    let mut prev_ritz = vec![f64::INFINITY; k];
    for _ in 0..max_iters {
        lesm_par::par_for_rows_hinted(
            aqt.as_mut_slice(),
            n,
            threads,
            lesm_par::WorkHint::HEAVY,
            |c, y| {
                y.fill(0.0);
                op.apply(qt.row(c), y);
            },
        );
        // Rayleigh–Ritz: B = Q^T A Q (k x k), eigendecompose, rotate Q.
        // With both blocks transposed this is (AQ)^T-rows against Q-rows;
        // the symmetrization makes the A·Bᵀ orientation interchangeable
        // with the seed's Qᵀ·AQ.
        let mut b = aqt.matmul_nt_threads(&qt, threads);
        // Symmetrize against round-off.
        for i in 0..k {
            for j in (i + 1)..k {
                let avg = 0.5 * (b[(i, j)] + b[(j, i)]);
                b[(i, j)] = avg;
                b[(j, i)] = avg;
            }
        }
        let small = jacobi_eigen(&b, 50, 1e-14);
        // q <- (A q) rotated into the Ritz basis, then re-orthonormalized.
        // Transposed: qt <- V^T * aqt, a fused product with no transpose
        // materialization.
        qt = small.vectors.matmul_tn_threads(&aqt, threads);
        qt.orthonormalize_rows();
        let converged = small
            .values
            .iter()
            .zip(&prev_ritz)
            .all(|(&cur, &prev)| (cur - prev).abs() <= tol * (1.0 + cur.abs()));
        prev_ritz = small.values.clone();
        if converged {
            break;
        }
    }
    // Final Rayleigh quotient per basis vector, with one reused operator
    // output buffer per worker.
    let values: Vec<f64> = lesm_par::par_map_collect_scratch(
        k,
        threads,
        lesm_par::WorkHint::HEAVY,
        || vec![0.0; n],
        |c, y| {
            y.fill(0.0);
            op.apply(qt.row(c), y);
            crate::dot(qt.row(c), y)
        },
    );
    // Sort descending by eigenvalue.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&i, &j| values[j].total_cmp(&values[i]));
    let sorted_vals: Vec<f64> = order.iter().map(|&i| values[i]).collect();
    let mut sorted_vecs = Mat::zeros(n, k);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            sorted_vecs[(r, new_c)] = qt[(old_c, r)];
        }
    }
    Eigen { values: sorted_vals, vectors: sorted_vecs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(entries: &[f64], n: usize) -> Mat {
        Mat::from_vec(n, n, entries.to_vec())
    }

    #[test]
    fn jacobi_diagonal() {
        let a = sym(&[3.0, 0.0, 0.0, 1.0], 2);
        let e = jacobi_eigen(&a, 30, 1e-12);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_known_2x2() {
        // Eigenvalues of [[2,1],[1,2]] are 3 and 1.
        let a = sym(&[2.0, 1.0, 1.0, 2.0], 2);
        let e = jacobi_eigen(&a, 30, 1e-12);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v0: Vec<f64> = e.vectors.col_iter(0).collect();
        assert!((v0[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-8);
    }

    #[test]
    fn jacobi_reconstructs() {
        let a = sym(&[4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 1.0], 3);
        let e = jacobi_eigen(&a, 50, 1e-13);
        // A ?= V diag(w) V^T
        let mut recon = Mat::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for m in 0..3 {
                    s += e.vectors[(i, m)] * e.values[m] * e.vectors[(j, m)];
                }
                recon[(i, j)] = s;
            }
        }
        for i in 0..3 {
            for j in 0..3 {
                assert!((recon[(i, j)] - a[(i, j)]).abs() < 1e-8, "mismatch at ({i},{j})");
            }
        }
    }

    #[test]
    fn subspace_matches_jacobi_on_dense() {
        // PSD matrix: B^T B.
        let b = Mat::from_vec(4, 4, vec![
            1.0, 2.0, 0.0, 1.0,
            0.0, 1.0, 3.0, 0.0,
            2.0, 0.0, 1.0, 1.0,
            1.0, 1.0, 0.0, 2.0,
        ]);
        let a = b.transpose().matmul(&b);
        let full = jacobi_eigen(&a, 60, 1e-13);
        let top = topk_eigen(&a, 2, 500, 1e-12, 7);
        assert!((top.values[0] - full.values[0]).abs() < 1e-6);
        assert!((top.values[1] - full.values[1]).abs() < 1e-6);
        // Eigenvector alignment up to sign.
        for c in 0..2 {
            let u: Vec<f64> = top.vectors.col_iter(c).collect();
            let v: Vec<f64> = full.vectors.col_iter(c).collect();
            assert!(crate::dot(&u, &v).abs() > 1.0 - 1e-5);
        }
    }

    #[test]
    fn topk_clamps_k_to_dim() {
        let a = Mat::identity(3);
        let e = topk_eigen(&a, 10, 50, 1e-10, 1);
        assert_eq!(e.values.len(), 3);
        for v in &e.values {
            assert!((v - 1.0).abs() < 1e-8);
        }
    }
}
