//! Dense 3-mode tensors and the contractions needed by the tensor power
//! method (STROD, Chapter 7).

use crate::mat::Mat;

/// A dense `k x k x k` tensor of `f64`, stored flat.
///
/// The tensor power method only ever operates on the *whitened* third
/// moment, which has topic-count dimensions, so a dense representation is
/// cheap (`k <= ~100`).
#[derive(Debug, Clone)]
pub struct Tensor3 {
    k: usize,
    data: Vec<f64>,
}

impl Tensor3 {
    /// Creates a `k x k x k` tensor of zeros.
    pub fn zeros(k: usize) -> Self {
        Self { k, data: vec![0.0; k * k * k] }
    }

    /// Mode size `k`.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// The raw flat buffer, indexed `(i*k + j)*k + l`.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Rebuilds a tensor from its flat buffer.
    ///
    /// Panics if `data.len() != k³`.
    pub fn from_vec(k: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), k * k * k, "data length must be k^3");
        Self { k, data }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, l: usize) -> usize {
        (i * self.k + j) * self.k + l
    }

    /// Reads entry `(i, j, l)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, l: usize) -> f64 {
        self.data[self.idx(i, j, l)]
    }

    /// Adds `v` to entry `(i, j, l)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, l: usize, v: f64) {
        let id = self.idx(i, j, l);
        self.data[id] += v;
    }

    /// Adds `w * a_i a_j a_l` for all `(i, j, l)` — a symmetric rank-one
    /// update `w * a \otimes a \otimes a`.
    pub fn add_rank_one(&mut self, w: f64, a: &[f64]) {
        debug_assert_eq!(a.len(), self.k);
        rank_one_into(&mut self.data, w, a);
    }

    /// Adds `w * (a ⊗ a ⊗ b + a ⊗ b ⊗ a + b ⊗ a ⊗ a)` — the symmetrized
    /// rank-one update used by the Dirichlet moment corrections.
    pub fn add_sym_rank_one_pair(&mut self, w: f64, a: &[f64], b: &[f64]) {
        debug_assert_eq!(a.len(), self.k);
        debug_assert_eq!(b.len(), self.k);
        sym_rank_one_pair_into(&mut self.data, w, a, b);
    }

    /// Contraction `T(I, u, u)`: returns the vector `v` with
    /// `v_i = sum_{j,l} T_{ijl} u_j u_l`.
    pub fn apply_vv(&self, u: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.k];
        self.apply_vv_into(u, &mut out);
        out
    }

    /// [`apply_vv`](Self::apply_vv) into a caller-owned buffer — the
    /// allocation-free form the power method's inner loop uses.
    pub fn apply_vv_into(&self, u: &[f64], out: &mut [f64]) {
        debug_assert_eq!(u.len(), self.k);
        debug_assert_eq!(out.len(), self.k);
        let k = self.k;
        for (i, o) in out.iter_mut().enumerate() {
            let mut acc = 0.0;
            for j in 0..k {
                let uj = u[j];
                if uj == 0.0 {
                    continue;
                }
                let row = &self.data[(i * k + j) * k..(i * k + j + 1) * k];
                let mut inner = 0.0;
                for (t, ul) in row.iter().zip(u) {
                    inner += t * ul;
                }
                acc += uj * inner;
            }
            *o = acc;
        }
    }

    /// Full contraction `T(u, u, u)` without allocating.
    ///
    /// Bit-identical to `self.apply_vv(u)` dotted with `u`: the outer sum
    /// runs over `i` left to right exactly like the iterator chain it
    /// replaces.
    pub fn apply_vvv(&self, u: &[f64]) -> f64 {
        debug_assert_eq!(u.len(), self.k);
        let k = self.k;
        let mut total = 0.0;
        for (i, ui) in u.iter().enumerate() {
            let mut acc = 0.0;
            for j in 0..k {
                let uj = u[j];
                if uj == 0.0 {
                    continue;
                }
                let row = &self.data[(i * k + j) * k..(i * k + j + 1) * k];
                let mut inner = 0.0;
                for (t, ul) in row.iter().zip(u) {
                    inner += t * ul;
                }
                acc += uj * inner;
            }
            total += acc * ui;
        }
        total
    }

    /// Subtracts `w * v ⊗ v ⊗ v` in place (deflation step of the power
    /// method).
    pub fn deflate(&mut self, w: f64, v: &[f64]) {
        self.add_rank_one(-w, v);
    }

    /// Change of basis: returns the tensor `S` with
    /// `S_{abc} = sum_{ijl} T_{ijl} W_{ia} W_{jb} W_{lc}` where `w` is
    /// `n x k` (used for whitening a small dense tensor in tests; the
    /// production path builds the whitened tensor directly from data).
    pub fn multilinear(&self, w: &Mat) -> Tensor3 {
        assert_eq!(w.rows(), self.k, "basis rows must match tensor dim");
        let k2 = w.cols();
        let n = self.k;
        let mut out = Tensor3::zeros(k2);
        // Contract one mode at a time: first T1[a, j, l] = sum_i T[i,j,l] W[i,a].
        // The basis row for the contracted index is hoisted out of each
        // scatter loop and the flat offsets are precomputed once per entry.
        let mut t1 = vec![0.0; k2 * n * n];
        for i in 0..n {
            let wi = w.row(i);
            for j in 0..n {
                for l in 0..n {
                    let t = self.get(i, j, l);
                    if t == 0.0 {
                        continue;
                    }
                    let base = j * n + l;
                    for (a, &wa) in wi.iter().enumerate() {
                        t1[a * n * n + base] += t * wa;
                    }
                }
            }
        }
        let mut t2 = vec![0.0; k2 * k2 * n];
        for a in 0..k2 {
            for j in 0..n {
                let wj = w.row(j);
                for l in 0..n {
                    let t = t1[(a * n + j) * n + l];
                    if t == 0.0 {
                        continue;
                    }
                    let base = a * k2 * n + l;
                    for (b, &wb) in wj.iter().enumerate() {
                        t2[base + b * n] += t * wb;
                    }
                }
            }
        }
        for a in 0..k2 {
            for b in 0..k2 {
                for l in 0..n {
                    let t = t2[(a * k2 + b) * n + l];
                    if t == 0.0 {
                        continue;
                    }
                    let wl = w.row(l);
                    let row = &mut out.data[(a * k2 + b) * k2..(a * k2 + b + 1) * k2];
                    for (o, &wc) in row.iter_mut().zip(wl) {
                        *o += t * wc;
                    }
                }
            }
        }
        out
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }
}

/// Adds `w * a ⊗ a ⊗ a` into a flat `k³` buffer laid out like
/// [`Tensor3::as_slice`] (`k = a.len()`).
///
/// The slice form exists so reduction kernels (moment accumulation) can
/// update a chunk buffer directly instead of materializing a temporary
/// tensor. The per-row weight `w·aᵢ·aⱼ` is hoisted and zero rows are
/// skipped, as in the original nested loop.
///
/// Panics if `buf.len() != a.len()³`.
pub fn rank_one_into(buf: &mut [f64], w: f64, a: &[f64]) {
    let k = a.len();
    assert_eq!(buf.len(), k * k * k, "buffer length must be k^3");
    for (i, &ai) in a.iter().enumerate() {
        let wi = w * ai;
        if wi == 0.0 {
            continue;
        }
        for (j, &aj) in a.iter().enumerate() {
            let wij = wi * aj;
            if wij == 0.0 {
                continue;
            }
            let row = &mut buf[(i * k + j) * k..(i * k + j + 1) * k];
            for (o, &al) in row.iter_mut().zip(a) {
                *o += wij * al;
            }
        }
    }
}

/// Adds `w * (a ⊗ a ⊗ b + a ⊗ b ⊗ a + b ⊗ a ⊗ a)` into a flat `k³`
/// buffer laid out like [`Tensor3::as_slice`].
///
/// The three pair products `aᵢaⱼ`, `aᵢbⱼ`, `bᵢaⱼ` are hoisted out of the
/// innermost loop — multiplication is left-associative, so
/// `(aᵢ·aⱼ)·bₗ + (aᵢ·bⱼ)·aₗ + (bᵢ·aⱼ)·aₗ` reproduces the un-hoisted
/// expression bit for bit while cutting the inner loop from nine
/// multiplies to six.
///
/// Panics if `buf.len() != a.len()³` or the vectors disagree in length.
pub fn sym_rank_one_pair_into(buf: &mut [f64], w: f64, a: &[f64], b: &[f64]) {
    let k = a.len();
    assert_eq!(b.len(), k, "vector lengths must agree");
    assert_eq!(buf.len(), k * k * k, "buffer length must be k^3");
    for (i, &ai) in a.iter().enumerate() {
        let bi = b[i];
        for (j, &aj) in a.iter().enumerate() {
            let aa = ai * aj;
            let ab = ai * b[j];
            let ba = bi * aj;
            let row = &mut buf[(i * k + j) * k..(i * k + j + 1) * k];
            for (l, o) in row.iter_mut().enumerate() {
                *o += w * (aa * b[l] + ab * a[l] + ba * a[l]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_one_roundtrip() {
        let a = vec![1.0, 2.0, -1.0];
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(2.0, &a);
        assert_eq!(t.get(0, 1, 2), -(2.0 * 1.0 * 2.0));
        assert_eq!(t.get(2, 2, 2), -(-2.0 * -1.0));
        // T(u,u,u) for rank-one = w * (a.u)^3
        let u = vec![0.5, 0.25, 1.0];
        let au: f64 = a.iter().zip(&u).map(|(x, y)| x * y).sum();
        assert!((t.apply_vvv(&u) - 2.0 * au.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn apply_vv_matches_manual() {
        let mut t = Tensor3::zeros(2);
        t.add(0, 0, 1, 3.0);
        t.add(1, 1, 0, 2.0);
        let u = vec![2.0, 5.0];
        let v = t.apply_vv(&u);
        // v_0 = T[0,0,1]*u0*u1 = 3*2*5 = 30 ; v_1 = T[1,1,0]*u1*u0 = 2*5*2 = 20
        assert_eq!(v, vec![30.0, 20.0]);
    }

    #[test]
    fn deflation_removes_component() {
        let a = vec![1.0, 0.0, 0.0];
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(5.0, &a);
        t.deflate(5.0, &a);
        assert!(t.max_abs() < 1e-12);
    }

    #[test]
    fn symmetric_pair_update_is_symmetric() {
        let a = vec![1.0, 2.0];
        let b = vec![-1.0, 0.5];
        let mut t = Tensor3::zeros(2);
        t.add_sym_rank_one_pair(1.0, &a, &b);
        for i in 0..2 {
            for j in 0..2 {
                for l in 0..2 {
                    // full symmetry holds for a ⊗ a ⊗ b symmetrization
                    let x = t.get(i, j, l);
                    assert!((x - t.get(i, l, j)).abs() < 1e-12);
                    assert!((x - t.get(l, j, i)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn hoisted_pair_update_is_bit_identical_to_unhoisted() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(33);
        for k in [1usize, 2, 5, 9] {
            let a: Vec<f64> = (0..k).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b: Vec<f64> = (0..k).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let w: f64 = rng.gen_range(-3.0..3.0);
            let mut got = Tensor3::zeros(k);
            got.add_sym_rank_one_pair(w, &a, &b);
            // Reference: the pre-hoist expression, evaluated per element.
            let mut want = Tensor3::zeros(k);
            for i in 0..k {
                for j in 0..k {
                    for l in 0..k {
                        want.add(i, j, l, w * (a[i] * a[j] * b[l] + a[i] * b[j] * a[l] + b[i] * a[j] * a[l]));
                    }
                }
            }
            for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "k={k}");
            }
        }
    }

    #[test]
    fn apply_vvv_matches_apply_vv_dot() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(12);
        let k = 6;
        let mut t = Tensor3::zeros(k);
        for _ in 0..3 {
            let v: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
            t.add_rank_one(rng.gen_range(-2.0..2.0), &v);
        }
        let u: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let via_vv: f64 = t.apply_vv(&u).iter().zip(&u).map(|(x, y)| x * y).sum();
        assert_eq!(t.apply_vvv(&u).to_bits(), via_vv.to_bits());
    }

    #[test]
    fn multilinear_identity_is_noop() {
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(1.5, &[1.0, -2.0, 0.5]);
        let id = Mat::identity(3);
        let s = t.multilinear(&id);
        for i in 0..3 {
            for j in 0..3 {
                for l in 0..3 {
                    assert!((s.get(i, j, l) - t.get(i, j, l)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn multilinear_of_rank_one_transforms_vector() {
        // T = a⊗a⊗a, S = T(W,W,W) should equal (W^T a)⊗(W^T a)⊗(W^T a).
        let a = vec![1.0, 2.0, 3.0];
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(1.0, &a);
        let w = Mat::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let s = t.multilinear(&w);
        let wa = w.tmatvec(&a); // W^T a
        let mut expect = Tensor3::zeros(2);
        expect.add_rank_one(1.0, &wa);
        for i in 0..2 {
            for j in 0..2 {
                for l in 0..2 {
                    assert!((s.get(i, j, l) - expect.get(i, j, l)).abs() < 1e-10);
                }
            }
        }
    }
}
