//! Dense 3-mode tensors and the contractions needed by the tensor power
//! method (STROD, Chapter 7).

use crate::mat::Mat;

/// A dense `k x k x k` tensor of `f64`, stored flat.
///
/// The tensor power method only ever operates on the *whitened* third
/// moment, which has topic-count dimensions, so a dense representation is
/// cheap (`k <= ~100`).
#[derive(Debug, Clone)]
pub struct Tensor3 {
    k: usize,
    data: Vec<f64>,
}

impl Tensor3 {
    /// Creates a `k x k x k` tensor of zeros.
    pub fn zeros(k: usize) -> Self {
        Self { k, data: vec![0.0; k * k * k] }
    }

    /// Mode size `k`.
    pub fn dim(&self) -> usize {
        self.k
    }

    /// The raw flat buffer, indexed `(i*k + j)*k + l`.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Rebuilds a tensor from its flat buffer.
    ///
    /// Panics if `data.len() != k³`.
    pub fn from_vec(k: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), k * k * k, "data length must be k^3");
        Self { k, data }
    }

    #[inline]
    fn idx(&self, i: usize, j: usize, l: usize) -> usize {
        (i * self.k + j) * self.k + l
    }

    /// Reads entry `(i, j, l)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize, l: usize) -> f64 {
        self.data[self.idx(i, j, l)]
    }

    /// Adds `v` to entry `(i, j, l)`.
    #[inline]
    pub fn add(&mut self, i: usize, j: usize, l: usize, v: f64) {
        let id = self.idx(i, j, l);
        self.data[id] += v;
    }

    /// Adds `w * a_i a_j a_l` for all `(i, j, l)` — a symmetric rank-one
    /// update `w * a \otimes a \otimes a`.
    pub fn add_rank_one(&mut self, w: f64, a: &[f64]) {
        debug_assert_eq!(a.len(), self.k);
        let k = self.k;
        for i in 0..k {
            let wi = w * a[i];
            if wi == 0.0 {
                continue;
            }
            for j in 0..k {
                let wij = wi * a[j];
                if wij == 0.0 {
                    continue;
                }
                let base = (i * k + j) * k;
                for l in 0..k {
                    self.data[base + l] += wij * a[l];
                }
            }
        }
    }

    /// Adds `w * (a ⊗ a ⊗ b + a ⊗ b ⊗ a + b ⊗ a ⊗ a)` — the symmetrized
    /// rank-one update used by the Dirichlet moment corrections.
    pub fn add_sym_rank_one_pair(&mut self, w: f64, a: &[f64], b: &[f64]) {
        debug_assert_eq!(a.len(), self.k);
        debug_assert_eq!(b.len(), self.k);
        let k = self.k;
        for i in 0..k {
            for j in 0..k {
                let base = (i * k + j) * k;
                for l in 0..k {
                    self.data[base + l] +=
                        w * (a[i] * a[j] * b[l] + a[i] * b[j] * a[l] + b[i] * a[j] * a[l]);
                }
            }
        }
    }

    /// Contraction `T(I, u, u)`: returns the vector `v` with
    /// `v_i = sum_{j,l} T_{ijl} u_j u_l`.
    pub fn apply_vv(&self, u: &[f64]) -> Vec<f64> {
        debug_assert_eq!(u.len(), self.k);
        let k = self.k;
        let mut out = vec![0.0; k];
        for i in 0..k {
            let mut acc = 0.0;
            for j in 0..k {
                let uj = u[j];
                if uj == 0.0 {
                    continue;
                }
                let base = (i * k + j) * k;
                let mut inner = 0.0;
                for l in 0..k {
                    inner += self.data[base + l] * u[l];
                }
                acc += uj * inner;
            }
            out[i] = acc;
        }
        out
    }

    /// Full contraction `T(u, u, u)`.
    pub fn apply_vvv(&self, u: &[f64]) -> f64 {
        self.apply_vv(u).iter().zip(u).map(|(x, y)| x * y).sum()
    }

    /// Subtracts `w * v ⊗ v ⊗ v` in place (deflation step of the power
    /// method).
    pub fn deflate(&mut self, w: f64, v: &[f64]) {
        self.add_rank_one(-w, v);
    }

    /// Change of basis: returns the tensor `S` with
    /// `S_{abc} = sum_{ijl} T_{ijl} W_{ia} W_{jb} W_{lc}` where `w` is
    /// `n x k` (used for whitening a small dense tensor in tests; the
    /// production path builds the whitened tensor directly from data).
    pub fn multilinear(&self, w: &Mat) -> Tensor3 {
        assert_eq!(w.rows(), self.k, "basis rows must match tensor dim");
        let k2 = w.cols();
        let n = self.k;
        let mut out = Tensor3::zeros(k2);
        // Contract one mode at a time: first T1[a, j, l] = sum_i T[i,j,l] W[i,a]
        let mut t1 = vec![0.0; k2 * n * n];
        for i in 0..n {
            for j in 0..n {
                for l in 0..n {
                    let t = self.get(i, j, l);
                    if t == 0.0 {
                        continue;
                    }
                    for a in 0..k2 {
                        t1[(a * n + j) * n + l] += t * w[(i, a)];
                    }
                }
            }
        }
        let mut t2 = vec![0.0; k2 * k2 * n];
        for a in 0..k2 {
            for j in 0..n {
                for l in 0..n {
                    let t = t1[(a * n + j) * n + l];
                    if t == 0.0 {
                        continue;
                    }
                    for b in 0..k2 {
                        t2[(a * k2 + b) * n + l] += t * w[(j, b)];
                    }
                }
            }
        }
        for a in 0..k2 {
            for b in 0..k2 {
                for l in 0..n {
                    let t = t2[(a * k2 + b) * n + l];
                    if t == 0.0 {
                        continue;
                    }
                    for c in 0..k2 {
                        out.add(a, b, c, t * w[(l, c)]);
                    }
                }
            }
        }
        out
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_one_roundtrip() {
        let a = vec![1.0, 2.0, -1.0];
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(2.0, &a);
        assert_eq!(t.get(0, 1, 2), -(2.0 * 1.0 * 2.0));
        assert_eq!(t.get(2, 2, 2), -(-2.0 * -1.0));
        // T(u,u,u) for rank-one = w * (a.u)^3
        let u = vec![0.5, 0.25, 1.0];
        let au: f64 = a.iter().zip(&u).map(|(x, y)| x * y).sum();
        assert!((t.apply_vvv(&u) - 2.0 * au.powi(3)).abs() < 1e-12);
    }

    #[test]
    fn apply_vv_matches_manual() {
        let mut t = Tensor3::zeros(2);
        t.add(0, 0, 1, 3.0);
        t.add(1, 1, 0, 2.0);
        let u = vec![2.0, 5.0];
        let v = t.apply_vv(&u);
        // v_0 = T[0,0,1]*u0*u1 = 3*2*5 = 30 ; v_1 = T[1,1,0]*u1*u0 = 2*5*2 = 20
        assert_eq!(v, vec![30.0, 20.0]);
    }

    #[test]
    fn deflation_removes_component() {
        let a = vec![1.0, 0.0, 0.0];
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(5.0, &a);
        t.deflate(5.0, &a);
        assert!(t.max_abs() < 1e-12);
    }

    #[test]
    fn symmetric_pair_update_is_symmetric() {
        let a = vec![1.0, 2.0];
        let b = vec![-1.0, 0.5];
        let mut t = Tensor3::zeros(2);
        t.add_sym_rank_one_pair(1.0, &a, &b);
        for i in 0..2 {
            for j in 0..2 {
                for l in 0..2 {
                    // full symmetry holds for a ⊗ a ⊗ b symmetrization
                    let x = t.get(i, j, l);
                    assert!((x - t.get(i, l, j)).abs() < 1e-12);
                    assert!((x - t.get(l, j, i)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn multilinear_identity_is_noop() {
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(1.5, &[1.0, -2.0, 0.5]);
        let id = Mat::identity(3);
        let s = t.multilinear(&id);
        for i in 0..3 {
            for j in 0..3 {
                for l in 0..3 {
                    assert!((s.get(i, j, l) - t.get(i, j, l)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn multilinear_of_rank_one_transforms_vector() {
        // T = a⊗a⊗a, S = T(W,W,W) should equal (W^T a)⊗(W^T a)⊗(W^T a).
        let a = vec![1.0, 2.0, 3.0];
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(1.0, &a);
        let w = Mat::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0]);
        let s = t.multilinear(&w);
        let wa = w.tmatvec(&a); // W^T a
        let mut expect = Tensor3::zeros(2);
        expect.add_rank_one(1.0, &wa);
        for i in 0..2 {
            for j in 0..2 {
                for l in 0..2 {
                    assert!((s.get(i, j, l) - expect.get(i, j, l)).abs() < 1e-10);
                }
            }
        }
    }
}
