//! CSR-style sparse row collections.
//!
//! [`SparseRows`] stores a ragged matrix (one sparse row per document) in
//! three flat vectors, the layout recommended by the perf-book for cache
//! friendliness: `indptr` delimits each row's span inside `indices`/`values`.

/// A sparse non-negative matrix stored row-wise (CSR without column sort
/// guarantees — rows preserve insertion order).
#[derive(Debug, Clone, Default)]
pub struct SparseRows {
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f64>,
    cols: usize,
}

impl SparseRows {
    /// Creates an empty collection with `cols` columns.
    pub fn new(cols: usize) -> Self {
        Self { indptr: vec![0], indices: Vec::new(), values: Vec::new(), cols }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of stored (possibly zero) entries.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Appends a row given `(column, value)` pairs.
    ///
    /// Panics if any column is out of range.
    pub fn push_row(&mut self, entries: &[(u32, f64)]) {
        for &(c, v) in entries {
            assert!((c as usize) < self.cols, "column {c} out of range");
            self.indices.push(c);
            self.values.push(v);
        }
        self.indptr.push(self.indices.len());
    }

    /// Iterator over the `(column, value)` pairs of row `r`.
    pub fn row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        self.indices[s..e].iter().copied().zip(self.values[s..e].iter().copied())
    }

    /// Sum of values in row `r`.
    pub fn row_sum(&self, r: usize) -> f64 {
        let (s, e) = (self.indptr[r], self.indptr[r + 1]);
        self.values[s..e].iter().sum()
    }

    /// Number of stored entries in row `r`.
    pub fn row_len(&self, r: usize) -> usize {
        self.indptr[r + 1] - self.indptr[r]
    }

    /// Column sums over all rows (a dense length-`cols` vector).
    pub fn col_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for (&c, &v) in self.indices.iter().zip(&self.values) {
            out[c as usize] += v;
        }
        out
    }

    /// Sum of all values.
    pub fn total(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Sparse dot of row `r` with a dense vector `x`.
    pub fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        self.row(r).map(|(c, v)| v * x[c as usize]).sum()
    }

    /// Accumulates `alpha * row_r` into a dense vector `y`.
    pub fn row_axpy(&self, r: usize, alpha: f64, y: &mut [f64]) {
        for (c, v) in self.row(r) {
            y[c as usize] += alpha * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseRows {
        let mut s = SparseRows::new(4);
        s.push_row(&[(0, 1.0), (2, 2.0)]);
        s.push_row(&[]);
        s.push_row(&[(1, 3.0), (3, 4.0), (0, 5.0)]);
        s
    }

    #[test]
    fn shape_and_nnz() {
        let s = sample();
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 4);
        assert_eq!(s.nnz(), 5);
        assert_eq!(s.row_len(1), 0);
    }

    #[test]
    fn row_iteration_and_sums() {
        let s = sample();
        let r0: Vec<_> = s.row(0).collect();
        assert_eq!(r0, vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(s.row_sum(2), 12.0);
        assert_eq!(s.total(), 15.0);
        assert_eq!(s.col_sums(), vec![6.0, 3.0, 2.0, 4.0]);
    }

    #[test]
    fn row_dot_and_axpy() {
        let s = sample();
        let x = vec![1.0, 1.0, 1.0, 1.0];
        assert_eq!(s.row_dot(2, &x), 12.0);
        let mut y = vec![0.0; 4];
        s.row_axpy(0, 2.0, &mut y);
        assert_eq!(y, vec![2.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_out_of_range_panics() {
        let mut s = SparseRows::new(2);
        s.push_row(&[(2, 1.0)]);
    }
}
