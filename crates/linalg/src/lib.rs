//! Dense and sparse linear-algebra kernels used across the `lesm` workspace.
//!
//! This crate is a from-scratch substrate: the STROD inference of Chapter 7
//! needs top-k eigenpairs of an implicitly defined word co-occurrence matrix,
//! a whitening transform, and a robust tensor power method on a small
//! symmetric 3-mode tensor. None of that requires BLAS; everything here is
//! plain safe Rust tuned for the sizes that occur in topic modeling
//! (vocabulary up to ~10^5, topic count up to ~10^2).
//!
//! Modules:
//! * [`mat`] — row-major dense matrices with the handful of ops we need.
//! * [`eig`] — Jacobi eigendecomposition (small dense) and matrix-free
//!   subspace iteration for top-k eigenpairs of symmetric operators.
//! * [`tensor`] — dense symmetric 3-mode tensors and contractions.
//! * [`sparse`] — CSR-style document/term count matrices.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod eig;
pub mod mat;
pub mod sparse;
pub mod tensor;

pub use eig::{jacobi_eigen, topk_eigen, topk_eigen_threads, Eigen, SymOp};
pub use mat::Mat;
pub use sparse::SparseRows;
pub use tensor::{rank_one_into, sym_rank_one_pair_into, Tensor3};

/// Numerical tolerance used by decomposition routines in this crate.
pub const EPS: f64 = 1e-12;

/// Dot product of two equal-length slices.
///
/// Panics if the slices differ in length (programming error, not data error).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Normalizes `a` to unit Euclidean norm in place; returns the original norm.
///
/// A zero vector is left unchanged and `0.0` is returned.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > EPS {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
    n
}

/// `y += alpha * x` for equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// The branchless ln kernel shared by [`fast_ln`] and [`fast_ln_slice`]:
/// exponent split via the raw bits, a select (no branch) to shift the
/// mantissa into [√2/2, √2), and an 8-term odd atanh series. Producing the
/// same bits from the scalar and slice entry points — and from the SSE2
/// and AVX2 compilations of this very function — requires exactly this
/// shape: plain mul/add/div only (auto-vectorization never reorders or
/// fuses them), no reductions, no data-dependent branches.
///
/// Only valid for positive normal inputs; callers fix up other inputs.
#[inline(always)]
fn ln_core(x: f64) -> f64 {
    let bits = x.to_bits();
    let e_raw = ((bits >> 52) & 0x7ff) as i64;
    let m1 = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000);
    let big = m1 > core::f64::consts::SQRT_2;
    let m = if big { 0.5 * m1 } else { m1 };
    let e = (e_raw - 1023 + big as i64) as f64;
    // ln(m) = 2·atanh(t) = 2t·(1 + t²/3 + t⁴/5 + …); with t² ≤ 0.0295 the
    // first eight odd terms leave a relative truncation error < 4e-14.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let p = 1.0
        + t2 * (1.0 / 3.0
            + t2 * (1.0 / 5.0
                + t2 * (1.0 / 7.0
                    + t2 * (1.0 / 9.0
                        + t2 * (1.0 / 11.0 + t2 * (1.0 / 13.0 + t2 * (1.0 / 15.0)))))));
    e * core::f64::consts::LN_2 + 2.0 * t * p
}

/// Whether `x` is on [`ln_core`]'s fast path (positive, normal, finite).
#[inline(always)]
fn ln_fast_path(x: f64) -> bool {
    (f64::MIN_POSITIVE..=f64::MAX).contains(&x)
}

/// Fast natural log for positive normal doubles (relative error < 5e-13).
///
/// A pipelineable replacement for `f64::ln` on hot paths: the libm `ln` is
/// correctly rounded but its internal branches and call overhead serialize
/// a tight loop, while this kernel is straight-line arithmetic that
/// out-of-order hardware overlaps across iterations. It is a pure function
/// of the input bits — identical on every thread, every run, and every
/// entry point (scalar or slice, SSE2 or AVX2) — so it satisfies the
/// determinism contract (DESIGN.md §11). Inputs that are zero, subnormal,
/// negative, infinite, or NaN fall back to `f64::ln`.
///
/// Do NOT use this where bitwise agreement with `f64::ln` matters: results
/// differ from libm in the last few ulps.
#[inline]
pub fn fast_ln(x: f64) -> f64 {
    if ln_fast_path(x) {
        ln_core(x)
    } else {
        x.ln()
    }
}

/// Vectorized [`fast_ln`] over a slice: `dst[i] = fast_ln(src[i])`.
///
/// The hot loop is branch-free so LLVM auto-vectorizes it; on x86-64 with
/// AVX2 a 4-lane recompilation of the same code is dispatched at runtime.
/// Both compilations execute the identical sequence of IEEE mul/add/div
/// operations per element (no fused multiply-adds, no reductions), so the
/// output bits do not depend on which path ran. Non-normal inputs are
/// patched afterwards with `f64::ln`, exactly like the scalar entry point.
pub fn fast_ln_slice(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "fast_ln_slice length mismatch");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 requirement was just checked at runtime.
            unsafe { ln_slice_avx2(src, dst) };
            ln_slice_fixup(src, dst);
            return;
        }
    }
    ln_slice_portable(src, dst);
    ln_slice_fixup(src, dst);
}

#[inline(always)]
fn ln_slice_portable(src: &[f64], dst: &mut [f64]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = ln_core(x);
    }
}

/// The same element loop compiled with AVX2 enabled. `ln_slice_portable`
/// is `#[inline(always)]`, so its body is re-optimized here with 4-wide
/// vectors — same operations, same bits, fewer instructions.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn ln_slice_avx2(src: &[f64], dst: &mut [f64]) {
    ln_slice_portable(src, dst);
}

/// Second pass replacing the (garbage) fast-path results for non-normal
/// inputs with `f64::ln`. Kept out of the main loop so that loop stays
/// branch-free; the branch here is never taken on healthy data.
#[inline(always)]
fn ln_slice_fixup(src: &[f64], dst: &mut [f64]) {
    for (d, &x) in dst.iter_mut().zip(src) {
        if !ln_fast_path(x) {
            *d = x.ln();
        }
    }
}

/// Normalizes a non-negative slice to sum to one (an empirical distribution).
///
/// If the sum is not positive the slice is set to the uniform distribution.
pub fn to_distribution(a: &mut [f64]) {
    let s: f64 = a.iter().sum();
    if s > EPS {
        for x in a.iter_mut() {
            *x /= s;
        }
    } else if !a.is_empty() {
        let u = 1.0 / a.len() as f64;
        for x in a.iter_mut() {
            *x = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn fast_ln_matches_libm_to_5e13_relative() {
        // Sweep magnitudes from deep underflow territory to huge values,
        // with an awkward multiplier so mantissas land all over [1, 2).
        let mut x = 1.73e-300;
        while x < 1e300 {
            let got = fast_ln(x);
            let want = x.ln();
            let tol = 5e-13 * want.abs().max(1e-9);
            assert!(
                (got - want).abs() <= tol,
                "fast_ln({x:e}) = {got:.17e}, libm says {want:.17e}"
            );
            x *= 9.137;
        }
        assert!((fast_ln(1.0)).abs() < 1e-13);
    }

    #[test]
    fn fast_ln_slice_is_bitwise_identical_to_scalar() {
        // Healthy values plus every fallback class, mixed into one slice so
        // the fixup pass is exercised in place.
        let mut src: Vec<f64> = (1..400).map(|i| (i as f64 * 0.731).exp2() * 1.37e-60).collect();
        src.extend([0.0, -3.5, f64::INFINITY, f64::NAN, f64::MIN_POSITIVE / 8.0, 1.0]);
        let mut dst = vec![0.0f64; src.len()];
        fast_ln_slice(&src, &mut dst);
        for (&x, &d) in src.iter().zip(&dst) {
            let want = fast_ln(x);
            assert!(
                d.to_bits() == want.to_bits(),
                "fast_ln_slice({x:e}) = {d:e}, scalar fast_ln gives {want:e}"
            );
        }
    }

    #[test]
    fn fast_ln_falls_back_to_libm_off_the_fast_path() {
        assert_eq!(fast_ln(0.0), f64::NEG_INFINITY);
        assert!(fast_ln(-1.0).is_nan());
        assert_eq!(fast_ln(f64::INFINITY), f64::INFINITY);
        assert!(fast_ln(f64::NAN).is_nan());
        let sub = f64::MIN_POSITIVE / 2.0;
        assert_eq!(fast_ln(sub), sub.ln());
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn to_distribution_sums_to_one() {
        let mut v = vec![2.0, 6.0];
        to_distribution(&mut v);
        assert_eq!(v, vec![0.25, 0.75]);
        let mut z = vec![0.0, 0.0, 0.0, 0.0];
        to_distribution(&mut z);
        assert_eq!(z, vec![0.25; 4]);
    }
}
