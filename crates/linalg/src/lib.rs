//! Dense and sparse linear-algebra kernels used across the `lesm` workspace.
//!
//! This crate is a from-scratch substrate: the STROD inference of Chapter 7
//! needs top-k eigenpairs of an implicitly defined word co-occurrence matrix,
//! a whitening transform, and a robust tensor power method on a small
//! symmetric 3-mode tensor. None of that requires BLAS; everything here is
//! plain safe Rust tuned for the sizes that occur in topic modeling
//! (vocabulary up to ~10^5, topic count up to ~10^2).
//!
//! Modules:
//! * [`mat`] — row-major dense matrices with the handful of ops we need.
//! * [`eig`] — Jacobi eigendecomposition (small dense) and matrix-free
//!   subspace iteration for top-k eigenpairs of symmetric operators.
//! * [`tensor`] — dense symmetric 3-mode tensors and contractions.
//! * [`sparse`] — CSR-style document/term count matrices.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod eig;
pub mod mat;
pub mod sparse;
pub mod tensor;

pub use eig::{jacobi_eigen, topk_eigen, topk_eigen_threads, Eigen, SymOp};
pub use mat::Mat;
pub use sparse::SparseRows;
pub use tensor::Tensor3;

/// Numerical tolerance used by decomposition routines in this crate.
pub const EPS: f64 = 1e-12;

/// Dot product of two equal-length slices.
///
/// Panics if the slices differ in length (programming error, not data error).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Normalizes `a` to unit Euclidean norm in place; returns the original norm.
///
/// A zero vector is left unchanged and `0.0` is returned.
pub fn normalize(a: &mut [f64]) -> f64 {
    let n = norm2(a);
    if n > EPS {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
    n
}

/// `y += alpha * x` for equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// Normalizes a non-negative slice to sum to one (an empirical distribution).
///
/// If the sum is not positive the slice is set to the uniform distribution.
pub fn to_distribution(a: &mut [f64]) {
    let s: f64 = a.iter().sum();
    if s > EPS {
        for x in a.iter_mut() {
            *x /= s;
        }
    } else if !a.is_empty() {
        let u = 1.0 / a.len() as f64;
        for x in a.iter_mut() {
            *x = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_unit() {
        let mut v = vec![3.0, 4.0];
        let n = normalize(&mut v);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((norm2(&v) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = vec![0.0, 0.0];
        assert_eq!(normalize(&mut v), 0.0);
        assert_eq!(v, vec![0.0, 0.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
    }

    #[test]
    fn to_distribution_sums_to_one() {
        let mut v = vec![2.0, 6.0];
        to_distribution(&mut v);
        assert_eq!(v, vec![0.25, 0.75]);
        let mut z = vec![0.0, 0.0, 0.0, 0.0];
        to_distribution(&mut z);
        assert_eq!(z, vec![0.25; 4]);
    }
}
