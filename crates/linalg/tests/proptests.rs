//! Property-based tests for the linear-algebra substrate.

use lesm_linalg::{dot, jacobi_eigen, norm2, normalize, to_distribution, Mat, Tensor3};
use proptest::prelude::*;

fn small_vec(n: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-10.0f64..10.0, n)
}

fn small_mat(rows: usize, cols: usize) -> impl Strategy<Value = Mat> {
    proptest::collection::vec(-5.0f64..5.0, rows * cols)
        .prop_map(move |data| Mat::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn matvec_distributes_over_composition(a in small_mat(4, 3), b in small_mat(3, 5), x in small_vec(5)) {
        // A (B x) == (A B) x
        let bx = b.matvec(&x);
        let lhs = a.matvec(&bx);
        let ab = a.matmul(&b);
        let rhs = ab.matvec(&x);
        for (l, r) in lhs.iter().zip(&rhs) {
            prop_assert!((l - r).abs() < 1e-8, "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_is_involution(a in small_mat(3, 6)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn tmatvec_matches_explicit_transpose(a in small_mat(4, 3), x in small_vec(4)) {
        let implicit = a.tmatvec(&x);
        let explicit = a.transpose().matvec(&x);
        for (l, r) in implicit.iter().zip(&explicit) {
            prop_assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn gram_schmidt_output_is_orthonormal(a in small_mat(6, 3)) {
        let mut q = a;
        let kept = q.orthonormalize_cols();
        prop_assert!(kept <= 3);
        for i in 0..3 {
            let ci: Vec<f64> = q.col_iter(i).collect();
            let n = norm2(&ci);
            // Kept columns are unit; dropped ones are zero.
            prop_assert!((n - 1.0).abs() < 1e-8 || n < 1e-8, "col {i} norm {n}");
            for j in (i + 1)..3 {
                let cj: Vec<f64> = q.col_iter(j).collect();
                prop_assert!(dot(&ci, &cj).abs() < 1e-7);
            }
        }
    }

    #[test]
    fn jacobi_reconstructs_symmetric_matrices(entries in proptest::collection::vec(-3.0f64..3.0, 10)) {
        // Build a 4x4 symmetric matrix from 10 free entries.
        let mut a = Mat::zeros(4, 4);
        let mut it = entries.into_iter();
        for i in 0..4 {
            for j in i..4 {
                let v = it.next().unwrap();
                a[(i, j)] = v;
                a[(j, i)] = v;
            }
        }
        let e = jacobi_eigen(&a, 100, 1e-13);
        // Reconstruct and compare.
        for i in 0..4 {
            for j in 0..4 {
                let mut s = 0.0;
                for m in 0..4 {
                    s += e.vectors[(i, m)] * e.values[m] * e.vectors[(j, m)];
                }
                prop_assert!((s - a[(i, j)]).abs() < 1e-6, "({i},{j}): {s} vs {}", a[(i, j)]);
            }
        }
        // Eigenvalues sorted descending.
        for w in e.values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-9);
        }
    }

    #[test]
    fn normalize_gives_unit_or_zero(mut v in small_vec(5)) {
        let n = normalize(&mut v);
        if n > 1e-12 {
            prop_assert!((norm2(&v) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn to_distribution_sums_to_one(mut v in proptest::collection::vec(0.0f64..10.0, 1..20)) {
        to_distribution(&mut v);
        let s: f64 = v.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        prop_assert!(v.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn rank_one_tensor_contraction_identity(a in small_vec(3), u in small_vec(3), w in -3.0f64..3.0) {
        // (w a⊗a⊗a)(u,u,u) == w (a·u)^3
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(w, &a);
        let au = dot(&a, &u);
        let got = t.apply_vvv(&u);
        let want = w * au.powi(3);
        prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()), "{got} vs {want}");
    }

    #[test]
    fn tensor_deflation_cancels(a in small_vec(4), w in 0.1f64..3.0) {
        let mut t = Tensor3::zeros(4);
        t.add_rank_one(w, &a);
        t.deflate(w, &a);
        prop_assert!(t.max_abs() < 1e-9);
    }

    #[test]
    fn sym_pair_update_is_fully_symmetric(a in small_vec(3), b in small_vec(3)) {
        let mut t = Tensor3::zeros(3);
        t.add_sym_rank_one_pair(1.0, &a, &b);
        for i in 0..3 {
            for j in 0..3 {
                for l in 0..3 {
                    let x = t.get(i, j, l);
                    prop_assert!((x - t.get(i, l, j)).abs() < 1e-9);
                    prop_assert!((x - t.get(j, i, l)).abs() < 1e-9);
                    prop_assert!((x - t.get(l, j, i)).abs() < 1e-9);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Golden bit-identity checks for the rewritten kernels. Each reference below
// is the seed implementation spelled out naively: ascending-k axpy updates
// with the same zero-skip. The blocked/fused kernels must reproduce its
// output bit for bit — per DESIGN.md §11, only the instruction schedule may
// change, never the floating-point grouping.
// ---------------------------------------------------------------------------

/// Seed matmul: one output row at a time, `out_row += a_ik · b_row(k)` in
/// ascending-k order, skipping zero coefficients.
fn matmul_reference(a: &Mat, b: &Mat) -> Mat {
    let mut out = Mat::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let coef = a[(i, k)];
            if coef == 0.0 {
                continue;
            }
            for j in 0..b.cols() {
                out[(i, j)] += coef * b[(k, j)];
            }
        }
    }
    out
}

/// Seed tmatvec: the row range is cut into the same fixed 64-piece chunk
/// layout the production kernel uses, each chunk accumulated row by row
/// (ascending, zero-skip) into a fresh partial, and the partials folded
/// left to right. That grouping — not a flat single-accumulator loop — is
/// what the bit-identity contract pins down.
fn tmatvec_reference(a: &Mat, x: &[f64]) -> Vec<f64> {
    let grain = lesm_par::grain_for_pieces(a.rows(), 64);
    let mut out = vec![0.0; a.cols()];
    for range in lesm_par::chunk_ranges(a.rows(), grain) {
        let mut part = vec![0.0; a.cols()];
        for r in range {
            let coef = x[r];
            if coef == 0.0 {
                continue;
            }
            for (o, &v) in part.iter_mut().zip(a.row(r)) {
                *o += coef * v;
            }
        }
        for (o, &p) in out.iter_mut().zip(&part) {
            *o += p;
        }
    }
    out
}

fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: element {i}: {g} vs {w}");
    }
}

fn mat_pair() -> impl Strategy<Value = (Mat, Mat)> {
    (1usize..12, 1usize..12, 1usize..12).prop_flat_map(|(m, k, n)| {
        (
            proptest::collection::vec(-5.0f64..5.0, m * k),
            proptest::collection::vec(-5.0f64..5.0, k * n),
        )
            .prop_map(move |(da, db)| (Mat::from_vec(m, k, da), Mat::from_vec(k, n, db)))
    })
}

/// Operand pair for `Aᵀ·B`: equal row counts, independent widths.
fn tn_pair() -> impl Strategy<Value = (Mat, Mat)> {
    (1usize..12, 1usize..8, 1usize..8).prop_flat_map(|(r, p, q)| {
        (
            proptest::collection::vec(-5.0f64..5.0, r * p),
            proptest::collection::vec(-5.0f64..5.0, r * q),
        )
            .prop_map(move |(da, db)| (Mat::from_vec(r, p, da), Mat::from_vec(r, q, db)))
    })
}

proptest! {
    #[test]
    fn blocked_matmul_is_bit_identical_to_reference((a, b) in mat_pair()) {
        let want = matmul_reference(&a, &b);
        for threads in [1usize, 2, 4] {
            let got = a.matmul_threads(&b, threads);
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "threads={}", threads);
            }
        }
    }

    #[test]
    fn fused_tmatvec_is_bit_identical_to_reference(a in small_mat(9, 5), x in small_vec(9)) {
        let want = tmatvec_reference(&a, &x);
        for threads in [1usize, 2, 4] {
            let got = a.tmatvec_threads(&x, threads);
            for (g, w) in got.iter().zip(&want) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "threads={}", threads);
            }
        }
    }

    #[test]
    fn matmul_tn_is_bit_identical_to_transpose_then_matmul((a, b) in tn_pair()) {
        // Aᵀ·B via the fused kernel vs explicit transpose + blocked matmul.
        let want = a.transpose().matmul(&b);
        for threads in [1usize, 2, 4] {
            let got = a.matmul_tn_threads(&b, threads);
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                prop_assert_eq!(g.to_bits(), w.to_bits(), "threads={}", threads);
            }
        }
    }
}

/// Deterministic sweep across the adaptive-dispatch boundary: 16³ work sits
/// far below the default `par_threshold` (sequential dispatch), 96³ far
/// above it (parallel dispatch when cores allow). Results must carry the
/// same bits on both sides and for every requested thread count.
#[test]
fn adaptive_dispatch_boundary_preserves_bits() {
    for n in [16usize, 96] {
        let a = Mat::from_vec(n, n, (0..n * n).map(|i| (i as f64 * 0.37).sin()).collect());
        let b = Mat::from_vec(n, n, (0..n * n).map(|i| (i as f64 * 0.71).cos()).collect());
        let want = matmul_reference(&a, &b);
        for threads in [1usize, 2, 4] {
            let got = a.matmul_threads(&b, threads);
            assert_bits_eq(got.as_slice(), want.as_slice(), &format!("matmul n={n} t={threads}"));
        }
        let x: Vec<f64> = (0..n).map(|i| (i as f64 * 0.13).sin()).collect();
        let want_t = tmatvec_reference(&a, &x);
        for threads in [1usize, 2, 4] {
            let got = a.tmatvec_threads(&x, threads);
            assert_bits_eq(&got, &want_t, &format!("tmatvec n={n} t={threads}"));
        }
    }
}
