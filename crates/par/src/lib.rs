//! Deterministic scoped parallelism for the lesm workspace.
//!
//! Every helper here guarantees that its result is **bit-identical for any
//! thread count**, including `threads = 1`. Floating-point addition is not
//! associative, so naive per-thread accumulation produces results that
//! drift with the degree of parallelism; lesm's pipelines promise seeded
//! byte-determinism, so that drift is unacceptable.
//!
//! The guarantee rests on two rules:
//!
//! 1. **Chunk layout depends only on the problem**, never on the thread
//!    count: [`chunk_ranges`] is a pure function of `(len, grain)`.
//! 2. **Reductions are a fixed left-to-right fold** over per-chunk
//!    buffers in chunk-index order ([`par_buffer_reduce`]). Threads only
//!    decide *when* each chunk buffer is filled, never how the partial
//!    results are grouped.
//!
//! Everything is built on [`std::thread::scope`] — no dependencies, no
//! thread pool, no unsafe code. Spawn cost is a few microseconds per
//! thread, which is negligible for the iteration-level work units these
//! helpers are applied to (EM sweeps over all edges, tensor moment
//! accumulation over all documents, matrix products).

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::num::NonZeroUsize;
use std::ops::Range;

/// Resolves a requested thread count: `0` means "use all available
/// parallelism", anything else is taken literally (minimum 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    } else {
        requested
    }
}

/// Splits `0..len` into contiguous ranges of at most `grain` items.
///
/// The layout is a pure function of `(len, grain)` — it never depends on
/// the thread count, which is what makes chunked reductions reproducible.
/// `grain = 0` is treated as `grain = 1`. An empty input yields no ranges.
pub fn chunk_ranges(len: usize, grain: usize) -> Vec<Range<usize>> {
    let grain = grain.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(grain));
    let mut start = 0;
    while start < len {
        let end = (start + grain).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// A `grain` that yields roughly `pieces` chunks over `len` items.
///
/// Useful for bounding merge cost: reductions pay `O(chunks × out_len)`
/// to fold, so callers pick a small fixed `pieces` (independent of the
/// thread count) and let threads share the chunks.
pub fn grain_for_pieces(len: usize, pieces: usize) -> usize {
    len.div_ceil(pieces.max(1)).max(1)
}

/// Reusable chunk-buffer storage for [`par_buffer_reduce_with`].
///
/// A chunked reduce needs one private accumulator buffer per chunk;
/// allocating and freeing those every call dominates the cost of
/// iteration-level callers (EM runs one reduce per iteration). A scratch
/// keeps the buffers alive between calls — they are re-zeroed, never
/// re-allocated, as long as the shape does not grow. The scratch carries
/// no result state, so reusing one across reduces of different shapes is
/// always safe and never changes any result bit.
#[derive(Debug, Default)]
pub struct ReduceScratch {
    buffers: Vec<Vec<f64>>,
}

impl ReduceScratch {
    /// An empty scratch (buffers are grown on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `n_chunks` buffers of length `out_len`, all zeroed.
    fn prepare(&mut self, n_chunks: usize, out_len: usize) -> &mut [Vec<f64>] {
        if self.buffers.len() < n_chunks {
            self.buffers.resize_with(n_chunks, Vec::new);
        }
        for buf in &mut self.buffers[..n_chunks] {
            buf.clear();
            buf.resize(out_len, 0.0);
        }
        &mut self.buffers[..n_chunks]
    }
}

/// Chunked map-reduce into a flat `f64` accumulator, bit-identical for
/// any thread count.
///
/// Conceptually: split `0..n_items` into [`chunk_ranges`]`(n_items,
/// grain)`, have `fill(range, buf)` accumulate each chunk's contribution
/// into a zeroed `out_len`-length buffer, then fold the chunk buffers
/// into the result **elementwise, left to right in chunk order**:
///
/// ```text
/// out[i] = ((chunk0[i] + chunk1[i]) + chunk2[i]) + …
/// ```
///
/// Threads pick up whole chunks; since each chunk's buffer is computed
/// independently and the fold order is fixed, the result does not depend
/// on how chunks were scheduled. With `threads <= 1` the fills run inline
/// on the caller's thread through the *same* chunking and fold, so the
/// serial result is the parallel result.
pub fn par_buffer_reduce<F>(
    n_items: usize,
    grain: usize,
    threads: usize,
    out_len: usize,
    fill: F,
) -> Vec<f64>
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    let mut scratch = ReduceScratch::new();
    let mut out = vec![0.0; out_len];
    par_buffer_reduce_with(&mut scratch, n_items, grain, threads, &mut out, fill);
    out
}

/// [`par_buffer_reduce`] into a caller-owned accumulator, reusing
/// `scratch` for the per-chunk buffers.
///
/// `out` is zeroed before the fold, so the call computes exactly the same
/// bits as `par_buffer_reduce(n_items, grain, threads, out.len(), fill)`
/// — the scratch only removes the per-call allocation of the chunk
/// buffers (and of `out` itself). Iteration-level hot loops should hold
/// one scratch and one accumulator for their whole lifetime.
pub fn par_buffer_reduce_with<F>(
    scratch: &mut ReduceScratch,
    n_items: usize,
    grain: usize,
    threads: usize,
    out: &mut [f64],
    fill: F,
) where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    let out_len = out.len();
    let chunks = chunk_ranges(n_items, grain);
    let buffers = scratch.prepare(chunks.len(), out_len);
    let requested = effective_threads(threads);
    let threads = requested.min(chunks.len()).max(1);

    if threads <= 1 {
        for (range, buf) in chunks.iter().zip(buffers.iter_mut()) {
            fill(range.clone(), buf);
        }
    } else {
        // Contiguous assignment of chunks to threads. Which thread fills a
        // buffer is irrelevant: each buffer lands in its chunk-index slot.
        let per_thread = chunks.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for (chunk_group, buf_group) in
                chunks.chunks(per_thread).zip(buffers.chunks_mut(per_thread))
            {
                scope.spawn(|| {
                    for (range, buf) in chunk_group.iter().zip(buf_group.iter_mut()) {
                        fill(range.clone(), buf);
                    }
                });
            }
        });
    }

    // The fixed left-to-right fold. Zero is the additive identity, so
    // starting from a zeroed accumulator preserves the grouping above.
    // Each output element's fold is independent of the others, so wide
    // accumulators can split the element space across threads without
    // changing any element's summation order.
    out.fill(0.0);
    let fold_threads = requested.min(out_len / FOLD_PAR_MIN_ELEMENTS).max(1);
    if fold_threads <= 1 || buffers.len() <= 1 {
        for buf in buffers.iter() {
            for (o, b) in out.iter_mut().zip(buf.iter()) {
                *o += *b;
            }
        }
    } else {
        let per_thread = out_len.div_ceil(fold_threads);
        let buffers = &*buffers;
        std::thread::scope(|scope| {
            for (group_idx, out_group) in out.chunks_mut(per_thread).enumerate() {
                let base = group_idx * per_thread;
                scope.spawn(move || {
                    for buf in buffers {
                        let seg = &buf[base..base + out_group.len()];
                        for (o, b) in out_group.iter_mut().zip(seg) {
                            *o += *b;
                        }
                    }
                });
            }
        });
    }
}

/// Minimum output elements per fold thread before the left-to-right merge
/// in [`par_buffer_reduce`] is itself parallelized.
const FOLD_PAR_MIN_ELEMENTS: usize = 4096;

/// Evaluates `f(0), f(1), …, f(n-1)` in parallel, returning results in
/// index order.
///
/// Each index's value is computed independently, so the output is
/// trivially identical for any thread count. Use for embarrassingly
/// parallel maps: per-document segmentation, per-restart power
/// iterations, per-column matrix products.
pub fn par_map_collect<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_threads(threads).min(n).max(1);
    if threads <= 1 {
        return (0..n).map(f).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let per_thread = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (group_idx, slot_group) in out.chunks_mut(per_thread).enumerate() {
            let base = group_idx * per_thread;
            scope.spawn(move || {
                for (offset, slot) in slot_group.iter_mut().enumerate() {
                    *slot = Some(f(base + offset));
                }
            });
        }
    });
    // lesm-lint: allow(R1) — the scope joins every worker and the chunks cover all slots
    out.into_iter().map(|slot| slot.expect("par_map_collect slot unfilled")).collect()
}

/// Applies `f(index, &mut item)` to every item in parallel over disjoint
/// contiguous partitions of `items`.
///
/// Mutations are confined to each item, so the outcome is identical for
/// any thread count as long as `f` itself only touches its item.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = effective_threads(threads).min(n).max(1);
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let per_thread = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (group_idx, group) in items.chunks_mut(per_thread).enumerate() {
            let base = group_idx * per_thread;
            scope.spawn(move || {
                for (offset, item) in group.iter_mut().enumerate() {
                    f(base + offset, item);
                }
            });
        }
    });
}

/// Applies `f(row_index, row)` to every `row_len`-sized row of a flat
/// row-major buffer, in parallel over disjoint row partitions.
///
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn par_for_rows<F>(data: &mut [f64], row_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(row_len > 0, "par_for_rows requires a positive row length");
    assert_eq!(
        data.len() % row_len,
        0,
        "flat buffer length {} is not a multiple of row length {}",
        data.len(),
        row_len
    );
    let n_rows = data.len() / row_len;
    let threads = effective_threads(threads).min(n_rows).max(1);
    if threads <= 1 {
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    let rows_per_thread = n_rows.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (group_idx, group) in data.chunks_mut(rows_per_thread * row_len).enumerate() {
            let base = group_idx * rows_per_thread;
            scope.spawn(move || {
                for (offset, row) in group.chunks_mut(row_len).enumerate() {
                    f(base + offset, row);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chunk_layout_ignores_thread_count() {
        // The layout is a function of (len, grain) only; sanity-check the
        // arithmetic at the boundaries.
        assert_eq!(chunk_ranges(0, 4), vec![]);
        assert_eq!(chunk_ranges(3, 4), vec![0..3]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(9, 4), vec![0..4, 4..8, 8..9]);
        assert_eq!(chunk_ranges(5, 0), chunk_ranges(5, 1));
    }

    #[test]
    fn grain_for_pieces_covers_everything() {
        for len in [0usize, 1, 7, 100, 1001] {
            for pieces in [1usize, 3, 8, 64] {
                let grain = grain_for_pieces(len, pieces);
                let chunks = chunk_ranges(len, grain);
                assert!(chunks.len() <= pieces.max(1) + 1);
                let covered: usize = chunks.iter().map(|r| r.len()).sum();
                assert_eq!(covered, len);
            }
        }
    }

    /// Adversarial mix of magnitudes so any change in summation grouping
    /// changes the bits of the result.
    fn wild_values(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mag: f64 = rng.gen_range(-12.0f64..12.0);
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * 10f64.powf(mag)
            })
            .collect()
    }

    #[test]
    fn buffer_reduce_is_bit_identical_across_thread_counts() {
        let values = wild_values(1013, 42);
        let fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[0] += values[i];
                buf[1] += values[i] * values[i];
            }
        };
        let reference = par_buffer_reduce(values.len(), 97, 1, 2, fill);
        for threads in 2..=8 {
            let got = par_buffer_reduce(values.len(), 97, threads, 2, fill);
            assert_eq!(reference[0].to_bits(), got[0].to_bits(), "threads={threads}");
            assert_eq!(reference[1].to_bits(), got[1].to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn wide_accumulators_use_the_parallel_fold_and_stay_bit_identical() {
        // out_len > FOLD_PAR_MIN_ELEMENTS exercises the threaded merge.
        let out_len = FOLD_PAR_MIN_ELEMENTS * 3;
        let values = wild_values(out_len * 4, 7);
        let fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[i % out_len] += values[i];
            }
        };
        let reference = par_buffer_reduce(values.len(), 1000, 1, out_len, fill);
        for threads in [2usize, 3, 5, 8] {
            let got = par_buffer_reduce(values.len(), 1000, threads, out_len, fill);
            for (idx, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "element {idx}, threads={threads}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_allocation() {
        let values = wild_values(777, 3);
        let fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[i % 5] += values[i];
            }
        };
        let want = par_buffer_reduce(values.len(), 53, 1, 5, fill);
        let mut scratch = ReduceScratch::new();
        let mut out = vec![f64::NAN; 5]; // stale contents must be ignored
        for threads in [1usize, 2, 4] {
            par_buffer_reduce_with(&mut scratch, values.len(), 53, threads, &mut out, fill);
            for (a, b) in want.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
        // Reusing the same scratch with a different shape is also exact.
        let sum_fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[0] += values[i];
            }
        };
        let want1 = par_buffer_reduce(values.len(), 97, 1, 1, sum_fill);
        let mut out1 = vec![f64::NAN; 1];
        par_buffer_reduce_with(&mut scratch, values.len(), 97, 3, &mut out1, sum_fill);
        assert_eq!(want1[0].to_bits(), out1[0].to_bits());
    }

    #[test]
    fn buffer_reduce_handles_degenerate_shapes() {
        let out = par_buffer_reduce(0, 8, 4, 3, |_r, _b| unreachable!());
        assert_eq!(out, vec![0.0; 3]);
        let out = par_buffer_reduce(5, 100, 4, 1, |r, b| b[0] += r.len() as f64);
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn map_collect_preserves_index_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            let got = par_map_collect(23, threads, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(par_map_collect(0, 4, |i| i).is_empty());
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1usize, 2, 5, 16] {
            let mut items = vec![0u64; 37];
            par_for_each_mut(&mut items, threads, |i, item| *item += i as u64 + 1);
            let want: Vec<u64> = (0..37).map(|i| i + 1).collect();
            assert_eq!(items, want, "threads={threads}");
        }
    }

    #[test]
    fn for_rows_partitions_on_row_boundaries() {
        let (rows, cols) = (17, 5);
        for threads in [1usize, 2, 4, 8] {
            let mut data = vec![0.0f64; rows * cols];
            par_for_rows(&mut data, cols, threads, |r, row| {
                for (c, x) in row.iter_mut().enumerate() {
                    *x = (r * cols + c) as f64;
                }
            });
            let want: Vec<f64> = (0..rows * cols).map(|i| i as f64).collect();
            assert_eq!(data, want, "threads={threads}");
        }
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
