//! Deterministic scoped parallelism for the lesm workspace.
//!
//! Every helper here guarantees that its result is **bit-identical for any
//! thread count**, including `threads = 1`. Floating-point addition is not
//! associative, so naive per-thread accumulation produces results that
//! drift with the degree of parallelism; lesm's pipelines promise seeded
//! byte-determinism, so that drift is unacceptable.
//!
//! The guarantee rests on two rules:
//!
//! 1. **Chunk layout depends only on the problem**, never on the thread
//!    count: [`chunk_ranges`] is a pure function of `(len, grain)`.
//! 2. **Reductions are a fixed left-to-right fold** over per-chunk
//!    buffers in chunk-index order ([`par_buffer_reduce`]). Threads only
//!    decide *when* each chunk buffer is filled, never how the partial
//!    results are grouped.
//!
//! # Adaptive dispatch
//!
//! Spawning scoped threads costs a few microseconds each; below a work
//! threshold that overhead exceeds the compute being distributed and
//! "parallel" calls get *slower* (BENCH_em_core.json recorded exactly
//! that for small EM fits). The `_hinted` variants therefore take a
//! [`WorkHint`] — an abstract work estimate in units of roughly one
//! floating-point multiply-add — and [`dispatch_threads`] resolves the
//! number of worker threads:
//!
//! * below the process-wide [`par_threshold`], one thread (run inline);
//! * otherwise `effective_threads(requested)` capped at the machine's
//!   available parallelism (oversubscribing a small box only adds
//!   scheduling overhead).
//!
//! The threshold can never change a result bit: chunk layout and fold
//! order are functions of the problem alone, so the sequential fallback
//! executes the very same chunks in the very same left-to-right order —
//! only the scheduling differs. The un-hinted entry points assume the
//! work is heavy ([`WorkHint::HEAVY`]) and parallelize whenever more than
//! one thread is requested, exactly as before the cost model existed.
//!
//! Everything is built on [`std::thread::scope`] — no dependencies, no
//! thread pool, no unsafe code.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

/// Resolves a requested thread count: `0` means "use all available
/// parallelism", anything else is taken literally (minimum 1).
pub fn effective_threads(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1)
    } else {
        requested
    }
}

/// An abstract estimate of the work behind one parallel call, in units of
/// roughly one floating-point multiply-add (or comparable memory
/// traffic).
///
/// Hints feed [`dispatch_threads`], which falls back to sequential
/// execution when the total work is too small to amortize thread spawns.
/// Hints influence *scheduling only* — results are bit-identical whether
/// a call runs sequentially or parallel, so a wrong estimate can cost
/// time but never correctness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct WorkHint {
    units: u64,
}

impl WorkHint {
    /// Work that is always worth distributing. This is the hint the
    /// un-hinted wrappers use: when per-item cost is unknown it may be
    /// arbitrarily large (e.g. whole-document segmentation), so the safe
    /// default is to honor the requested thread count.
    pub const HEAVY: WorkHint = WorkHint { units: u64::MAX };

    /// A raw unit count.
    pub const fn units(units: u64) -> Self {
        Self { units }
    }

    /// `n` items at roughly `unit_cost` work units each (saturating).
    pub const fn items(n: usize, unit_cost: usize) -> Self {
        Self { units: (n as u64).saturating_mul(unit_cost as u64) }
    }

    /// The estimate in work units.
    pub const fn get(self) -> u64 {
        self.units
    }
}

/// Default sequential-fallback threshold in [`WorkHint`] units.
///
/// Scoped spawns cost single-digit microseconds per thread and a work
/// unit is on the order of a nanosecond, so parallelism starts paying
/// for itself somewhere in the hundreds of thousands of units. The exact
/// value only moves the crossover point, never any result bit.
pub const DEFAULT_PAR_THRESHOLD: u64 = 262_144;

/// Process-wide dispatch threshold (work units). Mutating scheduling
/// state is deterministic-safe here because the threshold cannot affect
/// chunk layout or fold order — see the module docs.
static PAR_THRESHOLD: AtomicU64 = AtomicU64::new(DEFAULT_PAR_THRESHOLD);

/// Sets the process-wide work threshold below which hinted calls run
/// sequentially. `0` disables the fallback (always honor the requested
/// thread count); `u64::MAX` forces every hinted call sequential except
/// those marked [`WorkHint::HEAVY`].
pub fn set_par_threshold(units: u64) {
    PAR_THRESHOLD.store(units, Ordering::Relaxed);
}

/// The current sequential-fallback threshold in work units.
pub fn par_threshold() -> u64 {
    PAR_THRESHOLD.load(Ordering::Relaxed)
}

/// Resolves how many worker threads a hinted call should use: `1` when
/// the estimated work is below [`par_threshold`], otherwise the
/// requested count (with `0` meaning "all cores") capped at the
/// machine's available parallelism.
pub fn dispatch_threads(requested: usize, hint: WorkHint) -> usize {
    if hint.units < par_threshold() {
        return 1;
    }
    effective_threads(requested).min(effective_threads(0)).max(1)
}

/// Splits `0..len` into contiguous ranges of at most `grain` items.
///
/// The layout is a pure function of `(len, grain)` — it never depends on
/// the thread count, which is what makes chunked reductions reproducible.
/// `grain = 0` is treated as `grain = 1`. An empty input yields no ranges.
pub fn chunk_ranges(len: usize, grain: usize) -> Vec<Range<usize>> {
    let grain = grain.max(1);
    let mut ranges = Vec::with_capacity(len.div_ceil(grain));
    let mut start = 0;
    while start < len {
        let end = (start + grain).min(len);
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// A `grain` that yields roughly `pieces` chunks over `len` items.
///
/// Useful for bounding merge cost: reductions pay `O(chunks × out_len)`
/// to fold, so callers pick a small fixed `pieces` (independent of the
/// thread count) and let threads share the chunks.
pub fn grain_for_pieces(len: usize, pieces: usize) -> usize {
    len.div_ceil(pieces.max(1)).max(1)
}

/// Reusable chunk-buffer storage for [`par_buffer_reduce_with`].
///
/// A chunked reduce needs one private accumulator buffer per chunk;
/// allocating and freeing those every call dominates the cost of
/// iteration-level callers (EM runs one reduce per iteration). A scratch
/// keeps the buffers alive between calls — they are re-zeroed, never
/// re-allocated, as long as the shape does not grow. The scratch carries
/// no result state, so reusing one across reduces of different shapes is
/// always safe and never changes any result bit.
#[derive(Debug, Default)]
pub struct ReduceScratch {
    buffers: Vec<Vec<f64>>,
}

impl ReduceScratch {
    /// An empty scratch (buffers are grown on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures `n_chunks` buffers of length `out_len`, all zeroed.
    fn prepare(&mut self, n_chunks: usize, out_len: usize) -> &mut [Vec<f64>] {
        if self.buffers.len() < n_chunks {
            self.buffers.resize_with(n_chunks, Vec::new);
        }
        for buf in &mut self.buffers[..n_chunks] {
            buf.clear();
            buf.resize(out_len, 0.0);
        }
        &mut self.buffers[..n_chunks]
    }

    /// Ensures a single zeroed buffer of length `out_len` — the only
    /// scratch the sequential fold path touches, regardless of how many
    /// chunks the layout has.
    fn prepare_one(&mut self, out_len: usize) -> &mut Vec<f64> {
        if self.buffers.is_empty() {
            self.buffers.push(Vec::new());
        }
        let buf = &mut self.buffers[0];
        buf.clear();
        buf.resize(out_len, 0.0);
        buf
    }
}

/// Chunked map-reduce into a flat `f64` accumulator, bit-identical for
/// any thread count.
///
/// Conceptually: split `0..n_items` into [`chunk_ranges`]`(n_items,
/// grain)`, have `fill(range, buf)` accumulate each chunk's contribution
/// into a zeroed `out_len`-length buffer, then fold the chunk buffers
/// into the result **elementwise, left to right in chunk order**:
///
/// ```text
/// out[i] = ((chunk0[i] + chunk1[i]) + chunk2[i]) + …
/// ```
///
/// Threads pick up whole chunks; since each chunk's buffer is computed
/// independently and the fold order is fixed, the result does not depend
/// on how chunks were scheduled. With one worker thread the fills run
/// inline on the caller's thread through the *same* chunking and fold,
/// so the serial result is the parallel result.
pub fn par_buffer_reduce<F>(
    n_items: usize,
    grain: usize,
    threads: usize,
    out_len: usize,
    fill: F,
) -> Vec<f64>
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    let mut scratch = ReduceScratch::new();
    let mut out = vec![0.0; out_len];
    par_buffer_reduce_with(&mut scratch, n_items, grain, threads, &mut out, fill);
    out
}

/// [`par_buffer_reduce`] with an explicit [`WorkHint`] driving the
/// sequential fallback.
pub fn par_buffer_reduce_hinted<F>(
    n_items: usize,
    grain: usize,
    threads: usize,
    hint: WorkHint,
    out_len: usize,
    fill: F,
) -> Vec<f64>
where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    let mut scratch = ReduceScratch::new();
    let mut out = vec![0.0; out_len];
    par_buffer_reduce_with_hinted(&mut scratch, n_items, grain, threads, hint, &mut out, fill);
    out
}

/// [`par_buffer_reduce`] into a caller-owned accumulator, reusing
/// `scratch` for the per-chunk buffers.
///
/// `out` is zeroed before the fold, so the call computes exactly the same
/// bits as `par_buffer_reduce(n_items, grain, threads, out.len(), fill)`
/// — the scratch only removes the per-call allocation of the chunk
/// buffers (and of `out` itself). Iteration-level hot loops should hold
/// one scratch and one accumulator for their whole lifetime.
pub fn par_buffer_reduce_with<F>(
    scratch: &mut ReduceScratch,
    n_items: usize,
    grain: usize,
    threads: usize,
    out: &mut [f64],
    fill: F,
) where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    par_buffer_reduce_with_hinted(scratch, n_items, grain, threads, WorkHint::HEAVY, out, fill);
}

/// [`par_buffer_reduce_with`] with an explicit [`WorkHint`] driving the
/// sequential fallback.
///
/// The sequential path folds each chunk into `out` as soon as it is
/// filled, reusing **one** chunk buffer instead of materializing all of
/// them. Per output element that computes `((0 + c0) + c1) + c2 + …` —
/// the identical grouping to the parallel N-buffer fold — while keeping
/// the working set at two buffers, which is what makes small reduces
/// cheap enough for the cost-model fallback to pay off.
pub fn par_buffer_reduce_with_hinted<F>(
    scratch: &mut ReduceScratch,
    n_items: usize,
    grain: usize,
    threads: usize,
    hint: WorkHint,
    out: &mut [f64],
    fill: F,
) where
    F: Fn(Range<usize>, &mut [f64]) + Sync,
{
    let out_len = out.len();
    let chunks = chunk_ranges(n_items, grain);
    let threads = dispatch_threads(threads, hint).min(chunks.len()).max(1);

    if threads <= 1 {
        out.fill(0.0);
        let buf = scratch.prepare_one(out_len);
        for range in &chunks {
            fill(range.clone(), buf);
            // Fold this chunk in and re-zero the buffer for the next one
            // in a single pass.
            for (o, b) in out.iter_mut().zip(buf.iter_mut()) {
                *o += *b;
                *b = 0.0;
            }
        }
        return;
    }

    let buffers = scratch.prepare(chunks.len(), out_len);
    // Contiguous assignment of chunks to threads. Which thread fills a
    // buffer is irrelevant: each buffer lands in its chunk-index slot.
    let per_thread = chunks.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (chunk_group, buf_group) in chunks.chunks(per_thread).zip(buffers.chunks_mut(per_thread))
        {
            scope.spawn(|| {
                for (range, buf) in chunk_group.iter().zip(buf_group.iter_mut()) {
                    fill(range.clone(), buf);
                }
            });
        }
    });

    // The fixed left-to-right fold. Zero is the additive identity, so
    // starting from a zeroed accumulator preserves the grouping above.
    // Each output element's fold is independent of the others, so wide
    // accumulators can split the element space across threads without
    // changing any element's summation order.
    out.fill(0.0);
    let fold_threads = threads.min(out_len / FOLD_PAR_MIN_ELEMENTS).max(1);
    if fold_threads <= 1 || buffers.len() <= 1 {
        for buf in buffers.iter() {
            for (o, b) in out.iter_mut().zip(buf.iter()) {
                *o += *b;
            }
        }
    } else {
        let per_thread = out_len.div_ceil(fold_threads);
        let buffers = &*buffers;
        std::thread::scope(|scope| {
            for (group_idx, out_group) in out.chunks_mut(per_thread).enumerate() {
                let base = group_idx * per_thread;
                scope.spawn(move || {
                    for buf in buffers {
                        let seg = &buf[base..base + out_group.len()];
                        for (o, b) in out_group.iter_mut().zip(seg) {
                            *o += *b;
                        }
                    }
                });
            }
        });
    }
}

/// Minimum output elements per fold thread before the left-to-right merge
/// in [`par_buffer_reduce`] is itself parallelized.
const FOLD_PAR_MIN_ELEMENTS: usize = 4096;

/// Evaluates `f(0), f(1), …, f(n-1)` in parallel, returning results in
/// index order.
///
/// Each index's value is computed independently, so the output is
/// trivially identical for any thread count. Use for embarrassingly
/// parallel maps: per-document segmentation, per-restart power
/// iterations, per-column matrix products.
pub fn par_map_collect<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_collect_hinted(n, threads, WorkHint::HEAVY, f)
}

/// [`par_map_collect`] with an explicit [`WorkHint`] driving the
/// sequential fallback.
pub fn par_map_collect_hinted<T, F>(n: usize, threads: usize, hint: WorkHint, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    par_map_collect_scratch(n, threads, hint, || (), |i, ()| f(i))
}

/// [`par_map_collect`] with a per-worker scratch value.
///
/// `init()` builds one scratch per worker thread (one total on the
/// sequential path); `f(i, &mut scratch)` may use it freely for
/// temporary storage. Because which indices share a scratch depends on
/// the thread count, `f` **must not let scratch contents influence its
/// output** — treat every field it reads as uninitialized until
/// overwritten. Under that contract results are bit-identical for any
/// thread count, and allocation-heavy maps (tensor power restarts) can
/// reuse their temporaries across items.
pub fn par_map_collect_scratch<T, S, F, I>(
    n: usize,
    threads: usize,
    hint: WorkHint,
    init: I,
    f: F,
) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(usize, &mut S) -> T + Sync,
{
    let threads = dispatch_threads(threads, hint).min(n).max(1);
    if threads <= 1 {
        let mut scratch = init();
        return (0..n).map(|i| f(i, &mut scratch)).collect();
    }
    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    let per_thread = n.div_ceil(threads);
    let (f, init) = (&f, &init);
    std::thread::scope(|scope| {
        for (group_idx, slot_group) in out.chunks_mut(per_thread).enumerate() {
            let base = group_idx * per_thread;
            scope.spawn(move || {
                let mut scratch = init();
                for (offset, slot) in slot_group.iter_mut().enumerate() {
                    *slot = Some(f(base + offset, &mut scratch));
                }
            });
        }
    });
    // lesm-lint: allow(R1) — the scope joins every worker and the chunks cover all slots
    out.into_iter().map(|slot| slot.expect("par_map_collect slot unfilled")).collect()
}

/// Applies `f(index, &mut item)` to every item in parallel over disjoint
/// contiguous partitions of `items`.
///
/// Mutations are confined to each item, so the outcome is identical for
/// any thread count as long as `f` itself only touches its item.
pub fn par_for_each_mut<T, F>(items: &mut [T], threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    par_for_each_mut_hinted(items, threads, WorkHint::HEAVY, f);
}

/// [`par_for_each_mut`] with an explicit [`WorkHint`] driving the
/// sequential fallback.
pub fn par_for_each_mut_hinted<T, F>(items: &mut [T], threads: usize, hint: WorkHint, f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = dispatch_threads(threads, hint).min(n).max(1);
    if threads <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let per_thread = n.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (group_idx, group) in items.chunks_mut(per_thread).enumerate() {
            let base = group_idx * per_thread;
            scope.spawn(move || {
                for (offset, item) in group.iter_mut().enumerate() {
                    f(base + offset, item);
                }
            });
        }
    });
}

/// Applies `f(row_index, row)` to every `row_len`-sized row of a flat
/// row-major buffer, in parallel over disjoint row partitions.
///
/// Panics if `data.len()` is not a multiple of `row_len`.
pub fn par_for_rows<F>(data: &mut [f64], row_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    par_for_rows_hinted(data, row_len, threads, WorkHint::HEAVY, f);
}

/// [`par_for_rows`] with an explicit [`WorkHint`] driving the sequential
/// fallback.
pub fn par_for_rows_hinted<F>(data: &mut [f64], row_len: usize, threads: usize, hint: WorkHint, f: F)
where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(row_len > 0, "par_for_rows requires a positive row length");
    assert_eq!(
        data.len() % row_len,
        0,
        "flat buffer length {} is not a multiple of row length {}",
        data.len(),
        row_len
    );
    let n_rows = data.len() / row_len;
    let threads = dispatch_threads(threads, hint).min(n_rows).max(1);
    if threads <= 1 {
        for (i, row) in data.chunks_mut(row_len).enumerate() {
            f(i, row);
        }
        return;
    }
    let rows_per_thread = n_rows.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (group_idx, group) in data.chunks_mut(rows_per_thread * row_len).enumerate() {
            let base = group_idx * rows_per_thread;
            scope.spawn(move || {
                for (offset, row) in group.chunks_mut(row_len).enumerate() {
                    f(base + offset, row);
                }
            });
        }
    });
}

/// Applies `f(block_index, block)` to every `block_len`-sized block of a
/// flat buffer (the final block may be shorter), in parallel over
/// disjoint groups of whole blocks.
///
/// Like [`par_for_rows`] but tolerant of a ragged tail — the shape
/// register-blocked kernels need, where a row block covers several
/// matrix rows and the last block may be short. Thread-group boundaries
/// always fall on block boundaries, so each block is processed by
/// exactly one worker.
pub fn par_for_blocks_hinted<F>(
    data: &mut [f64],
    block_len: usize,
    threads: usize,
    hint: WorkHint,
    f: F,
) where
    F: Fn(usize, &mut [f64]) + Sync,
{
    assert!(block_len > 0, "par_for_blocks requires a positive block length");
    let n_blocks = data.len().div_ceil(block_len);
    let threads = dispatch_threads(threads, hint).min(n_blocks).max(1);
    if threads <= 1 {
        for (i, block) in data.chunks_mut(block_len).enumerate() {
            f(i, block);
        }
        return;
    }
    let per_thread = n_blocks.div_ceil(threads);
    let f = &f;
    std::thread::scope(|scope| {
        for (group_idx, group) in data.chunks_mut(per_thread * block_len).enumerate() {
            let base = group_idx * per_thread;
            scope.spawn(move || {
                for (offset, block) in group.chunks_mut(block_len).enumerate() {
                    f(base + offset, block);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::sync::Mutex;

    /// Serializes tests that mutate the process-wide threshold.
    static THRESHOLD_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn chunk_layout_ignores_thread_count() {
        // The layout is a function of (len, grain) only; sanity-check the
        // arithmetic at the boundaries.
        assert_eq!(chunk_ranges(0, 4), vec![]);
        assert_eq!(chunk_ranges(3, 4), vec![0..3]);
        assert_eq!(chunk_ranges(8, 4), vec![0..4, 4..8]);
        assert_eq!(chunk_ranges(9, 4), vec![0..4, 4..8, 8..9]);
        assert_eq!(chunk_ranges(5, 0), chunk_ranges(5, 1));
    }

    #[test]
    fn grain_for_pieces_covers_everything() {
        for len in [0usize, 1, 7, 100, 1001] {
            for pieces in [1usize, 3, 8, 64] {
                let grain = grain_for_pieces(len, pieces);
                let chunks = chunk_ranges(len, grain);
                assert!(chunks.len() <= pieces.max(1) + 1);
                let covered: usize = chunks.iter().map(|r| r.len()).sum();
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn work_hint_arithmetic_saturates() {
        assert_eq!(WorkHint::items(3, 5).get(), 15);
        assert_eq!(WorkHint::items(usize::MAX, 2).get(), u64::MAX);
        assert_eq!(WorkHint::units(7).get(), 7);
        assert!(WorkHint::HEAVY > WorkHint::units(u64::MAX - 1));
    }

    #[test]
    fn dispatch_serializes_small_work_and_caps_at_cores() {
        let _guard = THRESHOLD_LOCK.lock().unwrap();
        set_par_threshold(DEFAULT_PAR_THRESHOLD);
        // Below threshold: one thread no matter what was requested.
        assert_eq!(dispatch_threads(8, WorkHint::units(DEFAULT_PAR_THRESHOLD - 1)), 1);
        assert_eq!(dispatch_threads(0, WorkHint::units(0)), 1);
        // At/above threshold: requested count, capped at real cores.
        let cores = effective_threads(0);
        assert_eq!(dispatch_threads(1, WorkHint::HEAVY), 1);
        assert_eq!(dispatch_threads(cores + 64, WorkHint::HEAVY), cores);
        assert_eq!(
            dispatch_threads(2, WorkHint::units(DEFAULT_PAR_THRESHOLD)),
            2usize.min(cores)
        );
    }

    #[test]
    fn threshold_is_settable_and_heavy_is_immune() {
        let _guard = THRESHOLD_LOCK.lock().unwrap();
        set_par_threshold(10);
        assert_eq!(par_threshold(), 10);
        assert_eq!(dispatch_threads(4, WorkHint::units(9)), 1);
        let cores = effective_threads(0);
        assert_eq!(dispatch_threads(4, WorkHint::units(10)), 4usize.min(cores));
        set_par_threshold(u64::MAX);
        // HEAVY is u64::MAX which is not strictly below any threshold.
        assert_eq!(dispatch_threads(4, WorkHint::HEAVY), 4usize.min(cores));
        assert_eq!(dispatch_threads(4, WorkHint::units(u64::MAX - 1)), 1);
        set_par_threshold(DEFAULT_PAR_THRESHOLD);
    }

    /// Adversarial mix of magnitudes so any change in summation grouping
    /// changes the bits of the result.
    fn wild_values(n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let mag: f64 = rng.gen_range(-12.0f64..12.0);
                let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * 10f64.powf(mag)
            })
            .collect()
    }

    #[test]
    fn buffer_reduce_is_bit_identical_across_thread_counts() {
        let values = wild_values(1013, 42);
        let fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[0] += values[i];
                buf[1] += values[i] * values[i];
            }
        };
        let reference = par_buffer_reduce(values.len(), 97, 1, 2, fill);
        for threads in 2..=8 {
            let got = par_buffer_reduce(values.len(), 97, threads, 2, fill);
            assert_eq!(reference[0].to_bits(), got[0].to_bits(), "threads={threads}");
            assert_eq!(reference[1].to_bits(), got[1].to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn reduce_is_bit_identical_across_the_dispatch_boundary() {
        // The same reduce forced sequential (tiny hint) and forced
        // parallel (HEAVY hint) must agree bitwise: the hint can only
        // change scheduling, never grouping.
        let values = wild_values(2029, 11);
        let fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[i % 7] += values[i];
                buf[6] += values[i] * 0.5;
            }
        };
        let seq = par_buffer_reduce_hinted(values.len(), 64, 8, WorkHint::units(1), 7, fill);
        let par = par_buffer_reduce_hinted(values.len(), 64, 8, WorkHint::HEAVY, 7, fill);
        for (idx, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "element {idx}");
        }
    }

    #[test]
    fn sequential_fold_handles_negative_zero_chunks() {
        // A chunk buffer element that ends as -0.0 must fold to +0.0
        // (0.0 + -0.0), exactly like the N-buffer fold always did.
        let fill = |range: Range<usize>, buf: &mut [f64]| {
            for _ in range {
                buf[0] = -0.0;
            }
        };
        let seq = par_buffer_reduce_hinted(10, 5, 4, WorkHint::units(1), 1, fill);
        let par = par_buffer_reduce_hinted(10, 5, 4, WorkHint::HEAVY, 1, fill);
        assert_eq!(seq[0].to_bits(), par[0].to_bits());
        assert_eq!(seq[0].to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn wide_accumulators_use_the_parallel_fold_and_stay_bit_identical() {
        // out_len > FOLD_PAR_MIN_ELEMENTS exercises the threaded merge.
        let out_len = FOLD_PAR_MIN_ELEMENTS * 3;
        let values = wild_values(out_len * 4, 7);
        let fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[i % out_len] += values[i];
            }
        };
        let reference = par_buffer_reduce(values.len(), 1000, 1, out_len, fill);
        for threads in [2usize, 3, 5, 8] {
            let got = par_buffer_reduce(values.len(), 1000, threads, out_len, fill);
            for (idx, (a, b)) in reference.iter().zip(&got).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "element {idx}, threads={threads}");
            }
        }
    }

    #[test]
    fn scratch_reuse_is_bit_identical_to_fresh_allocation() {
        let values = wild_values(777, 3);
        let fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[i % 5] += values[i];
            }
        };
        let want = par_buffer_reduce(values.len(), 53, 1, 5, fill);
        let mut scratch = ReduceScratch::new();
        let mut out = vec![f64::NAN; 5]; // stale contents must be ignored
        for threads in [1usize, 2, 4] {
            par_buffer_reduce_with(&mut scratch, values.len(), 53, threads, &mut out, fill);
            for (a, b) in want.iter().zip(&out) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
        // Reusing the same scratch with a different shape is also exact,
        // including when a parallel-path use follows a sequential one.
        let sum_fill = |range: Range<usize>, buf: &mut [f64]| {
            for i in range {
                buf[0] += values[i];
            }
        };
        let want1 = par_buffer_reduce(values.len(), 97, 1, 1, sum_fill);
        let mut out1 = vec![f64::NAN; 1];
        par_buffer_reduce_with(&mut scratch, values.len(), 97, 3, &mut out1, sum_fill);
        assert_eq!(want1[0].to_bits(), out1[0].to_bits());
        par_buffer_reduce_with_hinted(
            &mut scratch,
            values.len(),
            97,
            3,
            WorkHint::units(1),
            &mut out1,
            sum_fill,
        );
        assert_eq!(want1[0].to_bits(), out1[0].to_bits());
    }

    #[test]
    fn buffer_reduce_handles_degenerate_shapes() {
        let out = par_buffer_reduce(0, 8, 4, 3, |_r, _b| unreachable!());
        assert_eq!(out, vec![0.0; 3]);
        let out = par_buffer_reduce(5, 100, 4, 1, |r, b| b[0] += r.len() as f64);
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn map_collect_preserves_index_order() {
        for threads in [1usize, 2, 3, 8, 64] {
            let got = par_map_collect(23, threads, |i| i * i);
            let want: Vec<usize> = (0..23).map(|i| i * i).collect();
            assert_eq!(got, want, "threads={threads}");
        }
        assert!(par_map_collect(0, 4, |i| i).is_empty());
    }

    #[test]
    fn map_collect_scratch_matches_plain_map() {
        // A scratch used as pure temporary storage (overwritten before
        // every read) must not change any output, sequential or parallel.
        for threads in [1usize, 2, 4] {
            for hint in [WorkHint::units(1), WorkHint::HEAVY] {
                let got = par_map_collect_scratch(
                    17,
                    threads,
                    hint,
                    || vec![0.0f64; 4],
                    |i, tmp| {
                        for (j, t) in tmp.iter_mut().enumerate() {
                            *t = (i * 4 + j) as f64;
                        }
                        tmp.iter().sum::<f64>()
                    },
                );
                let want: Vec<f64> =
                    (0..17).map(|i| (0..4).map(|j| (i * 4 + j) as f64).sum()).collect();
                assert_eq!(got, want, "threads={threads} hint={hint:?}");
            }
        }
    }

    #[test]
    fn for_each_mut_touches_every_item_once() {
        for threads in [1usize, 2, 5, 16] {
            let mut items = vec![0u64; 37];
            par_for_each_mut(&mut items, threads, |i, item| *item += i as u64 + 1);
            let want: Vec<u64> = (0..37).map(|i| i + 1).collect();
            assert_eq!(items, want, "threads={threads}");
        }
    }

    #[test]
    fn for_each_mut_hinted_small_work_matches_parallel() {
        let mut seq = vec![0u64; 29];
        let mut par = vec![0u64; 29];
        par_for_each_mut_hinted(&mut seq, 4, WorkHint::units(1), |i, item| *item = i as u64 * 3);
        par_for_each_mut_hinted(&mut par, 4, WorkHint::HEAVY, |i, item| *item = i as u64 * 3);
        assert_eq!(seq, par);
    }

    #[test]
    fn for_rows_partitions_on_row_boundaries() {
        let (rows, cols) = (17, 5);
        for threads in [1usize, 2, 4, 8] {
            let mut data = vec![0.0f64; rows * cols];
            par_for_rows(&mut data, cols, threads, |r, row| {
                for (c, x) in row.iter_mut().enumerate() {
                    *x = (r * cols + c) as f64;
                }
            });
            let want: Vec<f64> = (0..rows * cols).map(|i| i as f64).collect();
            assert_eq!(data, want, "threads={threads}");
        }
    }

    #[test]
    fn for_blocks_covers_ragged_tails() {
        // 7 full blocks of 6 plus a tail of 2 over a 44-element buffer.
        for threads in [1usize, 2, 3, 8] {
            for hint in [WorkHint::units(1), WorkHint::HEAVY] {
                let mut data = vec![0.0f64; 44];
                par_for_blocks_hinted(&mut data, 6, threads, hint, |b, block| {
                    for (i, x) in block.iter_mut().enumerate() {
                        *x = (b * 6 + i) as f64 + 1.0;
                    }
                });
                let want: Vec<f64> = (0..44).map(|i| i as f64 + 1.0).collect();
                assert_eq!(data, want, "threads={threads}");
            }
        }
    }

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }
}
