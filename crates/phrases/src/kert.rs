//! KERT — mining and ranking topical phrases in short, content-
//! representative text (§4.2).
//!
//! KERT assumes topic discovery has already assigned a topic to every token
//! (a "background LDA" in the paper's experiments, or CATHY's link
//! clustering). For each topic it treats a document's topic-`t` words as an
//! unordered transaction, mines frequent word sets, and ranks them by the
//! four criteria of §4.1 combined in eq. 4.6:
//!
//! ```text
//! Quality_t(P) = 0                                    if κ_com <= γ
//!              = κ_pop * [(1-ω) κ_pur + ω κ_con](P)   otherwise
//! ```

use crate::PhraseError;
use std::collections::{HashMap, HashSet};

/// A ranked topical phrase.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicalPhrase {
    /// Token ids (for KERT: a word set rendered in canonical order; for
    /// ToPMine: the contiguous token sequence).
    pub tokens: Vec<u32>,
    /// Ranking score.
    pub score: f64,
    /// Estimated topical frequency `f_t(P)`.
    pub topic_freq: f64,
}

/// Which criteria participate in the ranking — the ablation grid of
/// Table 4.3 / Table 4.4 / Figure 4.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KertVariant {
    /// All four criteria (γ = 0.5, ω = 0.5 in the paper).
    Full,
    /// Popularity removed (worst performer of Table 4.4).
    NoPopularity,
    /// Purity removed (ω = 1): concordance only alongside popularity.
    NoPurity,
    /// Concordance removed (ω = 0).
    NoConcordance,
    /// Completeness filter removed (γ = 0).
    NoCompleteness,
    /// Popularity only (the `KERTpop` curve of Figure 4.2).
    PopularityOnly,
    /// Purity only (the `KERTpur` curve of Figure 4.2).
    PurityOnly,
    /// Popularity × purity (the best MI_K curve, `KERTpop+pur`).
    PopularityPurity,
}

/// Configuration for [`Kert::run`].
#[derive(Debug, Clone)]
pub struct KertConfig {
    /// Minimum topical support μ for a pattern to be considered frequent.
    pub min_support: u64,
    /// Maximum pattern size (word count).
    pub max_len: usize,
    /// Completeness threshold γ (patterns with κ_com <= γ are filtered).
    pub gamma: f64,
    /// Purity/concordance mix ω.
    pub omega: f64,
    /// Criteria variant.
    pub variant: KertVariant,
    /// Ranked phrases kept per topic.
    pub top_n: usize,
}

impl Default for KertConfig {
    fn default() -> Self {
        Self {
            min_support: 5,
            max_len: 3,
            gamma: 0.5,
            omega: 0.5,
            variant: KertVariant::Full,
            top_n: 30,
        }
    }
}

/// KERT runner.
#[derive(Debug, Default)]
pub struct Kert;

/// Per-topic mined pattern statistics, reusable across ranking variants.
#[derive(Debug, Clone)]
pub struct KertPatterns {
    /// Number of topics.
    pub k: usize,
    /// Topical frequency `f_t(P)` per pattern (word sets stored sorted).
    pub topic_freq: Vec<HashMap<Vec<u32>, u64>>,
    /// Total frequency `f(P) = Σ_t f_t(P)`.
    pub total_freq: HashMap<Vec<u32>, u64>,
    /// `N_t`: documents containing at least one frequent topic-`t` pattern.
    pub n_t: Vec<u64>,
    /// Total documents `N`.
    pub n_docs: u64,
    /// Unigram document frequencies (for concordance).
    pub word_doc_freq: HashMap<u32, u64>,
}

impl Kert {
    /// Mines per-topic frequent word-set patterns from topic-labeled tokens.
    ///
    /// `docs[d]` and `topics[d]` are parallel: `topics[d][i]` is the topic
    /// of `docs[d][i]` (e.g. from an LDA fit).
    pub fn mine(
        docs: &[Vec<u32>],
        topics: &[Vec<u16>],
        k: usize,
        config: &KertConfig,
    ) -> Result<KertPatterns, PhraseError> {
        if config.min_support == 0 {
            return Err(PhraseError::InvalidConfig("min_support must be >= 1".into()));
        }
        if config.max_len == 0 {
            return Err(PhraseError::InvalidConfig("max_len must be >= 1".into()));
        }
        if docs.len() != topics.len() {
            return Err(PhraseError::InvalidConfig("docs/topics length mismatch".into()));
        }
        let n_docs = docs.len() as u64;
        // Per-topic transactions: the sorted distinct topic-t words of a doc.
        let mut transactions: Vec<Vec<Vec<u32>>> = vec![Vec::new(); k];
        let mut word_doc_freq: HashMap<u32, u64> = HashMap::new();
        for (doc, tops) in docs.iter().zip(topics) {
            let mut per_topic: Vec<HashSet<u32>> = vec![HashSet::new(); k];
            let mut seen_words: HashSet<u32> = HashSet::new();
            for (&w, &t) in doc.iter().zip(tops) {
                if (t as usize) < k {
                    per_topic[t as usize].insert(w);
                }
                seen_words.insert(w);
            }
            // lesm-lint: allow(D2) — `u64 += 1` into a keyed map is order-independent
            for &w in &seen_words {
                *word_doc_freq.entry(w).or_insert(0) += 1;
            }
            for (t, set) in per_topic.into_iter().enumerate() {
                if !set.is_empty() {
                    let mut v: Vec<u32> = set.into_iter().collect();
                    v.sort_unstable();
                    transactions[t].push(v);
                }
            }
        }
        // Apriori per topic.
        let mut topic_freq: Vec<HashMap<Vec<u32>, u64>> = Vec::with_capacity(k);
        for tx in &transactions {
            topic_freq.push(apriori(tx, config.min_support, config.max_len));
        }
        let mut total_freq: HashMap<Vec<u32>, u64> = HashMap::new();
        for tf in &topic_freq {
            // lesm-lint: allow(D2) — integer `+=` into a keyed map is order-independent
            for (p, &c) in tf {
                *total_freq.entry(p.clone()).or_insert(0) += c;
            }
        }
        let n_t: Vec<u64> = transactions
            .iter()
            .zip(&topic_freq)
            .map(|(tx, tf)| {
                tx.iter()
                    .filter(|trans| {
                        trans.iter().any(|w| tf.contains_key(std::slice::from_ref(w) as &[u32]))
                    })
                    .count() as u64
            })
            .collect();
        Ok(KertPatterns { k, topic_freq, total_freq, n_t, n_docs, word_doc_freq })
    }

    /// Ranks the mined patterns of every topic per the configured variant.
    pub fn rank(patterns: &KertPatterns, config: &KertConfig) -> Vec<Vec<TopicalPhrase>> {
        let k = patterns.k;
        let mut out = Vec::with_capacity(k);
        for t in 0..k {
            let mut list: Vec<TopicalPhrase> = Vec::new();
            for (p, &ft) in &patterns.topic_freq[t] {
                let scores = criteria(patterns, t, p, ft);
                // Completeness filter (unless disabled by the variant).
                let use_completeness = !matches!(
                    config.variant,
                    KertVariant::NoCompleteness
                        | KertVariant::PopularityOnly
                        | KertVariant::PurityOnly
                        | KertVariant::PopularityPurity
                );
                if use_completeness && scores.completeness <= config.gamma {
                    continue;
                }
                let score = combine(&scores, config);
                list.push(TopicalPhrase { tokens: p.clone(), score, topic_freq: ft as f64 });
            }
            list.sort_by(|a, b| {
                b.score.total_cmp(&a.score).then_with(|| a.tokens.cmp(&b.tokens))
            });
            list.truncate(config.top_n);
            out.push(list);
        }
        out
    }

    /// Convenience: mine then rank.
    pub fn run(
        docs: &[Vec<u32>],
        topics: &[Vec<u16>],
        k: usize,
        config: &KertConfig,
    ) -> Result<Vec<Vec<TopicalPhrase>>, PhraseError> {
        let patterns = Self::mine(docs, topics, k, config)?;
        Ok(Self::rank(&patterns, config))
    }
}

/// The four criteria values of one pattern in one topic.
#[derive(Debug, Clone, Copy)]
pub struct Criteria {
    /// κ_pop (eq. 4.4).
    pub popularity: f64,
    /// κ_pur (eq. 4.5).
    pub purity: f64,
    /// κ_con (eq. 4.1).
    pub concordance: f64,
    /// κ_com (eq. 4.2).
    pub completeness: f64,
}

/// Computes the four criteria for a pattern.
pub fn criteria(patterns: &KertPatterns, t: usize, p: &[u32], ft: u64) -> Criteria {
    let n = patterns.n_docs.max(1) as f64;
    let n_t = patterns.n_t[t].max(1) as f64;
    // Popularity (eq. 4.4).
    let popularity = ft as f64 / n_t;
    // Purity (eq. 4.5): contrast against the worst mixed collection
    // {t, t'} over sibling topics t' != t.
    let mut worst_mix = 0.0f64;
    for t2 in 0..patterns.k {
        if t2 == t {
            continue;
        }
        let ft2 = patterns.topic_freq[t2].get(p).copied().unwrap_or(0);
        let n_mix = (patterns.n_t[t] + patterns.n_t[t2]).max(1) as f64;
        let mix = (ft + ft2) as f64 / n_mix;
        if mix > worst_mix {
            worst_mix = mix;
        }
    }
    let purity = if worst_mix > 0.0 {
        (popularity.max(1e-12) / worst_mix).ln()
    } else {
        0.0
    };
    // Concordance (eq. 4.1): total-frequency based.
    let f_total = patterns.total_freq.get(p).copied().unwrap_or(ft).max(1) as f64;
    let mut concordance = (f_total / n).ln();
    for w in p {
        let fw = patterns.word_doc_freq.get(w).copied().unwrap_or(1).max(1) as f64;
        concordance -= (fw / n).ln();
    }
    // Completeness (eq. 4.2): 1 - max_{P ⊕ v} f(P ⊕ v) / f(P).
    let mut max_super = 0u64;
    // lesm-lint: allow(D2) — `max` over u64 counts is order-independent
    for (q, &fq) in &patterns.topic_freq[t] {
        if q.len() == p.len() + 1 && is_subset(p, q) {
            max_super = max_super.max(fq);
        }
    }
    let completeness = 1.0 - max_super as f64 / ft.max(1) as f64;
    Criteria { popularity, purity, concordance, completeness }
}

fn combine(c: &Criteria, config: &KertConfig) -> f64 {
    match config.variant {
        KertVariant::Full | KertVariant::NoCompleteness => {
            c.popularity * ((1.0 - config.omega) * c.purity + config.omega * c.concordance)
        }
        KertVariant::NoPopularity => (1.0 - config.omega) * c.purity + config.omega * c.concordance,
        KertVariant::NoPurity => c.popularity * c.concordance,
        KertVariant::NoConcordance => c.popularity * c.purity,
        KertVariant::PopularityOnly => c.popularity,
        KertVariant::PurityOnly => c.purity,
        KertVariant::PopularityPurity => c.popularity * c.purity,
    }
}

fn is_subset(p: &[u32], q: &[u32]) -> bool {
    // Both sorted.
    let mut qi = 0;
    for &w in p {
        while qi < q.len() && q[qi] < w {
            qi += 1;
        }
        if qi >= q.len() || q[qi] != w {
            return false;
        }
        qi += 1;
    }
    true
}

/// Apriori over unordered transactions: frequent word sets up to `max_len`.
fn apriori(transactions: &[Vec<u32>], min_support: u64, max_len: usize) -> HashMap<Vec<u32>, u64> {
    let mut out: HashMap<Vec<u32>, u64> = HashMap::new();
    // Size-1.
    let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
    for tx in transactions {
        for &w in tx {
            *counts.entry(vec![w]).or_insert(0) += 1;
        }
    }
    counts.retain(|_, &mut c| c >= min_support);
    let mut frequent_prev: Vec<Vec<u32>> = counts.keys().cloned().collect();
    frequent_prev.sort();
    out.extend(counts);
    let mut size = 2usize;
    while !frequent_prev.is_empty() && size <= max_len {
        // Candidate generation: join sets sharing a (size-2)-prefix
        // (frequent_prev is kept sorted at each refill).
        let mut candidates: HashSet<Vec<u32>> = HashSet::new();
        for i in 0..frequent_prev.len() {
            for j in (i + 1)..frequent_prev.len() {
                let (a, b) = (&frequent_prev[i], &frequent_prev[j]);
                if a[..size - 2] != b[..size - 2] {
                    break; // sorted: no further joins for i
                }
                let mut c = a.clone();
                c.push(b[size - 2]);
                candidates.insert(c);
            }
        }
        let mut counts: HashMap<Vec<u32>, u64> = HashMap::new();
        for tx in transactions {
            if tx.len() < size {
                continue;
            }
            let set: HashSet<u32> = tx.iter().copied().collect();
            // lesm-lint: allow(D2) — `u64 += 1` into a keyed map is order-independent
            for cand in &candidates {
                if cand.iter().all(|w| set.contains(w)) {
                    *counts.entry(cand.clone()).or_insert(0) += 1;
                }
            }
        }
        counts.retain(|_, &mut c| c >= min_support);
        frequent_prev = counts.keys().cloned().collect();
        frequent_prev.sort();
        out.extend(counts);
        size += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Topic 0 docs use {0,1,2} ("support vector machines" analog, with
    /// {0,1} never occurring without 2); topic 1 docs use {5,6} and the
    /// cross-topic word 9 appears in both.
    fn data() -> (Vec<Vec<u32>>, Vec<Vec<u16>>) {
        let mut docs = Vec::new();
        let mut tops = Vec::new();
        for i in 0..40 {
            if i % 2 == 0 {
                docs.push(vec![0, 1, 2, 9, 3]);
                tops.push(vec![0, 0, 0, 0, 0]);
            } else {
                docs.push(vec![5, 6, 9, 7]);
                tops.push(vec![1, 1, 1, 1]);
            }
        }
        (docs, tops)
    }

    fn cfg() -> KertConfig {
        KertConfig { min_support: 5, max_len: 3, gamma: 0.5, omega: 0.5, ..Default::default() }
    }

    #[test]
    fn mine_counts_topical_frequency() {
        let (docs, tops) = data();
        let p = Kert::mine(&docs, &tops, 2, &cfg()).unwrap();
        assert_eq!(p.topic_freq[0].get(&vec![0, 1, 2]).copied(), Some(20));
        assert_eq!(p.topic_freq[1].get(&vec![5, 6]).copied(), Some(20));
        // Word 9 frequent in both topics.
        assert!(p.topic_freq[0].contains_key(&vec![9]));
        assert!(p.topic_freq[1].contains_key(&vec![9]));
        assert_eq!(p.total_freq[&vec![9]], 40);
    }

    #[test]
    fn completeness_filters_subphrases() {
        let (docs, tops) = data();
        let patterns = Kert::mine(&docs, &tops, 2, &cfg()).unwrap();
        // {0,1} always accompanied by 2 -> completeness 0 -> filtered.
        let c = criteria(&patterns, 0, &[0, 1], 20);
        assert!(c.completeness < 0.5, "incomplete pattern should score low: {}", c.completeness);
        let full = criteria(&patterns, 0, &[0, 1, 2], 20);
        assert!((full.completeness - 1.0).abs() < 1e-12);
        let ranked = Kert::rank(&patterns, &cfg());
        assert!(
            !ranked[0].iter().any(|p| p.tokens == vec![0, 1]),
            "incomplete pattern must be filtered"
        );
        assert!(ranked[0].iter().any(|p| p.tokens == vec![0, 1, 2]));
    }

    #[test]
    fn purity_demotes_shared_words() {
        let (docs, tops) = data();
        let patterns = Kert::mine(&docs, &tops, 2, &cfg()).unwrap();
        let shared = criteria(&patterns, 0, &[9], 20);
        let dedicated = criteria(&patterns, 0, &[3], 20);
        assert!(dedicated.purity > shared.purity, "shared word must be less pure");
    }

    #[test]
    fn variant_no_popularity_is_worst_for_frequent_good_phrases() {
        let (docs, tops) = data();
        let patterns = Kert::mine(&docs, &tops, 2, &cfg()).unwrap();
        let full = Kert::rank(&patterns, &cfg());
        let nopop = Kert::rank(
            &patterns,
            &KertConfig { variant: KertVariant::NoPopularity, ..cfg() },
        );
        // Under Full, the dominant trigram ranks near the top.
        let full_pos = full[0].iter().position(|p| p.tokens == vec![0, 1, 2]);
        let nopop_pos = nopop[0].iter().position(|p| p.tokens == vec![0, 1, 2]);
        assert!(full_pos.is_some());
        if let (Some(f), Some(n)) = (full_pos, nopop_pos) {
            assert!(f <= n, "popularity should promote the dominant phrase");
        }
    }

    #[test]
    fn ranked_lists_are_sorted() {
        let (docs, tops) = data();
        let ranked = Kert::run(&docs, &tops, 2, &cfg()).unwrap();
        for topic in &ranked {
            for w in topic.windows(2) {
                assert!(w[0].score >= w[1].score);
            }
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let (docs, tops) = data();
        assert!(Kert::mine(&docs, &tops, 2, &KertConfig { min_support: 0, ..cfg() }).is_err());
        assert!(Kert::mine(&docs, &tops, 2, &KertConfig { max_len: 0, ..cfg() }).is_err());
        assert!(Kert::mine(&docs, &tops[..1], 2, &cfg()).is_err());
    }

    #[test]
    fn apriori_subset_property() {
        let tx = vec![vec![1, 2, 3], vec![1, 2, 3], vec![1, 2], vec![2, 3], vec![1, 2, 3]];
        let f = apriori(&tx, 3, 3);
        assert_eq!(f[&vec![1, 2]], 4);
        assert_eq!(f[&vec![1, 2, 3]], 3);
        for (p, &c) in &f {
            if p.len() == 2 {
                for w in p {
                    assert!(f[&vec![*w]] >= c);
                }
            }
        }
    }
}
