//! KERT and ToPMine — topical phrase mining (dissertation Chapter 4).
//!
//! * [`kert`] — phrase mining and ranking for short, content-representative
//!   text (§4.2): frequent word-set mining plus the four criteria
//!   (popularity, purity, concordance, completeness) combined by eq. 4.6.
//! * [`topmine`] — phrase mining for general text (§4.3): contiguous
//!   frequent phrase mining (Algorithm 1), bottom-up significance-guided
//!   segmentation (Algorithm 2), and topical phrase ranking (eq. 4.9).
//! * [`baselines`] — the kpRel / kpRelInt* ranking baselines of §4.4.1.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod baselines;
pub mod kert;
pub mod topmine;

pub use kert::{Kert, KertConfig, KertVariant, TopicalPhrase};
pub use topmine::{FrequentPhrases, Segmenter, SegmenterConfig, ToPMine, ToPMineConfig};

/// Errors produced by phrase mining.
#[derive(Debug, Clone, PartialEq)]
pub enum PhraseError {
    /// Invalid configuration value.
    InvalidConfig(String),
}

impl std::fmt::Display for PhraseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhraseError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for PhraseError {}
