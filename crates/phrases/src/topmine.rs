//! ToPMine — topical phrase mining for general text (§4.3).
//!
//! Three stages:
//!
//! 1. [`FrequentPhrases::mine`] — contiguous frequent phrase mining with
//!    position-based Apriori pruning and data antimonotonicity
//!    (Algorithm 1);
//! 2. [`Segmenter::segment`] — bottom-up agglomerative merging guided by
//!    the significance score of eq. 4.7 (Algorithm 2), inducing a
//!    "bag of phrases" partition of every document;
//! 3. [`ToPMine::run`] — PhraseLDA over the segments followed by topical
//!    phrase ranking (eqs. 4.8–4.9).

use crate::kert::TopicalPhrase;
use crate::PhraseError;
use lesm_topicmodel::{PhraseLda, PhraseLdaConfig, PhraseLdaModel};
use std::collections::HashMap;
use std::ops::Range;

/// Chunk count for parallel phrase counting — fixed so the chunking (and
/// thus the per-chunk tables merged below) never depends on thread count.
const MINE_PIECES: usize = 32;

/// Counts phrases over disjoint chunks of `[0, n_items)` in parallel and
/// merges the per-chunk tables in chunk order. Counts are exact integer
/// sums, so the merged table is identical for any thread count.
fn count_chunks<F>(n_items: usize, threads: usize, count: F) -> HashMap<Vec<u32>, u64>
where
    F: Fn(Range<usize>, &mut HashMap<Vec<u32>, u64>) + Sync,
{
    let ranges = lesm_par::chunk_ranges(n_items, lesm_par::grain_for_pieces(n_items, MINE_PIECES));
    let ranges_ref = &ranges;
    let count_ref = &count;
    let maps = lesm_par::par_map_collect(ranges.len(), threads, |c| {
        let mut m = HashMap::new();
        count_ref(ranges_ref[c].clone(), &mut m);
        m
    });
    let mut out: HashMap<Vec<u32>, u64> = HashMap::new();
    for m in maps {
        // lesm-lint: allow(D2) — `u64 +=` merge into a keyed map is order-independent
        for (k, v) in m {
            *out.entry(k).or_insert(0) += v;
        }
    }
    out
}

/// Frequent contiguous phrases with their corpus counts.
///
/// ```
/// use lesm_phrases::topmine::FrequentPhrases;
///
/// // "0 1" is a frequent bigram; "1 2" crosses it only once.
/// let docs = vec![vec![0, 1, 2], vec![0, 1, 3], vec![0, 1, 4]];
/// let fp = FrequentPhrases::mine(&docs, 2, 4);
/// assert_eq!(fp.count(&[0, 1]), 3);
/// assert_eq!(fp.count(&[1, 2]), 0);
/// assert!(fp.significance(&[0], &[1]).unwrap() > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrequentPhrases {
    counts: HashMap<Vec<u32>, u64>,
    total_tokens: u64,
}

impl FrequentPhrases {
    /// Mines all contiguous phrases with count `>= min_support` and length
    /// `<= max_len` (Algorithm 1).
    pub fn mine(docs: &[Vec<u32>], min_support: u64, max_len: usize) -> Self {
        Self::mine_threads(docs, min_support, max_len, 1)
    }

    /// [`mine`](Self::mine) with the per-document counting passes fanned
    /// out over `threads` workers (`0` = all available cores). Phrase
    /// counts are exact integer sums over disjoint document chunks, so the
    /// result is identical for any thread count.
    pub fn mine_threads(
        docs: &[Vec<u32>],
        min_support: u64,
        max_len: usize,
        threads: usize,
    ) -> Self {
        let total_tokens: u64 = docs.iter().map(|d| d.len() as u64).sum();
        // Length-1 pass.
        let mut counts = count_chunks(docs.len(), threads, |range, m| {
            for doc in &docs[range] {
                for &w in doc {
                    *m.entry(vec![w]).or_insert(0) += 1;
                }
            }
        });
        counts.retain(|_, &mut c| c >= min_support);
        // `alive[d]` holds start positions whose length-(n-1) phrase is
        // frequent (position-based Apriori); documents with no alive
        // positions are dropped (data antimonotonicity).
        let counts_ref = &counts;
        let mut alive: Vec<Vec<usize>> = lesm_par::par_map_collect(docs.len(), threads, |d| {
            let doc = &docs[d];
            (0..doc.len())
                .filter(|&i| counts_ref.contains_key(std::slice::from_ref(&doc[i])))
                .collect()
        });
        let mut active_docs: Vec<usize> =
            (0..docs.len()).filter(|&d| !alive[d].is_empty()).collect();
        let mut n = 2usize;
        while !active_docs.is_empty() && n <= max_len {
            let alive_ref = &alive;
            let active_ref = &active_docs;
            let mut next_counts = count_chunks(active_docs.len(), threads, |range, m| {
                for &d in &active_ref[range] {
                    let doc = &docs[d];
                    // A length-n candidate at i needs frequent length-(n-1)
                    // phrases at both i and i+1 (downward closure).
                    let set: std::collections::HashSet<usize> =
                        alive_ref[d].iter().copied().collect();
                    for &i in &alive_ref[d] {
                        if i + n <= doc.len() && set.contains(&(i + 1)) {
                            *m.entry(doc[i..i + n].to_vec()).or_insert(0) += 1;
                        }
                    }
                }
            });
            next_counts.retain(|_, &mut c| c >= min_support);
            if next_counts.is_empty() {
                break;
            }
            // Refresh alive positions for length n.
            let next_ref = &next_counts;
            let alive_ref = &alive;
            let refreshed: Vec<Vec<usize>> =
                lesm_par::par_map_collect(active_docs.len(), threads, |j| {
                    let d = active_ref[j];
                    let doc = &docs[d];
                    alive_ref[d]
                        .iter()
                        .copied()
                        .filter(|&i| i + n <= doc.len() && next_ref.contains_key(&doc[i..i + n]))
                        .collect()
                });
            for (j, fresh) in refreshed.into_iter().enumerate() {
                alive[active_docs[j]] = fresh;
            }
            active_docs.retain(|&d| !alive[d].is_empty());
            counts.extend(next_counts);
            n += 1;
        }
        Self { counts, total_tokens }
    }

    /// Count of a phrase (0 when not frequent).
    pub fn count(&self, phrase: &[u32]) -> u64 {
        self.counts.get(phrase).copied().unwrap_or(0)
    }

    /// Total token count `L` of the mined corpus.
    pub fn total_tokens(&self) -> u64 {
        self.total_tokens
    }

    /// Number of stored frequent phrases (all lengths).
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no phrase met the support threshold.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates `(phrase, count)` pairs in unspecified order; callers that
    /// emit or accumulate floats must sort first.
    pub fn iter(&self) -> impl Iterator<Item = (&Vec<u32>, u64)> {
        // lesm-lint: allow(D2) — deliberately exposes the map; order documented as unspecified
        self.counts.iter().map(|(p, &c)| (p, c))
    }

    /// Significance of merging adjacent phrases `p1 ⊕ p2` (eq. 4.7):
    /// `(f(p1⊕p2) - L p(p1) p(p2)) / sqrt(f(p1⊕p2))`.
    ///
    /// Returns `None` if the concatenation is not itself frequent (it then
    /// can never be merged).
    pub fn significance(&self, p1: &[u32], p2: &[u32]) -> Option<f64> {
        let mut cat = Vec::with_capacity(p1.len() + p2.len());
        cat.extend_from_slice(p1);
        cat.extend_from_slice(p2);
        let f_cat = self.count(&cat);
        if f_cat == 0 {
            return None;
        }
        let l = self.total_tokens.max(1) as f64;
        let mu = l * (self.count(p1) as f64 / l) * (self.count(p2) as f64 / l);
        Some((f_cat as f64 - mu) / (f_cat as f64).sqrt())
    }
}

/// Configuration for the bottom-up segmenter.
#[derive(Debug, Clone)]
pub struct SegmenterConfig {
    /// Merge threshold α on the significance score.
    pub alpha: f64,
}

impl Default for SegmenterConfig {
    fn default() -> Self {
        Self { alpha: 2.0 }
    }
}

/// Bottom-up agglomerative phrase construction (Algorithm 2).
#[derive(Debug, Clone, Default)]
pub struct Segmenter;

impl Segmenter {
    /// Induces a bag-of-phrases partition on one document.
    pub fn segment_doc(
        doc: &[u32],
        phrases: &FrequentPhrases,
        config: &SegmenterConfig,
    ) -> Vec<Vec<u32>> {
        let mut segs: Vec<Vec<u32>> = doc.iter().map(|&w| vec![w]).collect();
        loop {
            // Titles and sentences are short: a linear scan for the best
            // adjacent merge beats heap maintenance at these lengths.
            let mut best: Option<(usize, f64)> = None;
            for i in 0..segs.len().saturating_sub(1) {
                if let Some(sig) = phrases.significance(&segs[i], &segs[i + 1]) {
                    if sig >= config.alpha && best.is_none_or(|(_, b)| sig > b) {
                        best = Some((i, sig));
                    }
                }
            }
            match best {
                Some((i, _)) => {
                    let right = segs.remove(i + 1);
                    segs[i].extend(right);
                }
                None => break,
            }
        }
        segs
    }

    /// Segments every document.
    pub fn segment(
        docs: &[Vec<u32>],
        phrases: &FrequentPhrases,
        config: &SegmenterConfig,
    ) -> Vec<Vec<Vec<u32>>> {
        Self::segment_threads(docs, phrases, config, 1)
    }

    /// [`segment`](Self::segment) fanned out over `threads` workers (`0` =
    /// all available cores). Each document is segmented independently, so
    /// the partition is identical for any thread count.
    pub fn segment_threads(
        docs: &[Vec<u32>],
        phrases: &FrequentPhrases,
        config: &SegmenterConfig,
        threads: usize,
    ) -> Vec<Vec<Vec<u32>>> {
        lesm_par::par_map_collect(docs.len(), threads, |d| {
            Self::segment_doc(&docs[d], phrases, config)
        })
    }
}

/// Configuration for the full ToPMine pipeline.
#[derive(Debug, Clone)]
pub struct ToPMineConfig {
    /// Minimum phrase support μ.
    pub min_support: u64,
    /// Maximum phrase length mined.
    pub max_len: usize,
    /// Segmentation significance threshold α.
    pub seg_alpha: f64,
    /// PhraseLDA settings (`k` topics live here).
    pub lda: PhraseLdaConfig,
    /// Mix weight ω between pointwise-KL rank and significance bonus in the
    /// final ranking `(1-ω) r_t(P) + ω p(P|t) log sig(P)` (§4.3.3).
    pub omega: f64,
    /// Number of ranked phrases kept per topic.
    pub top_n: usize,
    /// Worker threads for phrase counting and segmentation (`0` = all
    /// available cores). Any value produces identical results.
    pub threads: usize,
}

impl Default for ToPMineConfig {
    fn default() -> Self {
        Self {
            min_support: 5,
            max_len: 5,
            seg_alpha: 2.0,
            lda: PhraseLdaConfig::default(),
            omega: 0.3,
            top_n: 30,
            threads: 1,
        }
    }
}

/// Result of the ToPMine pipeline.
#[derive(Debug, Clone)]
pub struct ToPMineResult {
    /// The bag-of-phrases partition of every document.
    pub segments: Vec<Vec<Vec<u32>>>,
    /// The fitted phrase-constrained LDA model.
    pub model: PhraseLdaModel,
    /// Ranked topical phrases per topic.
    pub topical_phrases: Vec<Vec<TopicalPhrase>>,
    /// The mined frequent-phrase table.
    pub phrases: FrequentPhrases,
}

/// The ToPMine pipeline runner.
#[derive(Debug, Default)]
pub struct ToPMine;

impl ToPMine {
    /// Runs phrase mining → segmentation → PhraseLDA → ranking.
    pub fn run(
        docs: &[Vec<u32>],
        vocab_size: usize,
        config: &ToPMineConfig,
    ) -> Result<ToPMineResult, PhraseError> {
        if config.min_support == 0 {
            return Err(PhraseError::InvalidConfig("min_support must be >= 1".into()));
        }
        if config.max_len < 2 {
            return Err(PhraseError::InvalidConfig("max_len must be >= 2".into()));
        }
        if !(0.0..=1.0).contains(&config.omega) {
            return Err(PhraseError::InvalidConfig("omega must be in [0,1]".into()));
        }
        let phrases =
            FrequentPhrases::mine_threads(docs, config.min_support, config.max_len, config.threads);
        let seg_cfg = SegmenterConfig { alpha: config.seg_alpha };
        let segments = Segmenter::segment_threads(docs, &phrases, &seg_cfg, config.threads);
        let model = PhraseLda::fit(&segments, vocab_size, &config.lda);
        let topical_phrases = rank_topical_phrases(&segments, &model, &phrases, config);
        Ok(ToPMineResult { segments, model, topical_phrases, phrases })
    }
}

/// Topical phrase ranking (eqs. 4.8–4.9 for a flat hierarchy: the parent of
/// each topic is the whole collection).
fn rank_topical_phrases(
    segments: &[Vec<Vec<u32>>],
    model: &PhraseLdaModel,
    phrases: &FrequentPhrases,
    config: &ToPMineConfig,
) -> Vec<Vec<TopicalPhrase>> {
    let k = model.k;
    // Segment occurrence counts (phrases of any length, as segmented).
    let mut seg_count: HashMap<&[u32], f64> = HashMap::new();
    for doc in segments {
        for seg in doc {
            if !seg.is_empty() {
                *seg_count.entry(seg.as_slice()).or_insert(0.0) += 1.0;
            }
        }
    }
    // Fix the segment order before ranking: HashMap iteration order varies
    // per process, and both the float total and the emitted lists must not
    // inherit that arbitrariness.
    let mut seg_list: Vec<(&[u32], f64)> = seg_count.iter().map(|(&s, &c)| (s, c)).collect();
    seg_list.sort_unstable_by(|a, b| a.0.cmp(b.0));
    let total: f64 = seg_list.iter().map(|&(_, c)| c).sum();
    // Topical frequency via eq. 4.8's posterior p(t | P) ∝ ρ_t Π_v φ_{t,v}.
    let mut per_topic: Vec<Vec<TopicalPhrase>> = vec![Vec::new(); k];
    for &(seg, count) in &seg_list {
        let mut post = vec![0.0f64; k];
        let mut norm = 0.0;
        for (t, p_slot) in post.iter_mut().enumerate() {
            let mut lp = model.topic_weight[t].max(1e-12).ln();
            for &w in seg.iter() {
                lp += model.topic_word[t][w as usize].max(1e-300).ln();
            }
            *p_slot = lp;
        }
        let max_lp = post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for p in post.iter_mut() {
            *p = (*p - max_lp).exp();
            norm += *p;
        }
        let sig_bonus = if seg.len() >= 2 {
            let head = &seg[..1];
            let tail = &seg[1..];
            phrases.significance(head, tail).unwrap_or(1.0).max(1.0).ln()
        } else {
            0.0
        };
        for t in 0..k {
            let ft = count * post[t] / norm;
            let p_t = ft / total.max(1.0) / model.topic_weight[t].max(1e-12);
            let p_parent = count / total.max(1.0);
            if ft < 1.0 {
                continue;
            }
            // r_t(P) = p(P|t) log (p(P|t)/p(P|parent))  (eq. 4.9)
            let r = p_t * (p_t / p_parent.max(1e-300)).ln();
            let score = (1.0 - config.omega) * r + config.omega * p_t * sig_bonus;
            per_topic[t].push(TopicalPhrase {
                tokens: seg.to_vec(),
                score,
                topic_freq: ft,
            });
        }
    }
    for list in &mut per_topic {
        list.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.tokens.cmp(&b.tokens)));
        list.truncate(config.top_n);
    }
    per_topic
}

#[cfg(test)]
mod tests {
    use super::*;

    /// "mining frequent patterns" style docs: (0,1) and (1,2) frequent,
    /// (0,1,2) frequent trigram in theme A; (7,8) bigram in theme B.
    fn docs() -> Vec<Vec<u32>> {
        let mut out = Vec::new();
        for i in 0..30 {
            if i % 2 == 0 {
                out.push(vec![0, 1, 2, 3, 0, 1, 2]);
            } else {
                out.push(vec![7, 8, 9, 7, 8, 5]);
            }
        }
        out
    }

    #[test]
    fn mining_finds_contiguous_phrases() {
        let fp = FrequentPhrases::mine(&docs(), 5, 5);
        assert!(fp.count(&[0, 1]) >= 15);
        assert!(fp.count(&[0, 1, 2]) >= 15);
        assert!(fp.count(&[7, 8]) >= 15);
        assert_eq!(fp.count(&[3, 7]), 0, "cross-theme n-gram never frequent");
        assert_eq!(fp.count(&[3, 0]), 15, "mid-title bigram occurs once per theme-A doc");
    }

    #[test]
    fn downward_closure_holds() {
        let fp = FrequentPhrases::mine(&docs(), 5, 5);
        for (p, c) in fp.iter() {
            if p.len() >= 2 {
                assert!(fp.count(&p[..p.len() - 1]) >= c, "prefix less frequent than {p:?}");
                assert!(fp.count(&p[1..]) >= c, "suffix less frequent than {p:?}");
            }
        }
    }

    #[test]
    fn min_support_respected() {
        let fp = FrequentPhrases::mine(&docs(), 5, 5);
        for (_, c) in fp.iter() {
            assert!(c >= 5);
        }
        let fp_hi = FrequentPhrases::mine(&docs(), 10_000, 5);
        assert!(fp_hi.is_empty());
    }

    #[test]
    fn significance_positive_for_collocations() {
        let fp = FrequentPhrases::mine(&docs(), 5, 5);
        let sig = fp.significance(&[0], &[1]).unwrap();
        assert!(sig > 2.0, "collocation should be significant, got {sig}");
        assert!(fp.significance(&[3], &[7]).is_none(), "non-frequent merge impossible");
    }

    #[test]
    fn segmentation_reconstructs_and_groups() {
        let d = docs();
        let fp = FrequentPhrases::mine(&d, 5, 5);
        let segs = Segmenter::segment(&d, &fp, &SegmenterConfig { alpha: 2.0 });
        for (doc, seg) in d.iter().zip(&segs) {
            let flat: Vec<u32> = seg.iter().flatten().copied().collect();
            assert_eq!(&flat, doc, "partition property violated");
        }
        // The trigram (0,1,2) should be a single segment somewhere.
        let found = segs.iter().flatten().any(|s| s.as_slice() == [0, 1, 2]);
        assert!(found, "expected [0,1,2] segment, got {:?}", &segs[0]);
    }

    #[test]
    fn full_pipeline_ranks_topical_phrases() {
        let d = docs();
        let cfg = ToPMineConfig {
            min_support: 5,
            max_len: 4,
            seg_alpha: 2.0,
            lda: PhraseLdaConfig { k: 2, iters: 60, ..Default::default() },
            omega: 0.3,
            top_n: 10,
            threads: 2,
        };
        let r = ToPMine::run(&d, 10, &cfg).unwrap();
        assert_eq!(r.topical_phrases.len(), 2);
        // One topic should rank a theme-A phrase on top, the other theme-B.
        let top_of = |t: usize| r.topical_phrases[t].first().map(|p| p.tokens.clone());
        let t0 = top_of(0).expect("topic 0 has phrases");
        let t1 = top_of(1).expect("topic 1 has phrases");
        let a_words = [0u32, 1, 2, 3];
        let t0_is_a = a_words.contains(&t0[0]);
        let t1_is_a = a_words.contains(&t1[0]);
        assert_ne!(t0_is_a, t1_is_a, "topics should specialize: {t0:?} vs {t1:?}");
        // Multi-word phrases must survive ranking (comparability property).
        let has_multi = r.topical_phrases.iter().flatten().any(|p| p.tokens.len() >= 2);
        assert!(has_multi);
    }

    #[test]
    fn parallel_mining_and_segmentation_identical_to_serial() {
        let d = docs();
        let serial = FrequentPhrases::mine(&d, 5, 5);
        let seg_cfg = SegmenterConfig::default();
        let serial_segs = Segmenter::segment(&d, &serial, &seg_cfg);
        for threads in 2..=8 {
            let par = FrequentPhrases::mine_threads(&d, 5, 5, threads);
            assert_eq!(serial.counts, par.counts, "threads={threads}");
            assert_eq!(serial.total_tokens, par.total_tokens);
            let par_segs = Segmenter::segment_threads(&d, &par, &seg_cfg, threads);
            assert_eq!(serial_segs, par_segs, "threads={threads}");
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        let d = docs();
        let bad1 = ToPMineConfig { min_support: 0, ..Default::default() };
        assert!(ToPMine::run(&d, 10, &bad1).is_err());
        let bad2 = ToPMineConfig { max_len: 1, ..Default::default() };
        assert!(ToPMine::run(&d, 10, &bad2).is_err());
        let bad3 = ToPMineConfig { omega: 1.5, ..Default::default() };
        assert!(ToPMine::run(&d, 10, &bad3).is_err());
    }
}
