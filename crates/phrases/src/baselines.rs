//! kpRel and kpRelInt* — the topical keyphrase ranking baselines of §4.4.1
//! (Zhao et al. \[101\], reimplemented per the paper's footnote: the re-Tweet
//! interestingness signal is replaced by relative corpus frequency).
//!
//! Both score a candidate phrase by aggregating its constituent unigrams'
//! topical probabilities, which is why they systematically favor short
//! phrases (no comparability property — the deficiency KERT fixes).

use crate::kert::{KertPatterns, TopicalPhrase};

/// Ranks topic `t`'s patterns by kpRel: `Π_{w ∈ P} p(w | t)`.
pub fn kp_rel(patterns: &KertPatterns, t: usize, top_n: usize) -> Vec<TopicalPhrase> {
    rank_by(patterns, t, top_n, unigram_product)
}

/// Ranks by kpRelInt*: kpRel × relative corpus frequency of the phrase.
pub fn kp_rel_int(patterns: &KertPatterns, t: usize, top_n: usize) -> Vec<TopicalPhrase> {
    rank_by(patterns, t, top_n, |patterns, t, p| {
        let interest = patterns.total_freq.get(p).copied().unwrap_or(0) as f64
            / patterns.n_docs.max(1) as f64;
        unigram_product(patterns, t, p) * interest
    })
}

fn unigram_product(patterns: &KertPatterns, t: usize, p: &[u32]) -> f64 {
    let n_t = patterns.n_t[t].max(1) as f64;
    p.iter()
        .map(|w| {
            let fw = patterns.topic_freq[t]
                .get(std::slice::from_ref(w) as &[u32])
                .copied()
                .unwrap_or(0) as f64;
            (fw / n_t).max(1e-9)
        })
        .product()
}

fn rank_by(
    patterns: &KertPatterns,
    t: usize,
    top_n: usize,
    score: impl Fn(&KertPatterns, usize, &[u32]) -> f64,
) -> Vec<TopicalPhrase> {
    let mut list: Vec<TopicalPhrase> = patterns.topic_freq[t]
        .iter()
        .map(|(p, &ft)| TopicalPhrase {
            tokens: p.clone(),
            score: score(patterns, t, p),
            topic_freq: ft as f64,
        })
        .collect();
    list.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.tokens.cmp(&b.tokens)));
    list.truncate(top_n);
    list
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kert::{Kert, KertConfig};

    fn data() -> (Vec<Vec<u32>>, Vec<Vec<u16>>) {
        let mut docs = Vec::new();
        let mut tops = Vec::new();
        for i in 0..40 {
            if i % 2 == 0 {
                docs.push(vec![0, 1, 2, 3]);
                tops.push(vec![0, 0, 0, 0]);
            } else {
                docs.push(vec![5, 6, 7]);
                tops.push(vec![1, 1, 1]);
            }
        }
        (docs, tops)
    }

    #[test]
    fn kp_rel_favors_unigrams() {
        let (docs, tops) = data();
        let patterns =
            Kert::mine(&docs, &tops, 2, &KertConfig { min_support: 5, ..Default::default() })
                .unwrap();
        let ranked = kp_rel(&patterns, 0, 10);
        assert!(!ranked.is_empty());
        // The top-ranked item must be a unigram: products of probabilities
        // shrink with length.
        assert_eq!(ranked[0].tokens.len(), 1, "kpRel should rank a unigram first");
        // And every unigram outscores its supersets.
        for p in &ranked {
            if p.tokens.len() == 2 {
                let uni = ranked
                    .iter()
                    .find(|q| q.tokens.len() == 1 && p.tokens.contains(&q.tokens[0]))
                    .expect("constituent unigram ranked");
                assert!(uni.score >= p.score);
            }
        }
    }

    #[test]
    fn kp_rel_int_weights_by_frequency() {
        let (docs, tops) = data();
        let patterns =
            Kert::mine(&docs, &tops, 2, &KertConfig { min_support: 5, ..Default::default() })
                .unwrap();
        let plain = kp_rel(&patterns, 0, 20);
        let interest = kp_rel_int(&patterns, 0, 20);
        assert_eq!(plain.len(), interest.len());
        // Scores differ (scaled by frequency) but both remain unigram-heavy.
        assert_eq!(interest[0].tokens.len(), 1);
    }
}
