//! Property-based tests for phrase-mining invariants.

use lesm_phrases::kert::{Kert, KertConfig};
use lesm_phrases::topmine::{FrequentPhrases, Segmenter, SegmenterConfig};
use proptest::prelude::*;

fn random_docs() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..15, 0..25), 1..25)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn downward_closure_and_support(docs in random_docs(), min_sup in 1u64..5) {
        let fp = FrequentPhrases::mine(&docs, min_sup, 5);
        for (p, c) in fp.iter() {
            prop_assert!(c >= min_sup, "{p:?} below support");
            if p.len() >= 2 {
                prop_assert!(fp.count(&p[..p.len() - 1]) >= c, "prefix of {p:?}");
                prop_assert!(fp.count(&p[1..]) >= c, "suffix of {p:?}");
            }
        }
    }

    #[test]
    fn counts_match_brute_force(docs in random_docs()) {
        let fp = FrequentPhrases::mine(&docs, 2, 4);
        for (p, c) in fp.iter().take(20) {
            let brute: u64 = docs
                .iter()
                .map(|d| d.windows(p.len()).filter(|w| *w == p.as_slice()).count() as u64)
                .sum();
            prop_assert_eq!(c, brute, "count mismatch for {:?}", p);
        }
    }

    #[test]
    fn segmentation_is_a_partition(docs in random_docs(), alpha in 0.5f64..5.0) {
        let fp = FrequentPhrases::mine(&docs, 2, 4);
        let segs = Segmenter::segment(&docs, &fp, &SegmenterConfig { alpha });
        prop_assert_eq!(segs.len(), docs.len());
        for (doc, seg) in docs.iter().zip(&segs) {
            let flat: Vec<u32> = seg.iter().flatten().copied().collect();
            prop_assert_eq!(&flat, doc, "partition property violated");
            // Every multi-word segment must be a frequent phrase.
            for s in seg {
                if s.len() >= 2 {
                    prop_assert!(fp.count(s) >= 2, "segment {s:?} not frequent");
                }
            }
        }
    }

    #[test]
    fn higher_alpha_never_creates_longer_segments(docs in random_docs()) {
        let fp = FrequentPhrases::mine(&docs, 2, 4);
        let loose = Segmenter::segment(&docs, &fp, &SegmenterConfig { alpha: 1.0 });
        let strict = Segmenter::segment(&docs, &fp, &SegmenterConfig { alpha: 6.0 });
        let count_multi = |segs: &Vec<Vec<Vec<u32>>>| -> usize {
            segs.iter().flatten().filter(|s| s.len() >= 2).map(|s| s.len()).sum()
        };
        prop_assert!(count_multi(&strict) <= count_multi(&loose));
    }

    #[test]
    fn kert_scores_are_finite_and_sorted(docs in random_docs(), k in 1usize..4) {
        let topics: Vec<Vec<u16>> = docs
            .iter()
            .map(|d| d.iter().map(|&w| (w as usize % k) as u16).collect())
            .collect();
        let cfg = KertConfig { min_support: 2, max_len: 3, ..Default::default() };
        let ranked = Kert::run(&docs, &topics, k, &cfg).unwrap();
        prop_assert_eq!(ranked.len(), k);
        for topic in &ranked {
            for w in topic.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
            for p in topic {
                prop_assert!(p.score.is_finite());
                prop_assert!(p.topic_freq >= 2.0);
            }
        }
    }

    #[test]
    fn kert_topical_frequencies_sum_to_total(docs in random_docs()) {
        let k = 2;
        let topics: Vec<Vec<u16>> = docs
            .iter()
            .map(|d| d.iter().map(|&w| (w % 2) as u16).collect())
            .collect();
        let cfg = KertConfig { min_support: 2, max_len: 2, ..Default::default() };
        let patterns = Kert::mine(&docs, &topics, k, &cfg).unwrap();
        for (p, &total) in &patterns.total_freq {
            let sum: u64 = (0..k)
                .map(|t| patterns.topic_freq[t].get(p).copied().unwrap_or(0))
                .sum();
            prop_assert_eq!(total, sum, "f(P) != Σ f_t(P) for {:?}", p);
        }
    }
}
