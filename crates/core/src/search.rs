//! Relevance targeting — the §8.1.2 application.
//!
//! Given a free-text query, locate the most relevant topics in a mined
//! hierarchy and rank documents by a mixture of direct phrase overlap and
//! topical affinity. This is the "retrieving knowledge from data that are
//! otherwise hard to handle due to the lack of structures" use case the
//! introduction motivates.

use crate::pipeline::MinedStructure;
use lesm_corpus::Corpus;

/// A scored search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Document index.
    pub doc: usize,
    /// Relevance score (higher is better).
    pub score: f64,
    /// The best-matching topic for this hit.
    pub topic: usize,
}

/// Ranks the hierarchy's topics by relevance to a token-id query.
///
/// A topic's relevance is the summed topical frequency of query tokens
/// among its ranked phrases, normalized by the topic's total phrase mass.
///
/// Ordering is total and deterministic: descending score, with exact
/// score ties broken by ascending topic id (so truncation to `top_n`
/// never depends on iteration order or float quirks).
pub fn rank_topics(mined: &MinedStructure, query: &[u32], top_n: usize) -> Vec<(usize, f64)> {
    let mut scored: Vec<(usize, f64)> = (0..mined.hierarchy.len())
        .map(|t| {
            // Sum in sorted-key order: HashMap iteration order is
            // process-random and f64 addition is not associative.
            let mut entries: Vec<(&Vec<u32>, f64)> =
                mined.phrase_topic_freq[t].iter().map(|(k, &v)| (k, v)).collect();
            entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
            let total: f64 = entries.iter().map(|&(_, v)| v).sum();
            if total <= 0.0 {
                return (t, 0.0);
            }
            let mut hit = 0.0;
            for (phrase, f) in entries {
                if query.iter().any(|q| phrase.contains(q)) {
                    hit += f;
                }
            }
            (t, hit / total)
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.truncate(top_n);
    scored
}

/// Searches documents: `score = overlap + topical`, where `overlap` is the
/// fraction of query tokens present in the document and `topical` is the
/// document's membership in the best query topic (so on-topic documents
/// rank above off-topic documents with the same literal overlap).
///
/// Like [`rank_topics`], the result order is total and deterministic:
/// descending score with exact ties broken by ascending document id.
pub fn search(
    corpus: &Corpus,
    mined: &MinedStructure,
    query_text: &str,
    top_n: usize,
) -> Vec<SearchHit> {
    let query: Vec<u32> = lesm_corpus::text::tokenize(query_text)
        .filter_map(|t| corpus.vocab.get(&lesm_corpus::text::lowercase(t)))
        .collect();
    if query.is_empty() {
        return Vec::new();
    }
    // Best-matching non-root topic (fall back to root when nothing scores).
    let topics = rank_topics(mined, &query, 3);
    let best_topic = topics
        .iter()
        .find(|&&(t, s)| t != 0 && s > 0.0)
        .map(|&(t, _)| t)
        .unwrap_or(0);
    let mut hits: Vec<SearchHit> = corpus
        .docs
        .iter()
        .enumerate()
        .filter_map(|(d, doc)| {
            let matched = query.iter().filter(|q| doc.tokens.contains(q)).count();
            let overlap = matched as f64 / query.len() as f64;
            let topical = mined.doc_topic[d][best_topic];
            let score = overlap + topical;
            if matched == 0 && topical <= 0.0 {
                None
            } else {
                Some(SearchHit { doc: d, score, topic: best_topic })
            }
        })
        .collect();
    hits.sort_by(|a, b| b.score.total_cmp(&a.score).then_with(|| a.doc.cmp(&b.doc)));
    hits.truncate(top_n);
    hits
}

/// Renders search hits as the canonical one-line-per-hit text output.
///
/// This is the single formatting point shared by `lesm search` and the
/// `lesm-serve` `/search` endpoint, so server responses are byte-identical
/// to offline CLI output.
pub fn render_hits(corpus: &Corpus, mined: &MinedStructure, hits: &[SearchHit]) -> Vec<String> {
    hits.iter()
        .map(|hit| {
            format!(
                "doc {:>5}  score {:.3}  topic {}  {}",
                hit.doc,
                hit.score,
                mined.hierarchy.topics[hit.topic].path,
                corpus.render_doc(hit.doc)
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{LatentStructureMiner, MinerConfig};
    use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
    use lesm_hier::em::{EmConfig, WeightMode};
    use lesm_hier::hierarchy::{CathyConfig, ChildCount};

    fn mined() -> (SyntheticPapers, MinedStructure) {
        let mut cfg = PapersConfig::dblp(400, 61);
        cfg.hierarchy.branching = vec![2];
        cfg.hierarchy.words_per_topic = 12;
        cfg.entity_specs[0].level = 1;
        cfg.entity_specs[0].pool_per_node = 4;
        cfg.entity_specs[1].pool_per_node = 2;
        let papers = SyntheticPapers::generate(&cfg).unwrap();
        let m = LatentStructureMiner::mine(
            &papers.corpus,
            &MinerConfig {
                hierarchy: CathyConfig {
                    children: ChildCount::Fixed(2),
                    max_depth: 1,
                    em: EmConfig {
                        iters: 100,
                        restarts: 3,
                        seed: 3,
                        background: true,
                        weights: WeightMode::Equal,
                        ..EmConfig::default()
                    },
                    min_links: 10,
                    subnet_threshold: 0.5,
                },
                phrase_min_support: 3,
                ..MinerConfig::default()
            },
        )
        .unwrap();
        (papers, m)
    }

    #[test]
    fn query_finds_on_topic_documents() {
        let (papers, m) = mined();
        // Query with a ground-truth leaf word.
        let leaf = papers.truth.hierarchy.leaves[0];
        let word = papers.truth.hierarchy.own_words[leaf][0];
        let query = papers.corpus.vocab.name_or_unk(word).to_string();
        let hits = search(&papers.corpus, &m, &query, 10);
        assert!(!hits.is_empty());
        // Most hits should be documents of that ground-truth leaf.
        let on_topic = hits
            .iter()
            .filter(|h| papers.truth.doc_leaf[h.doc] == leaf)
            .count();
        assert!(
            on_topic * 2 >= hits.len(),
            "only {on_topic}/{} hits on topic",
            hits.len()
        );
        // Results sorted by score.
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn unknown_query_returns_empty() {
        let (papers, m) = mined();
        assert!(search(&papers.corpus, &m, "zzzz-not-a-word", 10).is_empty());
        assert!(search(&papers.corpus, &m, "", 10).is_empty());
    }

    /// A hand-built corpus + structure where scores tie *exactly*: four
    /// identical docs, three topics with identical phrase tables.
    fn tied_structure() -> (lesm_corpus::Corpus, MinedStructure) {
        use lesm_hier::hierarchy::HierTopic;
        use lesm_hier::TopicHierarchy;
        use lesm_net::TypedNetwork;
        use std::collections::HashMap;

        let mut corpus = lesm_corpus::Corpus::new();
        for _ in 0..4 {
            corpus.push_text("alpha");
        }
        let alpha = corpus.vocab.get("alpha").unwrap();
        let topic = |parent, level, path: &str, children: Vec<usize>| HierTopic {
            parent,
            children,
            level,
            path: path.into(),
            phi: vec![vec![1.0]],
            rho: 1.0,
            network: TypedNetwork::new(vec!["term".into()], vec![1]),
        };
        let hierarchy = TopicHierarchy {
            type_names: vec!["term".into()],
            topics: vec![
                topic(None, 0, "o", vec![1, 2]),
                topic(Some(0), 1, "o/1", vec![]),
                topic(Some(0), 1, "o/2", vec![]),
            ],
            fits: vec![None, None, None],
            alphas: vec![None, None, None],
        };
        let table: HashMap<Vec<u32>, f64> = [(vec![alpha], 2.0)].into_iter().collect();
        let mined = MinedStructure {
            hierarchy,
            topic_phrases: vec![vec![]; 3],
            topic_entities: vec![vec![]; 3],
            phrase_topic_freq: vec![table.clone(), table.clone(), table],
            segments: vec![vec![]; 4],
            doc_topic: vec![vec![1.0, 0.5, 0.5]; 4],
        };
        (corpus, mined)
    }

    #[test]
    fn rank_topics_breaks_exact_score_ties_by_ascending_topic_id() {
        let (corpus, mined) = tied_structure();
        let alpha = corpus.vocab.get("alpha").unwrap();
        let ranked = rank_topics(&mined, &[alpha], 10);
        // All three topics score exactly 1.0; the pinned order is by id.
        assert_eq!(ranked.iter().map(|&(t, _)| t).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert!(ranked.windows(2).all(|w| w[0].1 == w[1].1), "scores should tie exactly");
        // Truncation under a tie is deterministic too: lowest ids survive.
        assert_eq!(
            rank_topics(&mined, &[alpha], 2).iter().map(|&(t, _)| t).collect::<Vec<_>>(),
            vec![0, 1]
        );
    }

    #[test]
    fn search_breaks_exact_score_ties_by_ascending_doc_id() {
        let (corpus, mined) = tied_structure();
        let hits = search(&corpus, &mined, "alpha", 10);
        assert_eq!(hits.iter().map(|h| h.doc).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert!(hits.windows(2).all(|w| w[0].score == w[1].score), "scores should tie exactly");
        // Truncation keeps the lowest doc ids.
        assert_eq!(
            search(&corpus, &mined, "alpha", 2).iter().map(|h| h.doc).collect::<Vec<_>>(),
            vec![0, 1]
        );
        // A strictly better doc still outranks the tied block.
        let (corpus, mut mined) = tied_structure();
        mined.doc_topic[2][1] = 0.9;
        let hits = search(&corpus, &mined, "alpha", 10);
        assert_eq!(hits.iter().map(|h| h.doc).collect::<Vec<_>>(), vec![2, 0, 1, 3]);
    }

    #[test]
    fn render_hits_formats_one_line_per_hit() {
        let (corpus, mined) = tied_structure();
        let hits = search(&corpus, &mined, "alpha", 2);
        let lines = render_hits(&corpus, &mined, &hits);
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "doc     0  score 1.500  topic o/1  alpha");
    }

    #[test]
    fn topic_ranking_prefers_owning_topic() {
        let (papers, m) = mined();
        let leaf = papers.truth.hierarchy.leaves[0];
        let word = papers.truth.hierarchy.own_words[leaf][0];
        let ranked = rank_topics(&m, &[word], 5);
        assert!(!ranked.is_empty());
        // The top-ranked non-root topic should carry the word in its
        // phrase table.
        let (t, s) = ranked[0];
        assert!(s > 0.0);
        assert!(m.phrase_topic_freq[t].keys().any(|p| p.contains(&word)));
    }
}
