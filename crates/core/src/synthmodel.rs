//! Deterministic mined-structure construction from synthetic ground truth.
//!
//! [`model_from_truth`] turns a [`SyntheticPapers`] sample into a
//! [`MinedStructure`] *directly from the generator's latent variables* —
//! no EM, no phrase mining, no sampling. The output has the same shape as
//! a [`crate::LatentStructureMiner`] result (hierarchy, ranked phrases,
//! ranked entities, topical frequency tables, segmentations, document
//! memberships), so it can be snapshotted, sharded, and served like any
//! mined model.
//!
//! The point is scale: serving and replay benchmarks need models over
//! tens of thousands of documents, and running the full mining pipeline
//! at that size costs minutes of EM per measurement. Reading the latent
//! structure back out of the generator costs one linear pass over the
//! corpus and is exactly reproducible for a given seed, which keeps
//! benchmark artifacts byte-stable across runs and machines.

use crate::pipeline::MinedStructure;
use lesm_corpus::synth::SyntheticPapers;
use lesm_hier::hierarchy::HierTopic;
use lesm_hier::TopicHierarchy;
use lesm_net::TypedNetwork;
use lesm_phrases::TopicalPhrase;
use std::collections::HashMap;

/// How many entities per type each topic keeps in its ranked list.
const TOP_ENTITIES: usize = 20;

/// Builds a [`MinedStructure`] from the ground truth of a synthetic
/// corpus. Fully deterministic: the output is a pure function of the
/// input sample (itself a pure function of its config and seed).
///
/// Construction, per ground-truth node `t`:
///
/// * **hierarchy** — mirrors the truth tree node for node (same parents,
///   children, levels, `o/…` paths); `rho` is the node's share of its
///   parent subtree's documents.
/// * **segments** — each document is greedily segmented against the
///   phrase inventory of its root-to-leaf path (longest match first,
///   ties by node depth), falling back to unigrams.
/// * **phrase tables** — every segment of every document counts toward
///   `f_t(P)` for *all* nodes on the document's path, so internal nodes
///   aggregate their subtrees the way CATHY's tables do.
/// * **topic phrases** — the node's table entries ranked by frequency
///   (ties by token sequence), multi-word phrases before unigrams.
/// * **entities** — empirical entity→leaf counts aggregated up the tree
///   and normalized per node.
/// * **doc_topic** — each document's segment mass per path node over its
///   total segments, with the root pinned at 1.0.
pub fn model_from_truth(papers: &SyntheticPapers) -> MinedStructure {
    let corpus = &papers.corpus;
    let truth = &papers.truth;
    let gt = &truth.hierarchy;
    let n_topics = gt.len();
    let n_types = corpus.entities.num_types();

    // --- Hierarchy skeleton ------------------------------------------------
    // Document counts per subtree drive rho.
    let mut subtree_docs = vec![0usize; n_topics];
    for &leaf in &truth.doc_leaf {
        for &node in &gt.path_nodes(leaf) {
            subtree_docs[node] += 1;
        }
    }
    let type_names: Vec<String> = (0..n_types)
        .map(|t| corpus.entities.type_name(t).unwrap_or("entity").to_string())
        .collect();
    let topics: Vec<HierTopic> = (0..n_topics)
        .map(|t| {
            let node = &gt.nodes[t];
            let rho = match node.parent {
                Some(p) if subtree_docs[p] > 0 => subtree_docs[t] as f64 / subtree_docs[p] as f64,
                _ => 1.0,
            };
            HierTopic {
                parent: node.parent,
                children: node.children.clone(),
                level: node.level,
                path: node.path.clone(),
                phi: Vec::new(),
                rho,
                network: TypedNetwork::new(
                    type_names.clone(),
                    (0..n_types).map(|x| corpus.entities.count(x)).collect(),
                ),
            }
        })
        .collect();
    let hierarchy = TopicHierarchy {
        type_names,
        topics,
        fits: vec![None; n_topics],
        alphas: vec![None; n_topics],
    };

    // --- Segmentation + phrase tables --------------------------------------
    // The phrase inventory per path: (tokens, owning node), longest first so
    // greedy matching prefers the most specific contiguous phrase.
    let mut phrase_topic_freq: Vec<HashMap<Vec<u32>, f64>> = vec![HashMap::new(); n_topics];
    let mut segments: Vec<Vec<Vec<u32>>> = Vec::with_capacity(corpus.num_docs());
    let mut doc_topic: Vec<Vec<f64>> = Vec::with_capacity(corpus.num_docs());
    // Word → owning node, for attributing unigram segments.
    let mut word_node: HashMap<u32, usize> = HashMap::new();
    for (t, words) in gt.own_words.iter().enumerate() {
        for &w in words {
            word_node.insert(w, t);
        }
    }

    for (d, doc) in corpus.docs.iter().enumerate() {
        let leaf = truth.doc_leaf[d];
        let path = gt.path_nodes(leaf);
        let mut inventory: Vec<(&[u32], usize)> = path
            .iter()
            .flat_map(|&node| gt.phrases[node].iter().map(move |p| (p.as_slice(), node)))
            .collect();
        inventory.sort_by(|a, b| b.0.len().cmp(&a.0.len()).then_with(|| a.0.cmp(b.0)));

        let mut doc_segments: Vec<Vec<u32>> = Vec::new();
        let mut mass = vec![0.0f64; n_topics];
        let mut i = 0;
        while i < doc.tokens.len() {
            let rest = &doc.tokens[i..];
            let hit = inventory.iter().find(|(p, _)| rest.starts_with(p));
            let (segment, node): (Vec<u32>, usize) = match hit {
                Some(&(p, node)) => (p.to_vec(), node),
                None => {
                    let w = doc.tokens[i];
                    // Background / leaked words attribute to the doc's leaf.
                    (vec![w], *word_node.get(&w).filter(|n| path.contains(n)).unwrap_or(&leaf))
                }
            };
            i += segment.len();
            // Every ancestor of the owning node absorbs the segment, so
            // internal tables aggregate their subtrees.
            for &t in &path {
                *phrase_topic_freq[t].entry(segment.clone()).or_insert(0.0) += 1.0;
                mass[t] += 1.0;
                if t == node {
                    break;
                }
            }
            doc_segments.push(segment);
        }
        let total = doc_segments.len().max(1) as f64;
        let mut weights: Vec<f64> = mass.iter().map(|&m| m / total).collect();
        weights[0] = 1.0;
        doc_topic.push(weights);
        segments.push(doc_segments);
    }

    // --- Ranked phrases per topic ------------------------------------------
    let topic_phrases: Vec<Vec<TopicalPhrase>> = phrase_topic_freq
        .iter()
        .map(|table| {
            let mut ranked: Vec<TopicalPhrase> = table
                .iter()
                .map(|(tokens, &f)| TopicalPhrase {
                    tokens: tokens.clone(),
                    // Multi-word phrases outrank unigrams of equal mass.
                    score: f * tokens.len() as f64,
                    topic_freq: f,
                })
                .collect();
            ranked.sort_by(|a, b| {
                b.score.total_cmp(&a.score).then_with(|| a.tokens.cmp(&b.tokens))
            });
            ranked
        })
        .collect();

    // --- Ranked entities per topic ------------------------------------------
    let mut topic_entities: Vec<Vec<Vec<(u32, f64)>>> =
        vec![vec![Vec::new(); n_types]; n_topics];
    for (etype, per_entity) in truth.entity_leaf_counts.iter().enumerate() {
        let mut node_counts: Vec<HashMap<u32, u32>> = vec![HashMap::new(); n_topics];
        for (id, leaf_counts) in per_entity.iter().enumerate() {
            for &(leaf, c) in leaf_counts {
                for &node in &gt.path_nodes(leaf) {
                    *node_counts[node].entry(id as u32).or_insert(0) += c;
                }
            }
        }
        for (t, counts) in node_counts.into_iter().enumerate() {
            let total: u32 = counts.values().sum();
            if total == 0 {
                continue;
            }
            let mut ranked: Vec<(u32, f64)> =
                counts.into_iter().map(|(id, c)| (id, c as f64 / total as f64)).collect();
            ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            ranked.truncate(TOP_ENTITIES);
            topic_entities[t][etype] = ranked;
        }
    }

    MinedStructure {
        hierarchy,
        topic_phrases,
        topic_entities,
        phrase_topic_freq,
        segments,
        doc_topic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::synth::{PapersConfig, SyntheticPapers};

    fn sample(docs: usize, seed: u64) -> SyntheticPapers {
        let mut cfg = PapersConfig::dblp(docs, seed);
        cfg.hierarchy.branching = vec![3, 2];
        SyntheticPapers::generate(&cfg).expect("synth")
    }

    #[test]
    fn shapes_align_with_the_truth_tree() {
        let papers = sample(400, 17);
        let m = model_from_truth(&papers);
        let n = papers.truth.hierarchy.len();
        assert_eq!(m.hierarchy.len(), n);
        assert_eq!(m.topic_phrases.len(), n);
        assert_eq!(m.topic_entities.len(), n);
        assert_eq!(m.phrase_topic_freq.len(), n);
        assert_eq!(m.segments.len(), 400);
        assert_eq!(m.doc_topic.len(), 400);
        for (t, topic) in m.hierarchy.topics.iter().enumerate() {
            assert_eq!(topic.path, papers.truth.hierarchy.nodes[t].path);
            assert_eq!(topic.children, papers.truth.hierarchy.nodes[t].children);
            assert!(topic.rho > 0.0 && topic.rho <= 1.0, "rho out of range at {t}");
        }
        for w in &m.doc_topic {
            assert_eq!(w[0], 1.0, "root membership must be pinned at 1.0");
        }
    }

    #[test]
    fn segments_cover_every_token_in_order() {
        let papers = sample(200, 3);
        let m = model_from_truth(&papers);
        for (d, doc) in papers.corpus.docs.iter().enumerate() {
            let flat: Vec<u32> = m.segments[d].iter().flatten().copied().collect();
            assert_eq!(flat, doc.tokens, "doc {d} segmentation loses tokens");
        }
    }

    #[test]
    fn is_deterministic() {
        let a = model_from_truth(&sample(300, 29));
        let b = model_from_truth(&sample(300, 29));
        assert_eq!(a.doc_topic, b.doc_topic);
        assert_eq!(a.segments, b.segments);
        for (x, y) in a.topic_phrases.iter().zip(&b.topic_phrases) {
            let xs: Vec<_> = x.iter().map(|p| (&p.tokens, p.score.to_bits())).collect();
            let ys: Vec<_> = y.iter().map(|p| (&p.tokens, p.score.to_bits())).collect();
            assert_eq!(xs, ys);
        }
        assert_eq!(a.topic_entities, b.topic_entities);
    }

    #[test]
    fn search_over_the_synthetic_model_finds_on_topic_docs() {
        let papers = sample(400, 7);
        let m = model_from_truth(&papers);
        let leaf = papers.truth.hierarchy.leaves[0];
        let word = papers.truth.hierarchy.own_words[leaf][0];
        let query = papers.corpus.vocab.name_or_unk(word).to_string();
        let hits = crate::search::search(&papers.corpus, &m, &query, 10);
        assert!(!hits.is_empty(), "ground-truth leaf word must match");
        let on_topic =
            hits.iter().filter(|h| papers.truth.doc_leaf[h.doc] == leaf).count();
        assert!(on_topic * 2 >= hits.len(), "only {on_topic}/{} hits on topic", hits.len());
    }
}
