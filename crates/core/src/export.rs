//! Export mined structures to JSON (hand-rolled writer — the workspace
//! deliberately avoids a JSON dependency).
//!
//! The output is the artifact a downstream application would consume: the
//! phrase-represented, entity-enriched topic tree with per-topic scores,
//! in the spirit of the Figure 3.4 visualization.

use crate::pipeline::MinedStructure;
use lesm_corpus::{Corpus, EntityRef};

/// Serializes a mined structure to a pretty-printed JSON string.
pub fn hierarchy_to_json(corpus: &Corpus, mined: &MinedStructure, top_n: usize) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"topics\": [\n");
    let n = mined.hierarchy.len();
    for t in 0..n {
        let topic = &mined.hierarchy.topics[t];
        out.push_str("    {\n");
        push_kv(&mut out, 6, "path", &json_string(&topic.path));
        push_kv(&mut out, 6, "parent", &match topic.parent {
            Some(p) => p.to_string(),
            None => "null".into(),
        });
        push_kv(&mut out, 6, "level", &topic.level.to_string());
        push_kv(&mut out, 6, "rho", &json_number(topic.rho));
        // Phrases.
        out.push_str("      \"phrases\": [");
        let phrases = &mined.topic_phrases[t];
        for (i, p) in phrases.iter().take(top_n).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"text\": {}, \"score\": {}, \"freq\": {}}}",
                json_string(&corpus.vocab.render(&p.tokens)),
                json_number(p.score),
                json_number(p.topic_freq)
            ));
        }
        out.push_str("],\n");
        // Entities per type.
        out.push_str("      \"entities\": {");
        for (etype, list) in mined.topic_entities[t].iter().enumerate() {
            if etype > 0 {
                out.push_str(", ");
            }
            let type_name = corpus.entities.type_name(etype).unwrap_or("entity");
            out.push_str(&format!("{}: [", json_string(type_name)));
            for (i, &(id, score)) in list.iter().take(top_n).enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let name = corpus.entities.name(EntityRef::new(etype, id));
                out.push_str(&format!(
                    "{{\"name\": {}, \"score\": {}}}",
                    json_string(name),
                    json_number(score)
                ));
            }
            out.push(']');
        }
        out.push_str("},\n");
        out.push_str(&format!(
            "      \"children\": [{}]\n",
            topic
                .children
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(if t + 1 < n { "    },\n" } else { "    }\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn push_kv(out: &mut String, indent: usize, key: &str, value: &str) {
    out.push_str(&" ".repeat(indent));
    out.push_str(&format!("\"{key}\": {value},\n"));
}

/// Escapes a string per RFC 8259.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a valid JSON value: finite values as fixed-point
/// numbers, non-finite values (`NaN`, `±inf` — which have no JSON
/// representation) as `null`, and negative zero normalized to `0.000000`
/// (RFC 8259 allows `-0`, but emitting one canonical zero keeps exports
/// byte-stable across platforms and sign-of-zero arithmetic quirks).
pub fn json_number(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    if x == 0.0 {
        // Covers both +0.0 and -0.0.
        return format!("{:.6}", 0.0);
    }
    format!("{x:.6}")
}

/// A minimal structural well-formedness check used by tests and callers
/// that want a sanity guarantee without a JSON parser dependency: verifies
/// bracket balance outside strings and escape validity inside them.
pub fn is_balanced_json(s: &str) -> bool {
    let mut stack = Vec::new();
    let mut in_string = false;
    let mut escaped = false;
    for c in s.chars() {
        if in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_string = false;
            }
            continue;
        }
        match c {
            '"' => in_string = true,
            '{' | '[' => stack.push(c),
            '}' if stack.pop() != Some('{') => return false,
            ']' if stack.pop() != Some('[') => return false,
            _ => {}
        }
    }
    stack.is_empty() && !in_string
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_is_rfc8259_compliant() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("line\nbreak"), "\"line\\nbreak\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn numbers_are_finite_or_null() {
        assert_eq!(json_number(1.5), "1.500000");
        assert_eq!(json_number(f64::NAN), "null");
        assert_eq!(json_number(f64::INFINITY), "null");
        assert_eq!(json_number(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn negative_zero_is_normalized() {
        assert_eq!(json_number(-0.0), "0.000000");
        assert_eq!(json_number(0.0), "0.000000");
        // A tiny negative value rounds to -0.000000 in fixed-point; that is
        // still valid JSON (leading minus, digits), so it passes through.
        assert_eq!(json_number(-1e-12), "-0.000000");
    }

    #[test]
    fn balance_checker_works() {
        assert!(is_balanced_json("{\"a\": [1, 2, {\"b\": \"}\"}]}"));
        assert!(!is_balanced_json("{\"a\": [}"));
        assert!(!is_balanced_json("{\"a\": \"unterminated}"));
    }

    #[test]
    fn export_produces_balanced_json_with_expected_keys() {
        use crate::pipeline::{LatentStructureMiner, MinerConfig};
        use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
        use lesm_hier::em::{EmConfig, WeightMode};
        use lesm_hier::hierarchy::{CathyConfig, ChildCount};

        let mut cfg = PapersConfig::dblp(300, 7);
        cfg.hierarchy.branching = vec![2];
        cfg.hierarchy.words_per_topic = 10;
        cfg.entity_specs[0].pool_per_node = 4;
        cfg.entity_specs[0].level = 1; // flat tree: authors attach at leaves
        cfg.entity_specs[1].pool_per_node = 2;
        let papers = SyntheticPapers::generate(&cfg).unwrap();
        let mined = LatentStructureMiner::mine(
            &papers.corpus,
            &MinerConfig {
                hierarchy: CathyConfig {
                    children: ChildCount::Fixed(2),
                    max_depth: 1,
                    em: EmConfig {
                        iters: 60,
                        restarts: 2,
                        seed: 1,
                        background: true,
                        weights: WeightMode::Equal,
                        ..EmConfig::default()
                    },
                    min_links: 10,
                    subnet_threshold: 0.5,
                },
                phrase_min_support: 3,
                ..MinerConfig::default()
            },
        )
        .unwrap();
        let json = hierarchy_to_json(&papers.corpus, &mined, 5);
        assert!(is_balanced_json(&json), "unbalanced JSON:\n{json}");
        assert!(json.contains("\"topics\""));
        assert!(json.contains("\"phrases\""));
        assert!(json.contains("\"entities\""));
        assert!(json.contains("\"author\""));
        assert!(json.contains("\"venue\""));
        assert!(json.contains("\"path\": \"o/1\""));
    }
}
