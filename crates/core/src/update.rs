//! Incremental mining: extend a previously mined structure with appended
//! documents without re-running the full pipeline.
//!
//! The update path mirrors [`LatentStructureMiner::mine`] stage for stage
//! but replaces the expensive parts with deltas:
//!
//! 1. only the appended documents are collapsed into link weights
//!    (`collapsed_network_from`), over the full append-only node space;
//! 2. the hierarchy is warm-started from the base fit and refined under a
//!    small convergence budget ([`UpdateBudget`]) instead of multi-restart
//!    EM from scratch ([`TopicHierarchy::update`]);
//! 3. the base phrase inventory is recreated deterministically from the
//!    base documents (token ids are append-only, so this is bit-stable)
//!    and only the appended documents are segmented — base segmentations
//!    are reused verbatim;
//! 4. the cheap artifact-derivation stages (topical frequencies, phrase
//!    and entity ranking, document attribution) run through the same code
//!    path as `mine`, so shared inputs produce byte-identical artifacts.
//!
//! Determinism contract: the same base structure plus the same update
//! sequence yields bit-identical results, independent of worker threads.
//! `update(base, delta)` is *not* required to equal `mine(base ∪ delta)` —
//! the warm-started fit is a continuation, not a restart, and phrases
//! frequent only within the delta stay out of the inventory until the next
//! full mine (compaction).

use crate::pipeline::{derive_artifacts, MinedStructure, MinerConfig};
use crate::{CoreError, LatentStructureMiner};
use lesm_corpus::Corpus;
use lesm_hier::{TopicHierarchy, UpdateBudget};
use lesm_net::collapsed_network_from;
use lesm_phrases::topmine::{FrequentPhrases, Segmenter, SegmenterConfig};

impl LatentStructureMiner {
    /// Incrementally extends `base` — mined from the first `base_docs`
    /// documents of `corpus` — to cover the documents appended after them.
    ///
    /// `corpus` must be the base corpus grown append-only (e.g. via
    /// `lesm_corpus::append_tsv`): every base document, token id, and
    /// entity id unchanged, new material only at the end. `config` should
    /// be the configuration the base was mined with; `budget` bounds the
    /// warm-start refinement.
    pub fn update(
        corpus: &Corpus,
        base: &MinedStructure,
        base_docs: usize,
        config: &MinerConfig,
        budget: &UpdateBudget,
    ) -> Result<MinedStructure, CoreError> {
        if base_docs > corpus.num_docs() {
            return Err(CoreError::Update(format!(
                "base covers {base_docs} documents but the corpus has only {}",
                corpus.num_docs()
            )));
        }
        if base.segments.len() != base_docs {
            return Err(CoreError::Update(format!(
                "base structure segments {} documents, expected {base_docs}",
                base.segments.len()
            )));
        }
        if base.doc_topic.len() != base_docs {
            return Err(CoreError::Update(format!(
                "base structure attributes {} documents, expected {base_docs}",
                base.doc_topic.len()
            )));
        }

        // 1-2. Delta collapse over the full (append-only) node space, then
        //      a warm-started hierarchy refinement under the budget.
        let delta_net = collapsed_network_from(corpus, base_docs);
        let mut hier_cfg = config.hierarchy.clone();
        hier_cfg.em.threads = config.threads;
        hier_cfg.em.tol = config.em_tol;
        let hierarchy = TopicHierarchy::update(&base.hierarchy, &delta_net, &hier_cfg, budget)?;
        let term_type = corpus.entities.num_types();

        // 3. Recreate the base phrase inventory and segment only the
        //    appended documents.
        let base_tokens: Vec<Vec<u32>> =
            corpus.docs[..base_docs].iter().map(|d| d.tokens.clone()).collect();
        let phrases = FrequentPhrases::mine_threads(
            &base_tokens,
            config.phrase_min_support,
            config.phrase_max_len,
            config.threads,
        );
        let delta_tokens: Vec<Vec<u32>> =
            corpus.docs[base_docs..].iter().map(|d| d.tokens.clone()).collect();
        let delta_segments = Segmenter::segment_threads(
            &delta_tokens,
            &phrases,
            &SegmenterConfig { alpha: config.seg_alpha },
            config.threads,
        );
        let mut segments = base.segments.clone();
        segments.extend(delta_segments);

        // 4-7. Shared artifact derivation (identical code path to `mine`).
        let derived = derive_artifacts(&hierarchy, &segments, term_type, config);
        Ok(MinedStructure {
            hierarchy,
            topic_phrases: derived.topic_phrases,
            topic_entities: derived.topic_entities,
            phrase_topic_freq: derived.ptf,
            segments,
            doc_topic: derived.doc_topic,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::tests::{miner_config, small_corpus};

    /// Splits the synthetic corpus into a base prefix and a ~1% tail. The
    /// truncated clone keeps the full vocabulary and entity catalog, which
    /// matches the append-only contract (ids stable, ranges extend).
    fn split_corpus(tail: usize) -> (Corpus, Corpus, usize) {
        let s = small_corpus();
        let full = s.corpus;
        let base_docs = full.num_docs() - tail;
        let mut base = full.clone();
        base.docs.truncate(base_docs);
        (base, full, base_docs)
    }

    #[test]
    fn update_extends_the_structure_over_appended_docs() {
        let (base_corpus, full, base_docs) = split_corpus(4);
        let cfg = miner_config();
        let base = LatentStructureMiner::mine(&base_corpus, &cfg).unwrap();
        let budget = UpdateBudget::default();
        let up = LatentStructureMiner::update(&full, &base, base_docs, &cfg, &budget).unwrap();

        // Same tree shape as the base (warm start pins the topology)…
        assert_eq!(up.hierarchy.len(), base.hierarchy.len());
        for (a, b) in up.hierarchy.topics.iter().zip(&base.hierarchy.topics) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.children.len(), b.children.len());
        }
        // …but artifacts now cover every document.
        assert_eq!(up.segments.len(), full.num_docs());
        assert_eq!(up.doc_topic.len(), full.num_docs());
        assert_eq!(&up.segments[..base_docs], &base.segments[..]);
        for d in base_docs..full.num_docs() {
            assert_eq!(up.doc_topic[d][0], 1.0, "appended doc {d} unattributed");
        }
    }

    #[test]
    fn update_is_bit_deterministic_across_runs_and_threads() {
        let (base_corpus, full, base_docs) = split_corpus(4);
        let cfg = miner_config();
        let base = LatentStructureMiner::mine(&base_corpus, &cfg).unwrap();
        let budget = UpdateBudget::default();
        let a = LatentStructureMiner::update(&full, &base, base_docs, &cfg, &budget).unwrap();
        let b = LatentStructureMiner::update(&full, &base, base_docs, &cfg, &budget).unwrap();
        let mut cfg4 = cfg.clone();
        cfg4.threads = 4;
        let c = LatentStructureMiner::update(&full, &base, base_docs, &cfg4, &budget).unwrap();
        for other in [&b, &c] {
            assert_eq!(a.doc_topic, other.doc_topic);
            assert_eq!(a.topic_phrases, other.topic_phrases);
            assert_eq!(a.segments, other.segments);
            assert_eq!(a.topic_entities, other.topic_entities);
            for (fa, fo) in a.hierarchy.fits.iter().zip(&other.hierarchy.fits) {
                match (fa, fo) {
                    (Some(fa), Some(fo)) => {
                        assert_eq!(fa.phi, fo.phi);
                        assert_eq!(fa.rho, fo.rho);
                    }
                    (None, None) => {}
                    _ => panic!("fit presence differs between runs"),
                }
            }
        }
    }

    #[test]
    fn update_rejects_inconsistent_shapes() {
        let (base_corpus, full, base_docs) = split_corpus(4);
        let cfg = miner_config();
        let base = LatentStructureMiner::mine(&base_corpus, &cfg).unwrap();
        let budget = UpdateBudget::default();
        // Claiming more base docs than the corpus holds.
        let r = LatentStructureMiner::update(&full, &base, full.num_docs() + 1, &cfg, &budget);
        assert!(matches!(r, Err(CoreError::Update(_))));
        // Claiming a base prefix that disagrees with the base structure.
        let r = LatentStructureMiner::update(&full, &base, base_docs - 1, &cfg, &budget);
        assert!(matches!(r, Err(CoreError::Update(_))));
    }
}
