//! The integrated latent entity structure mining framework (§1.4).
//!
//! [`LatentStructureMiner`] chains the dissertation's modules end to end:
//!
//! 1. collapse a text-attached heterogeneous network ([`lesm_net`]),
//! 2. construct a multi-typed topical hierarchy (CATHYHIN, Chapter 3),
//! 3. mine and attach ranked topical phrases (ToPMine machinery, Chapter 4)
//!    so every topic is phrase-represented,
//! 4. attach ranked entity lists per topic (entity-embedded topics), and
//! 5. answer Type-A / Type-B role queries (Chapter 5).
//!
//! Hierarchical relation mining (Chapter 6) and the STROD backend
//! (Chapter 7) are exposed through the re-exported crates; see
//! `examples/` for end-to-end usage.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod access;
pub mod export;
pub mod pipeline;
pub mod search;
pub mod synthmodel;
pub mod update;

pub use export::hierarchy_to_json;
pub use lesm_hier::UpdateBudget;
pub use search::{search, SearchHit};
pub use pipeline::{MinedStructure, MinerConfig, LatentStructureMiner};
pub use synthmodel::model_from_truth;

/// Errors surfaced by the integrated pipeline.
#[derive(Debug)]
pub enum CoreError {
    /// Hierarchy construction failed.
    Hier(lesm_hier::HierError),
    /// Phrase mining failed.
    Phrase(lesm_phrases::PhraseError),
    /// An incremental update was inconsistent with its base structure.
    Update(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Hier(e) => write!(f, "hierarchy construction: {e}"),
            CoreError::Phrase(e) => write!(f, "phrase mining: {e}"),
            CoreError::Update(m) => write!(f, "incremental update: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<lesm_hier::HierError> for CoreError {
    fn from(e: lesm_hier::HierError) -> Self {
        CoreError::Hier(e)
    }
}

impl From<lesm_phrases::PhraseError> for CoreError {
    fn from(e: lesm_phrases::PhraseError) -> Self {
        CoreError::Phrase(e)
    }
}
