//! The end-to-end mining pipeline.

use crate::CoreError;
use lesm_corpus::{Corpus, EntityRef};
use lesm_hier::{CathyConfig, TopicHierarchy};
use lesm_net::collapsed_network;
use lesm_phrases::topmine::{FrequentPhrases, Segmenter, SegmenterConfig};
use lesm_phrases::TopicalPhrase;
use std::collections::HashMap;

/// Configuration for [`LatentStructureMiner::mine`].
#[derive(Debug, Clone)]
pub struct MinerConfig {
    /// Hierarchy construction settings (Chapter 3).
    pub hierarchy: CathyConfig,
    /// Minimum support for frequent phrase mining (Chapter 4).
    pub phrase_min_support: u64,
    /// Maximum mined phrase length.
    pub phrase_max_len: usize,
    /// Segmentation significance threshold α.
    pub seg_alpha: f64,
    /// Ranked phrases kept per topic.
    pub phrases_per_topic: usize,
    /// Ranked entities kept per topic and type.
    pub entities_per_topic: usize,
    /// Minimum topical frequency for a phrase to stay attached to a topic.
    pub min_topic_freq: f64,
    /// Worker threads for hierarchy EM, phrase mining, and segmentation
    /// (`0` = all available cores). Overrides `hierarchy.em.threads`. Any
    /// value produces identical results.
    pub threads: usize,
    /// Relative-improvement early-exit tolerance for hierarchy EM
    /// (`0` = run every configured iteration). Overrides
    /// `hierarchy.em.tol`. See `EmConfig::tol`.
    pub em_tol: f64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            hierarchy: CathyConfig::default(),
            phrase_min_support: 5,
            phrase_max_len: 4,
            seg_alpha: 2.0,
            phrases_per_topic: 20,
            entities_per_topic: 20,
            min_topic_freq: 1.0,
            threads: 0,
            em_tol: 0.0,
        }
    }
}

/// The full mined structure: a phrase-represented, entity-enriched topical
/// hierarchy plus per-document topic attributions.
#[derive(Debug)]
pub struct MinedStructure {
    /// The multi-typed topical hierarchy.
    pub hierarchy: TopicHierarchy,
    /// Ranked phrases per topic (aligned with `hierarchy.topics`).
    pub topic_phrases: Vec<Vec<TopicalPhrase>>,
    /// Ranked entities per topic, per entity type:
    /// `topic_entities[t][etype]` is a `(entity id, score)` list.
    pub topic_entities: Vec<Vec<Vec<(u32, f64)>>>,
    /// Topical frequency `f_t(P)` tables per topic.
    pub phrase_topic_freq: Vec<HashMap<Vec<u32>, f64>>,
    /// Bag-of-phrases segmentation of every document.
    pub segments: Vec<Vec<Vec<u32>>>,
    /// Per-document topic weights (aligned with `hierarchy.topics`;
    /// `doc_topic[d][t]`, with the root fixed at 1.0).
    pub doc_topic: Vec<Vec<f64>>,
}

impl MinedStructure {
    /// Renders topic `t` as "phrases / entities…" (the Figure 3.4 artifact).
    pub fn render_topic(&self, corpus: &Corpus, t: usize, n: usize) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = write!(s, "[{}] ", self.hierarchy.topics[t].path);
        let phrases: Vec<String> = self.topic_phrases[t]
            .iter()
            .take(n)
            .map(|p| corpus.vocab.render(&p.tokens))
            .collect();
        let _ = write!(s, "{{{}}}", phrases.join("; "));
        for (etype, list) in self.topic_entities[t].iter().enumerate() {
            let names: Vec<&str> =
                list.iter().take(n).map(|&(id, _)| corpus.entities.name(EntityRef::new(etype, id))).collect();
            let _ = write!(s, " / {{{}}}", names.join("; "));
        }
        s
    }

    /// The leaf topic with the largest weight for document `d`.
    pub fn doc_leaf(&self, d: usize) -> usize {
        self.hierarchy
            .leaves()
            .into_iter()
            .max_by(|&a, &b| self.doc_topic[d][a].total_cmp(&self.doc_topic[d][b]))
            .unwrap_or(0)
    }
}

/// Total topical frequency mass of a phrase table, summed in sorted-key
/// order. `HashMap` iteration order is process-random and f64 addition is
/// not associative, so a plain `values().sum()` here would make ranking
/// scores (and near-tie orderings) vary from run to run.
pub(crate) fn phrase_mass(table: &HashMap<Vec<u32>, f64>) -> f64 {
    let mut entries: Vec<(&Vec<u32>, f64)> = table.iter().map(|(k, &v)| (k, v)).collect();
    entries.sort_unstable_by(|a, b| a.0.cmp(b.0));
    entries.into_iter().map(|(_, v)| v).sum()
}

/// The integrated miner.
#[derive(Debug, Default)]
pub struct LatentStructureMiner;

impl LatentStructureMiner {
    /// Runs the full pipeline on a corpus.
    pub fn mine(corpus: &Corpus, config: &MinerConfig) -> Result<MinedStructure, CoreError> {
        // 1-2. Collapsed network → hierarchy.
        let net = collapsed_network(corpus);
        let mut hier_cfg = config.hierarchy.clone();
        hier_cfg.em.threads = config.threads;
        hier_cfg.em.tol = config.em_tol;
        let hierarchy = TopicHierarchy::construct(net, &hier_cfg)?;
        let term_type = corpus.entities.num_types();

        // 3. Frequent phrases + segmentation (shared across topics).
        let docs: Vec<Vec<u32>> = corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        let phrases = FrequentPhrases::mine_threads(
            &docs,
            config.phrase_min_support,
            config.phrase_max_len,
            config.threads,
        );
        let segments = Segmenter::segment_threads(
            &docs,
            &phrases,
            &SegmenterConfig { alpha: config.seg_alpha },
            config.threads,
        );

        let derived = derive_artifacts(&hierarchy, &segments, term_type, config);
        Ok(MinedStructure {
            hierarchy,
            topic_phrases: derived.topic_phrases,
            topic_entities: derived.topic_entities,
            phrase_topic_freq: derived.ptf,
            segments,
            doc_topic: derived.doc_topic,
        })
    }
}

/// The per-topic artifacts derived from a hierarchy plus a segmented
/// corpus (pipeline steps 4-7). Shared between [`LatentStructureMiner::mine`]
/// and the incremental [`LatentStructureMiner::update`] path so both produce
/// byte-identical artifacts for the same `(hierarchy, segments)` inputs.
pub(crate) struct DerivedArtifacts {
    pub ptf: Vec<HashMap<Vec<u32>, f64>>,
    pub topic_phrases: Vec<Vec<TopicalPhrase>>,
    pub topic_entities: Vec<Vec<Vec<(u32, f64)>>>,
    pub doc_topic: Vec<Vec<f64>>,
}

/// Derives topical frequencies, ranked phrases, ranked entities, and
/// per-document topic attributions from a constructed hierarchy and the
/// bag-of-phrases segmentation of every document.
pub(crate) fn derive_artifacts(
    hierarchy: &TopicHierarchy,
    segments: &[Vec<Vec<u32>>],
    term_type: usize,
    config: &MinerConfig,
) -> DerivedArtifacts {
    {
        // 4. Topical frequency estimation, top-down (Definition 3 / eq. 4.3):
        //    the root owns the raw corpus counts; each expanded node splits
        //    its phrases among children by the children's term-type phi.
        let n_topics = hierarchy.len();
        let mut ptf: Vec<HashMap<Vec<u32>, f64>> = vec![HashMap::new(); n_topics];
        for doc_segs in segments {
            for seg in doc_segs {
                if !seg.is_empty() {
                    *ptf[0].entry(seg.clone()).or_insert(0.0) += 1.0;
                }
            }
        }
        // Walk topics in index order: parents precede children by construction.
        for t in 0..n_topics {
            let children = hierarchy.topics[t].children.clone();
            if children.is_empty() {
                continue;
            }
            let Some(fit) = hierarchy.fits[t].as_ref() else { continue };
            let parent_table = std::mem::take(&mut ptf[t]);
            let mut child_tables: Vec<HashMap<Vec<u32>, f64>> =
                vec![HashMap::new(); children.len()];
            for (p, &f) in &parent_table {
                let mut post = vec![0.0f64; children.len()];
                let mut norm = 0.0;
                for (z, _) in children.iter().enumerate() {
                    let mut lp = fit.rho[z + 1].max(1e-12).ln();
                    for &w in p {
                        lp += fit.phi[term_type][z][w as usize].max(1e-300).ln();
                    }
                    post[z] = lp;
                }
                let max_lp = post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                for v in post.iter_mut() {
                    *v = (*v - max_lp).exp();
                    norm += *v;
                }
                for (z, v) in post.iter().enumerate() {
                    let fz = f * v / norm;
                    if fz >= 1e-6 {
                        child_tables[z].insert(p.clone(), fz);
                    }
                }
            }
            ptf[t] = parent_table;
            for (z, table) in child_tables.into_iter().enumerate() {
                ptf[children[z]] = table;
            }
        }

        // 5. Rank phrases per topic by pointwise KL vs the parent (eq. 4.9).
        let totals: Vec<f64> = ptf.iter().map(phrase_mass).collect();
        let mut topic_phrases: Vec<Vec<TopicalPhrase>> = Vec::with_capacity(n_topics);
        for t in 0..n_topics {
            let n_t: f64 = totals[t];
            let parent = hierarchy.topics[t].parent;
            let mut list: Vec<TopicalPhrase> = ptf[t]
                .iter()
                .filter(|&(_, &f)| f >= config.min_topic_freq)
                .map(|(p, &f)| {
                    let p_t = f / n_t.max(1e-12);
                    let score = match parent {
                        None => p_t,
                        Some(pt) => {
                            let n_p: f64 = totals[pt];
                            let p_parent =
                                ptf[pt].get(p).copied().unwrap_or(f) / n_p.max(1e-12);
                            p_t * (p_t / p_parent.max(1e-300)).ln()
                        }
                    };
                    TopicalPhrase { tokens: p.clone(), score, topic_freq: f }
                })
                .collect();
            list.sort_by(|a, b| {
                b.score.total_cmp(&a.score).then_with(|| a.tokens.cmp(&b.tokens))
            });
            list.truncate(config.phrases_per_topic);
            topic_phrases.push(list);
        }

        // 6. Entity rankings straight from the hierarchy's phi.
        let mut topic_entities: Vec<Vec<Vec<(u32, f64)>>> = Vec::with_capacity(n_topics);
        for t in 0..n_topics {
            let mut per_type = Vec::with_capacity(term_type);
            for etype in 0..term_type {
                per_type.push(hierarchy.top_nodes(t, etype, config.entities_per_topic));
            }
            topic_entities.push(per_type);
        }

        // 7. Document topic attribution via topical phrase frequencies
        //    (eqs. 5.4-5.5, applied top-down).
        let mut doc_topic = vec![vec![0.0f64; n_topics]; segments.len()];
        for (d, doc_segs) in segments.iter().enumerate() {
            doc_topic[d][0] = 1.0;
            // Process expanded topics in index order (parents first).
            for t in 0..n_topics {
                let children = &hierarchy.topics[t].children;
                if children.is_empty() || doc_topic[d][t] <= 0.0 {
                    continue;
                }
                let mut tpf = vec![0.0f64; children.len()];
                for seg in doc_segs {
                    if seg.is_empty() {
                        continue;
                    }
                    let mut weights = vec![0.0f64; children.len()];
                    let mut norm = 0.0;
                    for (z, &c) in children.iter().enumerate() {
                        let f = ptf[c].get(seg).copied().unwrap_or(0.0);
                        weights[z] = f;
                        norm += f;
                    }
                    if norm > 0.0 {
                        for (z, w) in weights.iter().enumerate() {
                            tpf[z] += w / norm;
                        }
                    }
                }
                let total: f64 = tpf.iter().sum();
                if total > 0.0 {
                    for (z, &c) in children.iter().enumerate() {
                        doc_topic[d][c] = doc_topic[d][t] * tpf[z] / total;
                    }
                }
            }
        }

        DerivedArtifacts { ptf, topic_phrases, topic_entities, doc_topic }
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
    use lesm_hier::em::{EmConfig, WeightMode};
    use lesm_hier::hierarchy::ChildCount;

    pub(crate) fn small_corpus() -> SyntheticPapers {
        let mut cfg = PapersConfig::dblp(400, 21);
        cfg.hierarchy.branching = vec![2, 2];
        cfg.hierarchy.words_per_topic = 14;
        cfg.hierarchy.phrases_per_topic = 4;
        cfg.entity_specs[0].pool_per_node = 6;
        cfg.entity_specs[1].pool_per_node = 2;
        SyntheticPapers::generate(&cfg).unwrap()
    }

    pub(crate) fn miner_config() -> MinerConfig {
        MinerConfig {
            hierarchy: CathyConfig {
                children: ChildCount::Fixed(2),
                max_depth: 2,
                em: EmConfig {
                    iters: 200,
                    restarts: 5,
                    seed: 5,
                    background: true,
                    weights: WeightMode::Learned,
                    ..EmConfig::default()
                },
                min_links: 20,
                subnet_threshold: 0.5,
            },
            phrase_min_support: 4,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn pipeline_produces_consistent_structure() {
        let s = small_corpus();
        let mined = LatentStructureMiner::mine(&s.corpus, &miner_config()).unwrap();
        let n = mined.hierarchy.len();
        assert!(n >= 3, "hierarchy should expand");
        assert_eq!(mined.topic_phrases.len(), n);
        assert_eq!(mined.topic_entities.len(), n);
        assert_eq!(mined.doc_topic.len(), s.corpus.num_docs());
        // Every expanded non-root topic carries phrases and entities.
        for t in 1..n {
            if mined.hierarchy.topics[t].rho > 0.2 {
                assert!(
                    !mined.topic_phrases[t].is_empty(),
                    "topic {t} ({}) has no phrases",
                    mined.hierarchy.topics[t].path
                );
            }
        }
        // Child doc weights never exceed the parent's.
        for d in 0..mined.doc_topic.len() {
            for t in 0..n {
                if let Some(p) = mined.hierarchy.topics[t].parent {
                    assert!(mined.doc_topic[d][t] <= mined.doc_topic[d][p] + 1e-9);
                }
            }
        }
    }

    #[test]
    fn render_topic_is_human_readable() {
        let s = small_corpus();
        let mined = LatentStructureMiner::mine(&s.corpus, &miner_config()).unwrap();
        let txt = mined.render_topic(&s.corpus, 1, 5);
        assert!(txt.contains("o/1"));
        assert!(txt.contains('{'));
    }

    #[test]
    fn level1_topics_align_with_ground_truth_supertopics() {
        let s = small_corpus();
        let mined = LatentStructureMiner::mine(&s.corpus, &miner_config()).unwrap();
        // For each level-1 topic, look at its top words: most should come
        // from a single ground-truth level-1 subtree.
        let gt = &s.truth.hierarchy;
        let l1: Vec<usize> = mined.hierarchy.topics[0].children.clone();
        let term_type = s.corpus.entities.num_types();
        let mut distinct_supers = std::collections::HashSet::new();
        for &t in &l1 {
            let top = mined.hierarchy.top_nodes(t, term_type, 10);
            let mut votes: HashMap<usize, usize> = HashMap::new();
            for &(w, _) in &top {
                if let Some(owner) = s.truth.word_topic(w) {
                    // Map to its level-1 ancestor.
                    let mut cur = owner;
                    while gt.nodes[cur].level > 1 {
                        cur = gt.nodes[cur].parent.unwrap();
                    }
                    *votes.entry(cur).or_insert(0) += 1;
                }
            }
            if let Some((&winner, &count)) = votes.iter().max_by_key(|&(_, &c)| c) {
                let total: usize = votes.values().sum();
                assert!(
                    count * 3 >= total * 2,
                    "mined topic mixes ground-truth supertopics: {votes:?}"
                );
                distinct_supers.insert(winner);
            }
        }
        assert_eq!(distinct_supers.len(), 2, "the two supertopics should both be found");
    }
}
