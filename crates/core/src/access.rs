//! Typed read accessors over a mined model for traversal-style consumers
//! (the query engine, exploration UIs).
//!
//! Everything here is either integer-exact or accumulated in a fixed
//! canonical order, so downstream float arithmetic cannot depend on
//! iteration grouping (DESIGN.md §11). In particular the per-topic entity
//! frequencies are **integer occurrence counts** keyed by each document's
//! leaf-topic assignment: integer addition is associative, so a sharded
//! reconstruction that sums per-shard subtotals lands on bit-identical
//! values to a single pass over the whole corpus.

use crate::MinedStructure;
use lesm_corpus::Corpus;
use lesm_hier::TopicHierarchy;

/// Publication year per document, in document order.
pub fn doc_years(corpus: &Corpus) -> Vec<Option<i32>> {
    corpus.docs.iter().map(|d| d.year).collect()
}

/// For every entity of `etype`, the ascending list of documents that link
/// it (each document listed once, however many times the entity occurs).
pub fn entity_doc_lists(corpus: &Corpus, etype: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); corpus.entities.count(etype)];
    for (d, doc) in corpus.docs.iter().enumerate() {
        for e in doc.entities_of(etype) {
            let list: &mut Vec<u32> = &mut out[e as usize];
            if list.last() != Some(&(d as u32)) {
                list.push(d as u32);
            }
        }
    }
    out
}

/// Same-type co-occurrence adjacency: for every entity of `etype`, the
/// ascending, deduplicated list of other `etype` entities sharing at least
/// one document with it (the coauthor relation when `etype` is `author`).
pub fn cooccur_adjacency(corpus: &Corpus, etype: usize) -> Vec<Vec<u32>> {
    let mut out = vec![Vec::new(); corpus.entities.count(etype)];
    for doc in &corpus.docs {
        let mut members: Vec<u32> = doc.entities_of(etype).collect();
        members.sort_unstable();
        members.dedup();
        for &a in &members {
            for &b in &members {
                if a != b {
                    out[a as usize].push(b);
                }
            }
        }
    }
    for list in &mut out {
        list.sort_unstable();
        list.dedup();
    }
    out
}

/// The subtree rooted at topic `t` (inclusive), ascending by topic index.
pub fn subtree_topics(hierarchy: &TopicHierarchy, t: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut stack = vec![t];
    while let Some(n) = stack.pop() {
        out.push(n);
        stack.extend(hierarchy.topics[n].children.iter().copied());
    }
    out.sort_unstable();
    out
}

/// Integer entity-occurrence counts per topic for one entity type:
/// `counts[t][e]` is the number of occurrences of entity `e` in documents
/// whose leaf-topic assignment ([`MinedStructure::doc_leaf`]) is `t`.
/// Rows for non-leaf topics are zero; subtree aggregates are exact integer
/// sums over descendant leaves.
pub fn leaf_entity_counts(
    corpus: &Corpus,
    mined: &MinedStructure,
    etype: usize,
) -> Vec<Vec<u64>> {
    let mut counts = vec![vec![0u64; corpus.entities.count(etype)]; mined.hierarchy.len()];
    for (d, doc) in corpus.docs.iter().enumerate() {
        let leaf = mined.doc_leaf(d);
        for e in doc.entities_of(etype) {
            counts[leaf][e as usize] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::{Corpus, Doc, EntityRef};

    fn tiny_corpus() -> Corpus {
        let mut c = Corpus::default();
        let a = c.entities.add_type("author");
        for &(year, authors) in &[(2000, [0u32, 1].as_slice()), (2001, &[1, 2]), (2002, &[1])] {
            let mut doc = Doc::default();
            doc.year = Some(year);
            for &id in authors {
                while c.entities.count(a) <= id as usize {
                    let next = c.entities.count(a);
                    let _ = c.entities.intern(a, &format!("a{next}"));
                }
                doc.entities.push(EntityRef::new(a, id));
            }
            c.docs.push(doc);
        }
        c
    }

    #[test]
    fn doc_lists_are_ascending_and_unique() {
        let c = tiny_corpus();
        let lists = entity_doc_lists(&c, 0);
        assert_eq!(lists[0], vec![0]);
        assert_eq!(lists[1], vec![0, 1, 2]);
        assert_eq!(lists[2], vec![1]);
    }

    #[test]
    fn cooccurrence_is_symmetric_and_sorted() {
        let c = tiny_corpus();
        let adj = cooccur_adjacency(&c, 0);
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);
    }

    #[test]
    fn years_follow_doc_order() {
        let c = tiny_corpus();
        assert_eq!(doc_years(&c), vec![Some(2000), Some(2001), Some(2002)]);
    }
}
