//! Property tests for the JSON export: structural well-formedness and
//! escaping must hold for *any* vocabulary content (quotes, backslashes,
//! control characters, braces) and any score bit pattern (including NaN
//! and infinities), not just the tame synthetic corpora. The final block
//! drives the whole miner over arbitrary small corpora (DESIGN.md §10):
//! `mine` must return `Ok` or a typed `CoreError` — never panic — and
//! every structure it does produce must export finite, balanced JSON.

use lesm_core::export::{hierarchy_to_json, is_balanced_json, json_number, json_string};
use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_corpus::Corpus;
use lesm_hier::em::{EmConfig, WeightMode};
use lesm_hier::hierarchy::{CathyConfig, ChildCount, HierTopic};
use lesm_hier::TopicHierarchy;
use lesm_net::TypedNetwork;
use lesm_phrases::TopicalPhrase;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a two-topic structure whose phrases are single tokens over the
/// given vocabulary and whose scores come from raw `f64` bit patterns.
fn synthetic_structure(
    words: &[String],
    entity_names: &[String],
    score_bits: &[u64],
) -> (Corpus, MinedStructure) {
    let mut corpus = Corpus::new();
    let etype = corpus.entities.add_type(entity_names.first().map(String::as_str).unwrap_or("t"));
    let mut ids = Vec::new();
    for w in words {
        ids.push(corpus.vocab.intern(w));
    }
    for name in entity_names {
        corpus.entities.intern(etype, name).unwrap();
    }
    let score = |i: usize| f64::from_bits(score_bits[i % score_bits.len()]);
    let topic = |parent, level, path: &str, children: Vec<usize>| HierTopic {
        parent,
        children,
        level,
        path: path.into(),
        phi: vec![vec![1.0]],
        rho: score(0),
        network: TypedNetwork::new(vec![], vec![]),
    };
    let hierarchy = TopicHierarchy {
        type_names: vec![],
        topics: vec![topic(None, 0, "o", vec![1]), topic(Some(0), 1, "o/1", vec![])],
        fits: vec![None, None],
        alphas: vec![None, None],
    };
    let phrases: Vec<TopicalPhrase> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| TopicalPhrase {
            tokens: vec![id],
            score: score(i),
            topic_freq: score(i + 1),
        })
        .collect();
    let entities: Vec<(u32, f64)> = (0..entity_names.len() as u32).map(|i| (i, score(i as usize))).collect();
    let mined = MinedStructure {
        hierarchy,
        topic_phrases: vec![phrases.clone(), phrases],
        topic_entities: vec![vec![entities.clone()], vec![entities]],
        phrase_topic_freq: vec![HashMap::new(), HashMap::new()],
        segments: vec![],
        doc_topic: vec![],
    };
    (corpus, mined)
}

// The character class deliberately mixes lowercase letters with JSON
// metacharacters (quote, backslash, braces, brackets-by-way-of-braces),
// whitespace escapes, and raw C0 control characters \u{0}-\u{8}.
const NASTY: &str = "[a-z\"\\\u{0}-\u{8}{}\n\t ]{1,8}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn export_is_balanced_for_any_vocab_and_scores(
        words in vec(NASTY, 1..6),
        entity_names in vec(NASTY, 1..4),
        score_bits in vec(0u64..=u64::MAX, 1..6),
    ) {
        let (corpus, mined) = synthetic_structure(&words, &entity_names, &score_bits);
        let json = hierarchy_to_json(&corpus, &mined, 10);
        prop_assert!(is_balanced_json(&json), "unbalanced JSON:\n{json}");
    }

    #[test]
    fn export_escapes_every_vocab_term(
        words in vec(NASTY, 1..6),
        entity_names in vec(NASTY, 1..4),
    ) {
        let (corpus, mined) = synthetic_structure(&words, &entity_names, &[1.0f64.to_bits()]);
        let json = hierarchy_to_json(&corpus, &mined, 10);
        // Every interned word renders as a single-token phrase, so its
        // RFC 8259 escaping must appear verbatim; same for entity names
        // and the entity type name.
        for w in &words {
            prop_assert!(
                json.contains(&json_string(w)),
                "escaped term {:?} missing from export",
                w
            );
        }
        for name in &entity_names {
            prop_assert!(json.contains(&json_string(name)));
        }
        // Raw (unescaped) quotes or control characters must never leak:
        // scan string interiors for un-escaped C0 bytes.
        prop_assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'),
            "raw control character leaked into export");
    }

    #[test]
    fn json_number_is_always_valid_json(bits in 0u64..=u64::MAX) {
        let rendered = json_number(f64::from_bits(bits));
        // Must be `null` or a fixed-point decimal with optional sign.
        if rendered != "null" {
            let rest = rendered.strip_prefix('-').unwrap_or(&rendered);
            prop_assert!(
                rest.chars().all(|c| c.is_ascii_digit() || c == '.'),
                "json_number produced {rendered:?}"
            );
            prop_assert!(rest.contains('.'));
        }
    }
}

/// A deliberately tiny EM budget so the full-pipeline property stays fast
/// while still exercising hierarchy construction, phrase mining,
/// segmentation, and ranking on every generated corpus.
fn tiny_config(k: usize, depth: usize, min_support: u64) -> MinerConfig {
    MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::Fixed(k),
            max_depth: depth,
            em: EmConfig {
                iters: 6,
                restarts: 1,
                seed: 11,
                background: true,
                weights: WeightMode::Learned,
                ..EmConfig::default()
            },
            min_links: 1,
            subnet_threshold: 0.5,
        },
        phrase_min_support: min_support,
        phrase_max_len: 4,
        seg_alpha: 2.0,
        phrases_per_topic: 8,
        entities_per_topic: 8,
        min_topic_freq: 1.0,
        threads: 1,
        em_tol: 0.0,
    }
}

/// Asserts that every float the mined structure exposes is finite.
fn assert_all_finite(mined: &MinedStructure) -> Result<(), proptest::test_runner::TestCaseError> {
    for (t, phrases) in mined.topic_phrases.iter().enumerate() {
        for p in phrases {
            prop_assert!(p.score.is_finite(), "non-finite phrase score in topic {t}");
            prop_assert!(p.topic_freq.is_finite(), "non-finite topic_freq in topic {t}");
        }
    }
    for row in &mined.doc_topic {
        for &v in row {
            prop_assert!(v.is_finite(), "non-finite doc_topic weight");
        }
    }
    for topic in &mined.hierarchy.topics {
        prop_assert!(topic.rho.is_finite(), "non-finite topic rho");
        for dist in &topic.phi {
            for &v in dist {
                prop_assert!(v.is_finite(), "non-finite phi entry");
            }
        }
    }
    Ok(())
}

proptest! {
    // The full pipeline is the expensive property, so fewer cases; the
    // corpora are small enough (< 8 docs) that each case is milliseconds.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `mine` over arbitrary small corpora — including empty corpora,
    /// empty documents, and single-word vocabularies — either succeeds or
    /// returns a typed error, and anything it produces is finite and
    /// exports balanced JSON.
    #[test]
    fn mine_never_panics_on_small_corpora(
        docs in vec(vec("[a-z]{1,4}", 0..6), 0..8),
        k in 1usize..4,
        depth in 1usize..4,
        min_support in 0u64..3,
    ) {
        let mut corpus = Corpus::new();
        for doc in &docs {
            corpus.push_text(&doc.join(" "));
        }
        match LatentStructureMiner::mine(&corpus, &tiny_config(k, depth, min_support)) {
            Ok(mined) => {
                assert_all_finite(&mined)?;
                let json = hierarchy_to_json(&corpus, &mined, 8);
                prop_assert!(is_balanced_json(&json), "unbalanced JSON:\n{json}");
            }
            // Typed rejection (e.g. an empty corpus) is an acceptable
            // outcome; panicking is not, and proptest treats any panic
            // inside the closure as a test failure.
            Err(_typed) => {}
        }
    }
}
