//! Property tests for the JSON export: structural well-formedness and
//! escaping must hold for *any* vocabulary content (quotes, backslashes,
//! control characters, braces) and any score bit pattern (including NaN
//! and infinities), not just the tame synthetic corpora.

use lesm_core::export::{hierarchy_to_json, is_balanced_json, json_number, json_string};
use lesm_core::pipeline::MinedStructure;
use lesm_corpus::Corpus;
use lesm_hier::hierarchy::HierTopic;
use lesm_hier::TopicHierarchy;
use lesm_net::TypedNetwork;
use lesm_phrases::TopicalPhrase;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::HashMap;

/// Builds a two-topic structure whose phrases are single tokens over the
/// given vocabulary and whose scores come from raw `f64` bit patterns.
fn synthetic_structure(
    words: &[String],
    entity_names: &[String],
    score_bits: &[u64],
) -> (Corpus, MinedStructure) {
    let mut corpus = Corpus::new();
    let etype = corpus.entities.add_type(entity_names.first().map(String::as_str).unwrap_or("t"));
    let mut ids = Vec::new();
    for w in words {
        ids.push(corpus.vocab.intern(w));
    }
    for name in entity_names {
        corpus.entities.intern(etype, name).unwrap();
    }
    let score = |i: usize| f64::from_bits(score_bits[i % score_bits.len()]);
    let topic = |parent, level, path: &str, children: Vec<usize>| HierTopic {
        parent,
        children,
        level,
        path: path.into(),
        phi: vec![vec![1.0]],
        rho: score(0),
        network: TypedNetwork::new(vec![], vec![]),
    };
    let hierarchy = TopicHierarchy {
        type_names: vec![],
        topics: vec![topic(None, 0, "o", vec![1]), topic(Some(0), 1, "o/1", vec![])],
        fits: vec![None, None],
        alphas: vec![None, None],
    };
    let phrases: Vec<TopicalPhrase> = ids
        .iter()
        .enumerate()
        .map(|(i, &id)| TopicalPhrase {
            tokens: vec![id],
            score: score(i),
            topic_freq: score(i + 1),
        })
        .collect();
    let entities: Vec<(u32, f64)> = (0..entity_names.len() as u32).map(|i| (i, score(i as usize))).collect();
    let mined = MinedStructure {
        hierarchy,
        topic_phrases: vec![phrases.clone(), phrases],
        topic_entities: vec![vec![entities.clone()], vec![entities]],
        phrase_topic_freq: vec![HashMap::new(), HashMap::new()],
        segments: vec![],
        doc_topic: vec![],
    };
    (corpus, mined)
}

// The character class deliberately mixes lowercase letters with JSON
// metacharacters (quote, backslash, braces, brackets-by-way-of-braces),
// whitespace escapes, and raw C0 control characters \u{0}-\u{8}.
const NASTY: &str = "[a-z\"\\\u{0}-\u{8}{}\n\t ]{1,8}";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn export_is_balanced_for_any_vocab_and_scores(
        words in vec(NASTY, 1..6),
        entity_names in vec(NASTY, 1..4),
        score_bits in vec(0u64..=u64::MAX, 1..6),
    ) {
        let (corpus, mined) = synthetic_structure(&words, &entity_names, &score_bits);
        let json = hierarchy_to_json(&corpus, &mined, 10);
        prop_assert!(is_balanced_json(&json), "unbalanced JSON:\n{json}");
    }

    #[test]
    fn export_escapes_every_vocab_term(
        words in vec(NASTY, 1..6),
        entity_names in vec(NASTY, 1..4),
    ) {
        let (corpus, mined) = synthetic_structure(&words, &entity_names, &[1.0f64.to_bits()]);
        let json = hierarchy_to_json(&corpus, &mined, 10);
        // Every interned word renders as a single-token phrase, so its
        // RFC 8259 escaping must appear verbatim; same for entity names
        // and the entity type name.
        for w in &words {
            prop_assert!(
                json.contains(&json_string(w)),
                "escaped term {:?} missing from export",
                w
            );
        }
        for name in &entity_names {
            prop_assert!(json.contains(&json_string(name)));
        }
        // Raw (unescaped) quotes or control characters must never leak:
        // scan string interiors for un-escaped C0 bytes.
        prop_assert!(!json.chars().any(|c| (c as u32) < 0x20 && c != '\n'),
            "raw control character leaked into export");
    }

    #[test]
    fn json_number_is_always_valid_json(bits in 0u64..=u64::MAX) {
        let rendered = json_number(f64::from_bits(bits));
        // Must be `null` or a fixed-point decimal with optional sign.
        if rendered != "null" {
            let rest = rendered.strip_prefix('-').unwrap_or(&rendered);
            prop_assert!(
                rest.chars().all(|c| c.is_ascii_digit() || c == '.'),
                "json_number produced {rendered:?}"
            );
            prop_assert!(rest.contains('.'));
        }
    }
}
