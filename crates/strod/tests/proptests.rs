//! Property-based tests for STROD moment and decomposition invariants.

use lesm_linalg::{SymOp, Tensor3};
use lesm_strod::moments::{whitened_third_moment, DocStats, M2Op};
use lesm_strod::power::{tensor_power_method, PowerConfig};
use proptest::prelude::*;

fn random_docs() -> impl Strategy<Value = Vec<Vec<u32>>> {
    proptest::collection::vec(proptest::collection::vec(0u32..8, 3..20), 5..40)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn m1_is_a_distribution(docs in random_docs()) {
        let stats = DocStats::from_docs(&docs, 8).unwrap();
        let s: f64 = stats.m1().iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        prop_assert!(stats.m1().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn m2_operator_is_symmetric_bilinear(
        docs in random_docs(),
        x in proptest::collection::vec(-1.0f64..1.0, 8),
        y in proptest::collection::vec(-1.0f64..1.0, 8),
        alpha0 in 0.1f64..5.0,
    ) {
        let stats = DocStats::from_docs(&docs, 8).unwrap();
        let op = M2Op::new(&stats, alpha0);
        let mut ax = vec![0.0; 8];
        let mut ay = vec![0.0; 8];
        op.apply(&x, &mut ax);
        op.apply(&y, &mut ay);
        let xay = lesm_linalg::dot(&x, &ay);
        let yax = lesm_linalg::dot(&y, &ax);
        prop_assert!((xay - yax).abs() < 1e-9 * (1.0 + xay.abs()));
    }

    #[test]
    fn m2_apply_is_linear(
        docs in random_docs(),
        x in proptest::collection::vec(-1.0f64..1.0, 8),
        c in -2.0f64..2.0,
    ) {
        let stats = DocStats::from_docs(&docs, 8).unwrap();
        let op = M2Op::new(&stats, 1.0);
        let cx: Vec<f64> = x.iter().map(|v| c * v).collect();
        let mut ax = vec![0.0; 8];
        let mut acx = vec![0.0; 8];
        op.apply(&x, &mut ax);
        op.apply(&cx, &mut acx);
        for (a, b) in ax.iter().zip(&acx) {
            prop_assert!((c * a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    #[test]
    fn power_method_recovers_random_orthogonal_tensors(
        weights in proptest::collection::vec(0.5f64..4.0, 3),
        angles in proptest::collection::vec(0.0f64..std::f64::consts::PI, 3),
    ) {
        // Build an orthonormal basis via Householder-free 3D rotations.
        let (a, b, g) = (angles[0], angles[1], angles[2]);
        let rot = |v: [f64; 3]| -> Vec<f64> {
            // Z(a) then X(b) then Z(g) rotation applied to v.
            let (s1, c1) = a.sin_cos();
            let v1 = [c1 * v[0] - s1 * v[1], s1 * v[0] + c1 * v[1], v[2]];
            let (s2, c2) = b.sin_cos();
            let v2 = [v1[0], c2 * v1[1] - s2 * v1[2], s2 * v1[1] + c2 * v1[2]];
            let (s3, c3) = g.sin_cos();
            vec![c3 * v2[0] - s3 * v2[1], s3 * v2[0] + c3 * v2[1], v2[2]]
        };
        let basis = [rot([1.0, 0.0, 0.0]), rot([0.0, 1.0, 0.0]), rot([0.0, 0.0, 1.0])];
        let mut sorted: Vec<f64> = weights.clone();
        sorted.sort_by(|x, y| y.partial_cmp(x).unwrap());
        // Require separation so the decomposition is identifiable.
        prop_assume!(sorted[0] > sorted[1] * 1.2 && sorted[1] > sorted[2] * 1.2);
        let mut t = Tensor3::zeros(3);
        for (w, v) in weights.iter().zip(&basis) {
            t.add_rank_one(*w, v);
        }
        let pairs = tensor_power_method(
            &t,
            3,
            &PowerConfig { restarts: 15, iters: 60, seed: 5, ..PowerConfig::default() },
        );
        for (pair, want) in pairs.iter().zip(&sorted) {
            prop_assert!((pair.value - want).abs() < 1e-4 * (1.0 + want), "λ {} want {want}", pair.value);
        }
    }

    #[test]
    fn parallel_whitened_tensor_is_bit_identical_to_serial(
        docs in random_docs(),
        alpha0 in 0.1f64..3.0,
        threads in 2usize..9,
    ) {
        // The tentpole determinism contract: the whitened third moment is
        // bit-identical for any thread count, because the document-chunk
        // layout and the partial-tensor fold never depend on it.
        let stats = DocStats::from_docs(&docs, 8).unwrap();
        let op = M2Op::new(&stats, alpha0);
        let eig = lesm_linalg::topk_eigen(&op, 2, 100, 1e-9, 13);
        prop_assume!(eig.values.iter().all(|&v| v > 1e-10));
        let mut w = lesm_linalg::Mat::zeros(8, 2);
        for c in 0..2 {
            let scale = 1.0 / eig.values[c].sqrt();
            for r in 0..8 {
                w[(r, c)] = eig.vectors[(r, c)] * scale;
            }
        }
        let serial = whitened_third_moment(&stats, &w, alpha0, 1);
        let par = whitened_third_moment(&stats, &w, alpha0, threads);
        for (a, b) in serial.as_slice().iter().zip(par.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn weighted_stats_respect_zero_weights(docs in random_docs()) {
        // Zeroing a document's weight must remove its influence from M1.
        let all = DocStats::from_docs(&docs, 8).unwrap();
        let mut weights = vec![1.0; docs.len()];
        weights[0] = 0.0;
        let counts = all.counts.clone();
        if let Ok(partial) = DocStats::from_counts(counts, weights) {
            let without: Vec<Vec<u32>> = docs[1..].to_vec();
            if let Ok(expect) = DocStats::from_docs(&without, 8) {
                for (a, b) in partial.m1().iter().zip(expect.m1()) {
                    prop_assert!((a - b).abs() < 1e-9);
                }
            }
        }
    }
}
