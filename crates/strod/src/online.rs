//! Online STROD — streaming moment accumulation (§7.3.2's scalability
//! discussion: because every moment is an *additive* statistic over
//! documents, a stream can be folded in one document at a time and the
//! decomposition recomputed on demand at `O(nnz·k² + k³)` cost, without
//! revisiting the stream).

use crate::moments::DocStats;
use crate::strod::{Strod, StrodConfig, StrodModel};
use crate::StrodError;
use lesm_linalg::SparseRows;
use std::collections::HashMap;

/// A streaming STROD accumulator.
///
/// Documents are pushed incrementally; [`OnlineStrod::refit`] recomputes
/// the decomposition from the accumulated sufficient statistics. Because
/// the moments are additive, the refit is exactly equivalent to a batch
/// fit over every document seen so far.
#[derive(Debug)]
pub struct OnlineStrod {
    vocab_size: usize,
    counts: SparseRows,
    weights: Vec<f64>,
    config: StrodConfig,
    model: Option<StrodModel>,
    dirty: bool,
}

impl OnlineStrod {
    /// Creates an empty accumulator.
    pub fn new(vocab_size: usize, config: StrodConfig) -> Self {
        Self {
            vocab_size,
            counts: SparseRows::new(vocab_size),
            weights: Vec::new(),
            config,
            model: None,
            dirty: false,
        }
    }

    /// Folds one document into the sufficient statistics.
    pub fn push_doc(&mut self, doc: &[u32]) {
        let mut m: HashMap<u32, f64> = HashMap::new();
        for &w in doc {
            debug_assert!((w as usize) < self.vocab_size);
            *m.entry(w).or_insert(0.0) += 1.0;
        }
        let mut pairs: Vec<(u32, f64)> = m.into_iter().collect();
        pairs.sort_unstable_by_key(|&(w, _)| w);
        self.counts.push_row(&pairs);
        self.weights.push(1.0);
        self.dirty = true;
    }

    /// Number of documents folded in so far.
    pub fn num_docs(&self) -> usize {
        self.weights.len()
    }

    /// Recomputes the decomposition over everything seen so far. Returns
    /// the cached model when nothing changed since the last refit.
    pub fn refit(&mut self) -> Result<&StrodModel, StrodError> {
        if self.dirty || self.model.is_none() {
            let stats = DocStats::from_counts(self.counts.clone(), self.weights.clone())?;
            self.model = Some(Strod::fit_stats(&stats, &self.config)?);
            self.dirty = false;
        }
        // lesm-lint: allow(R1) — the branch above always fills `model` when it was None
        Ok(self.model.as_ref().expect("model set above"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn lda_docs(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let phi: [Vec<f64>; 2] = [
            vec![0.3, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.01, 0.005, 0.005],
            vec![0.005, 0.005, 0.01, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.3],
        ];
        (0..n)
            .map(|_| {
                let t = rng.gen_range(0..2usize);
                (0..20)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        let mut acc = 0.0;
                        for (w, &p) in phi[t].iter().enumerate() {
                            acc += p;
                            if u <= acc {
                                return w as u32;
                            }
                        }
                        9
                    })
                    .collect()
            })
            .collect()
    }

    fn cfg() -> StrodConfig {
        StrodConfig { k: 2, alpha0: Some(0.2), ..Default::default() }
    }

    #[test]
    fn streaming_matches_batch_exactly() {
        let docs = lda_docs(500, 71);
        let mut online = OnlineStrod::new(10, cfg());
        for d in &docs {
            online.push_doc(d);
        }
        let stream_model = online.refit().unwrap().clone();
        let batch_model = Strod::fit(&docs, 10, &cfg()).unwrap();
        for (a, b) in stream_model.topic_word.iter().zip(&batch_model.topic_word) {
            for (x, y) in a.iter().zip(b) {
                assert!((x - y).abs() < 1e-9, "stream/batch divergence");
            }
        }
    }

    #[test]
    fn refit_is_cached_until_new_docs_arrive() {
        let docs = lda_docs(300, 73);
        let mut online = OnlineStrod::new(10, cfg());
        for d in &docs {
            online.push_doc(d);
        }
        let a = online.refit().unwrap().topic_word.clone();
        let b = online.refit().unwrap().topic_word.clone();
        assert_eq!(a, b);
        online.push_doc(&docs[0]);
        assert_eq!(online.num_docs(), 301);
        online.refit().unwrap();
    }

    #[test]
    fn topics_sharpen_with_more_data() {
        // Recovery error vs the generating phi should not grow as the
        // stream lengthens.
        let docs = lda_docs(4000, 79);
        let truth0 = [0.3, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.01, 0.005, 0.005];
        let err = |m: &StrodModel| -> f64 {
            // Best-matching topic against truth0.
            m.topic_word
                .iter()
                .map(|t| t.iter().zip(&truth0).map(|(x, y)| (x - y).abs()).sum::<f64>())
                .fold(f64::INFINITY, f64::min)
        };
        let mut online = OnlineStrod::new(10, cfg());
        for d in &docs[..400] {
            online.push_doc(d);
        }
        let small = err(&online.refit().unwrap().clone());
        for d in &docs[400..] {
            online.push_doc(d);
        }
        let large = err(&online.refit().unwrap().clone());
        assert!(large <= small + 0.02, "error grew: {small:.4} -> {large:.4}");
    }

    #[test]
    fn refit_before_enough_docs_errors() {
        let mut online = OnlineStrod::new(10, cfg());
        online.push_doc(&[0, 1]); // too short to contribute triples
        assert!(online.refit().is_err());
    }
}
