//! The single-level STROD algorithm (§7.3).

use crate::moments::{DocStats, WhitenedMoments};
use crate::power::{tensor_power_method, PowerConfig};
use crate::StrodError;

/// Configuration for [`Strod::fit`].
#[derive(Debug, Clone)]
pub struct StrodConfig {
    /// Number of topics.
    pub k: usize,
    /// Dirichlet concentration α₀ (`None` = learn by grid search, §7.3.3).
    pub alpha0: Option<f64>,
    /// Tensor power method settings (its `threads` field is overridden by
    /// the top-level `threads` below).
    pub power: PowerConfig,
    /// Worker threads for moment accumulation and power-method restarts
    /// (1 = sequential STROD, >1 = PSTROD, 0 = all available cores). Any
    /// value produces bit-identical results.
    pub threads: usize,
    /// RNG seed for whitening.
    pub seed: u64,
}

impl Default for StrodConfig {
    fn default() -> Self {
        Self { k: 5, alpha0: Some(1.0), power: PowerConfig::default(), threads: 1, seed: 42 }
    }
}

/// A fitted STROD model.
#[derive(Debug, Clone)]
pub struct StrodModel {
    /// Number of topics.
    pub k: usize,
    /// Dirichlet concentration used.
    pub alpha0: f64,
    /// Recovered Dirichlet weights `α_z` (sum to `alpha0`).
    pub alpha: Vec<f64>,
    /// `k x V` recovered topic-word distributions.
    pub topic_word: Vec<Vec<f64>>,
    /// Tensor eigenvalues (decreasing), a robustness diagnostic.
    pub eigenvalues: Vec<f64>,
    /// Relative tensor reconstruction residual (0 = perfect decomposition).
    pub residual: f64,
}

impl StrodModel {
    /// Top `n` words of topic `t`.
    pub fn top_words(&self, t: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.topic_word[t].iter().enumerate().map(|(w, &p)| (w as u32, p)).collect();
        idx.sort_by(|a, b| b.1.total_cmp(&a.1));
        idx.truncate(n);
        idx
    }

    /// MAP topic posterior of a document under the recovered model
    /// (mixture-of-unigrams fold-in; used when recursing down the tree).
    pub fn doc_posterior(&self, doc_counts: impl Iterator<Item = (u32, f64)>) -> Vec<f64> {
        let mut lp: Vec<f64> =
            self.alpha.iter().map(|&a| (a / self.alpha0).max(1e-12).ln()).collect();
        for (w, c) in doc_counts {
            for (z, l) in lp.iter_mut().enumerate() {
                *l += c * self.topic_word[z][w as usize].max(1e-300).ln();
            }
        }
        let max_lp = lp.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mut total = 0.0;
        for l in lp.iter_mut() {
            *l = (*l - max_lp).exp();
            total += *l;
        }
        if total > 0.0 {
            for l in lp.iter_mut() {
                *l /= total;
            }
        }
        lp
    }
}

/// STROD fitter.
#[derive(Debug, Default)]
pub struct Strod;

impl Strod {
    /// Fits STROD on token-id documents.
    pub fn fit(docs: &[Vec<u32>], vocab_size: usize, config: &StrodConfig) -> Result<StrodModel, StrodError> {
        let stats = DocStats::from_docs(docs, vocab_size)?;
        Self::fit_stats(&stats, config)
    }

    /// Fits STROD on precomputed document statistics (weighted documents
    /// supported — the topic-tree recursion path).
    pub fn fit_stats(stats: &DocStats, config: &StrodConfig) -> Result<StrodModel, StrodError> {
        if config.k == 0 {
            return Err(StrodError::InvalidConfig("k must be >= 1".into()));
        }
        match config.alpha0 {
            Some(a0) if a0 > 0.0 => fit_with_alpha0(stats, config, a0),
            Some(_) => Err(StrodError::InvalidConfig("alpha0 must be positive".into())),
            None => {
                // §7.3.3 hyperparameter learning: grid over α₀, keep the
                // fit with the smallest tensor reconstruction residual.
                let grid = [0.1, 0.3, 1.0, 3.0, 10.0];
                let mut best: Option<StrodModel> = None;
                for &a0 in &grid {
                    if let Ok(m) = fit_with_alpha0(stats, config, a0) {
                        if best.as_ref().is_none_or(|b| m.residual < b.residual) {
                            best = Some(m);
                        }
                    }
                }
                best.ok_or(StrodError::RankDeficient { requested: config.k, found: 0 })
            }
        }
    }
}

fn fit_with_alpha0(
    stats: &DocStats,
    config: &StrodConfig,
    alpha0: f64,
) -> Result<StrodModel, StrodError> {
    let k = config.k;
    let wm = WhitenedMoments::compute(stats, k, alpha0, config.seed, config.threads)?;
    let initial_norm = wm.t3.max_abs().max(1e-300);
    let power_cfg = PowerConfig { threads: config.threads, ..config.power.clone() };
    let pairs = tensor_power_method(&wm.t3, k, &power_cfg);
    // Residual after deflating all recovered components.
    let mut residual_t = wm.t3.clone();
    for p in &pairs {
        residual_t.deflate(p.value, &p.vector);
    }
    let residual = residual_t.max_abs() / initial_norm;
    // Recover α_z and φ_z:
    //   λ_z = 2 sqrt(α0(α0+1)) / ((α0+2) sqrt(α_z))
    //   μ_z = ((α0+2) λ_z / 2) · B v_z
    let v = stats.vocab_size();
    let mut alpha = Vec::with_capacity(k);
    let mut topic_word = Vec::with_capacity(k);
    let mut eigenvalues = Vec::with_capacity(k);
    for p in &pairs {
        let lambda = p.value.max(1e-9);
        eigenvalues.push(p.value);
        let a_z = (2.0 / ((alpha0 + 2.0) * lambda)).powi(2) * alpha0 * (alpha0 + 1.0);
        alpha.push(a_z);
        let scale = (alpha0 + 2.0) * lambda / 2.0;
        let mut mu = vec![0.0f64; v];
        for r in 0..v {
            let mut s = 0.0;
            for c in 0..k {
                s += wm.b[(r, c)] * p.vector[c];
            }
            mu[r] = scale * s;
        }
        // Clip negatives (finite-sample noise) and renormalize.
        let mut total = 0.0;
        for x in &mut mu {
            if *x < 0.0 {
                *x = 0.0;
            }
            total += *x;
        }
        if total > 0.0 {
            for x in &mut mu {
                *x /= total;
            }
        } else {
            let u = 1.0 / v as f64;
            mu.iter_mut().for_each(|x| *x = u);
        }
        topic_word.push(mu);
    }
    // Normalize α to sum to α0.
    let a_sum: f64 = alpha.iter().sum();
    if a_sum > 0.0 {
        for a in &mut alpha {
            *a *= alpha0 / a_sum;
        }
    }
    Ok(StrodModel { k, alpha0, alpha, topic_word, eigenvalues, residual })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn ground_truth_phi() -> [Vec<f64>; 2] {
        [
            vec![0.3, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.01, 0.005, 0.005],
            vec![0.005, 0.005, 0.01, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.3],
        ]
    }

    fn lda_docs(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let phi = ground_truth_phi();
        (0..n)
            .map(|_| {
                let t = rng.gen_range(0..2usize);
                (0..25)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        let mut acc = 0.0;
                        for (w, &p) in phi[t].iter().enumerate() {
                            acc += p;
                            if u <= acc {
                                return w as u32;
                            }
                        }
                        9
                    })
                    .collect()
            })
            .collect()
    }

    fn l1(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }

    #[test]
    fn recovers_topics_close_to_truth() {
        let docs = lda_docs(3000, 11);
        let m = Strod::fit(&docs, 10, &StrodConfig { k: 2, alpha0: Some(0.2), ..Default::default() })
            .unwrap();
        let truth = ground_truth_phi();
        // Match topics to truth by best L1.
        let d00 = l1(&m.topic_word[0], &truth[0]);
        let d01 = l1(&m.topic_word[0], &truth[1]);
        let (e0, e1) = if d00 < d01 {
            (d00, l1(&m.topic_word[1], &truth[1]))
        } else {
            (d01, l1(&m.topic_word[1], &truth[0]))
        };
        assert!(e0 < 0.25, "topic error {e0:.3}");
        assert!(e1 < 0.25, "topic error {e1:.3}");
    }

    #[test]
    fn deterministic_across_runs_and_seeds_robustness() {
        // The robustness claim of §7.4.2: unlike Gibbs, the recovered
        // topics barely move across power-method seeds.
        let docs = lda_docs(2000, 13);
        let base = StrodConfig { k: 2, alpha0: Some(0.2), ..Default::default() };
        let a = Strod::fit(&docs, 10, &base).unwrap();
        let mut cfg2 = base.clone();
        cfg2.power.seed = 999;
        cfg2.seed = 777;
        let b = Strod::fit(&docs, 10, &cfg2).unwrap();
        // Compare aligned topics.
        let d = l1(&a.topic_word[0], &b.topic_word[0]).min(l1(&a.topic_word[0], &b.topic_word[1]));
        assert!(d < 0.05, "STROD should be seed-stable, drift {d:.4}");
    }

    #[test]
    fn recovered_phi_are_distributions() {
        let docs = lda_docs(1000, 17);
        let m = Strod::fit(&docs, 10, &StrodConfig { k: 2, alpha0: Some(0.5), ..Default::default() })
            .unwrap();
        for row in &m.topic_word {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(row.iter().all(|&x| x >= 0.0));
        }
        let a_sum: f64 = m.alpha.iter().sum();
        assert!((a_sum - 0.5).abs() < 1e-9);
    }

    #[test]
    fn doc_posterior_identifies_topic() {
        let docs = lda_docs(2000, 19);
        let m = Strod::fit(&docs, 10, &StrodConfig { k: 2, alpha0: Some(0.2), ..Default::default() })
            .unwrap();
        // A doc of pure low-index words.
        let post = m.doc_posterior([(0u32, 5.0), (1u32, 5.0)].into_iter());
        let z_low = if m.topic_word[0][0] > m.topic_word[1][0] { 0 } else { 1 };
        assert!(post[z_low] > 0.9, "posterior {post:?}");
    }

    #[test]
    fn alpha0_grid_learning_runs() {
        let docs = lda_docs(1500, 23);
        let m = Strod::fit(&docs, 10, &StrodConfig { k: 2, alpha0: None, ..Default::default() })
            .unwrap();
        assert!(m.alpha0 > 0.0);
        assert!(m.residual.is_finite());
    }

    #[test]
    fn invalid_configs_rejected() {
        let docs = lda_docs(100, 29);
        assert!(Strod::fit(&docs, 10, &StrodConfig { k: 0, ..Default::default() }).is_err());
        assert!(
            Strod::fit(&docs, 10, &StrodConfig { alpha0: Some(-1.0), ..Default::default() })
                .is_err()
        );
    }

    #[test]
    fn auto_threads_matches_single_thread_bitwise() {
        // threads: 0 resolves to all cores; results must still match
        // threads: 1 exactly.
        let docs = lda_docs(600, 31);
        let base = StrodConfig { k: 2, alpha0: Some(0.2), ..Default::default() };
        let one = Strod::fit(&docs, 10, &base).unwrap();
        let auto = Strod::fit(&docs, 10, &StrodConfig { threads: 0, ..base }).unwrap();
        assert_eq!(one.topic_word, auto.topic_word);
        assert_eq!(one.alpha, auto.alpha);
        assert_eq!(one.eigenvalues, auto.eigenvalues);
    }
}
