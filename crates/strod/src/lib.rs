//! STROD — Scalable and Robust Topic discovery by moment-based inference
//! (dissertation Chapter 7).
//!
//! Instead of maximum-likelihood iteration (Gibbs/variational), STROD
//! recovers LDA parameters from the second- and third-order word
//! co-occurrence moments via orthogonal tensor decomposition:
//!
//! 1. [`moments`] — Dirichlet-corrected empirical moments `M1`, the matrix-
//!    free `M2` operator, and the *scalable* construction of the whitened
//!    third moment directly from sparse documents (§7.3.2: the `V³` tensor
//!    is never materialized; cost is `O(nnz·k² + D·k³)`).
//! 2. [`power`] — the robust tensor power method with deflation (§7.3.1),
//!    which converges in a bounded number of iterations.
//! 3. [`strod`] — the single-level STROD algorithm: whiten, decompose,
//!    un-whiten, recover `φ_z` and Dirichlet weights `α_z`, with optional
//!    parallel moment accumulation (PSTROD) and α₀ grid learning (§7.3.3).
//! 4. [`tree`] — recursive construction of a topic tree: each child topic
//!    re-runs STROD on documents reweighted by their topic posterior.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod moments;
pub mod online;
pub mod power;
pub mod strod;
pub mod tree;

pub use moments::{DocStats, M2Op, WhitenedMoments};
pub use online::OnlineStrod;
pub use power::{tensor_power_method, PowerConfig, PowerScratch, TensorEigen};
pub use strod::{Strod, StrodConfig, StrodModel};
pub use tree::{StrodTree, StrodTreeConfig, TreeNode};

/// Errors produced by STROD inference.
#[derive(Debug, Clone, PartialEq)]
pub enum StrodError {
    /// Invalid configuration value.
    InvalidConfig(String),
    /// The corpus has too few usable documents (need length >= 3 docs).
    TooFewDocuments,
    /// Whitening failed: `M2` had fewer than `k` positive eigenvalues.
    RankDeficient {
        /// Requested number of topics.
        requested: usize,
        /// Usable rank found.
        found: usize,
    },
}

impl std::fmt::Display for StrodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StrodError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            StrodError::TooFewDocuments => write!(f, "need documents with >= 3 tokens"),
            StrodError::RankDeficient { requested, found } => {
                write!(f, "M2 rank {found} < requested topics {requested}")
            }
        }
    }
}

impl std::error::Error for StrodError {}
