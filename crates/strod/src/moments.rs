//! Dirichlet-corrected empirical moments, computed matrix-free.
//!
//! For LDA with Dirichlet parameter `α` (`α₀ = Σ α_z`), the corrected
//! moments (Anandkumar et al. \[5\], as used by §7.3.1) are:
//!
//! ```text
//! M2 = E[x1 ⊗ x2] − c2 · M1 ⊗ M1,                 c2 = α0/(α0+1)
//! M3 = E[x1⊗x2⊗x3] − c3 · sym(E[x1⊗x2] ⊗ M1) + c1 · M1⊗M1⊗M1
//!      c3 = α0/(α0+2),  c1 = 2α0²/((α0+1)(α0+2))
//! ```
//!
//! and satisfy `M2 = Σ_z w_z μ_z μ_z^T`, `M3 = Σ_z w'_z μ_z^⊗3`. We never
//! materialize the `V×V` matrix or the `V³` tensor: `M2` is exposed as a
//! [`lesm_linalg::SymOp`] and the *whitened* third moment `T = M3(W,W,W)`
//! is accumulated document by document (§7.3.2).

use crate::StrodError;
use lesm_linalg::{Mat, SparseRows, SymOp, Tensor3};

/// Per-document sufficient statistics for moment estimation: sparse word
/// counts plus document lengths.
#[derive(Debug, Clone)]
pub struct DocStats {
    /// Sparse per-document word counts.
    pub counts: SparseRows,
    /// Per-document weights (1.0 for plain corpora; topic posteriors when
    /// recursing down a topic tree).
    pub weights: Vec<f64>,
    /// Cached per-document token totals.
    lengths: Vec<f64>,
    /// Cached M1 under the current weights.
    m1: Vec<f64>,
    /// Sum of weights over usable documents (length >= 3).
    usable_weight: f64,
}

impl DocStats {
    /// Builds statistics from token-id documents with uniform weights.
    pub fn from_docs(docs: &[Vec<u32>], vocab_size: usize) -> Result<Self, StrodError> {
        let mut counts = SparseRows::new(vocab_size);
        for doc in docs {
            let mut m: std::collections::HashMap<u32, f64> = std::collections::HashMap::new();
            for &w in doc {
                *m.entry(w).or_insert(0.0) += 1.0;
            }
            let mut pairs: Vec<(u32, f64)> = m.into_iter().collect();
            pairs.sort_unstable_by_key(|&(w, _)| w);
            counts.push_row(&pairs);
        }
        Self::from_counts(counts, vec![1.0; docs.len()])
    }

    /// Builds statistics from pre-computed sparse counts and weights.
    pub fn from_counts(counts: SparseRows, weights: Vec<f64>) -> Result<Self, StrodError> {
        assert_eq!(counts.rows(), weights.len());
        let lengths: Vec<f64> = (0..counts.rows()).map(|d| counts.row_sum(d)).collect();
        let mut usable_weight = 0.0;
        for (d, &l) in lengths.iter().enumerate() {
            if l >= 3.0 && weights[d] > 0.0 {
                usable_weight += weights[d];
            }
        }
        if usable_weight <= 0.0 {
            return Err(StrodError::TooFewDocuments);
        }
        // M1 = weighted mean of per-doc word frequencies.
        let mut m1 = vec![0.0; counts.cols()];
        for d in 0..counts.rows() {
            let (l, w) = (lengths[d], weights[d]);
            if l < 3.0 || w <= 0.0 {
                continue;
            }
            counts.row_axpy(d, w / l, &mut m1);
        }
        for v in &mut m1 {
            *v /= usable_weight;
        }
        Ok(Self { counts, weights, lengths, m1, usable_weight })
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.counts.cols()
    }

    /// The first moment `M1`.
    pub fn m1(&self) -> &[f64] {
        &self.m1
    }

    /// Total weight of usable documents.
    pub fn usable_weight(&self) -> f64 {
        self.usable_weight
    }

    /// Whether document `d` participates in moment estimation.
    #[inline]
    fn usable(&self, d: usize) -> bool {
        self.lengths[d] >= 3.0 && self.weights[d] > 0.0
    }
}

/// The Dirichlet-corrected second moment as a matrix-free symmetric
/// operator: `y = M2 x` computed in `O(nnz)` per application.
#[derive(Debug)]
pub struct M2Op<'a> {
    stats: &'a DocStats,
    alpha0: f64,
}

impl<'a> M2Op<'a> {
    /// Wraps `stats` with concentration `alpha0`.
    pub fn new(stats: &'a DocStats, alpha0: f64) -> Self {
        Self { stats, alpha0 }
    }
}

impl SymOp for M2Op<'_> {
    fn dim(&self) -> usize {
        self.stats.vocab_size()
    }

    fn apply(&self, x: &[f64], y: &mut [f64]) {
        let s = self.stats;
        // E[x1 ⊗ x2] x  =  mean_d [ (c·x) c − diag(c) x ] / (l (l−1))
        for d in 0..s.counts.rows() {
            if !s.usable(d) {
                continue;
            }
            let l = s.lengths[d];
            let scale = s.weights[d] / (l * (l - 1.0)) / s.usable_weight;
            let cx = s.counts.row_dot(d, x);
            for (w, c) in s.counts.row(d) {
                let w = w as usize;
                y[w] += scale * (cx * c - c * x[w]);
            }
        }
        // − α0/(α0+1) (M1 · x) M1
        let shift = self.alpha0 / (self.alpha0 + 1.0) * lesm_linalg::dot(&s.m1, x);
        for (yi, &m) in y.iter_mut().zip(&s.m1) {
            *yi -= shift * m;
        }
    }
}

/// Whitened second/third moments ready for tensor decomposition.
#[derive(Debug, Clone)]
pub struct WhitenedMoments {
    /// `V x k` whitening matrix (`W^T M2 W = I`).
    pub w: Mat,
    /// `V x k` un-whitening matrix `B = M2 W` (`B = (W^T)^+`).
    pub b: Mat,
    /// Positive eigenvalues of `M2` used for whitening.
    pub eigenvalues: Vec<f64>,
    /// The whitened third moment `T = M3(W, W, W)`, a `k³` dense tensor.
    pub t3: Tensor3,
}

impl WhitenedMoments {
    /// Computes the whitening transform (top-k eigenpairs of the `M2`
    /// operator via subspace iteration) and accumulates the whitened third
    /// moment directly from the documents.
    pub fn compute(
        stats: &DocStats,
        k: usize,
        alpha0: f64,
        seed: u64,
        parallel_threads: usize,
    ) -> Result<Self, StrodError> {
        if k == 0 {
            return Err(StrodError::InvalidConfig("k must be >= 1".into()));
        }
        let op = M2Op::new(stats, alpha0);
        let eig = lesm_linalg::topk_eigen_threads(&op, k, 300, 1e-10, seed, parallel_threads);
        let positive = eig.values.iter().filter(|&&v| v > 1e-12).count();
        if positive < k {
            return Err(StrodError::RankDeficient { requested: k, found: positive });
        }
        let v = stats.vocab_size();
        // The whitening block is assembled transposed (one contiguous row
        // per whitened direction) so the operator applications below read
        // and write contiguous memory with no per-column gathers.
        let mut wt = Mat::zeros(k, v);
        for c in 0..k {
            let scale = 1.0 / eig.values[c].sqrt();
            for r in 0..v {
                wt[(c, r)] = eig.vectors[(r, c)] * scale;
            }
        }
        // B = M2 W column by column (matrix-free). Columns are independent
        // applications of the operator, so they parallelize exactly. The
        // per-application cost is O(nnz), unknown here, so the hint stays
        // HEAVY.
        let mut bt = Mat::zeros(k, v);
        lesm_par::par_for_rows_hinted(
            bt.as_mut_slice(),
            v,
            parallel_threads,
            lesm_par::WorkHint::HEAVY,
            |c, y| op.apply(wt.row(c), y),
        );
        let w = wt.transpose();
        let b = bt.transpose();
        let t3 = whitened_third_moment(stats, &w, alpha0, parallel_threads);
        Ok(Self { w, b, eigenvalues: eig.values, t3 })
    }
}

/// Number of document chunks the moment accumulation is split into.
///
/// Fixed (never derived from the thread count) so that the chunk layout —
/// and therefore the floating-point summation grouping — is identical for
/// any degree of parallelism. 64 pieces keep up to 64 threads busy while
/// the `O(pieces · k³)` merge stays negligible.
const MOMENT_PIECES: usize = 64;

/// Accumulates `T = M3(W, W, W)` from sparse documents (§7.3.2). With
/// `threads > 1`, document chunks are spread across scoped worker threads
/// (the PSTROD variant); the chunk layout and the left-to-right fold of
/// partial tensors are fixed, so the result is bit-identical to
/// `threads = 1`.
pub fn whitened_third_moment(stats: &DocStats, w: &Mat, alpha0: f64, threads: usize) -> Tensor3 {
    let k = w.cols();
    let (k3, k2) = (k * k * k, k * k);
    let n_docs = stats.counts.rows();
    let grain = lesm_par::grain_for_pieces(n_docs, MOMENT_PIECES);
    // Each distinct (doc, word) pair costs two k³ rank-one updates plus a
    // k² pair update.
    let hint = lesm_par::WorkHint::units(
        (stats.counts.nnz() as u64).saturating_mul((2 * k3 + k2) as u64),
    );
    let flat =
        lesm_par::par_buffer_reduce_hinted(n_docs, grain, threads, hint, k3 + k2, |range, buf| {
            accumulate_range(stats, w, range, buf);
        });
    let total = Tensor3::from_vec(k, flat[..k3].to_vec());
    let pair = Mat::from_vec(k, k, flat[k3..].to_vec());
    let mut t3 = finish_t3(stats, w, alpha0, total, pair, threads);
    // Symmetrize against floating-point drift.
    symmetrize(&mut t3);
    t3
}

/// Per-document accumulation of the raw whitened triple moment and the
/// whitened pair moment `P = W^T E[x1⊗x2] W`, written directly into the
/// reduce buffer `buf = [t3 (k³) | pair (k²)]` — no per-chunk `Tensor3` or
/// `Mat` temporaries and no final copy.
fn accumulate_range(stats: &DocStats, w: &Mat, range: std::ops::Range<usize>, buf: &mut [f64]) {
    let k = w.cols();
    let (tbuf, pairbuf) = buf.split_at_mut(k * k * k);
    let mut wc = vec![0.0f64; k];
    for d in range {
        if !stats.usable(d) {
            continue;
        }
        let l = stats.lengths[d];
        let weight = stats.weights[d] / stats.usable_weight;
        let s3 = weight / (l * (l - 1.0) * (l - 2.0));
        let s2 = weight / (l * (l - 1.0));
        // wc = W^T c  (sparse).
        wc.iter_mut().for_each(|x| *x = 0.0);
        for (word, c) in stats.counts.row(d) {
            let row = w.row(word as usize);
            for (acc, &wv) in wc.iter_mut().zip(row) {
                *acc += c * wv;
            }
        }
        // Triples with distinct positions:
        // wc⊗³ − Σ_i c_i sym(w_i ⊗ w_i ⊗ wc) + 2 Σ_i c_i w_i⊗³.
        lesm_linalg::rank_one_into(tbuf, s3, &wc);
        for (word, c) in stats.counts.row(d) {
            let wi = w.row(word as usize);
            lesm_linalg::sym_rank_one_pair_into(tbuf, -s3 * c, wi, &wc);
            lesm_linalg::rank_one_into(tbuf, 2.0 * s3 * c, wi);
            // Pair moment: wc⊗wc − Σ_i c_i w_i⊗w_i, scaled by 1/(l(l−1)).
            let sc = s2 * c;
            for (a, &wia) in wi.iter().enumerate() {
                let fa = sc * wia;
                for (p, &wib) in pairbuf[a * k..(a + 1) * k].iter_mut().zip(wi) {
                    *p -= fa * wib;
                }
            }
        }
        for (a, &wca) in wc.iter().enumerate() {
            let fa = s2 * wca;
            for (p, &wcb) in pairbuf[a * k..(a + 1) * k].iter_mut().zip(&wc) {
                *p += fa * wcb;
            }
        }
    }
}

/// Applies the Dirichlet corrections in whitened space.
fn finish_t3(
    stats: &DocStats,
    w: &Mat,
    alpha0: f64,
    mut t: Tensor3,
    pair: Mat,
    threads: usize,
) -> Tensor3 {
    let k = w.cols();
    let m1w = w.tmatvec_threads(stats.m1(), threads); // W^T M1
    let c3 = alpha0 / (alpha0 + 2.0);
    let c1 = 2.0 * alpha0 * alpha0 / ((alpha0 + 1.0) * (alpha0 + 2.0));
    // − c3 · sym(P ⊗ m1w): for each (i,j,l): P_ij m_l + P_il m_j + P_jl m_i.
    // Row slices and the (i,j)-invariant products are hoisted out of the
    // inner loop; the sum itself keeps the original operand order, so the
    // result is bit-identical to the naive triple loop.
    for i in 0..k {
        let mi = m1w[i];
        for j in 0..k {
            let mj = m1w[j];
            let pij = pair[(i, j)];
            let pi = pair.row(i);
            let pj = pair.row(j);
            for l in 0..k {
                let corr = pij * m1w[l] + pi[l] * mj + pj[l] * mi;
                t.add(i, j, l, -c3 * corr);
            }
        }
    }
    t.add_rank_one(c1, &m1w);
    t
}

fn symmetrize(t: &mut Tensor3) {
    let k = t.dim();
    for i in 0..k {
        for j in i..k {
            for l in j..k {
                let avg = (t.get(i, j, l)
                    + t.get(i, l, j)
                    + t.get(j, i, l)
                    + t.get(j, l, i)
                    + t.get(l, i, j)
                    + t.get(l, j, i))
                    / 6.0;
                for (a, b, c) in
                    [(i, j, l), (i, l, j), (j, i, l), (j, l, i), (l, i, j), (l, j, i)]
                {
                    let cur = t.get(a, b, c);
                    t.add(a, b, c, avg - cur);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Synthetic LDA corpus with two near-disjoint topics.
    fn lda_docs(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let phi: [Vec<f64>; 2] = [
            vec![0.3, 0.3, 0.2, 0.1, 0.05, 0.02, 0.01, 0.01, 0.005, 0.005],
            vec![0.005, 0.005, 0.01, 0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.3],
        ];
        (0..n)
            .map(|_| {
                // Near-single-topic docs (small alpha regime).
                let t = rng.gen_range(0..2usize);
                (0..20)
                    .map(|_| {
                        let u: f64 = rng.gen();
                        let mut acc = 0.0;
                        for (w, &p) in phi[t].iter().enumerate() {
                            acc += p;
                            if u <= acc {
                                return w as u32;
                            }
                        }
                        9
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn m1_is_a_distribution() {
        let docs = lda_docs(200, 1);
        let stats = DocStats::from_docs(&docs, 10).unwrap();
        let s: f64 = stats.m1().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn m2_operator_is_symmetric() {
        let docs = lda_docs(100, 2);
        let stats = DocStats::from_docs(&docs, 10).unwrap();
        let op = M2Op::new(&stats, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let x: Vec<f64> = (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<f64> = (0..10).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut ax = vec![0.0; 10];
        let mut ay = vec![0.0; 10];
        op.apply(&x, &mut ax);
        op.apply(&y, &mut ay);
        let xay = lesm_linalg::dot(&x, &ay);
        let yax = lesm_linalg::dot(&y, &ax);
        assert!((xay - yax).abs() < 1e-10, "asymmetry: {xay} vs {yax}");
    }

    #[test]
    fn whitening_orthogonalizes_m2() {
        let docs = lda_docs(800, 4);
        let stats = DocStats::from_docs(&docs, 10).unwrap();
        let wm = WhitenedMoments::compute(&stats, 2, 0.2, 5, 1).unwrap();
        // W^T M2 W should be close to identity: W^T B = W^T (M2 W).
        let k = 2;
        for i in 0..k {
            for j in 0..k {
                let mut s = 0.0;
                for r in 0..10 {
                    s += wm.w[(r, i)] * wm.b[(r, j)];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-6, "W^T M2 W [{i}{j}] = {s}");
            }
        }
    }

    #[test]
    fn whitened_tensor_is_symmetric() {
        let docs = lda_docs(400, 6);
        let stats = DocStats::from_docs(&docs, 10).unwrap();
        let wm = WhitenedMoments::compute(&stats, 2, 0.2, 7, 1).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                for l in 0..2 {
                    let x = wm.t3.get(i, j, l);
                    assert!((x - wm.t3.get(j, i, l)).abs() < 1e-9);
                    assert!((x - wm.t3.get(l, j, i)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn parallel_accumulation_is_bit_identical_to_sequential() {
        let docs = lda_docs(300, 8);
        let stats = DocStats::from_docs(&docs, 10).unwrap();
        let seq = WhitenedMoments::compute(&stats, 2, 0.3, 9, 1).unwrap();
        for threads in 2..=8 {
            let par = WhitenedMoments::compute(&stats, 2, 0.3, 9, threads).unwrap();
            for i in 0..2 {
                for j in 0..2 {
                    for l in 0..2 {
                        assert_eq!(
                            seq.t3.get(i, j, l).to_bits(),
                            par.t3.get(i, j, l).to_bits(),
                            "parallel mismatch at ({i},{j},{l}) with {threads} threads"
                        );
                    }
                }
            }
            assert_eq!(seq.b.as_slice(), par.b.as_slice(), "B mismatch at {threads} threads");
        }
    }

    #[test]
    fn short_docs_rejected() {
        let docs = vec![vec![0, 1], vec![1]];
        assert!(matches!(DocStats::from_docs(&docs, 3), Err(StrodError::TooFewDocuments)));
    }
}
