//! The robust tensor power method (§7.3.1).
//!
//! Extracts (eigenvector, eigenvalue) pairs of a symmetric `k³` tensor by
//! repeated power iterations `v ← T(I, v, v) / ‖·‖` from multiple random
//! starts, keeping the start with the largest `T(v, v, v)` and deflating
//! `T ← T − λ v⊗³`. Unlike Gibbs sampling, the iteration count is bounded
//! a priori — the robustness property Chapter 7 emphasizes.

use lesm_linalg::{normalize, Tensor3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`tensor_power_method`].
#[derive(Debug, Clone)]
pub struct PowerConfig {
    /// Random restarts per factor.
    pub restarts: usize,
    /// Power iterations per restart.
    pub iters: usize,
    /// RNG seed.
    pub seed: u64,
    /// Worker threads for evaluating restarts (`0` = all available
    /// cores). Start vectors are drawn serially and the best restart is
    /// selected by a fixed left-to-right scan, so any value produces
    /// bit-identical results.
    pub threads: usize,
}

impl Default for PowerConfig {
    fn default() -> Self {
        Self { restarts: 10, iters: 40, seed: 42, threads: 1 }
    }
}

/// One recovered tensor eigenpair.
#[derive(Debug, Clone)]
pub struct TensorEigen {
    /// Unit-norm eigenvector in whitened space.
    pub vector: Vec<f64>,
    /// Eigenvalue `λ = T(v, v, v)`.
    pub value: f64,
}

/// Reusable per-worker buffers for the power iteration.
///
/// One scratch lives per worker thread (a single one on the sequential
/// path) and is reused across every restart it processes, so the inner
/// iteration allocates nothing. The buffer is fully overwritten by
/// each contraction before it is read, so scratch reuse can never leak
/// state between restarts — the contract `lesm_par::par_map_collect_scratch`
/// requires for bit-identical results at any thread count.
#[derive(Debug, Default)]
pub struct PowerScratch {
    /// Holds the freshly contracted iterate `T(I, v, v)` each step.
    next: Vec<f64>,
}

impl PowerScratch {
    /// An empty scratch; buffers are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Extracts `k` eigenpairs from a copy of `t` by power iteration with
/// deflation. Pairs are returned in extraction order (descending λ in the
/// noiseless orthogonal case).
pub fn tensor_power_method(t: &Tensor3, k: usize, config: &PowerConfig) -> Vec<TensorEigen> {
    let dim = t.dim();
    let k = k.min(dim);
    let mut work = t.clone();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut out = Vec::with_capacity(k);
    // One restart costs `iters` full k³ contractions.
    let hint = lesm_par::WorkHint::items(
        config.restarts.max(1),
        config.iters.saturating_mul(dim * dim * dim),
    );
    for _ in 0..k {
        let restarts = config.restarts.max(1);
        // Start vectors come from the shared RNG *before* the fan-out, so
        // the stream — and thus every start — is independent of the thread
        // count.
        let starts: Vec<Vec<f64>> = (0..restarts)
            .map(|_| {
                let mut v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                normalize(&mut v);
                v
            })
            .collect();
        let work_ref = &work;
        let candidates = lesm_par::par_map_collect_scratch(
            restarts,
            config.threads,
            hint,
            PowerScratch::new,
            |r, scratch| {
                scratch.next.resize(dim, 0.0);
                let mut v = starts[r].clone();
                for _ in 0..config.iters {
                    work_ref.apply_vv_into(&v, &mut scratch.next);
                    if normalize(&mut scratch.next) <= 1e-300 {
                        break;
                    }
                    std::mem::swap(&mut v, &mut scratch.next);
                }
                let lambda = work_ref.apply_vvv(&v);
                TensorEigen { vector: v, value: lambda }
            },
        );
        // Fixed left-to-right selection with a strictly-greater test —
        // identical tie-breaking to the serial loop it replaces.
        let mut best: Option<TensorEigen> = None;
        for cand in candidates {
            if best.as_ref().is_none_or(|b| cand.value > b.value) {
                best = Some(cand);
            }
        }
        // lesm-lint: allow(R1) — `restarts.max(1)` above guarantees a candidate
        let pair = best.expect("at least one restart");
        work.deflate(pair.value, &pair.vector);
        out.push(pair);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orthogonal_tensor() -> (Tensor3, Vec<(f64, Vec<f64>)>) {
        // T = 3 e1⊗³ + 2 e2⊗³ + 1 e3⊗³ (orthogonal decomposition).
        let mut t = Tensor3::zeros(3);
        let comps = vec![
            (3.0, vec![1.0, 0.0, 0.0]),
            (2.0, vec![0.0, 1.0, 0.0]),
            (1.0, vec![0.0, 0.0, 1.0]),
        ];
        for (w, v) in &comps {
            t.add_rank_one(*w, v);
        }
        (t, comps)
    }

    #[test]
    fn recovers_orthogonal_decomposition() {
        let (t, comps) = orthogonal_tensor();
        let pairs = tensor_power_method(&t, 3, &PowerConfig::default());
        assert_eq!(pairs.len(), 3);
        for (pair, (w, v)) in pairs.iter().zip(&comps) {
            assert!((pair.value - w).abs() < 1e-6, "λ = {} want {w}", pair.value);
            let align = lesm_linalg::dot(&pair.vector, v).abs();
            assert!(align > 1.0 - 1e-6, "vector misaligned: {align}");
        }
    }

    #[test]
    fn recovers_rotated_decomposition() {
        // Rotate the basis by 45° in the (0,1)-plane.
        let s = std::f64::consts::FRAC_1_SQRT_2;
        let u1 = vec![s, s, 0.0];
        let u2 = vec![s, -s, 0.0];
        let mut t = Tensor3::zeros(3);
        t.add_rank_one(5.0, &u1);
        t.add_rank_one(2.5, &u2);
        let pairs = tensor_power_method(&t, 2, &PowerConfig::default());
        assert!((pairs[0].value - 5.0).abs() < 1e-6);
        assert!(lesm_linalg::dot(&pairs[0].vector, &u1).abs() > 1.0 - 1e-6);
        assert!((pairs[1].value - 2.5).abs() < 1e-5);
        assert!(lesm_linalg::dot(&pairs[1].vector, &u2).abs() > 1.0 - 1e-5);
    }

    #[test]
    fn deflation_leaves_small_residual() {
        let (t, _) = orthogonal_tensor();
        let pairs = tensor_power_method(&t, 3, &PowerConfig::default());
        let mut residual = t.clone();
        for p in &pairs {
            residual.deflate(p.value, &p.vector);
        }
        assert!(residual.max_abs() < 1e-6, "residual {}", residual.max_abs());
    }

    #[test]
    fn deterministic_given_seed() {
        let (t, _) = orthogonal_tensor();
        let a = tensor_power_method(&t, 3, &PowerConfig::default());
        let b = tensor_power_method(&t, 3, &PowerConfig::default());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.value, y.value);
            assert_eq!(x.vector, y.vector);
        }
    }

    #[test]
    fn parallel_restarts_bit_identical_to_serial() {
        let (t, _) = orthogonal_tensor();
        let serial = tensor_power_method(&t, 3, &PowerConfig::default());
        for threads in 2..=8 {
            let par =
                tensor_power_method(&t, 3, &PowerConfig { threads, ..PowerConfig::default() });
            assert_eq!(serial.len(), par.len());
            for (a, b) in serial.iter().zip(&par) {
                assert_eq!(a.value.to_bits(), b.value.to_bits(), "threads={threads}");
                assert_eq!(a.vector, b.vector, "threads={threads}");
            }
        }
    }

    #[test]
    fn scratch_iteration_bit_identical_to_allocating_reference() {
        // Reference: the pre-scratch implementation — a fresh `apply_vv`
        // allocation every iteration. The PowerScratch path must match it
        // bit for bit.
        let (t, _) = orthogonal_tensor();
        let config = PowerConfig::default();
        let dim = t.dim();
        let mut work = t.clone();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut reference = Vec::new();
        for _ in 0..3 {
            let starts: Vec<Vec<f64>> = (0..config.restarts)
                .map(|_| {
                    let mut v: Vec<f64> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                    normalize(&mut v);
                    v
                })
                .collect();
            let mut best: Option<TensorEigen> = None;
            for start in &starts {
                let mut v = start.clone();
                for _ in 0..config.iters {
                    let mut next = work.apply_vv(&v);
                    if normalize(&mut next) <= 1e-300 {
                        break;
                    }
                    v = next;
                }
                let lambda = work.apply_vvv(&v);
                let cand = TensorEigen { vector: v, value: lambda };
                if best.as_ref().is_none_or(|b| cand.value > b.value) {
                    best = Some(cand);
                }
            }
            let pair = best.unwrap();
            work.deflate(pair.value, &pair.vector);
            reference.push(pair);
        }
        let got = tensor_power_method(&t, 3, &config);
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(a.value.to_bits(), b.value.to_bits());
            assert_eq!(a.vector, b.vector);
        }
    }

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn k_clamped_to_dimension() {
        let (t, _) = orthogonal_tensor();
        let pairs = tensor_power_method(&t, 10, &PowerConfig::default());
        assert_eq!(pairs.len(), 3);
    }
}
