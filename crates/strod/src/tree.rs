//! Recursive topic-tree construction with STROD (§7.2: LDA with topic
//! tree, solved level by level).
//!
//! The root level runs STROD on the whole corpus. For each recovered topic
//! `z`, documents are reweighted by their posterior `p(z | d)` and STROD
//! runs again on the weighted moments — the conditioning step that makes
//! the recursion consistent with the recursive CATHY construction while
//! keeping the bounded-iteration robustness of moment inference.

use crate::moments::DocStats;
use crate::strod::{Strod, StrodConfig, StrodModel};
use crate::StrodError;
use lesm_linalg::SparseRows;

/// Configuration for [`StrodTree::construct`].
#[derive(Debug, Clone)]
pub struct StrodTreeConfig {
    /// Children per node at each level (e.g. `[5, 4]`).
    pub branching: Vec<usize>,
    /// Base STROD settings (k is overridden per level).
    pub strod: StrodConfig,
    /// Minimum effective document weight required to expand a node.
    pub min_doc_weight: f64,
}

impl Default for StrodTreeConfig {
    fn default() -> Self {
        Self { branching: vec![5, 4], strod: StrodConfig::default(), min_doc_weight: 20.0 }
    }
}

/// One node of the constructed topic tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Parent index (`None` at the root).
    pub parent: Option<usize>,
    /// Child indices.
    pub children: Vec<usize>,
    /// Depth (root = 0).
    pub level: usize,
    /// Path notation `o/1/2`.
    pub path: String,
    /// Topic-word distribution (uniform placeholder at the root).
    pub topic_word: Vec<f64>,
    /// Dirichlet weight of this topic within its parent's decomposition.
    pub alpha: f64,
    /// Per-document weights used when this node was expanded.
    pub doc_weights: Vec<f64>,
}

/// A topic tree built by recursive STROD.
#[derive(Debug, Clone)]
pub struct StrodTree {
    /// Nodes; index 0 is the root.
    pub nodes: Vec<TreeNode>,
    /// The per-node fitted models for expanded nodes.
    pub models: Vec<Option<StrodModel>>,
}

impl StrodTree {
    /// Builds the tree.
    pub fn construct(
        docs: &[Vec<u32>],
        vocab_size: usize,
        config: &StrodTreeConfig,
    ) -> Result<Self, StrodError> {
        if config.branching.is_empty() {
            return Err(StrodError::InvalidConfig("branching must be non-empty".into()));
        }
        if config.branching.contains(&0) {
            return Err(StrodError::InvalidConfig("branching factors must be >= 1".into()));
        }
        // Shared sparse counts; nodes differ only in weights.
        let base = DocStats::from_docs(docs, vocab_size)?;
        let counts: &SparseRows = &base.counts;
        let n_docs = counts.rows();
        let uniform = 1.0 / vocab_size.max(1) as f64;
        let mut tree = StrodTree {
            nodes: vec![TreeNode {
                parent: None,
                children: vec![],
                level: 0,
                path: "o".into(),
                topic_word: vec![uniform; vocab_size],
                alpha: 1.0,
                doc_weights: vec![1.0; n_docs],
            }],
            models: vec![None],
        };
        let mut frontier = vec![0usize];
        for (level, &k) in config.branching.iter().enumerate() {
            let mut next = Vec::new();
            for &node in &frontier {
                let weights = tree.nodes[node].doc_weights.clone();
                let eff: f64 = weights.iter().sum();
                if eff < config.min_doc_weight {
                    continue;
                }
                let stats = match DocStats::from_counts(counts.clone(), weights.clone()) {
                    Ok(s) => s,
                    Err(StrodError::TooFewDocuments) => continue,
                    Err(e) => return Err(e),
                };
                let cfg = StrodConfig { k, ..config.strod.clone() };
                let model = match Strod::fit_stats(&stats, &cfg) {
                    Ok(m) => m,
                    Err(StrodError::RankDeficient { .. }) => continue,
                    Err(e) => return Err(e),
                };
                // Child document weights: parent weight × posterior.
                let mut child_weights: Vec<Vec<f64>> = vec![vec![0.0; n_docs]; k];
                for d in 0..n_docs {
                    if weights[d] <= 0.0 || counts.row_sum(d) < 3.0 {
                        continue;
                    }
                    let post = model.doc_posterior(counts.row(d));
                    for z in 0..k {
                        child_weights[z][d] = weights[d] * post[z];
                    }
                }
                for z in 0..k {
                    let idx = tree.nodes.len();
                    let path = format!("{}/{}", tree.nodes[node].path, z + 1);
                    tree.nodes.push(TreeNode {
                        parent: Some(node),
                        children: vec![],
                        level: level + 1,
                        path,
                        topic_word: model.topic_word[z].clone(),
                        alpha: model.alpha[z],
                        doc_weights: std::mem::take(&mut child_weights[z]),
                    });
                    tree.models.push(None);
                    tree.nodes[node].children.push(idx);
                    next.push(idx);
                }
                tree.models[node] = Some(model);
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        Ok(tree)
    }

    /// Number of nodes including the root.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty (never true after `construct`).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Top `n` words of node `t`.
    pub fn top_words(&self, t: usize, n: usize) -> Vec<(u32, f64)> {
        let mut idx: Vec<(u32, f64)> =
            self.nodes[t].topic_word.iter().enumerate().map(|(w, &p)| (w as u32, p)).collect();
        idx.sort_by(|a, b| b.1.total_cmp(&a.1));
        idx.truncate(n);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// 2 super-topics × 2 subtopics over 16 words: super A uses 0..8 with
    /// subtopics 0..4 / 4..8; super B uses 8..16 likewise.
    fn nested_docs(n: usize, seed: u64) -> Vec<Vec<u32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let sup = rng.gen_range(0..2u32);
                let sub = rng.gen_range(0..2u32);
                let base = sup * 8 + sub * 4;
                (0..20)
                    .map(|_| {
                        // 80% subtopic words, 20% sibling leak within super.
                        if rng.gen_bool(0.8) {
                            base + rng.gen_range(0..4)
                        } else {
                            sup * 8 + rng.gen_range(0..8)
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn builds_two_level_tree_and_separates_supertopics() {
        let docs = nested_docs(2500, 31);
        let cfg = StrodTreeConfig {
            branching: vec![2, 2],
            strod: StrodConfig { k: 2, alpha0: Some(0.3), ..Default::default() },
            min_doc_weight: 10.0,
        };
        let tree = StrodTree::construct(&docs, 16, &cfg).unwrap();
        assert_eq!(tree.nodes[0].children.len(), 2);
        let c0 = tree.nodes[0].children[0];
        let c1 = tree.nodes[0].children[1];
        let mass_low = |t: usize| tree.nodes[t].topic_word[..8].iter().sum::<f64>();
        assert!(
            (mass_low(c0) > 0.8) != (mass_low(c1) > 0.8),
            "supertopics not separated: {:.2} vs {:.2}",
            mass_low(c0),
            mass_low(c1)
        );
        // Second level exists for at least one branch.
        assert!(tree.nodes[c0].children.len() == 2 || tree.nodes[c1].children.len() == 2);
    }

    #[test]
    fn child_weights_partition_parent() {
        let docs = nested_docs(800, 37);
        let cfg = StrodTreeConfig {
            branching: vec![2],
            strod: StrodConfig { k: 2, alpha0: Some(0.3), ..Default::default() },
            min_doc_weight: 10.0,
        };
        let tree = StrodTree::construct(&docs, 16, &cfg).unwrap();
        let c0 = tree.nodes[0].children[0];
        let c1 = tree.nodes[0].children[1];
        for d in 0..docs.len() {
            let total = tree.nodes[c0].doc_weights[d] + tree.nodes[c1].doc_weights[d];
            assert!(total <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn invalid_branching_rejected() {
        let docs = nested_docs(100, 41);
        assert!(StrodTree::construct(
            &docs,
            16,
            &StrodTreeConfig { branching: vec![], ..Default::default() }
        )
        .is_err());
        assert!(StrodTree::construct(
            &docs,
            16,
            &StrodTreeConfig { branching: vec![0], ..Default::default() }
        )
        .is_err());
    }
}
