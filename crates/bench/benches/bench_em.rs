//! Criterion micro-benches for the CATHYHIN EM (the Chapter-3 kernel):
//! per-fit cost across network sizes and weight modes, plus the learned-
//! weight ablation called out in DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lesm_bench::datasets::dblp_small;
use lesm_hier::em::{CathyHinEm, EdgeState, EmConfig, WeightMode};
use lesm_net::collapsed_network;

fn em_config(weights: WeightMode) -> EmConfig {
    EmConfig {
        k: 2,
        iters: 30,
        restarts: 1,
        seed: 5,
        background: true,
        weights,
        ..EmConfig::default()
    }
}

fn bench_em(c: &mut Criterion) {
    let mut group = c.benchmark_group("cathyhin_em");
    group.sample_size(10);
    for &n_docs in &[200usize, 400, 800] {
        let papers = dblp_small(n_docs, 7);
        let net = collapsed_network(&papers.corpus);
        group.bench_with_input(BenchmarkId::new("fit_equal_30it", n_docs), &net, |b, net| {
            b.iter(|| CathyHinEm::fit(net, &em_config(WeightMode::Equal)).unwrap());
        });
    }
    let papers = dblp_small(400, 7);
    let net = collapsed_network(&papers.corpus);
    for (name, mode) in [
        ("equal", WeightMode::Equal),
        ("normalized", WeightMode::Normalized),
        ("learned", WeightMode::Learned),
    ] {
        group.bench_function(BenchmarkId::new("weight_mode", name), |b| {
            b.iter(|| CathyHinEm::fit(&net, &em_config(mode.clone())).unwrap());
        });
    }
    // 1-vs-N-thread scaling on the largest network (the perf-PR headline
    // number; outputs are bit-identical across the variants).
    let papers = dblp_small(800, 7);
    let net = collapsed_network(&papers.corpus);
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("fit_threads", threads), &threads, |b, &t| {
            b.iter(|| {
                CathyHinEm::fit(&net, &EmConfig { threads: t, ..em_config(WeightMode::Equal) })
                    .unwrap()
            });
        });
    }
    // BIC-sweep access pattern: repeated fits of the same network at
    // growing k against one shared EdgeState (what `select_k` does).
    let state = EdgeState::new(&net);
    for &k in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("fit_k", k), &k, |b, &k| {
            b.iter(|| {
                CathyHinEm::fit_prepared(&state, &EmConfig { k, ..em_config(WeightMode::Equal) })
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_em);
criterion_main!(benches);
