//! Criterion micro-benches comparing the topic-model substrates: LDA,
//! PhraseLDA, PLSA, NetClus, and STROD on a common corpus (fixed, small
//! iteration budgets so per-iteration costs are comparable).

use criterion::{criterion_group, criterion_main, Criterion};
use lesm_bench::datasets::{dblp_small, labeled};
use lesm_phrases::topmine::{FrequentPhrases, Segmenter, SegmenterConfig};
use lesm_strod::{Strod, StrodConfig};
use lesm_topicmodel::lda::{Lda, LdaConfig};
use lesm_topicmodel::netclus::{NetClus, NetClusConfig};
use lesm_topicmodel::phrase_lda::{PhraseLda, PhraseLdaConfig};
use lesm_topicmodel::plsa::{Plsa, PlsaConfig};

fn bench_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("topicmodels");
    group.sample_size(10);
    let lc = labeled(1_500, 5, 23);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let v = lc.corpus.num_words();
    group.bench_function("lda_50it", |b| {
        b.iter(|| Lda::fit(&docs, v, &LdaConfig { k: 5, iters: 50, ..Default::default() }));
    });
    group.bench_function("plsa_50it", |b| {
        b.iter(|| Plsa::fit(&docs, v, &PlsaConfig { k: 5, iters: 50, ..Default::default() }));
    });
    let fp = FrequentPhrases::mine(&docs, 5, 4);
    let segs = Segmenter::segment(&docs, &fp, &SegmenterConfig { alpha: 2.0 });
    group.bench_function("phrase_lda_50it", |b| {
        b.iter(|| {
            PhraseLda::fit(&segs, v, &PhraseLdaConfig { k: 5, iters: 50, ..Default::default() })
        });
    });
    group.bench_function("strod_k5", |b| {
        b.iter(|| {
            Strod::fit(&docs, v, &StrodConfig { k: 5, alpha0: Some(0.5), ..Default::default() })
                .unwrap()
        });
    });
    let papers = dblp_small(800, 29);
    group.bench_function("netclus_30it", |b| {
        b.iter(|| {
            NetClus::fit(&papers.corpus, &NetClusConfig { k: 4, iters: 30, ..Default::default() })
        });
    });
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
