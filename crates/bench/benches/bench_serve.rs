//! Criterion micro-benches for the serving subsystem: cold snapshot-load
//! time and end-to-end query latency over HTTP, cached vs uncached (the
//! DESIGN.md §9 numbers collected by `scripts/bench_smoke.sh` into
//! `BENCH_serve.json`).

use criterion::{criterion_group, criterion_main, Criterion};
use lesm_bench::datasets::dblp_small;
use lesm_core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm_serve::server::{Server, ServerConfig};
use lesm_serve::{load_snapshot, save_snapshot, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn snapshot_bytes() -> Vec<u8> {
    let papers = dblp_small(400, 7);
    let mut config = MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    let mined = LatentStructureMiner::mine(&papers.corpus, &config).expect("mine");
    save_snapshot(&papers.corpus, &mined)
}

fn start_server(bytes: &[u8], cache_capacity: usize) -> ServerHandle {
    let snap = load_snapshot(bytes).expect("load");
    let config = ServerConfig { workers: 2, cache_capacity, ..ServerConfig::default() };
    Server::start(snap, config).expect("bind")
}

fn get(addr: SocketAddr, target: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    raw
}

fn bench_serve(c: &mut Criterion) {
    let bytes = snapshot_bytes();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Cold start: parse + checksum + rebuild the full structure.
    group.bench_function("snapshot_load_cold", |b| {
        b.iter(|| load_snapshot(&bytes).expect("load"));
    });

    // Uncached query latency: cache disabled, every request re-renders.
    // `/hierarchy` is the heaviest endpoint (full JSON export), so the
    // cached-vs-uncached gap is visible above the TCP round-trip cost;
    // `/search` is also measured as the common-case cheap query.
    {
        let handle = start_server(&bytes, 0);
        let addr = handle.addr();
        group.bench_function("query_hierarchy_uncached", |b| {
            b.iter(|| get(addr, "/hierarchy"));
        });
        group.bench_function("query_search_uncached", |b| {
            b.iter(|| get(addr, "/search?q=model&top=10"));
        });
        handle.shutdown();
    }

    // Cached query latency: same requests, answered from the LRU shard.
    {
        let handle = start_server(&bytes, 1024);
        let addr = handle.addr();
        let _warm = (get(addr, "/hierarchy"), get(addr, "/search?q=model&top=10"));
        group.bench_function("query_hierarchy_cached", |b| {
            b.iter(|| get(addr, "/hierarchy"));
        });
        group.bench_function("query_search_cached", |b| {
            b.iter(|| get(addr, "/search?q=model&top=10"));
        });
        handle.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
