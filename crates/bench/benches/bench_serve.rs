//! Criterion micro-benches for the serving subsystem: cold snapshot-load
//! time (format v1 full-deserialize vs format v2 zero-copy map), and
//! end-to-end query latency over HTTP, cached vs uncached (the
//! DESIGN.md §9 numbers collected by `scripts/bench_smoke.sh` into
//! `BENCH_serve.json`).
//!
//! The cached-vs-uncached pairs double as correctness gates: after
//! timing, the bench asserts the cache-hit median is strictly below the
//! uncached median for `/search`, `/hierarchy`, and `POST /query` (the
//! typed query engine, cached under its target + body key) — a cache
//! that is slower than recomputing is a bug, not a tuning problem.

use criterion::{criterion_group, criterion_main, Criterion};
use lesm_bench::datasets::{dblp_small, replay_model};
use lesm_core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm_serve::server::{Server, ServerConfig};
use lesm_serve::{load_snapshot, save_snapshot, ServerHandle};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn snapshot_bytes() -> Vec<u8> {
    let papers = dblp_small(400, 7);
    let mut config = MinerConfig::default();
    config.hierarchy.max_depth = 1;
    config.phrase_min_support = 2;
    let mined = LatentStructureMiner::mine(&papers.corpus, &config).expect("mine");
    save_snapshot(&papers.corpus, &mined).expect("save")
}

fn start_server(bytes: &[u8], cache_capacity: usize) -> ServerHandle {
    let snap = load_snapshot(bytes).expect("load");
    let config = ServerConfig { workers: 2, cache_capacity, ..ServerConfig::default() };
    Server::start(snap, config).expect("bind")
}

fn get(addr: SocketAddr, target: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    raw
}

fn post(addr: SocketAddr, target: &str, body: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: b\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    raw
}

/// `cargo test` runs bench targets with `--test`; setup must stay small
/// there (the timings are discarded anyway — `LESM_BENCH_JSON` is unset).
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Median request latency over `n` sequential requests.
fn median_latency_ns(addr: SocketAddr, target: &str, n: usize) -> u128 {
    let mut times: Vec<u128> = (0..n)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(get(addr, target));
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Median `POST /query` latency over `n` sequential requests.
fn median_post_latency_ns(addr: SocketAddr, target: &str, body: &str, n: usize) -> u128 {
    let mut times: Vec<u128> = (0..n)
        .map(|_| {
            let start = std::time::Instant::now();
            std::hint::black_box(post(addr, target, body));
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

fn bench_serve(c: &mut Criterion) {
    let bytes = snapshot_bytes();
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);

    // Cold start: parse + checksum + rebuild the full structure.
    group.bench_function("snapshot_load_cold", |b| {
        b.iter(|| load_snapshot(&bytes).expect("load"));
    });

    // Uncached query latency: cache disabled, every request re-renders.
    // `/hierarchy` is the heaviest endpoint (full JSON export), so the
    // cached-vs-uncached gap is visible above the TCP round-trip cost;
    // `/search` is also measured as the common-case cheap query.
    // The /query body: a traverse program heavy enough that a cache hit
    // (one LRU lookup keyed on target + body) measurably beats re-running
    // the engine pipeline.
    let query_body = r#"{"steps":[{"filter":{"type":"author"}},{"traverse":{"edge":"coauthor"}},{"traverse":{"edge":"topics"}}],"page":100}"#;
    let (uncached_search, uncached_hier, uncached_query);
    {
        let handle = start_server(&bytes, 0);
        let addr = handle.addr();
        group.bench_function("query_hierarchy_uncached", |b| {
            b.iter(|| get(addr, "/hierarchy"));
        });
        group.bench_function("query_search_uncached", |b| {
            b.iter(|| get(addr, "/search?q=model&top=10"));
        });
        group.bench_function("post_query_uncached", |b| {
            b.iter(|| post(addr, "/query", query_body));
        });
        uncached_search = median_latency_ns(addr, "/search?q=model&top=10", 300);
        uncached_hier = median_latency_ns(addr, "/hierarchy", 300);
        uncached_query = median_post_latency_ns(addr, "/query", query_body, 300);
        handle.shutdown();
    }

    // Cached query latency: same requests, answered from the LRU shard.
    {
        let handle = start_server(&bytes, 1024);
        let addr = handle.addr();
        let _warm = (
            get(addr, "/hierarchy"),
            get(addr, "/search?q=model&top=10"),
            post(addr, "/query", query_body),
        );
        group.bench_function("query_hierarchy_cached", |b| {
            b.iter(|| get(addr, "/hierarchy"));
        });
        group.bench_function("query_search_cached", |b| {
            b.iter(|| get(addr, "/search?q=model&top=10"));
        });
        group.bench_function("post_query_cached", |b| {
            b.iter(|| post(addr, "/query", query_body));
        });
        let cached_search = median_latency_ns(addr, "/search?q=model&top=10", 300);
        let cached_hier = median_latency_ns(addr, "/hierarchy", 300);
        let cached_query = median_post_latency_ns(addr, "/query", query_body, 300);
        handle.shutdown();
        assert!(
            cached_search < uncached_search,
            "cache hit must beat recompute for /search: {cached_search} ns cached vs \
             {uncached_search} ns uncached"
        );
        assert!(
            cached_hier < uncached_hier,
            "cache hit must beat recompute for /hierarchy: {cached_hier} ns cached vs \
             {uncached_hier} ns uncached"
        );
        assert!(
            cached_query < uncached_query,
            "cache hit must beat recompute for POST /query: {cached_query} ns cached vs \
             {uncached_query} ns uncached"
        );
    }

    group.finish();
}

/// Cold-load comparison at serving scale: one 50k-document model saved in
/// both formats. v1 deserializes (and allocates) the whole structure; v2
/// maps the file and only verifies the checksum, so the gap is the whole
/// point of the format (ISSUE acceptance: >= 10x).
fn bench_cold_load_50k(c: &mut Criterion) {
    let docs = if test_mode() { 1_000 } else { 50_000 };
    let (corpus, mined) = replay_model(docs, 42);
    let dir = std::env::temp_dir().join(format!("lesm-bench-coldload-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let v1_path = dir.join("model-v1.lesm");
    let v2_path = dir.join("model-v2.lesm");
    lesm_serve::save_snapshot_file(v1_path.to_str().unwrap(), &corpus, &mined).expect("save v1");
    lesm_serve::save_snapshot_v2_file(v2_path.to_str().unwrap(), &corpus, &mined)
        .expect("save v2");

    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("snapshot_load_cold_v1_50k", |b| {
        b.iter(|| lesm_serve::load_model_file(v1_path.to_str().unwrap()).expect("load v1"));
    });
    group.bench_function("snapshot_load_cold_v2_50k", |b| {
        b.iter(|| lesm_serve::load_model_file(v2_path.to_str().unwrap()).expect("load v2"));
    });
    group.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench_serve, bench_cold_load_50k);
criterion_main!(benches);
