//! Criterion micro-benches for the dense linalg kernels rewritten in the
//! single-core overhaul: blocked matmul (and its transposed variants),
//! the fused tmatvec, and the hoisted symmetric rank-one tensor update
//! versus a naive per-element reference.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use lesm_linalg::{Mat, Tensor3};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_mat(rows: usize, cols: usize, seed: u64) -> Mat {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = Mat::zeros(rows, cols);
    for v in m.as_mut_slice() {
        *v = rng.gen_range(-1.0..1.0);
    }
    m
}

/// The pre-hoist `add_sym_rank_one_pair` update: every product recomputed
/// in the innermost loop. Kept as the baseline the hoisted kernel is
/// measured against.
fn sym_rank_one_pair_naive(t: &mut Tensor3, w: f64, a: &[f64], b: &[f64]) {
    let k = a.len();
    for i in 0..k {
        for j in 0..k {
            for l in 0..k {
                t.add(i, j, l, w * (a[i] * a[j] * b[l] + a[i] * b[j] * a[l] + b[i] * a[j] * a[l]));
            }
        }
    }
}

fn bench_linalg(c: &mut Criterion) {
    let mut group = c.benchmark_group("linalg");
    group.sample_size(10);

    // Square matmul across sizes spanning the blocked kernel's sweet spot.
    for &n in &[32usize, 96, 192] {
        let a = random_mat(n, n, 11);
        let b = random_mat(n, n, 13);
        group.bench_with_input(BenchmarkId::new("matmul", n), &n, |bch, _| {
            bch.iter(|| black_box(&a).matmul(black_box(&b)));
        });
    }

    // Transposed-operand products as used by the subspace iteration:
    // Aᵀ·B (axpy kernel) and A·Bᵀ (dot kernel) on skinny operands.
    let tall_a = random_mat(1024, 16, 17);
    let tall_b = random_mat(1024, 16, 19);
    group.bench_function("matmul_tn_1024x16", |bch| {
        bch.iter(|| black_box(&tall_a).matmul_tn(black_box(&tall_b)));
    });
    let wide_a = random_mat(16, 1024, 23);
    let wide_b = random_mat(16, 1024, 29);
    group.bench_function("matmul_nt_16x1024", |bch| {
        bch.iter(|| black_box(&wide_a).matmul_nt(black_box(&wide_b)));
    });

    // Fused Wᵀx on a vocabulary-shaped matrix (tall, few columns).
    let w = random_mat(4096, 32, 31);
    let x: Vec<f64> = (0..4096).map(|i| (i as f64).sin()).collect();
    group.bench_function("tmatvec_4096x32", |bch| {
        bch.iter(|| black_box(&w).tmatvec(black_box(&x)));
    });

    // Hoisted symmetric rank-one pair update vs the naive reference —
    // the moment-accumulation inner loop (two k³ updates per word).
    let k = 16;
    let mut rng = StdRng::seed_from_u64(37);
    let va: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    let vb: Vec<f64> = (0..k).map(|_| rng.gen_range(-1.0..1.0)).collect();
    group.bench_function("sym_rank_one_naive_k16", |bch| {
        let mut t = Tensor3::zeros(k);
        bch.iter(|| sym_rank_one_pair_naive(&mut t, 0.5, black_box(&va), black_box(&vb)));
    });
    group.bench_function("sym_rank_one_hoisted_k16", |bch| {
        let mut buf = vec![0.0f64; k * k * k];
        bch.iter(|| {
            lesm_linalg::sym_rank_one_pair_into(&mut buf, 0.5, black_box(&va), black_box(&vb))
        });
    });

    group.finish();
}

criterion_group!(benches, bench_linalg);
criterion_main!(benches);
