//! Criterion micro-benches for the STROD kernels: whitening, whitened-
//! tensor accumulation (sequential vs parallel — the PSTROD ablation of
//! DESIGN.md §5), and the tensor power method.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lesm_bench::datasets::labeled;
use lesm_strod::moments::{whitened_third_moment, DocStats, WhitenedMoments};
use lesm_strod::power::{tensor_power_method, PowerConfig};
use lesm_strod::{Strod, StrodConfig};

fn bench_strod(c: &mut Criterion) {
    let mut group = c.benchmark_group("strod");
    group.sample_size(10);
    let lc = labeled(3_000, 5, 17);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let stats = DocStats::from_docs(&docs, lc.corpus.num_words()).unwrap();
    group.bench_function("whiten_k5", |b| {
        b.iter(|| WhitenedMoments::compute(&stats, 5, 0.5, 3, 1).unwrap());
    });
    let wm = WhitenedMoments::compute(&stats, 5, 0.5, 3, 1).unwrap();
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("t3_accumulate", threads), &threads, |b, &t| {
            b.iter(|| whitened_third_moment(&stats, &wm.w, 0.5, t));
        });
    }
    group.bench_function("power_method_k5", |b| {
        b.iter(|| tensor_power_method(&wm.t3, 5, &PowerConfig::default()));
    });
    // 1-vs-N-thread restart fan-out (bit-identical across variants).
    for &threads in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("power_threads", threads), &threads, |b, &t| {
            b.iter(|| {
                tensor_power_method(
                    &wm.t3,
                    5,
                    &PowerConfig { restarts: 32, threads: t, ..PowerConfig::default() },
                )
            });
        });
    }
    // End-to-end: moments → whitening → power method → parameter recovery.
    group.bench_function("strod_fit_k5", |b| {
        let config = StrodConfig { k: 5, ..StrodConfig::default() };
        b.iter(|| Strod::fit_stats(&stats, &config).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_strod);
criterion_main!(benches);
