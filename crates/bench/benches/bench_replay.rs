//! Traffic-replay benchmark for the sharded serve tier.
//!
//! Replays a deterministic endpoint mix (~70% `/search`, ~20%
//! `/topics/{id}`, ~10% `/hierarchy`) against the same 50k-document
//! model served by 1, 2, and 4 shards, and reports the p50 and p99
//! request latency per shard count. Records land in the standard bench
//! JSON schema (`{"id","samples","mean_ns","median_ns"}`, with
//! `median_ns` carrying the percentile named in the id) so
//! `scripts/bench_check.sh` can diff them across PRs; collected into
//! `BENCH_replay.json` by `scripts/bench_smoke.sh`.
//!
//! Every tier runs on this one machine, so shard counts measure fan-out
//! and merge overhead — not capacity. The useful signals are (a) the
//! front tier's added latency staying small and flat as shards grow, and
//! (b) the replayed responses staying byte-identical across shard counts
//! (asserted on every request; the merge protocol of DESIGN.md §13).
//!
//! Knobs: `LESM_REPLAY_RATE=<N>` multiplies the request count (default
//! 1x = 600 requests per shard count); `LESM_BENCH_FAST=1` and `--test`
//! (as passed by `cargo test`) shrink the model and the mix for smoke
//! runs.

use lesm_bench::datasets::replay_model;
use lesm_serve::server::{Server, ServerConfig};
use lesm_serve::ShardBy;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn get(addr: SocketAddr, target: &str) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: b\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read");
    raw
}

/// xorshift64* — a tiny deterministic generator for the request mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The deterministic replay mix: ~70/20/10 search/topics/hierarchy.
fn build_mix(
    corpus: &lesm_corpus::Corpus,
    n_topics: usize,
    requests: usize,
) -> Vec<String> {
    // Query pool: a spread of vocabulary words (every 97th id), so
    // searches hit different topics and different cache keys.
    let vocab_len = corpus.vocab.len().max(1);
    let words: Vec<String> = (0..64)
        .map(|i| corpus.vocab.name_or_unk(((i * 97) % vocab_len) as u32).to_string())
        .collect();
    let mut rng = Rng(0x5eed_0d15_ea5e_0001);
    let mut mix = Vec::with_capacity(requests);
    for _ in 0..requests {
        let roll = rng.below(10);
        mix.push(if roll < 7 {
            let w = &words[rng.below(words.len())];
            format!("/search?q={w}&top=10")
        } else if roll < 9 {
            format!("/topics/{}", rng.below(n_topics))
        } else {
            "/hierarchy".to_string()
        });
    }
    mix
}

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn emit_record(id: &str, times: &[u128], value_ns: u128) {
    let mean = times.iter().sum::<u128>() / times.len() as u128;
    println!("{id:<48} {:.1} us  ({} samples)", value_ns as f64 / 1000.0, times.len());
    if let Ok(path) = std::env::var("LESM_BENCH_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"id\":\"{id}\",\"samples\":{},\"mean_ns\":{mean},\"median_ns\":{value_ns}}}\n",
                times.len()
            );
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("open LESM_BENCH_JSON");
            file.write_all(line.as_bytes()).expect("append bench record");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    if args.iter().any(|a| a == "--list") {
        println!("replay: bench");
        return;
    }
    let fast = test_mode || std::env::var("LESM_BENCH_FAST").is_ok_and(|v| v != "0");
    let rate: usize = std::env::var("LESM_REPLAY_RATE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&r| r > 0)
        .unwrap_or(1);
    let docs = if fast { 2_000 } else { 50_000 };
    let requests = if fast { 60 } else { 600 * rate };

    let (corpus, mined) = replay_model(docs, 42);
    let n_topics = mined.hierarchy.len();
    let mix = build_mix(&corpus, n_topics, requests);

    let base: PathBuf =
        std::env::temp_dir().join(format!("lesm-bench-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);

    // Reference responses from the 1-shard tier, for the byte-identity
    // assertion against every other shard count.
    let mut reference: Vec<Vec<u8>> = Vec::new();
    for &shards in &SHARD_COUNTS {
        let dir = base.join(format!("shards-{shards}"));
        lesm_serve::write_shards(&corpus, &mined, ShardBy::EntityRange, shards, &dir)
            .expect("write shards");
        let handle = Server::start_sharded(
            &dir.join("manifest.json"),
            ServerConfig { workers: 2, ..ServerConfig::default() },
        )
        .expect("boot sharded tier");
        let addr = handle.addr();
        // One warmup pass over a slice of the mix (fills OS socket state;
        // the cache is per-request-key so the replay itself stays mixed).
        for target in mix.iter().take(8) {
            std::hint::black_box(get(addr, target));
        }
        let mut times: Vec<u128> = Vec::with_capacity(mix.len());
        for (i, target) in mix.iter().enumerate() {
            let start = Instant::now();
            let response = get(addr, target);
            times.push(start.elapsed().as_nanos());
            if shards == SHARD_COUNTS[0] {
                reference.push(response);
            } else {
                assert_eq!(
                    response, reference[i],
                    "{target}: {shards}-shard response differs from 1-shard"
                );
            }
        }
        handle.shutdown();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        emit_record(&format!("replay/shards_{shards}/p50"), &times, percentile(&sorted, 0.50));
        emit_record(&format!("replay/shards_{shards}/p99"), &times, percentile(&sorted, 0.99));
    }
    std::fs::remove_dir_all(&base).ok();
}
