//! Query-engine benchmark: the four program families of DESIGN.md §14
//! (filter-only, 2-hop traverse, path enumeration, rank + cursor
//! pagination) executed in-process against the 50k-document replay model.
//!
//! Each family runs through `lesm_query::run_query` — the same entry
//! point `POST /query` and `lesm query` use — so these medians are the
//! engine cost with no HTTP framing on top (the served cached-vs-uncached
//! pair lives in `bench_serve`). Records land in the standard bench JSON
//! schema (`{"id","samples","mean_ns","median_ns"}`) so
//! `scripts/bench_check.sh` can diff them across PRs; collected into
//! `BENCH_query.json` by `scripts/bench_smoke.sh`.
//!
//! Every iteration also asserts the response is byte-identical to the
//! first — a free determinism tripwire at benchmark scale (the e2e tests
//! assert the same across backends and shard counts).
//!
//! Knobs: `LESM_BENCH_FAST=1` and `--test` (as passed by `cargo test`)
//! shrink the model and the sample count for smoke runs.

use lesm_bench::datasets::replay_model;
use lesm_query::{run_query, IndexParts, QueryIndex};
use std::io::Write;
use std::time::Instant;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn emit_record(id: &str, times: &[u128], value_ns: u128) {
    let mean = times.iter().sum::<u128>() / times.len() as u128;
    println!("{id:<48} {:.1} us  ({} samples)", value_ns as f64 / 1000.0, times.len());
    if let Ok(path) = std::env::var("LESM_BENCH_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"id\":\"{id}\",\"samples\":{},\"mean_ns\":{mean},\"median_ns\":{value_ns}}}\n",
                times.len()
            );
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("open LESM_BENCH_JSON");
            file.write_all(line.as_bytes()).expect("append bench record");
        }
    }
}

/// Pulls the `next_cursor` value out of a response body.
fn extract_cursor(response: &str) -> Option<String> {
    let tail = response.split("\"next_cursor\":\"").nth(1)?;
    Some(tail.split('"').next()?.to_string())
}

/// The name of the first author occurrence in the given document — a node
/// guaranteed to exist and to carry coauthor edges.
fn author_in(parts: &IndexParts, doc: usize) -> String {
    let record = &parts.docs[doc];
    let (_, id) = record
        .entities
        .iter()
        .find(|(etype, _)| *etype == 0)
        .expect("replay docs always carry at least one author");
    parts.entity_names[0][*id as usize].clone()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    if args.iter().any(|a| a == "--list") {
        println!("query: bench");
        return;
    }
    let fast = test_mode || std::env::var("LESM_BENCH_FAST").is_ok_and(|v| v != "0");
    let docs = if fast { 2_000 } else { 50_000 };
    let iters = if fast { 10 } else { 50 };

    let (corpus, mined) = replay_model(docs, 42);
    let parts = IndexParts::from_model(&corpus, &mined, None).expect("extract parts");
    let source = author_in(&parts, 0);
    let target = author_in(&parts, parts.docs.len() / 2);
    let leaf = parts.docs[0].leaf;
    let index = QueryIndex::build(parts).expect("build index");

    let families: Vec<(&str, String)> = vec![
        (
            "query/filter_only",
            r#"{"steps":[{"filter":{"type":"doc","years":{"min":2004,"max":2012}}}],"page":100}"#
                .to_string(),
        ),
        (
            "query/traverse_2hop",
            format!(
                r#"{{"steps":[{{"filter":{{"type":"author","name":"{source}"}}}},{{"traverse":{{"edge":"coauthor"}}}},{{"traverse":{{"edge":"coauthor"}}}}],"page":100}}"#
            ),
        ),
        (
            "query/path",
            format!(
                r#"{{"steps":[{{"filter":{{"type":"author","name":"{source}"}}}},{{"path":{{"to":{{"type":"author","name":"{target}"}},"edges":["coauthor"],"max_depth":4,"mode":"paths","limit":100}}}}]}}"#
            ),
        ),
        (
            "query/rank_paginate",
            format!(
                r#"{{"steps":[{{"filter":{{"type":"author"}}}},{{"rank":{{"by":"combined","topic":{leaf},"limit":1000}}}}],"page":100}}"#
            ),
        ),
    ];

    for (id, body) in &families {
        // The pagination family times a full page-1 + cursor-resume pair;
        // everything else times a single request.
        let cursor_body = if *id == "query/rank_paginate" {
            let first = run_query(&index, body).expect("valid program");
            extract_cursor(&first)
                .map(|c| format!(r#"{{"steps":[{{"filter":{{"type":"author"}}}},{{"rank":{{"by":"combined","topic":{leaf},"limit":1000}}}}],"cursor":"{c}"}}"#))
        } else {
            None
        };
        let reference = run_query(&index, body).expect("valid program");
        for _ in 0..3 {
            std::hint::black_box(run_query(&index, body).expect("valid program"));
        }
        let mut times: Vec<u128> = Vec::with_capacity(iters);
        for _ in 0..iters {
            let start = Instant::now();
            let response = run_query(&index, body).expect("valid program");
            if let Some(cb) = &cursor_body {
                std::hint::black_box(run_query(&index, cb).expect("valid cursor resume"));
            }
            times.push(start.elapsed().as_nanos());
            assert_eq!(response, reference, "{id}: response drifted across iterations");
        }
        let mut sorted = times.clone();
        sorted.sort_unstable();
        emit_record(id, &times, percentile(&sorted, 0.50));
    }
}
