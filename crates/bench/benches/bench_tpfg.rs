//! Criterion micro-benches for Chapter-6: candidate-graph preprocessing
//! and TPFG message passing across genealogy sizes, plus the constraint
//! on/off ablation (IndMAX is the "off" arm; DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lesm_bench::datasets::genealogy;
use lesm_relations::baselines::indmax_predict;
use lesm_relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm_relations::tpfg::{Tpfg, TpfgConfig};

fn bench_tpfg(c: &mut Criterion) {
    let mut group = c.benchmark_group("tpfg");
    group.sample_size(10);
    for &n in &[200usize, 400, 800] {
        let gen = genealogy(n, 19);
        group.bench_with_input(BenchmarkId::new("preprocess", n), &gen, |b, gen| {
            b.iter(|| {
                CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
                    .unwrap()
            });
        });
        let graph =
            CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
                .unwrap();
        group.bench_with_input(BenchmarkId::new("infer", n), &graph, |b, graph| {
            b.iter(|| Tpfg::infer(graph, &TpfgConfig::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("indmax", n), &graph, |b, graph| {
            b.iter(|| indmax_predict(graph));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tpfg);
criterion_main!(benches);
