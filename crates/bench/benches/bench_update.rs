//! Incremental-mining benchmark (DESIGN.md §15): `lesm update` economics.
//!
//! Measures the two ways to fold +1% new documents into an existing
//! model over the replay corpus:
//!
//! * `update/remine_full` — mine the merged corpus from scratch (cold
//!   EM with restarts, phrase mining, segmentation over every doc);
//! * `update/incremental_1pct` — `LatentStructureMiner::update`: delta
//!   collapse, warm-started EM under the default convergence budget,
//!   segmentation of the appended tail only.
//!
//! The acceptance target for the incremental path is >= 10x under the
//! full re-mine; the measured ratio is printed with each run. Records
//! land in the standard bench JSON schema
//! (`{"id","samples","mean_ns","median_ns"}`) so `scripts/bench_check.sh`
//! can diff them across PRs; collected into `BENCH_update.json` by
//! `scripts/bench_smoke.sh`.
//!
//! Every iteration also asserts the published v2 artifact is
//! byte-identical to the first — the §15 determinism contract measured
//! at benchmark scale, for both paths.
//!
//! Knobs: `LESM_BENCH_FAST=1` and `--test` (as passed by `cargo test`)
//! shrink the corpus and the sample count for smoke runs.

use lesm_bench::datasets::replay_corpus;
use lesm_core::pipeline::{LatentStructureMiner, MinerConfig};
use lesm_core::UpdateBudget;
use std::io::Write;
use std::time::Instant;

fn percentile(sorted: &[u128], p: f64) -> u128 {
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

fn emit_record(id: &str, times: &[u128], value_ns: u128) {
    let mean = times.iter().sum::<u128>() / times.len() as u128;
    println!("{id:<48} {:.1} ms  ({} samples)", value_ns as f64 / 1e6, times.len());
    if let Ok(path) = std::env::var("LESM_BENCH_JSON") {
        if !path.is_empty() {
            let line = format!(
                "{{\"id\":\"{id}\",\"samples\":{},\"mean_ns\":{mean},\"median_ns\":{value_ns}}}\n",
                times.len()
            );
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
                .expect("open LESM_BENCH_JSON");
            file.write_all(line.as_bytes()).expect("append bench record");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let test_mode = args.iter().any(|a| a == "--test");
    if args.iter().any(|a| a == "--list") {
        println!("update: bench");
        return;
    }
    let fast = test_mode || std::env::var("LESM_BENCH_FAST").is_ok_and(|v| v != "0");
    let base_docs = if fast { 2_000 } else { 50_000 };
    let delta_docs = base_docs / 100; // the +1% tail
    let iters = if fast { 3 } else { 5 };

    // One corpus covering base + delta; the base view truncates the doc
    // list, which matches the append-only contract `update` requires
    // (token and entity ids are interned corpus-wide).
    let full = replay_corpus(base_docs + delta_docs, 42);
    let mut base_corpus = full.clone();
    base_corpus.docs.truncate(base_docs);

    let mut config = MinerConfig::default();
    config.hierarchy.max_depth = 2;
    let budget = UpdateBudget::default();

    // The base model is mined once, outside both timed loops: it is the
    // shared starting state, not part of either path's cost.
    let base = LatentStructureMiner::mine(&base_corpus, &config).expect("mine base");

    // Path A: full re-mine of the merged corpus.
    let mut remine_times: Vec<u128> = Vec::with_capacity(iters);
    let mut remine_reference: Option<Vec<u8>> = None;
    for _ in 0..iters {
        let start = Instant::now();
        let mined = LatentStructureMiner::mine(&full, &config).expect("re-mine");
        remine_times.push(start.elapsed().as_nanos());
        let bytes = lesm_serve::save_snapshot_v2(&full, &mined).expect("save");
        match &remine_reference {
            None => remine_reference = Some(bytes),
            Some(first) => {
                assert_eq!(&bytes, first, "full re-mine drifted across iterations")
            }
        }
    }

    // Path B: warm-started incremental update over the +1% tail.
    let mut update_times: Vec<u128> = Vec::with_capacity(iters);
    let mut update_reference: Option<Vec<u8>> = None;
    for _ in 0..iters {
        let start = Instant::now();
        let updated = LatentStructureMiner::update(&full, &base, base_docs, &config, &budget)
            .expect("incremental update");
        update_times.push(start.elapsed().as_nanos());
        let bytes = lesm_serve::save_snapshot_v2(&full, &updated).expect("save");
        match &update_reference {
            None => update_reference = Some(bytes),
            Some(first) => {
                assert_eq!(&bytes, first, "incremental update drifted across iterations")
            }
        }
    }

    let mut sorted = remine_times.clone();
    sorted.sort_unstable();
    let remine_median = percentile(&sorted, 0.50);
    emit_record("update/remine_full", &remine_times, remine_median);

    let mut sorted = update_times.clone();
    sorted.sort_unstable();
    let update_median = percentile(&sorted, 0.50);
    emit_record("update/incremental_1pct", &update_times, update_median);

    let speedup = remine_median as f64 / update_median.max(1) as f64;
    println!(
        "update/speedup ({base_docs} base + {delta_docs} delta docs): \
         incremental is {speedup:.1}x the full re-mine (target >= 10x)"
    );
}
