//! Criterion micro-benches for Chapter-4 phrase mining: Algorithm 1
//! (frequent contiguous phrases), Algorithm 2 (segmentation), and the
//! ToPMine ablation over the min-support μ and merge threshold α
//! (DESIGN.md §5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lesm_bench::datasets::labeled;
use lesm_phrases::topmine::{FrequentPhrases, Segmenter, SegmenterConfig};

fn bench_phrases(c: &mut Criterion) {
    let mut group = c.benchmark_group("topmine");
    group.sample_size(10);
    for &n in &[1_000usize, 4_000] {
        let lc = labeled(n, 5, 11);
        let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        group.bench_with_input(BenchmarkId::new("mine", n), &docs, |b, docs| {
            b.iter(|| FrequentPhrases::mine(docs, 5, 4));
        });
        let fp = FrequentPhrases::mine(&docs, 5, 4);
        group.bench_with_input(BenchmarkId::new("segment", n), &docs, |b, docs| {
            b.iter(|| Segmenter::segment(docs, &fp, &SegmenterConfig { alpha: 2.0 }));
        });
    }
    // Ablation: support threshold and merge threshold.
    let lc = labeled(2_000, 5, 13);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    for &mu in &[3u64, 10, 30] {
        group.bench_with_input(BenchmarkId::new("mine_min_support", mu), &mu, |b, &mu| {
            b.iter(|| FrequentPhrases::mine(&docs, mu, 4));
        });
    }
    let fp = FrequentPhrases::mine(&docs, 5, 4);
    for &alpha in &[1.0f64, 2.0, 4.0] {
        group.bench_with_input(
            BenchmarkId::new("segment_alpha", format!("{alpha}")),
            &alpha,
            |b, &alpha| {
                b.iter(|| Segmenter::segment(&docs, &fp, &SegmenterConfig { alpha }));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_phrases);
criterion_main!(benches);
