//! Tier-2 guard for the `fit_threads` regression: on a multi-core box,
//! asking the EM for more worker threads must never make it meaningfully
//! slower than one thread. Before the adaptive-dispatch core cap,
//! `threads = 2` on a single-core machine oversubscribed the CPU and lost
//! ~40% to scheduling churn; the cap clamps the fan-out to the cores that
//! exist, and this test keeps that behavior honest where it can be
//! observed.
//!
//! The 1.15x allowance absorbs scoped-thread spawn overhead and timer
//! noise; outputs are bit-identical across thread counts regardless (see
//! the `*_bit_identical_*` tier-1 tests).

use std::time::Instant;

use lesm_bench::datasets::dblp_small;
use lesm_hier::em::{CathyHinEm, EdgeState, EmConfig, WeightMode};
use lesm_net::collapsed_network;

fn fit_config(threads: usize) -> EmConfig {
    EmConfig {
        k: 4,
        iters: 25,
        restarts: 1,
        seed: 5,
        background: true,
        weights: WeightMode::Equal,
        threads,
        ..EmConfig::default()
    }
}

/// Median-of-5 wall time for one prepared fit at the given thread count.
fn median_fit_secs(state: &EdgeState, threads: usize) -> f64 {
    let config = fit_config(threads);
    // Warm-up run: touches the edge arrays and fills the allocator pools.
    CathyHinEm::fit_prepared(state, &config).unwrap();
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            CathyHinEm::fit_prepared(state, &config).unwrap();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

#[test]
fn more_threads_is_never_meaningfully_slower() {
    if lesm_par::effective_threads(0) < 2 {
        eprintln!("skipping: single-core machine, nothing to oversubscribe");
        return;
    }
    let papers = dblp_small(800, 7);
    let net = collapsed_network(&papers.corpus);
    let state = EdgeState::new(&net);
    let single = median_fit_secs(&state, 1);
    for threads in [2usize, 4] {
        let multi = median_fit_secs(&state, threads);
        assert!(
            multi <= single * 1.15,
            "EM with {threads} threads took {multi:.4}s vs {single:.4}s single-threaded \
             (> 1.15x budget)"
        );
    }
}
