//! Table 4.4 — nKQM@K for the KERT variants and the kpRel / kpRelInt*
//! baselines, judged by a simulated 10-judge panel.
//!
//! Expected shape (paper): KERT−pop worst ≪ baselines < KERT−con <
//! KERT−com ≈ KERT < KERT−pur.

use lesm_bench::datasets::labeled;
use lesm_bench::signatures::phrase_quality;
use lesm_bench::{f4, print_table};
use lesm_eval::annotator::SimulatedAnnotator;
use lesm_eval::nkqm::nkqm_at_k;
use lesm_phrases::baselines::{kp_rel, kp_rel_int};
use lesm_phrases::kert::{Kert, KertConfig, KertVariant, TopicalPhrase};
use lesm_topicmodel::lda::{Lda, LdaConfig};

fn main() {
    println!("# Table 4.4 — nKQM@K (simulated 10-judge panel)");
    let lc = labeled(3000, 5, 91);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let k = 5;
    let lda = Lda::fit(&docs, lc.corpus.num_words(), &LdaConfig { k, iters: 150, seed: 5, ..Default::default() });
    let base_cfg = KertConfig { min_support: 5, max_len: 3, top_n: 20, ..Default::default() };
    let patterns = Kert::mine(&docs, &lda.assignments, k, &base_cfg).expect("valid config");

    // Methods: name -> ranked phrases per topic.
    let mut methods: Vec<(String, Vec<Vec<TopicalPhrase>>)> = vec![
        ("kpRel".into(), (0..k).map(|t| kp_rel(&patterns, t, 20)).collect()),
        ("kpRelInt*".into(), (0..k).map(|t| kp_rel_int(&patterns, t, 20)).collect()),
    ];
    for variant in [
        KertVariant::NoPopularity,
        KertVariant::NoConcordance,
        KertVariant::NoCompleteness,
        KertVariant::Full,
        KertVariant::NoPurity,
    ] {
        let cfg = KertConfig { variant, ..base_cfg.clone() };
        let name = match variant {
            KertVariant::Full => "KERT".into(),
            v => format!("KERT-{v:?}"),
        };
        methods.push((name, Kert::rank(&patterns, &cfg)));
    }

    // Judge every distinct phrase once with a 10-judge panel.
    let mut judges = SimulatedAnnotator::panel(7, 10);
    let mut judged: std::collections::HashMap<Vec<u32>, Vec<u8>> = std::collections::HashMap::new();
    for (_, topics) in &methods {
        for t in topics {
            for p in t.iter().take(20) {
                judged.entry(p.tokens.clone()).or_insert_with(|| {
                    let q = phrase_quality(&lc.truth, &p.tokens);
                    judges.iter_mut().map(|j| j.rate(q)).collect()
                });
            }
        }
    }
    let all_scores: Vec<Vec<u8>> = judged.values().cloned().collect();
    let mut rows = Vec::new();
    for (name, topics) in &methods {
        let per_topic: Vec<Vec<Vec<u8>>> = topics
            .iter()
            .map(|t| t.iter().take(20).map(|p| judged[&p.tokens].clone()).collect())
            .collect();
        let cells: Vec<String> = [5usize, 10, 20]
            .iter()
            .map(|&kk| f4(nkqm_at_k(&per_topic, &all_scores, kk, 5)))
            .collect();
        rows.push(vec![name.clone(), cells[0].clone(), cells[1].clone(), cells[2].clone()]);
    }
    print_table("nKQM@K", &["Method", "nKQM@5", "nKQM@10", "nKQM@20"], &rows);
}
