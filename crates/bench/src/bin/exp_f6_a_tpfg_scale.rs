//! §6.1.6 scalability — TPFG preprocessing and inference time vs network
//! size.
//!
//! Expected shape (paper): both stages scale near-linearly in the number
//! of collaboration edges.

use lesm_bench::datasets::genealogy;
use lesm_bench::{f2, print_table, timed};
use lesm_relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm_relations::tpfg::{Tpfg, TpfgConfig};

fn main() {
    println!("# §6.1.6 — TPFG scalability");
    let sizes = [250usize, 500, 1000, 2000];
    let mut rows = Vec::new();
    for (i, &n) in sizes.iter().enumerate() {
        let gen = genealogy(n, 241 + i as u64);
        let n_papers = gen.papers.len();
        let (graph, pre_s) = timed(|| {
            CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
                .expect("candidates")
        });
        let (result, inf_s) = timed(|| Tpfg::infer(&graph, &TpfgConfig::default()).expect("infer"));
        rows.push(vec![
            format!("{n}"),
            format!("{n_papers}"),
            format!("{}", graph.num_edges()),
            f2(pre_s),
            f2(inf_s),
            format!("{}", result.sweeps),
        ]);
    }
    print_table(
        "Runtime vs size",
        &["#authors", "#papers", "#candidates", "preprocess (s)", "inference (s)", "sweeps"],
        &rows,
    );
    println!("\n(per-sweep inference cost is O(#candidate edges): near-linear growth)");
}
