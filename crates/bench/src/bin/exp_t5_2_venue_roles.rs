//! Figure 5.4 / Table 5.2 — venue roles: which topics within a community
//! get published in a given venue.
//!
//! Expected shape (paper): a broad venue (SIGIR-like) covers most of its
//! area's subtopics; a focused venue covers a slice; a shared venue mixes.

use lesm_bench::ch3::miner_config;
use lesm_bench::datasets::dblp_small;
use lesm_core::pipeline::LatentStructureMiner;
use lesm_corpus::EntityRef;
use lesm_roles::type_a::{combined_phrase_rank, entity_phrase_rank, entity_subtopic_distribution};

fn main() {
    println!("# Figure 5.4 / Table 5.2 — venue roles across topics\n");
    let papers = dblp_small(1500, 191);
    let corpus = &papers.corpus;
    let mined = LatentStructureMiner::mine(corpus, &miner_config(&[2, 2], 3)).expect("pipeline");
    let level1: Vec<usize> = mined.hierarchy.topics[0].children.clone();
    let doc_l1: Vec<Vec<f64>> = (0..corpus.num_docs())
        .map(|d| level1.iter().map(|&t| mined.doc_topic[d][t]).collect())
        .collect();
    // Venues: one dedicated per area plus the shared one.
    let venue_type = 1usize;
    let n_venues = corpus.entities.count(venue_type);
    for id in 0..n_venues.min(8) as u32 {
        let entity = EntityRef::new(venue_type, id);
        let dist = entity_subtopic_distribution(corpus, &doc_l1, entity);
        let total: f64 = dist.iter().sum();
        if total < 1.0 {
            continue;
        }
        println!(
            "venue {} ({}): papers per level-1 topic = {:?}",
            id,
            corpus.entities.name(entity),
            dist.iter().map(|x| (x).round()).collect::<Vec<f64>>()
        );
        // The venue's phrase profile inside its dominant topic.
        let (best_z, _) = dist
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .expect("non-empty");
        let t = level1[best_z];
        let w: Vec<f64> = (0..corpus.num_docs()).map(|d| mined.doc_topic[d][t]).collect();
        let er = entity_phrase_rank(corpus, &mined.segments, &w, entity);
        let comb = combined_phrase_rank(&er, &mined.topic_phrases[t], 0.5);
        let phr: Vec<String> = comb.iter().take(4).map(|(p, _)| corpus.vocab.render(p)).collect();
        println!("    role in {}: {}", mined.hierarchy.topics[t].path, phr.join(" / "));
    }
    println!("\n(ground truth: venue_o/1_* publish area-1 work, venue_o/2_* area-2,");
    println!(" venue_shared_0 spreads across both — the SIGIR/WWW/ECML contrast)");
}
