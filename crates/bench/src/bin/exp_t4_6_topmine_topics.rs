//! Tables 4.6–4.8 — qualitative ToPMine output on a large corpus: for
//! each topic, the most probable unigrams and the top topical phrases.

use lesm_bench::datasets::dblp;
use lesm_phrases::topmine::{ToPMine, ToPMineConfig};
use lesm_topicmodel::phrase_lda::PhraseLdaConfig;

fn main() {
    println!("# Tables 4.6-4.8 — ToPMine topics (unigrams above, phrases below)\n");
    let papers = dblp(8000, 161);
    let docs: Vec<Vec<u32>> = papers.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let k = 5;
    let res = ToPMine::run(
        &docs,
        papers.corpus.num_words(),
        &ToPMineConfig {
            min_support: 8,
            max_len: 4,
            seg_alpha: 2.0,
            lda: PhraseLdaConfig { k, iters: 150, seed: 7, ..Default::default() },
            omega: 0.3,
            top_n: 10,
            ..Default::default()
        },
    )
    .expect("valid config");
    for t in 0..k {
        println!("== Topic {t} (weight {:.3}) ==", res.model.topic_weight[t]);
        let unis: Vec<String> = res
            .model
            .top_words(t, 8)
            .into_iter()
            .map(|(w, _)| papers.corpus.vocab.name_or_unk(w).to_string())
            .collect();
        println!("  unigrams: {}", unis.join(", "));
        for p in res.topical_phrases[t].iter().take(8) {
            if p.tokens.len() >= 2 {
                println!("  phrase  : {}", papers.corpus.vocab.render(&p.tokens));
            }
        }
        println!();
    }
    println!("(ground-truth words are named t<topic>w<i>; a coherent topic shows one");
    println!(" dominant t-prefix per list, with phrases drawn from that topic's phrase set)");
}
