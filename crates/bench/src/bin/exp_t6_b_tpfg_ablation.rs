//! §6.1.6 ablations — local-likelihood measures × end-year estimators,
//! and the contribution of each filtering rule R1–R4.
//!
//! Expected shape (paper): the averaged Kulczynski+IR likelihood with the
//! combined YEAR estimator performs best; removing filter rules floods the
//! candidate set and hurts accuracy.

use lesm_bench::datasets::genealogy;
use lesm_bench::{f4, print_table};
use lesm_eval::relation::parent_accuracy;
use lesm_relations::preprocess::{CandidateGraph, LocalLikelihood, PreprocessConfig, YearRule};
use lesm_relations::tpfg::{Tpfg, TpfgConfig};

fn accuracy(gen: &lesm_corpus::synth::Genealogy, cfg: &PreprocessConfig) -> (f64, usize) {
    match CandidateGraph::build(&gen.papers, gen.n_authors, cfg) {
        Ok(graph) => {
            let r = Tpfg::infer(&graph, &TpfgConfig::default()).expect("inference");
            (parent_accuracy(&r.predict(1, 0.0), &gen.advisor), graph.num_edges())
        }
        Err(_) => (0.0, 0),
    }
}

fn main() {
    println!("# §6.1.6 — TPFG preprocessing ablations");
    let gen = genealogy(500, 231);

    // Likelihood × year-rule grid.
    let mut rows = Vec::new();
    for (lname, lik) in [
        ("Kulczynski", LocalLikelihood::Kulczynski),
        ("IR", LocalLikelihood::ImbalanceRatio),
        ("Average", LocalLikelihood::Average),
    ] {
        for (yname, yr) in
            [("YEAR1", YearRule::Year1), ("YEAR2", YearRule::Year2), ("YEAR", YearRule::Year)]
        {
            let cfg = PreprocessConfig { likelihood: lik, year_rule: yr, ..Default::default() };
            let (acc, edges) = accuracy(&gen, &cfg);
            rows.push(vec![lname.to_string(), yname.to_string(), f4(acc), format!("{edges}")]);
        }
    }
    print_table(
        "Likelihood × end-year estimator",
        &["Likelihood", "Year rule", "Accuracy", "#candidates"],
        &rows,
    );

    // Rule ablation.
    let mut rows = Vec::new();
    let base = PreprocessConfig::default();
    let variants: Vec<(&str, PreprocessConfig)> = vec![
        ("all rules", base.clone()),
        ("-R1 (imbalance)", PreprocessConfig { rule_ir: false, ..base.clone() }),
        ("-R2 (kulc increase)", PreprocessConfig { rule_kulc_increase: false, ..base.clone() }),
        ("-R3 (min years)", PreprocessConfig { rule_min_years: false, ..base.clone() }),
        ("-R4 (head start)", PreprocessConfig { rule_head_start: false, ..base.clone() }),
        (
            "no rules",
            PreprocessConfig {
                rule_ir: false,
                rule_kulc_increase: false,
                rule_min_years: false,
                rule_head_start: false,
                ..base
            },
        ),
    ];
    for (name, cfg) in variants {
        let (acc, edges) = accuracy(&gen, &cfg);
        rows.push(vec![name.to_string(), f4(acc), format!("{edges}")]);
    }
    print_table("Filter-rule ablation", &["Rules", "Accuracy", "#candidates"], &rows);
}
