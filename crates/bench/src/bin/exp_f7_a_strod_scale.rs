//! §7.4.1 scalability — STROD (and its parallel variant) vs collapsed-
//! Gibbs LDA as the corpus grows.
//!
//! Expected shape (paper): STROD runs orders of magnitude faster than
//! Gibbs sampling at scale and grows linearly in corpus size; the
//! parallel variant adds a further speedup.

use lesm_bench::datasets::labeled;
use lesm_bench::{f2, print_table, timed};
use lesm_strod::{Strod, StrodConfig};
use lesm_topicmodel::lda::{Lda, LdaConfig};

fn main() {
    println!("# §7.4.1 — STROD vs Gibbs LDA runtime");
    let sizes = [2_000usize, 8_000, 32_000];
    let k = 5;
    let mut rows = Vec::new();
    for &n in &sizes {
        let lc = labeled(n, k, 261);
        let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        let v = lc.corpus.num_words();
        let (_, gibbs_s) = timed(|| {
            Lda::fit(&docs, v, &LdaConfig { k, iters: 300, seed: 3, ..Default::default() })
        });
        let cfg = StrodConfig { k, alpha0: Some(0.5), threads: 1, ..Default::default() };
        let (_, strod_s) = timed(|| Strod::fit(&docs, v, &cfg).expect("fit"));
        let cfg_p = StrodConfig { threads: 4, ..cfg };
        let (_, pstrod_s) = timed(|| Strod::fit(&docs, v, &cfg_p).expect("fit"));
        rows.push(vec![
            format!("{n}"),
            f2(gibbs_s),
            f2(strod_s),
            f2(pstrod_s),
            f2(gibbs_s / strod_s.max(1e-9)),
        ]);
    }
    print_table(
        "Runtime (s)",
        &["#docs", "Gibbs LDA (300 it)", "STROD", "PSTROD (4 threads)", "speedup vs Gibbs"],
        &rows,
    );
}
