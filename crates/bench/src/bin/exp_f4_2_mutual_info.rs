//! Figure 4.2 — mutual information MI_K between phrase-represented topics
//! and gold categories, as a function of the number of top phrases K.
//!
//! Expected shape (paper): KERTpop+pur highest, then KERT; kpRel ≈
//! KERTpop in the middle; KERTpur far worst.

use lesm_bench::datasets::labeled;
use lesm_bench::{f4, print_table};
use lesm_eval::mi::mutual_information_at_k;
use lesm_phrases::baselines::{kp_rel, kp_rel_int};
use lesm_phrases::kert::{Kert, KertConfig, KertVariant, TopicalPhrase};
use lesm_topicmodel::lda::{Lda, LdaConfig};

/// Dedupe phrases across topics: each phrase labeled by the topic ranking
/// it highest (the paper's MI_K construction).
fn dedupe(topics: &[Vec<TopicalPhrase>], k_cut: usize) -> Vec<Vec<Vec<u32>>> {
    let k = topics.len();
    let mut best: std::collections::HashMap<&[u32], (usize, f64)> = std::collections::HashMap::new();
    for (t, list) in topics.iter().enumerate() {
        for p in list.iter().take(k_cut) {
            let e = best.entry(p.tokens.as_slice()).or_insert((t, p.score));
            if p.score > e.1 {
                *e = (t, p.score);
            }
        }
    }
    let mut out = vec![Vec::new(); k];
    for (tokens, (t, _)) in best {
        out[t].push(tokens.to_vec());
    }
    out
}

fn main() {
    println!("# Figure 4.2 — MI_K vs K");
    let lc = labeled(4000, 5, 101);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let labels: Vec<u32> = lc.corpus.docs.iter().map(|d| d.label.unwrap()).collect();
    let k = 5;
    let lda = Lda::fit(&docs, lc.corpus.num_words(), &LdaConfig { k, iters: 150, seed: 5, ..Default::default() });
    let base = KertConfig { min_support: 5, max_len: 3, top_n: 200, ..Default::default() };
    let patterns = Kert::mine(&docs, &lda.assignments, k, &base).expect("valid config");

    let methods: Vec<(String, Vec<Vec<TopicalPhrase>>)> = vec![
        ("KERTpop+pur".into(), Kert::rank(&patterns, &KertConfig { variant: KertVariant::PopularityPurity, ..base.clone() })),
        ("KERT".into(), Kert::rank(&patterns, &KertConfig { variant: KertVariant::Full, ..base.clone() })),
        ("KERTpop".into(), Kert::rank(&patterns, &KertConfig { variant: KertVariant::PopularityOnly, ..base.clone() })),
        ("kpRel".into(), (0..k).map(|t| kp_rel(&patterns, t, 200)).collect()),
        ("kpRelInt*".into(), (0..k).map(|t| kp_rel_int(&patterns, t, 200)).collect()),
        ("KERTpur".into(), Kert::rank(&patterns, &KertConfig { variant: KertVariant::PurityOnly, ..base.clone() })),
    ];
    let ks = [25usize, 50, 100, 150, 200];
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|(name, topics)| {
            let mut row = vec![name.clone()];
            for &kk in &ks {
                let labeled_phrases = dedupe(topics, kk);
                let mi = mutual_information_at_k(&docs, &labels, 5, &labeled_phrases);
                row.push(f4(mi));
            }
            row
        })
        .collect();
    print_table(
        "MI_K (bits)",
        &["Method", "K=25", "K=50", "K=100", "K=150", "K=200"],
        &rows,
    );
}
