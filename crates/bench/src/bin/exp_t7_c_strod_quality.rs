//! §7.4.3 interpretability — recovery error vs sample size (the
//! theoretical guarantee's empirical footprint) and topic PMI of STROD vs
//! Gibbs LDA.
//!
//! Expected shape (paper): STROD's recovery error shrinks with corpus
//! size (the moment bound), and its topics are as interpretable (PMI) as
//! Gibbs topics.

use lesm_bench::datasets::labeled;
use lesm_bench::{f4, print_table};
use lesm_eval::pmi::{pmi_topic, CoOccurrenceStats};
use lesm_strod::{Strod, StrodConfig};
use lesm_topicmodel::lda::{Lda, LdaConfig};

/// Greedy-matched mean L1 distance between recovered and ground-truth
/// leaf-topic word distributions.
fn recovery_error(recovered: &[Vec<f64>], lc: &lesm_corpus::synth::LabeledCorpus) -> f64 {
    let gt = &lc.truth.hierarchy;
    let v = lc.corpus.num_words();
    // Build ground-truth word distributions per category: own-word Zipf
    // mass (0.75) + root/background share approximated empirically from
    // the labeled docs.
    let mut truth_dist: Vec<Vec<f64>> = Vec::new();
    for &leaf in &gt.leaves {
        let mut dist = vec![0.0f64; v];
        for (d, doc) in lc.corpus.docs.iter().enumerate() {
            if gt.leaves[lc.corpus.docs[d].label.unwrap() as usize] != leaf {
                continue;
            }
            for &w in &doc.tokens {
                dist[w as usize] += 1.0;
            }
        }
        let s: f64 = dist.iter().sum();
        if s > 0.0 {
            dist.iter_mut().for_each(|x| *x /= s);
        }
        truth_dist.push(dist);
    }
    let k = recovered.len();
    let mut used = vec![false; truth_dist.len()];
    let mut total = 0.0;
    for r in recovered {
        let mut best = f64::INFINITY;
        let mut bj = 0;
        for (j, t) in truth_dist.iter().enumerate() {
            if used[j] {
                continue;
            }
            let d: f64 = r.iter().zip(t).map(|(x, y)| (x - y).abs()).sum();
            if d < best {
                best = d;
                bj = j;
            }
        }
        used[bj] = true;
        total += best;
    }
    total / k as f64
}

fn main() {
    println!("# §7.4.3 — STROD recovery error and interpretability");
    let k = 5;
    // Recovery error vs sample size.
    let mut rows = Vec::new();
    for &n in &[500usize, 2_000, 8_000, 32_000] {
        let lc = labeled(n, k, 281);
        let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        let m = Strod::fit(
            &docs,
            lc.corpus.num_words(),
            &StrodConfig { k, alpha0: Some(0.5), ..Default::default() },
        )
        .expect("fit");
        rows.push(vec![format!("{n}"), f4(recovery_error(&m.topic_word, &lc)), f4(m.residual)]);
    }
    print_table(
        "Recovery error vs corpus size",
        &["#docs", "matched L1 to empirical truth", "tensor residual"],
        &rows,
    );

    // Interpretability: average topic PMI, STROD vs Gibbs.
    let lc = labeled(8_000, k, 283);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let v = lc.corpus.num_words();
    let stats = CoOccurrenceStats::from_corpus(&lc.corpus);
    let term_type = stats.term_type();
    let avg_pmi = |topics: &[Vec<f64>]| -> f64 {
        let mut total = 0.0;
        for t in topics {
            let mut idx: Vec<(u32, f64)> =
                t.iter().enumerate().map(|(w, &p)| (w as u32, p)).collect();
            idx.sort_by(|a, b| b.1.total_cmp(&a.1));
            let items: Vec<(usize, u32)> =
                idx.into_iter().take(20).map(|(w, _)| (term_type, w)).collect();
            total += pmi_topic(&stats, &items);
        }
        total / topics.len() as f64
    };
    let strod = Strod::fit(&docs, v, &StrodConfig { k, alpha0: Some(0.5), ..Default::default() })
        .expect("fit");
    let gibbs = Lda::fit(&docs, v, &LdaConfig { k, iters: 200, seed: 3, ..Default::default() });
    let rows = vec![
        vec!["STROD".to_string(), f4(avg_pmi(&strod.topic_word))],
        vec!["Gibbs LDA".to_string(), f4(avg_pmi(&gibbs.topic_word))],
    ];
    print_table("Topic PMI (top-20 words)", &["Method", "avg PMI"], &rows);
}
