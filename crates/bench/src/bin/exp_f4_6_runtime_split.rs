//! Figure 4.6 — decomposition of ToPMine's runtime: the phrase-mining
//! stage is negligible next to the topic-modeling stage, and both scale
//! linearly in the number of documents.

use lesm_bench::datasets::labeled;
use lesm_bench::{f2, print_table, timed};
use lesm_phrases::topmine::{FrequentPhrases, Segmenter, SegmenterConfig};
use lesm_topicmodel::phrase_lda::{PhraseLda, PhraseLdaConfig};

fn main() {
    println!("# Figure 4.6 — ToPMine runtime split (phrase mining vs PhraseLDA)");
    let sizes = [2_000usize, 4_000, 8_000, 16_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        let lc = labeled(n, 5, 151);
        let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        let v = lc.corpus.num_words();
        let ((fp, segs), mine_s) = timed(|| {
            let fp = FrequentPhrases::mine(&docs, 5, 4);
            let segs = Segmenter::segment(&docs, &fp, &SegmenterConfig { alpha: 2.0 });
            (fp, segs)
        });
        let (_, lda_s) = timed(|| {
            PhraseLda::fit(&segs, v, &PhraseLdaConfig { k: 5, iters: 100, seed: 3, ..Default::default() })
        });
        rows.push(vec![
            format!("{n}"),
            f2(mine_s),
            f2(lda_s),
            f2(lda_s / mine_s.max(1e-9)),
            format!("{}", fp.len()),
        ]);
    }
    print_table(
        "Runtime split",
        &["#docs", "phrase mining (s)", "PhraseLDA (s)", "LDA/mining ratio", "#frequent phrases"],
        &rows,
    );
    println!("\n(paper: topic modeling ≈ 40× phrase mining; both linear in #docs)");
}
