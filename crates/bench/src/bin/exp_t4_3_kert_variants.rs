//! Table 4.3 — top-10 topical phrases for one topic under the KERT
//! variants and the kpRel / kpRelInt* baselines.
//!
//! Expected shape (paper): the baselines favor unigrams; removing
//! popularity destroys the ranking; removing purity favors long phrases;
//! removing completeness admits fragments like "vector machines"; full
//! KERT mixes high-quality phrases of all lengths.

use lesm_bench::datasets::labeled;
use lesm_phrases::baselines::{kp_rel, kp_rel_int};
use lesm_phrases::kert::{Kert, KertConfig, KertVariant};
use lesm_topicmodel::lda::{Lda, LdaConfig};

fn main() {
    println!("# Table 4.3 — top-10 phrases per ranking variant (one topic)\n");
    let lc = labeled(3000, 5, 81);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let k = 5;
    let lda = Lda::fit(&docs, lc.corpus.num_words(), &LdaConfig { k, iters: 150, seed: 5, ..Default::default() });
    let base_cfg = KertConfig { min_support: 5, max_len: 3, top_n: 10, ..Default::default() };
    let patterns = Kert::mine(&docs, &lda.assignments, k, &base_cfg).expect("valid config");
    // Pick the topic whose top word is the most frequent topical word.
    let topic = 0usize;
    let render = |ps: &[lesm_phrases::TopicalPhrase]| -> String {
        ps.iter()
            .take(10)
            .map(|p| lc.corpus.vocab.render(&p.tokens))
            .collect::<Vec<_>>()
            .join(" / ")
    };
    println!("kpRel      : {}", render(&kp_rel(&patterns, topic, 10)));
    println!("kpRelInt*  : {}", render(&kp_rel_int(&patterns, topic, 10)));
    for variant in [
        KertVariant::NoPopularity,
        KertVariant::NoPurity,
        KertVariant::NoConcordance,
        KertVariant::NoCompleteness,
        KertVariant::Full,
    ] {
        let cfg = KertConfig { variant, ..base_cfg.clone() };
        let ranked = Kert::rank(&patterns, &cfg);
        println!("{:<11}: {}", format!("{variant:?}"), render(&ranked[topic]));
    }
    // Quantify the unigram bias the paper describes qualitatively.
    let mean_len = |ps: &[lesm_phrases::TopicalPhrase]| -> f64 {
        if ps.is_empty() {
            return 0.0;
        }
        ps.iter().take(10).map(|p| p.tokens.len() as f64).sum::<f64>()
            / ps.len().min(10) as f64
    };
    let full = Kert::rank(&patterns, &KertConfig { variant: KertVariant::Full, ..base_cfg.clone() });
    println!(
        "\nmean top-10 phrase length: kpRel {:.2} | kpRelInt* {:.2} | KERT {:.2} (paper: baselines ≈ 1, KERT mixed)",
        mean_len(&kp_rel(&patterns, topic, 10)),
        mean_len(&kp_rel_int(&patterns, topic, 10)),
        mean_len(&full[topic]),
    );
}
