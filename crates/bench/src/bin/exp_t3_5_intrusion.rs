//! Table 3.5 — intruder-detection tasks (phrase / entity / topic) across
//! the eight hierarchy methods of §3.3.2, on DBLP-like and NEWS-like data.
//!
//! Expected shape (paper): CATHYHIN tops every column; phrase-represented
//! variants beat their unigram twins; NetClus variants trail.

use lesm_bench::ch3::{
    entity_intrusion_questions, method_cathy, method_cathyhin, method_netclus,
    phrase_intrusion_questions, score_questions, topic_intrusion_questions, MethodHierarchy,
};
use lesm_bench::datasets::dblp;
use lesm_bench::{f2, print_table};
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};

fn evaluate(papers: &SyntheticPapers, branching: &[usize], label: &str, etype_names: [&str; 2]) {
    let corpus = &papers.corpus;
    let truth = &papers.truth;
    let methods: Vec<MethodHierarchy> = vec![
        method_cathyhin(corpus, branching, 3, false),
        method_cathyhin(corpus, branching, 3, true),
        method_cathy(corpus, branching, 3, false, false),
        method_cathy(corpus, branching, 3, true, false),
        method_cathy(corpus, branching, 3, false, true),
        method_netclus(corpus, branching, 0.3, 3, true, false),
        method_netclus(corpus, branching, 0.3, 3, true, true),
        method_netclus(corpus, branching, 0.3, 3, false, false),
    ];
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|mh| {
            let pq = phrase_intrusion_questions(mh, truth, 60, 11);
            let e0 = entity_intrusion_questions(mh, truth, 0, 40, 13);
            let e1 = entity_intrusion_questions(mh, truth, 1, 40, 17);
            let tq = topic_intrusion_questions(mh, truth, 30, 19);
            let cell = |qs: &[lesm_bench::ch3::Question]| {
                if qs.is_empty() {
                    "–".to_string()
                } else {
                    f2(score_questions(qs, 23))
                }
            };
            vec![mh.name.clone(), cell(&pq), cell(&e0), cell(&e1), cell(&tq)]
        })
        .collect();
    print_table(
        label,
        &["Method", "Phrase", etype_names[0], etype_names[1], "Topic"],
        &rows,
    );
}

fn main() {
    println!("# Table 3.5 — intruder-detection accuracy (3-annotator panel, strict pooling)");
    let papers = dblp(2500, 51);
    evaluate(&papers, &[5, 4], "DBLP-like", ["Author", "Venue"]);
    // NEWS with a 4x4 story/substory structure so the topic-intrusion task
    // has a second level to probe (the paper's NEWS hierarchy also splits
    // its 16 stories further).
    let mut cfg = PapersConfig::news(2500, 52);
    cfg.hierarchy.branching = vec![4, 4];
    let articles = SyntheticPapers::generate(&cfg).expect("valid preset");
    evaluate(&articles, &[4, 4], "NEWS-like", ["Person", "Location"]);
}
