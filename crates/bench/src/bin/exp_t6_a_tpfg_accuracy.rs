//! §6.1.6 accuracy table — TPFG vs RULE / IndMAX / SVM on synthetic
//! genealogy, plus P@(k, θ) sweeps.
//!
//! Expected shape (paper, KDD'10 companion): TPFG > SVM > IndMAX > RULE;
//! larger k and θ trade recall for precision.

use lesm_bench::datasets::genealogy;
use lesm_bench::{f4, print_table};
use lesm_eval::relation::parent_accuracy;
use lesm_relations::baselines::{indmax_predict, rule_predict, PairSvm, SvmConfig};
use lesm_relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm_relations::tpfg::{Tpfg, TpfgConfig};

fn main() {
    println!("# §6.1.6 — advisor-advisee accuracy");
    let gen = genealogy(600, 221);
    let graph = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
        .expect("candidates exist");
    println!(
        "\n{} authors, {} true relations, {} candidate edges (DAG: {})",
        gen.n_authors,
        gen.num_relations(),
        graph.num_edges(),
        graph.is_dag()
    );
    // Candidate recall ceiling.
    let mut in_cands = 0usize;
    let mut with_truth = 0usize;
    for (i, a) in gen.advisor.iter().enumerate() {
        if let Some(a) = a {
            with_truth += 1;
            if graph.candidates[i].iter().any(|c| c.advisor == *a) {
                in_cands += 1;
            }
        }
    }
    println!("candidate recall ceiling: {:.3}", in_cands as f64 / with_truth as f64);

    let tpfg = Tpfg::infer(&graph, &TpfgConfig::default()).expect("inference");
    // SVM trained on half the authors (the paper trains on partial labels).
    let train: Vec<usize> = (0..gen.n_authors).filter(|i| i % 2 == 0).collect();
    let svm = PairSvm::train(&graph, &gen.advisor, &train, &SvmConfig::default());

    let evaluate = |name: &str, pred: Vec<Option<u32>>| -> Vec<String> {
        let n_pred = pred.iter().filter(|p| p.is_some()).count();
        let correct =
            pred.iter().zip(&gen.advisor).filter(|(p, t)| p.is_some() && p == t).count();
        let precision = if n_pred > 0 { correct as f64 / n_pred as f64 } else { 0.0 };
        vec![
            name.to_string(),
            f4(parent_accuracy(&pred, &gen.advisor)),
            f4(precision),
            format!("{n_pred}"),
        ]
    };
    let rows = vec![
        evaluate("RULE", rule_predict(&graph)),
        evaluate("IndMAX", indmax_predict(&graph)),
        evaluate("SVM", svm.predict(&graph)),
        evaluate("TPFG", tpfg.predict(1, 0.0)),
    ];
    print_table(
        "Top-1 prediction quality",
        &["Method", "Accuracy", "Precision", "#predicted"],
        &rows,
    );
    println!("(TPFG abstains — predicts the virtual root — where no candidate survives the");
    println!(" joint time constraints, which is what lifts its precision over IndMAX/RULE)");

    // P@(k, θ) sweep for TPFG.
    let mut sweep_rows = Vec::new();
    for k in [1usize, 2, 3] {
        for theta in [0.1, 0.3, 0.5, 0.7] {
            let pred = tpfg.predict(k, theta);
            let n_pred = pred.iter().filter(|p| p.is_some()).count();
            let mut correct = 0usize;
            for (p, t) in pred.iter().zip(&gen.advisor) {
                if p.is_some() && p == t {
                    correct += 1;
                }
            }
            let precision = if n_pred > 0 { correct as f64 / n_pred as f64 } else { 0.0 };
            let recall = correct as f64 / gen.num_relations() as f64;
            sweep_rows.push(vec![
                format!("P@({k},{theta})"),
                format!("{n_pred}"),
                f4(precision),
                f4(recall),
            ]);
        }
    }
    print_table("TPFG P@(k, θ)", &["Rule", "#predicted", "Precision", "Recall"], &sweep_rows);
}
