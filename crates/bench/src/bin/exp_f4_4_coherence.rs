//! Figure 4.4 — topical coherence z-scores for the five §4.4.2 methods,
//! rated by a simulated 5-expert panel.
//!
//! Expected shape (paper): ToPMine best; KERT strong; TNG / PD-LDA weak.

use lesm_bench::ch4::run_all;
use lesm_bench::datasets::labeled;
use lesm_bench::signatures::topic_coherence;
use lesm_bench::{f2, print_table};
use lesm_eval::annotator::SimulatedAnnotator;
use lesm_eval::z_scores;

fn main() {
    println!("# Figure 4.4 — topical coherence (z-scores over methods)");
    let lc = labeled(2500, 5, 121);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let outputs = run_all(&docs, lc.corpus.num_words(), 5, 300, 3);
    let mut experts = SimulatedAnnotator::panel(17, 5);
    // Raw score per method: mean expert rating of each topic's coherence.
    let raw: Vec<f64> = outputs
        .iter()
        .map(|o| {
            let mut total = 0.0;
            let mut n = 0;
            for t in &o.topic_phrases {
                if t.is_empty() {
                    continue;
                }
                let list: Vec<Vec<u32>> = t.iter().take(10).cloned().collect();
                let q = topic_coherence(&lc.truth, &list);
                for e in experts.iter_mut() {
                    total += e.rate(q) as f64;
                    n += 1;
                }
            }
            if n == 0 {
                1.0
            } else {
                total / n as f64
            }
        })
        .collect();
    let z = z_scores(&raw);
    let rows: Vec<Vec<String>> = outputs
        .iter()
        .zip(raw.iter().zip(&z))
        .map(|(o, (r, zz))| vec![o.name.clone(), f2(*r), f2(*zz)])
        .collect();
    print_table("Coherence", &["Method", "mean rating (1-5)", "z-score"], &rows);
}
