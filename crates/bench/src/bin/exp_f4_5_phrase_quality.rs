//! Figure 4.5 — phrase quality z-scores for the five §4.4.2 methods.
//!
//! Expected shape (paper): ToPMine best; KERT *lowest* of the five on
//! long text (its word-set patterns glue extra unigrams onto phrases);
//! TurboTopics above average.

use lesm_bench::ch4::run_all;
use lesm_bench::datasets::labeled;
use lesm_bench::signatures::phrase_quality;
use lesm_bench::{f2, print_table};
use lesm_eval::annotator::SimulatedAnnotator;
use lesm_eval::z_scores;

fn main() {
    println!("# Figure 4.5 — phrase quality (z-scores over methods)");
    let lc = labeled(2500, 5, 131);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let outputs = run_all(&docs, lc.corpus.num_words(), 5, 300, 3);
    let mut experts = SimulatedAnnotator::panel(19, 5);
    let raw: Vec<f64> = outputs
        .iter()
        .map(|o| {
            let mut total = 0.0;
            let mut n = 0;
            for t in &o.topic_phrases {
                // Judges rate the *phrases* (multi-word) of each list, as
                // in the paper's phrase-quality question.
                for p in t.iter().filter(|p| p.len() >= 2).take(10) {
                    let q = phrase_quality(&lc.truth, p);
                    for e in experts.iter_mut() {
                        total += e.rate(q) as f64;
                        n += 1;
                    }
                }
            }
            if n == 0 {
                1.0
            } else {
                total / n as f64
            }
        })
        .collect();
    let z = z_scores(&raw);
    let rows: Vec<Vec<String>> = outputs
        .iter()
        .zip(raw.iter().zip(&z))
        .map(|(o, (r, zz))| vec![o.name.clone(), f2(*r), f2(*zz)])
        .collect();
    print_table("Phrase quality", &["Method", "mean rating (1-5)", "z-score"], &rows);
}
