//! Table 5.1 — representing two authors' roles in one topic by (a) plain
//! phrase quality, (b) entity-specific ranking, and (c) the combined
//! ranking of eq. 5.2.
//!
//! Expected shape (paper): quality-only ignores the entity; entity-only
//! surfaces noisy low-support phrases; the combination is the best of
//! both.

use lesm_bench::datasets::dblp_small;
use lesm_core::pipeline::{LatentStructureMiner, MinedStructure};
use lesm_corpus::EntityRef;
use lesm_roles::type_a::{combined_phrase_rank, entity_phrase_rank};

fn main() {
    println!("# Table 5.1 — phrase rankings for two authors in one topic\n");
    let papers = dblp_small(1500, 171);
    let corpus = &papers.corpus;
    let mined: MinedStructure =
        LatentStructureMiner::mine(corpus, &lesm_bench::ch3::miner_config(&[2, 2], 3))
            .expect("pipeline succeeds");
    // Focus topic: first level-1 topic. Mined topic indices are an
    // arbitrary permutation of the ground truth, so pick the dedicated
    // author from the ground-truth leaf this mined topic actually covers.
    let topic = mined.hierarchy.topics[0].children[0];
    let doc_w: Vec<f64> = (0..corpus.num_docs()).map(|d| mined.doc_topic[d][topic]).collect();
    let mut leaf_mass: std::collections::HashMap<usize, f64> = Default::default();
    for (d, &w) in doc_w.iter().enumerate() {
        *leaf_mass.entry(papers.truth.doc_leaf[d]).or_insert(0.0) += w;
    }
    let (&dominant_leaf, _) = leaf_mass
        .iter()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty");
    let dedicated = papers.truth.entity_home[0]
        .iter()
        .position(|h| *h == Some(dominant_leaf))
        .expect("dedicated author exists") as u32;
    let shared = papers.truth.entity_home[0]
        .iter()
        .position(|h| h.is_none())
        .expect("shared author exists") as u32;
    let quality = &mined.topic_phrases[topic];
    println!(
        "topic {}: quality-only top phrases: {}",
        mined.hierarchy.topics[topic].path,
        quality
            .iter()
            .take(5)
            .map(|p| corpus.vocab.render(&p.tokens))
            .collect::<Vec<_>>()
            .join(" / ")
    );
    for (label, id) in [("dedicated", dedicated), ("prolific-shared", shared)] {
        let entity = EntityRef::new(0, id);
        let er = entity_phrase_rank(corpus, &mined.segments, &doc_w, entity);
        let comb = combined_phrase_rank(&er, quality, 0.5);
        let fmt = |list: &[(Vec<u32>, f64)]| {
            list.iter()
                .take(5)
                .map(|(p, _)| corpus.vocab.render(p))
                .collect::<Vec<_>>()
                .join(" / ")
        };
        println!("\nauthor {} ({label}, name {}):", id, corpus.entities.name(entity));
        println!("  entity-specific: {}", fmt(&er));
        println!("  combined (α=.5): {}", fmt(&comb));
    }
    println!("\n(paper's effect: the combined list keeps the author-specific phrases while");
    println!(" suppressing low-quality strings like 'fast large')");
}
