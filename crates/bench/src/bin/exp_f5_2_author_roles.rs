//! Figures 5.2/5.3 — contrasting two authors' roles: their estimated
//! paper counts per topic and subtopic, with entity-specific phrases.
//!
//! Expected shape (paper): both authors are prominent in the parent topic
//! but their subtopic distributions and phrase profiles differ.

use lesm_bench::ch3::miner_config;
use lesm_bench::datasets::dblp_small;
use lesm_core::pipeline::LatentStructureMiner;
use lesm_corpus::EntityRef;
use lesm_roles::type_a::{combined_phrase_rank, entity_phrase_rank, entity_subtopic_distribution};

fn main() {
    println!("# Figures 5.2/5.3 — author roles across subtopics\n");
    let papers = dblp_small(1500, 181);
    let corpus = &papers.corpus;
    let mined = LatentStructureMiner::mine(corpus, &miner_config(&[2, 2], 3)).expect("pipeline");
    let topic = mined.hierarchy.topics[0].children[0];
    let subtopics = mined.hierarchy.topics[topic].children.clone();
    // Per-doc weights within `topic`, then per-subtopic splits.
    let doc_sub: Vec<Vec<f64>> = (0..corpus.num_docs())
        .map(|d| subtopics.iter().map(|&s| mined.doc_topic[d][s]).collect())
        .collect();
    // The mined subtopic indices are an arbitrary permutation of the
    // ground truth, so select one dedicated author per *dominant ground-
    // truth leaf* of each mined subtopic, plus a prolific shared author.
    let gt = &papers.truth;
    let dominant_leaf = |s: usize| -> usize {
        let mut mass: std::collections::HashMap<usize, f64> = Default::default();
        for d in 0..corpus.num_docs() {
            *mass.entry(gt.doc_leaf[d]).or_insert(0.0) += mined.doc_topic[d][s];
        }
        mass.into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(l, _)| l)
            .expect("non-empty")
    };
    let mut picks: Vec<(String, u32)> = Vec::new();
    for (z, &s) in subtopics.iter().enumerate() {
        let leaf = dominant_leaf(s);
        if let Some(id) = gt.entity_home[0].iter().position(|h| *h == Some(leaf)) {
            picks.push((format!("dedicated-to-subtopic-{z}"), id as u32));
        }
    }
    if let Some(id) = gt.entity_home[0].iter().position(|h| h.is_none()) {
        picks.push(("prolific-shared".into(), id as u32));
    }
    for (label, id) in &picks {
        let entity = EntityRef::new(0, *id);
        let dist = entity_subtopic_distribution(corpus, &doc_sub, entity);
        let total_topic: f64 = dist.iter().sum();
        println!(
            "author {} ({}, gt-name {}): f_topic = {:.1}, subtopic split = {:?}",
            id,
            label,
            corpus.entities.name(entity),
            total_topic,
            dist.iter().map(|x| (x * 10.0).round() / 10.0).collect::<Vec<_>>()
        );
        for (z, &s) in subtopics.iter().enumerate() {
            let w: Vec<f64> = (0..corpus.num_docs()).map(|d| mined.doc_topic[d][s]).collect();
            let er = entity_phrase_rank(corpus, &mined.segments, &w, entity);
            let comb = combined_phrase_rank(&er, &mined.topic_phrases[s], 0.5);
            let phr: Vec<String> =
                comb.iter().take(3).map(|(p, _)| corpus.vocab.render(p)).collect();
            println!("    subtopic {z} ({}): {}", mined.hierarchy.topics[s].path, phr.join(" / "));
        }
        println!();
    }
    println!("(dedicated authors concentrate in one subtopic; the prolific author spreads)");
}
