//! Table 5.4 — the top-ranked authors (by `ERankPop+Pur`) in two sibling
//! subtopics, each with their personal top phrases in that subtopic.

use lesm_bench::ch3::miner_config;
use lesm_bench::datasets::dblp_small;
use lesm_core::pipeline::LatentStructureMiner;
use lesm_corpus::EntityRef;
use lesm_roles::type_a::{combined_phrase_rank, entity_phrase_rank, entity_subtopic_distribution};
use lesm_roles::type_b::erank_pop_pur;

fn main() {
    println!("# Table 5.4 — author profiles in two sibling subtopics\n");
    let papers = dblp_small(1500, 211);
    let corpus = &papers.corpus;
    let mined = LatentStructureMiner::mine(corpus, &miner_config(&[2, 2], 3)).expect("pipeline");
    let area = mined.hierarchy.topics[0].children[0];
    let subs = mined.hierarchy.topics[area].children.clone();
    let doc_sub: Vec<Vec<f64>> = (0..corpus.num_docs())
        .map(|d| subs.iter().map(|&s| mined.doc_topic[d][s]).collect())
        .collect();
    let n_authors = corpus.entities.count(0);
    let mut freq = vec![vec![0.0f64; n_authors]; subs.len()];
    for id in 0..n_authors as u32 {
        let dist = entity_subtopic_distribution(corpus, &doc_sub, EntityRef::new(0, id));
        for (z, &f) in dist.iter().enumerate() {
            freq[z][id as usize] = f;
        }
    }
    for (z, &s) in subs.iter().enumerate() {
        let head: Vec<String> = mined.topic_phrases[s]
            .iter()
            .take(4)
            .map(|p| corpus.vocab.render(&p.tokens))
            .collect();
        println!("== subtopic {} {{{}}} ==", mined.hierarchy.topics[s].path, head.join("; "));
        let w: Vec<f64> = (0..corpus.num_docs()).map(|d| mined.doc_topic[d][s]).collect();
        for (id, score) in erank_pop_pur(&freq, z, 4) {
            let entity = EntityRef::new(0, id);
            let er = entity_phrase_rank(corpus, &mined.segments, &w, entity);
            let comb = combined_phrase_rank(&er, &mined.topic_phrases[s], 0.5);
            let phr: Vec<String> =
                comb.iter().take(3).map(|(p, _)| corpus.vocab.render(p)).collect();
            println!(
                "  {:<22} (score {:.4}): {}",
                corpus.entities.name(entity),
                score,
                phr.join(" / ")
            );
        }
        println!();
    }
}
