//! Figure 3.8 — learned link-type weights at different hierarchy levels.
//!
//! Expected shape (paper): venue-involved link types carry high learned
//! weight at the first level (venues discriminate areas) and much lower
//! weight inside an area (venues don't separate subareas).

use lesm_bench::ch3::em_config;
use lesm_bench::datasets::{dblp, subtree_corpus};
use lesm_bench::{f4, print_table};
use lesm_hier::em::{CathyHinEm, WeightMode};
use lesm_net::collapsed_network;

fn learned_weights(corpus: &lesm_corpus::Corpus, k: usize, seed: u64) -> Vec<(String, f64)> {
    let net = collapsed_network(corpus);
    let fit = CathyHinEm::fit(&net, &em_config(k, WeightMode::Learned, seed)).expect("non-empty");
    let t = net.num_types();
    let mut out = Vec::new();
    for blk in &net.blocks {
        let name = format!("{}-{}", net.type_names[blk.tx], net.type_names[blk.ty]);
        out.push((name, fit.alpha[blk.tx * t + blk.ty]));
    }
    out
}

fn main() {
    println!("# Figure 3.8 — learned link-type weights by level");
    let papers = dblp(3000, 61);
    let level1 = learned_weights(&papers.corpus, 5, 3);
    let area = papers.truth.hierarchy.nodes[0].children[0];
    let (sub, _) = subtree_corpus(&papers, area);
    let level2 = learned_weights(&sub, 4, 5);
    let mut rows = Vec::new();
    for (name, w1) in &level1 {
        let w2 = level2.iter().find(|(n, _)| n == name).map(|&(_, w)| w).unwrap_or(f64::NAN);
        rows.push(vec![name.clone(), f4(*w1), f4(w2)]);
    }
    print_table("Learned α by link type", &["Link type", "Level 1 (areas)", "Level 2 (inside one area)"], &rows);
    let venue1: f64 = level1
        .iter()
        .filter(|(n, _)| n.contains("venue"))
        .map(|&(_, w)| w)
        .sum::<f64>()
        / level1.iter().filter(|(n, _)| n.contains("venue")).count().max(1) as f64;
    let venue2: f64 = level2
        .iter()
        .filter(|(n, _)| n.contains("venue"))
        .map(|&(_, w)| w)
        .sum::<f64>()
        / level2.iter().filter(|(n, _)| n.contains("venue")).count().max(1) as f64;
    println!(
        "\nmean venue-link weight: level 1 = {venue1:.4}, level 2 = {venue2:.4} (paper: level 1 ≫ level 2)"
    );
}
