//! Table 5.3 — top authors per subtopic under popularity-only ranking vs
//! the popularity × purity ranking `ERankPop+Pur`.
//!
//! Expected shape (paper): popularity-only repeats the same prolific
//! authors across every subtopic; pop+pur yields disjoint, dedicated
//! winners.

use lesm_bench::ch3::miner_config;
use lesm_bench::datasets::dblp_small;
use lesm_bench::print_table;
use lesm_core::pipeline::LatentStructureMiner;
use lesm_corpus::EntityRef;
use lesm_roles::type_a::entity_subtopic_distribution;
use lesm_roles::type_b::{erank_pop, erank_pop_pur};
use std::collections::HashSet;

fn main() {
    println!("# Table 5.3 — entity ranking: popularity vs popularity × purity");
    let papers = dblp_small(1500, 201);
    let corpus = &papers.corpus;
    let mined = LatentStructureMiner::mine(corpus, &miner_config(&[2, 2], 3)).expect("pipeline");
    let leaves = mined.hierarchy.leaves();
    // Entity frequency matrix over leaf topics.
    let doc_leaf: Vec<Vec<f64>> = (0..corpus.num_docs())
        .map(|d| leaves.iter().map(|&t| mined.doc_topic[d][t]).collect())
        .collect();
    let n_authors = corpus.entities.count(0);
    let mut freq = vec![vec![0.0f64; n_authors]; leaves.len()];
    for id in 0..n_authors as u32 {
        let dist = entity_subtopic_distribution(corpus, &doc_leaf, EntityRef::new(0, id));
        for (z, &f) in dist.iter().enumerate() {
            freq[z][id as usize] = f;
        }
    }
    let name = |id: u32| corpus.entities.name(EntityRef::new(0, id)).to_string();
    let mut rows = Vec::new();
    for (z, &leaf) in leaves.iter().enumerate() {
        let pop: Vec<String> = erank_pop(&freq, z, 5).into_iter().map(|(e, _)| name(e)).collect();
        let pur: Vec<String> =
            erank_pop_pur(&freq, z, 5).into_iter().map(|(e, _)| name(e)).collect();
        rows.push(vec![
            mined.hierarchy.topics[leaf].path.clone(),
            pop.join(", "),
            pur.join(", "),
        ]);
    }
    print_table("Top-5 authors per leaf topic", &["Topic", "popularity", "pop+pur"], &rows);

    // Quantify the effect: cross-topic repeats in the top-5 lists.
    let repeats = |rank: &dyn Fn(usize) -> Vec<u32>| -> usize {
        let mut seen: HashSet<u32> = HashSet::new();
        let mut repeats = 0;
        for z in 0..leaves.len() {
            for e in rank(z) {
                if !seen.insert(e) {
                    repeats += 1;
                }
            }
        }
        repeats
    };
    let pop_fn = |z: usize| erank_pop(&freq, z, 5).into_iter().map(|(e, _)| e).collect::<Vec<_>>();
    let pur_fn =
        |z: usize| erank_pop_pur(&freq, z, 5).into_iter().map(|(e, _)| e).collect::<Vec<_>>();
    println!(
        "\ncross-topic repeats in top-5: popularity = {}, pop+pur = {} (paper: pop+pur → 0)",
        repeats(&pop_fn),
        repeats(&pur_fn)
    );
}
