//! Table 3.3 — heterogeneous PMI on the NEWS-like corpus (16 top stories
//! and a 4-topic subset).
//!
//! Expected shape (paper): TopK < NetClus ≪ CATHYHIN variants, with the
//! gap larger than on DBLP because the entity links are noisier.

use lesm_bench::ch3::{cathyhin_subtopics, netclus_subtopics, topk_subtopics, SubtopicRanking};
use lesm_bench::datasets::{news, news_subset};
use lesm_bench::{f4, print_table};
use lesm_corpus::Corpus;
use lesm_eval::pmi::{hpmi_pair, CoOccurrenceStats, Item};
use lesm_hier::em::WeightMode;

fn hpmi_row(corpus: &Corpus, r: &SubtopicRanking) -> Vec<f64> {
    let stats = CoOccurrenceStats::from_corpus(corpus);
    // NEWS schema: person (0), location (1), term (2).
    let pairs: [(usize, usize); 6] = [(2, 2), (2, 0), (0, 0), (2, 1), (0, 1), (1, 1)];
    let mut out = Vec::new();
    for &(x, y) in &pairs {
        let mut total = 0.0;
        let mut n = 0;
        for topic in &r.per_topic {
            let take = |t: usize| -> Vec<Item> {
                topic[t].iter().take(20).map(|&(id, _)| (t, id)).collect()
            };
            let xi = take(x);
            let yi = take(y);
            if xi.is_empty() || yi.is_empty() {
                continue;
            }
            total += if x == y { hpmi_pair(&stats, &xi, &xi) } else { hpmi_pair(&stats, &xi, &yi) };
            n += 1;
        }
        out.push(if n > 0 { total / n as f64 } else { 0.0 });
    }
    let overall = out.iter().sum::<f64>() / out.len() as f64;
    out.push(overall);
    out
}

fn run_block(title: &str, corpus: &Corpus, k: usize, seed: u64) {
    let methods = [topk_subtopics(corpus, k, 20),
        netclus_subtopics(corpus, k, 0.5, seed, 20),
        cathyhin_subtopics(corpus, k, WeightMode::Equal, seed, 20),
        cathyhin_subtopics(corpus, k, WeightMode::Normalized, seed, 20),
        cathyhin_subtopics(corpus, k, WeightMode::Learned, seed, 20)];
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|m| {
            let mut row = vec![m.name.clone()];
            row.extend(hpmi_row(corpus, m).into_iter().map(f4));
            row
        })
        .collect();
    print_table(
        title,
        &[
            "Method",
            "Term-Term",
            "Term-Person",
            "Person-Person",
            "Term-Location",
            "Person-Location",
            "Location-Location",
            "Overall",
        ],
        &rows,
    );
}

fn main() {
    println!("# Table 3.3 — HPMI on NEWS-like corpora");
    let sixteen = news(4000, 33);
    run_block("NEWS (16 topics)", &sixteen.corpus, 16, 3);
    let four = news_subset(1200, 34);
    run_block("NEWS (4-topic subset)", &four.corpus, 4, 5);
}
