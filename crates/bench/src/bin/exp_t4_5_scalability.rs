//! Table 4.5 — runtime of the topical-phrase methods across dataset sizes.
//!
//! Expected shape (paper): PD-LDA and TurboTopics orders of magnitude
//! slower (the paper extrapolates them to days); TNG several times LDA;
//! KERT and ToPMine within a small factor of LDA, with ToPMine the only
//! method tractable on the largest corpora.

use lesm_bench::ch4::{run_kert, run_pdlda, run_tng, run_topmine, run_turbo};
use lesm_bench::datasets::labeled;
use lesm_bench::{f2, print_table, timed};
use lesm_phrases::kert::KertVariant;
use lesm_topicmodel::lda::{Lda, LdaConfig};

fn main() {
    println!("# Table 4.5 — method runtimes (seconds; Gibbs iterations capped at 100)");
    let sizes = [1_000usize, 4_000, 16_000];
    let mut rows = Vec::new();
    for &n in &sizes {
        let lc = labeled(n, 5, 141);
        let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        let v = lc.corpus.num_words();
        let iters = 100;
        // PD-LDA and Turbo only on the smallest size (the paper marks them
        // intractable beyond small samples; we extrapolate linearly).
        let (pdlda_s, turbo_s) = if n == sizes[0] {
            let p = run_pdlda(&docs, v, 5, iters, 3).seconds;
            let t = run_turbo(&docs, v, 5, iters, 3).seconds;
            (Some(p), Some(t))
        } else {
            (None, None)
        };
        let (_, lda_s) = timed(|| Lda::fit(&docs, v, &LdaConfig { k: 5, iters, seed: 3, ..Default::default() }));
        let tng_s = run_tng(&docs, v, 5, iters, 3).seconds;
        let kert_s = run_kert(&docs, v, 5, iters, 3, KertVariant::Full).seconds;
        let topmine_s = run_topmine(&docs, v, 5, iters, 3).seconds;
        let fmt_opt = |x: Option<f64>, scale: f64| match x {
            Some(s) => f2(s),
            None => format!("~{} (extrapolated)", f2(scale)),
        };
        let base = sizes[0] as f64;
        rows.push(vec![
            format!("{n} docs"),
            fmt_opt(pdlda_s, pdlda_base(&rows) * n as f64 / base),
            fmt_opt(turbo_s, turbo_base(&rows) * n as f64 / base),
            f2(tng_s),
            f2(lda_s),
            f2(kert_s),
            f2(topmine_s),
        ]);
    }
    print_table(
        "Runtimes (s)",
        &["Dataset", "PD-LDA-like", "TurboTopics", "TNG", "LDA", "KERT", "ToPMine"],
        &rows,
    );
    println!("\n(PD-LDA-like / TurboTopics are run only at the smallest size and linearly");
    println!(" extrapolated, mirroring the paper's '*' estimates for intractable cells)");
}

fn pdlda_base(rows: &[Vec<String>]) -> f64 {
    rows.first().and_then(|r| r[1].parse().ok()).unwrap_or(0.0)
}

fn turbo_base(rows: &[Vec<String>]) -> f64 {
    rows.first().and_then(|r| r[2].parse().ok()).unwrap_or(0.0)
}
