//! Table 3.4 — node and link counts of the constructed heterogeneous
//! networks (the dataset-statistics table).
//!
//! Paper (DBLP): 6,998 terms / 12,886 authors / 20 venues; term-term
//! 693k, term-author 900k, author-author 156k, term-venue 105k,
//! author-venue 99k links. Our synthetic substitutes are smaller but show
//! the same density ordering (term-term and term-entity blocks dominate;
//! venue blocks are thin).

use lesm_bench::datasets::{dblp, news};
use lesm_bench::print_table;
use lesm_net::collapsed_network;

fn stats_rows(corpus: &lesm_corpus::Corpus) -> Vec<Vec<String>> {
    let net = collapsed_network(corpus);
    let mut rows = Vec::new();
    for (t, name) in net.type_names.iter().enumerate() {
        rows.push(vec![
            format!("nodes: {name}"),
            format!("{}", net.node_counts[t]),
            String::new(),
        ]);
    }
    for blk in &net.blocks {
        rows.push(vec![
            format!("links: {}-{}", net.type_names[blk.tx], net.type_names[blk.ty]),
            format!("{}", blk.len()),
            format!("{:.0}", blk.total_weight()),
        ]);
    }
    rows
}

fn main() {
    println!("# Table 3.4 — constructed network statistics");
    let papers = dblp(3000, 42);
    print_table("DBLP-like", &["Item", "count", "total weight"], &stats_rows(&papers.corpus));
    let articles = news(3000, 42);
    print_table("NEWS-like", &["Item", "count", "total weight"], &stats_rows(&articles.corpus));
}
