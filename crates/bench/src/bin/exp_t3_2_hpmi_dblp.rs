//! Table 3.2 — heterogeneous PMI on the DBLP-like corpus, full collection
//! and one "area" sub-corpus.
//!
//! Expected shape (paper): TopK < NetClus < CATHYHIN(equal) ≈
//! CATHYHIN(norm) < CATHYHIN(learn) in the Overall column.

use lesm_bench::ch3::{cathyhin_subtopics, netclus_subtopics, topk_subtopics, SubtopicRanking};
use lesm_bench::datasets::{dblp, subtree_corpus};
use lesm_bench::{f4, print_table};
use lesm_corpus::Corpus;
use lesm_eval::pmi::{hpmi_pair, CoOccurrenceStats, Item};
use lesm_hier::em::WeightMode;

/// HPMI of a method: averaged over subtopics, per link type plus overall.
fn hpmi_table(corpus: &Corpus, r: &SubtopicRanking, k_terms: usize, k_small: usize) -> Vec<f64> {
    let stats = CoOccurrenceStats::from_corpus(corpus);
    let n_types = corpus.entities.num_types() + 1;
    // Link types evaluated: every unordered type pair with links in DBLP:
    // term-term, term-author, author-author, term-venue, author-venue.
    let pairs: [(usize, usize); 5] = [(2, 2), (2, 0), (0, 0), (2, 1), (0, 1)];
    let mut scores = Vec::new();
    for &(x, y) in &pairs {
        let mut total = 0.0;
        let mut n = 0;
        for topic in &r.per_topic {
            let take = |t: usize| -> Vec<Item> {
                let cap = if t == 1 { k_small } else { k_terms };
                topic[t].iter().take(cap).map(|&(id, _)| (t, id)).collect()
            };
            let xi = take(x);
            let yi = take(y);
            if xi.is_empty() || yi.is_empty() {
                continue;
            }
            let v = if x == y { hpmi_pair(&stats, &xi, &xi) } else { hpmi_pair(&stats, &xi, &yi) };
            total += v;
            n += 1;
        }
        scores.push(if n > 0 { total / n as f64 } else { 0.0 });
    }
    let overall = scores.iter().sum::<f64>() / scores.len() as f64;
    scores.push(overall);
    let _ = n_types;
    scores
}

fn run_block(title: &str, corpus: &Corpus, k: usize, seed: u64) {
    let methods: Vec<SubtopicRanking> = vec![
        topk_subtopics(corpus, k, 20),
        netclus_subtopics(corpus, k, 0.3, seed, 20),
        cathyhin_subtopics(corpus, k, WeightMode::Equal, seed, 20),
        cathyhin_subtopics(corpus, k, WeightMode::Normalized, seed, 20),
        cathyhin_subtopics(corpus, k, WeightMode::Learned, seed, 20),
    ];
    let rows: Vec<Vec<String>> = methods
        .iter()
        .map(|m| {
            let mut row = vec![m.name.clone()];
            row.extend(hpmi_table(corpus, m, 20, 3).into_iter().map(f4));
            row
        })
        .collect();
    print_table(
        title,
        &["Method", "Term-Term", "Term-Author", "Author-Author", "Term-Venue", "Author-Venue", "Overall"],
        &rows,
    );
}

fn main() {
    println!("# Table 3.2 — HPMI on DBLP-like corpora");
    let papers = dblp(3000, 42);
    // Full collection: k = number of ground-truth areas.
    let k_full = papers.truth.hierarchy.nodes[0].children.len();
    run_block("DBLP (full collection)", &papers.corpus, k_full, 7);
    // One area sub-corpus (the "Database area" analogue).
    let area = papers.truth.hierarchy.nodes[0].children[0];
    let (sub, kept) = subtree_corpus(&papers, area);
    let k_sub = papers.truth.hierarchy.nodes[area].children.len();
    println!("\narea sub-corpus: {} docs of {}", kept.len(), papers.corpus.num_docs());
    run_block("DBLP (one area)", &sub, k_sub, 11);
}
