//! §7.4.2 robustness — variance of the recovered topics across random
//! seeds, STROD vs collapsed-Gibbs LDA.
//!
//! Expected shape (paper): STROD's recovered parameters are essentially
//! seed-invariant (the decomposition is deterministic up to the power-
//! method restarts); Gibbs topics drift noticeably run to run.

use lesm_bench::datasets::labeled;
use lesm_bench::{f4, print_table};
use lesm_strod::{Strod, StrodConfig};
use lesm_topicmodel::lda::{Lda, LdaConfig};

/// Greedy L1 matching distance between two topic sets.
fn topic_set_distance(a: &[Vec<f64>], b: &[Vec<f64>]) -> f64 {
    let k = a.len();
    let mut used = vec![false; k];
    let mut total = 0.0;
    for ta in a {
        let mut best = f64::INFINITY;
        let mut best_j = 0;
        for (j, tb) in b.iter().enumerate() {
            if used[j] {
                continue;
            }
            let d: f64 = ta.iter().zip(tb).map(|(x, y)| (x - y).abs()).sum();
            if d < best {
                best = d;
                best_j = j;
            }
        }
        used[best_j] = true;
        total += best;
    }
    total / k as f64
}

fn main() {
    println!("# §7.4.2 — robustness across seeds (mean pairwise topic L1 distance)");
    let lc = labeled(6_000, 5, 271);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let v = lc.corpus.num_words();
    let k = 5;
    let seeds = [1u64, 2, 3, 4, 5];

    let strod_runs: Vec<Vec<Vec<f64>>> = seeds
        .iter()
        .map(|&s| {
            let mut cfg = StrodConfig { k, alpha0: Some(0.5), ..Default::default() };
            cfg.seed = s;
            cfg.power.seed = s * 31;
            Strod::fit(&docs, v, &cfg).expect("fit").topic_word
        })
        .collect();
    let gibbs_runs: Vec<Vec<Vec<f64>>> = seeds
        .iter()
        .map(|&s| {
            Lda::fit(&docs, v, &LdaConfig { k, iters: 200, seed: s, ..Default::default() })
                .topic_word
        })
        .collect();

    let mean_pairwise = |runs: &[Vec<Vec<f64>>]| -> f64 {
        let mut total = 0.0;
        let mut n = 0;
        for i in 0..runs.len() {
            for j in (i + 1)..runs.len() {
                total += topic_set_distance(&runs[i], &runs[j]);
                n += 1;
            }
        }
        total / n as f64
    };
    let rows = vec![
        vec!["STROD".to_string(), f4(mean_pairwise(&strod_runs))],
        vec!["Gibbs LDA".to_string(), f4(mean_pairwise(&gibbs_runs))],
    ];
    print_table("Seed variance", &["Method", "mean pairwise topic L1"], &rows);
    println!("\n(an L1 of 2.0 means totally disjoint topics; 0 means identical)");
}
