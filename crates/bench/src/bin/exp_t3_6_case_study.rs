//! Tables 3.6/3.7 — case study: one topic's representation under
//! CATHYHIN, the heuristic entity-ranking variant, and NetClus-with-
//! phrases.
//!
//! Expected shape (paper): CATHYHIN's entities fit the topic; the
//! heuristic variant's phrases match but its entities drift; NetClus
//! conflates topics.

use lesm_bench::ch3::{method_cathy, method_cathyhin, method_netclus, MethodHierarchy};
use lesm_bench::datasets::dblp_small;
use lesm_corpus::{Corpus, EntityRef};

fn render(mh: &MethodHierarchy, corpus: &Corpus, t: usize) -> String {
    let phrases: Vec<String> = mh.topic_phrases[t]
        .iter()
        .take(5)
        .map(|p| corpus.vocab.render(p))
        .collect();
    let mut s = format!("{{{}}}", phrases.join("; "));
    for (etype, list) in mh.topic_entities[t].iter().enumerate() {
        if list.is_empty() {
            continue;
        }
        let names: Vec<&str> = list
            .iter()
            .take(4)
            .map(|&id| corpus.entities.name(EntityRef::new(etype, id)))
            .collect();
        s.push_str(&format!(" / {{{}}}", names.join("; ")));
    }
    s
}

fn main() {
    println!("# Tables 3.6/3.7 — topic representations by three methods\n");
    let papers = dblp_small(1500, 71);
    let corpus = &papers.corpus;
    let branching = [2usize, 2];
    let methods = vec![
        method_cathyhin(corpus, &branching, 3, false),
        method_cathy(corpus, &branching, 3, false, true),
        method_netclus(corpus, &branching, 0.3, 3, true, false),
    ];
    for mh in &methods {
        println!("== {} ==", mh.name);
        // Level-1 topic 1 plus its first child (the parent/subtopic pair of
        // Table 3.7).
        if let Some(&t) = mh.children[0].first() {
            println!("  topic      : {}", render(mh, corpus, t));
            if let Some(&c) = mh.children[t].first() {
                println!("  subtopic   : {}", render(mh, corpus, c));
            }
        }
        println!();
    }
    println!("(ground truth: authors/venues named after their home topic path; a coherent");
    println!(" representation shows phrases and entities sharing one path prefix)");
}
