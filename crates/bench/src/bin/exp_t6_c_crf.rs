//! §6.2.4 — the supervised CRF vs the unsupervised TPFG and the SVM
//! pairwise classifier, on held-out authors.
//!
//! Expected shape (paper): with training labels the CRF outperforms both
//! the pairwise SVM (no structural coupling) and unsupervised TPFG.

use lesm_bench::datasets::genealogy;
use lesm_bench::{f4, print_table};
use lesm_eval::relation::parent_accuracy;
use lesm_relations::baselines::{indmax_predict, PairSvm, SvmConfig};
use lesm_relations::crf::{CrfConfig, HierCrf};
use lesm_relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm_relations::tpfg::{Tpfg, TpfgConfig};

fn main() {
    println!("# §6.2.4 — supervised CRF vs baselines (held-out accuracy)");
    let gen = genealogy(700, 251);
    let graph = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
        .expect("candidates");
    // Even authors train; odd authors evaluate.
    let train: Vec<usize> = (0..gen.n_authors).filter(|i| i % 2 == 0).collect();
    let holdout: Vec<Option<u32>> = gen
        .advisor
        .iter()
        .enumerate()
        .map(|(i, a)| if i % 2 == 1 { *a } else { None })
        .collect();

    let tpfg = Tpfg::infer(&graph, &TpfgConfig::default()).expect("inference");
    let svm = PairSvm::train(&graph, &gen.advisor, &train, &SvmConfig::default());
    let crf = HierCrf::train(&graph, &gen.advisor, &train, &CrfConfig::default())
        .expect("training labels exist");
    let crf_result = crf.infer(&graph).expect("inference");

    let rows = vec![
        vec!["IndMAX (unsup.)".to_string(), f4(parent_accuracy(&indmax_predict(&graph), &holdout))],
        vec!["TPFG (unsup.)".to_string(), f4(parent_accuracy(&tpfg.predict(1, 0.0), &holdout))],
        vec!["SVM (sup.)".to_string(), f4(parent_accuracy(&svm.predict(&graph), &holdout))],
        vec!["CRF (sup.)".to_string(), f4(parent_accuracy(&crf_result.predict(1, 0.0), &holdout))],
    ];
    print_table("Held-out accuracy", &["Method", "Accuracy"], &rows);
    println!(
        "\nlearned CRF weights: features {:?}, conflict {:.3}",
        crf.w.iter().map(|x| (x * 100.0).round() / 100.0).collect::<Vec<_>>(),
        crf.conflict_w
    );
}
