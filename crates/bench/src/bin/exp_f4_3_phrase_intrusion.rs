//! Figure 4.3 — phrase-intrusion accuracy for the five topical-phrase
//! methods of §4.4.2.
//!
//! Expected shape (paper): ToPMine ≈ KERT best; TurboTopics above
//! average; TNG and PD-LDA poor.

use lesm_bench::ch4::run_all;
use lesm_bench::datasets::labeled;
use lesm_bench::signatures::phrase_signature;
use lesm_bench::{f2, print_table};
use lesm_eval::annotator::{panel_intrusion_accuracy, SimulatedAnnotator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("# Figure 4.3 — phrase intrusion (avg correct of 20 questions, 3 annotators)");
    let lc = labeled(2500, 5, 111);
    let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let outputs = run_all(&docs, lc.corpus.num_words(), 5, 300, 3);
    let mut rng = StdRng::seed_from_u64(9);
    let mut rows = Vec::new();
    for o in &outputs {
        // 20 questions: 4 phrases of one topic + 1 of another.
        let usable: Vec<usize> =
            (0..o.topic_phrases.len()).filter(|&t| o.topic_phrases[t].len() >= 4).collect();
        let mut questions = Vec::new();
        let mut guard = 0;
        while questions.len() < 20 && guard < 400 && usable.len() >= 2 {
            guard += 1;
            let t = usable[rng.gen_range(0..usable.len())];
            let s = usable[rng.gen_range(0..usable.len())];
            if s == t || o.topic_phrases[s].is_empty() {
                continue;
            }
            let own = &o.topic_phrases[t];
            let intruder = &o.topic_phrases[s][rng.gen_range(0..o.topic_phrases[s].len().min(8))];
            let mut picks: Vec<&Vec<u32>> = Vec::new();
            let mut tries = 0;
            while picks.len() < 4 && tries < 40 {
                tries += 1;
                let cand = &own[rng.gen_range(0..own.len().min(10))];
                if !picks.contains(&cand) && cand != intruder {
                    picks.push(cand);
                }
            }
            if picks.len() < 4 {
                continue;
            }
            let pos = rng.gen_range(0..=picks.len());
            let mut sigs: Vec<Vec<f64>> =
                picks.iter().map(|p| phrase_signature(&lc.truth, p)).collect();
            sigs.insert(pos, phrase_signature(&lc.truth, intruder));
            questions.push((sigs, pos));
        }
        let acc = if questions.is_empty() {
            0.0
        } else {
            let mut panel = SimulatedAnnotator::panel(13, 3);
            panel_intrusion_accuracy(&mut panel, &questions)
        };
        rows.push(vec![
            o.name.clone(),
            format!("{}", questions.len()),
            f2(acc * questions.len() as f64),
            f2(acc),
        ]);
    }
    print_table(
        "Phrase intrusion",
        &["Method", "#questions", "avg correct", "accuracy"],
        &rows,
    );
}
