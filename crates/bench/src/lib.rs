//! Shared support for the experiment binaries (one binary per paper table
//! or figure; see `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for
//! recorded results).

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod ch3;
pub mod ch4;
pub mod datasets;
pub mod signatures;

use std::time::Instant;

/// Runs `f`, returning its output and the wall-clock seconds it took.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Prints a markdown-style table: a header row then aligned data rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n## {title}\n");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect();
        format!("| {} |", padded.join(" | "))
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
    println!("{}", fmt_row(&sep));
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Formats a float to 4 decimals for table cells.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Formats a float to 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_measures_something() {
        let (v, secs) = timed(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(secs >= 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f4(1.23456), "1.2346");
        assert_eq!(f2(1.237), "1.24");
    }
}
