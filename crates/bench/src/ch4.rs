//! Chapter-4 experiment machinery: runs the five topical-phrase-mining
//! methods of §4.4.2 on a common corpus and returns comparable per-topic
//! phrase lists.

use lesm_phrases::kert::{Kert, KertConfig, KertVariant};
use lesm_phrases::topmine::{ToPMine, ToPMineConfig};
use lesm_topicmodel::lda::{Lda, LdaConfig};
use lesm_topicmodel::pdlda::{PdLdaLike, PdLdaLikeConfig};
use lesm_topicmodel::phrase_lda::PhraseLdaConfig;
use lesm_topicmodel::tng::{Tng, TngConfig};
use lesm_topicmodel::turbo::{TurboTopics, TurboTopicsConfig};

/// One chapter-4 method's output: ranked phrase token lists per topic.
pub struct Ch4Output {
    /// Method display name.
    pub name: String,
    /// `topic_phrases[t]` — ranked phrases of topic `t`.
    pub topic_phrases: Vec<Vec<Vec<u32>>>,
    /// Wall-clock seconds the method took.
    pub seconds: f64,
}

/// Runs ToPMine.
pub fn run_topmine(docs: &[Vec<u32>], vocab: usize, k: usize, iters: usize, seed: u64) -> Ch4Output {
    let (res, secs) = crate::timed(|| {
        ToPMine::run(
            docs,
            vocab,
            &ToPMineConfig {
                min_support: 5,
                max_len: 4,
                seg_alpha: 2.0,
                lda: PhraseLdaConfig { k, iters, seed, ..Default::default() },
                omega: 0.3,
                top_n: 30,
                ..Default::default()
            },
        )
        .expect("valid config")
    });
    let topic_phrases = res
        .topical_phrases
        .iter()
        .map(|list| list.iter().map(|p| p.tokens.clone()).collect())
        .collect();
    Ch4Output { name: "ToPMine".into(), topic_phrases, seconds: secs }
}

/// Runs KERT on top of a background LDA, with a configurable variant.
pub fn run_kert(
    docs: &[Vec<u32>],
    vocab: usize,
    k: usize,
    iters: usize,
    seed: u64,
    variant: KertVariant,
) -> Ch4Output {
    let (ranked, secs) = crate::timed(|| {
        let lda = Lda::fit(docs, vocab, &LdaConfig { k, iters, seed, ..Default::default() });
        Kert::run(
            docs,
            &lda.assignments,
            k,
            &KertConfig { min_support: 5, max_len: 3, variant, top_n: 30, ..Default::default() },
        )
        .expect("valid config")
    });
    let name = match variant {
        KertVariant::Full => "KERT".to_string(),
        v => format!("KERT-{v:?}"),
    };
    let topic_phrases = ranked
        .iter()
        .map(|list| list.iter().map(|p| p.tokens.clone()).collect())
        .collect();
    Ch4Output { name, topic_phrases, seconds: secs }
}

/// Runs the TNG baseline.
pub fn run_tng(docs: &[Vec<u32>], vocab: usize, k: usize, iters: usize, seed: u64) -> Ch4Output {
    let (phrases, secs) = crate::timed(|| {
        let m = Tng::fit(docs, vocab, &TngConfig { k, iters, seed, ..Default::default() });
        m.top_phrases(docs, 30)
    });
    let topic_phrases =
        phrases.into_iter().map(|l| l.into_iter().map(|(p, _)| p).collect()).collect();
    Ch4Output { name: "TNG".into(), topic_phrases, seconds: secs }
}

/// Runs the PD-LDA-like baseline.
pub fn run_pdlda(docs: &[Vec<u32>], vocab: usize, k: usize, iters: usize, seed: u64) -> Ch4Output {
    let (phrases, secs) = crate::timed(|| {
        let m = PdLdaLike::fit(docs, vocab, &PdLdaLikeConfig { k, iters, seed, ..Default::default() });
        m.top_phrases(30)
    });
    let topic_phrases =
        phrases.into_iter().map(|l| l.into_iter().map(|(p, _)| p).collect()).collect();
    Ch4Output { name: "PD-LDA-like".into(), topic_phrases, seconds: secs }
}

/// Runs TurboTopics-lite.
pub fn run_turbo(docs: &[Vec<u32>], vocab: usize, k: usize, iters: usize, seed: u64) -> Ch4Output {
    let (res, secs) = crate::timed(|| {
        TurboTopics::run(
            docs,
            vocab,
            &TurboTopicsConfig {
                lda: LdaConfig { k, iters, seed, ..Default::default() },
                sig_threshold: 3.0,
                min_count: 3,
                max_rounds: 3,
            },
        )
    });
    let topic_phrases = res
        .topic_phrases
        .into_iter()
        .map(|l| l.into_iter().take(30).map(|(p, _)| p).collect())
        .collect();
    Ch4Output { name: "TurboTopics".into(), topic_phrases, seconds: secs }
}

/// Runs the full §4.4.2 comparison suite.
pub fn run_all(docs: &[Vec<u32>], vocab: usize, k: usize, iters: usize, seed: u64) -> Vec<Ch4Output> {
    vec![
        run_pdlda(docs, vocab, k, iters, seed),
        run_topmine(docs, vocab, k, iters, seed),
        run_kert(docs, vocab, k, iters, seed, KertVariant::Full),
        run_tng(docs, vocab, k, iters, seed),
        run_turbo(docs, vocab, k, iters, seed),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::labeled;

    #[test]
    fn all_methods_produce_phrases() {
        let lc = labeled(300, 3, 7);
        let docs: Vec<Vec<u32>> = lc.corpus.docs.iter().map(|d| d.tokens.clone()).collect();
        let outputs = run_all(&docs, lc.corpus.num_words(), 3, 30, 1);
        assert_eq!(outputs.len(), 5);
        for o in &outputs {
            assert_eq!(o.topic_phrases.len(), 3, "{} topic count", o.name);
            let total: usize = o.topic_phrases.iter().map(Vec::len).sum();
            assert!(total > 0, "{} produced no phrases", o.name);
            assert!(o.seconds >= 0.0);
        }
    }
}
