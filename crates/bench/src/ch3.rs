//! Chapter-3 experiment machinery: subtopic-discovery method runners and
//! intrusion-task generators for the 8 hierarchy methods of §3.3.2.

use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_corpus::synth::PapersGroundTruth;
use lesm_corpus::Corpus;
use lesm_eval::annotator::{panel_intrusion_accuracy, SimulatedAnnotator};
use lesm_hier::em::{CathyHinEm, EmConfig, WeightMode};
use lesm_hier::hierarchy::{CathyConfig, ChildCount};
use lesm_net::collapsed_network;
use lesm_topicmodel::{NetClus, NetClusConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ranked items per subtopic per node type (`per_topic[z][type]`), in the
/// collapsed-network type order (entity types first, term last).
pub struct SubtopicRanking {
    /// Method display name.
    pub name: String,
    /// `per_topic[z][type]` ranked `(item, score)` lists.
    pub per_topic: Vec<Vec<Vec<(u32, f64)>>>,
}

/// A standard EM config used by all chapter-3 runs.
pub fn em_config(k: usize, weights: WeightMode, seed: u64) -> EmConfig {
    EmConfig {
        k,
        iters: 250,
        restarts: 6,
        seed,
        background: true,
        weights,
        ..EmConfig::default()
    }
}

/// CATHYHIN one-level subtopic discovery on the collapsed network.
pub fn cathyhin_subtopics(
    corpus: &Corpus,
    k: usize,
    weights: WeightMode,
    seed: u64,
    top_n: usize,
) -> SubtopicRanking {
    let name = match &weights {
        WeightMode::Equal => "CATHYHIN (equal weight)",
        WeightMode::Normalized => "CATHYHIN (norm weight)",
        WeightMode::Learned => "CATHYHIN (learn weight)",
        WeightMode::Fixed(_) => "CATHYHIN (fixed weight)",
    };
    let net = collapsed_network(corpus);
    let fit = CathyHinEm::fit(&net, &em_config(k, weights, seed)).expect("non-empty network");
    let n_types = net.num_types();
    let per_topic = (0..k)
        .map(|z| (0..n_types).map(|x| fit.top_nodes(x, z, top_n)).collect())
        .collect();
    SubtopicRanking { name: name.into(), per_topic }
}

/// NetClus one-level subtopic discovery.
pub fn netclus_subtopics(
    corpus: &Corpus,
    k: usize,
    lambda_s: f64,
    seed: u64,
    top_n: usize,
) -> SubtopicRanking {
    let model = NetClus::fit(corpus, &NetClusConfig { k, lambda_s, iters: 80, seed });
    let n_types = corpus.entities.num_types() + 1;
    let per_topic = (0..k)
        .map(|z| (0..n_types).map(|x| model.top_items(z, x, top_n)).collect())
        .collect();
    SubtopicRanking { name: "NetClus".into(), per_topic }
}

/// TopK baseline: every "topic" is the global frequency ranking.
pub fn topk_subtopics(corpus: &Corpus, k: usize, top_n: usize) -> SubtopicRanking {
    let n_etypes = corpus.entities.num_types();
    let mut counts: Vec<std::collections::HashMap<u32, f64>> =
        vec![std::collections::HashMap::new(); n_etypes + 1];
    for doc in &corpus.docs {
        for &w in &doc.tokens {
            *counts[n_etypes].entry(w).or_insert(0.0) += 1.0;
        }
        for e in &doc.entities {
            *counts[e.etype].entry(e.id).or_insert(0.0) += 1.0;
        }
    }
    let ranked: Vec<Vec<(u32, f64)>> = counts
        .into_iter()
        .map(|m| {
            let mut v: Vec<(u32, f64)> = m.into_iter().collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            v.truncate(top_n);
            v
        })
        .collect();
    SubtopicRanking { name: "TopK".into(), per_topic: vec![ranked; k] }
}

/// A hierarchy produced by one of the §3.3.2 comparison methods, reduced
/// to what the intrusion tasks need.
pub struct MethodHierarchy {
    /// Method display name.
    pub name: String,
    /// Parent index per topic (`None` at the root).
    pub parents: Vec<Option<usize>>,
    /// Children per topic.
    pub children: Vec<Vec<usize>>,
    /// Ranked phrases (token sequences) per topic.
    pub topic_phrases: Vec<Vec<Vec<u32>>>,
    /// Ranked entity ids per topic per entity type (empty when the method
    /// does not rank entities).
    pub topic_entities: Vec<Vec<Vec<u32>>>,
}

/// Standard miner configuration for the hierarchy methods.
pub fn miner_config(branching: &[usize], seed: u64) -> MinerConfig {
    MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::PerLevel(branching.to_vec()),
            max_depth: branching.len(),
            em: em_config(branching[0], WeightMode::Learned, seed),
            min_links: 20,
            subnet_threshold: 0.5,
        },
        phrase_min_support: 5,
        ..MinerConfig::default()
    }
}

fn mined_to_method(name: &str, corpus: &Corpus, mined: &MinedStructure, unigram_only: bool) -> MethodHierarchy {
    let n = mined.hierarchy.len();
    let term_type = corpus.entities.num_types();
    let topic_phrases: Vec<Vec<Vec<u32>>> = (0..n)
        .map(|t| {
            if unigram_only {
                mined
                    .hierarchy
                    .top_nodes(t, term_type, 20)
                    .into_iter()
                    .map(|(w, _)| vec![w])
                    .collect()
            } else {
                mined.topic_phrases[t].iter().map(|p| p.tokens.clone()).collect()
            }
        })
        .collect();
    let topic_entities: Vec<Vec<Vec<u32>>> = (0..n)
        .map(|t| {
            mined.topic_entities[t]
                .iter()
                .map(|list| list.iter().map(|&(id, _)| id).collect())
                .collect()
        })
        .collect();
    MethodHierarchy {
        name: name.into(),
        parents: mined.hierarchy.topics.iter().map(|t| t.parent).collect(),
        children: mined.hierarchy.topics.iter().map(|t| t.children.clone()).collect(),
        topic_phrases,
        topic_entities,
    }
}

/// CATHYHIN (full pipeline) or its unigram-restricted variant CATHYHIN1.
pub fn method_cathyhin(
    corpus: &Corpus,
    branching: &[usize],
    seed: u64,
    unigram_only: bool,
) -> MethodHierarchy {
    let mined = LatentStructureMiner::mine(corpus, &miner_config(branching, seed))
        .expect("pipeline succeeds");
    let name = if unigram_only { "CATHYHIN1" } else { "CATHYHIN" };
    mined_to_method(name, corpus, &mined, unigram_only)
}

/// CATHY (text-only) and CATHY1; with `heuristic_entities` the
/// CATHYheuristicHIN variant attaches entities by document-weighted links.
pub fn method_cathy(
    corpus: &Corpus,
    branching: &[usize],
    seed: u64,
    unigram_only: bool,
    heuristic_entities: bool,
) -> MethodHierarchy {
    // Strip entities: the text-only pipeline sees the same docs, no links.
    let mut text_only = Corpus::new();
    text_only.vocab = corpus.vocab.clone();
    text_only.docs = corpus
        .docs
        .iter()
        .map(|d| lesm_corpus::Doc { tokens: d.tokens.clone(), ..Default::default() })
        .collect();
    let mined = LatentStructureMiner::mine(&text_only, &miner_config(branching, seed))
        .expect("pipeline succeeds");
    let mut mh = mined_to_method(
        if heuristic_entities {
            "CATHYheurHIN"
        } else if unigram_only {
            "CATHY1"
        } else {
            "CATHY"
        },
        &text_only,
        &mined,
        unigram_only,
    );
    if heuristic_entities {
        // Posterior-hoc entity ranking: score(e, t) = Σ_d doc_topic[d][t] ×
        // [e linked to d] (the §3.3.2 heuristic comparison).
        let n_types = corpus.entities.num_types();
        let n_topics = mined.hierarchy.len();
        let mut scores: Vec<Vec<std::collections::HashMap<u32, f64>>> =
            vec![vec![std::collections::HashMap::new(); n_types]; n_topics];
        for (d, doc) in corpus.docs.iter().enumerate() {
            for t in 0..n_topics {
                let w = mined.doc_topic[d][t];
                if w <= 0.0 {
                    continue;
                }
                for e in &doc.entities {
                    *scores[t][e.etype].entry(e.id).or_insert(0.0) += w;
                }
            }
        }
        mh.topic_entities = scores
            .into_iter()
            .map(|per_type| {
                per_type
                    .into_iter()
                    .map(|m| {
                        let mut v: Vec<(u32, f64)> = m.into_iter().collect();
                        v.sort_by(|a, b| {
                            b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0))
                        });
                        v.into_iter().take(20).map(|(id, _)| id).collect()
                    })
                    .collect()
            })
            .collect();
    }
    mh
}

/// NetClus-based hierarchy (recursive hard partitioning) with optional
/// phrase representation (the NetClus / NetClusphrase variants).
pub fn method_netclus(
    corpus: &Corpus,
    branching: &[usize],
    lambda_s: f64,
    seed: u64,
    phrases: bool,
    unigram_only: bool,
) -> MethodHierarchy {
    let n_etypes = corpus.entities.num_types();
    // Frequent phrases for the phrase-ranking step.
    let docs: Vec<Vec<u32>> = corpus.docs.iter().map(|d| d.tokens.clone()).collect();
    let fp = lesm_phrases::topmine::FrequentPhrases::mine(&docs, 5, 4);
    let segs = lesm_phrases::topmine::Segmenter::segment(
        &docs,
        &fp,
        &lesm_phrases::topmine::SegmenterConfig { alpha: 2.0 },
    );
    let mut parents: Vec<Option<usize>> = vec![None];
    let mut children: Vec<Vec<usize>> = vec![vec![]];
    let mut topic_docs: Vec<Vec<usize>> = vec![(0..corpus.num_docs()).collect()];
    let mut topic_phrases: Vec<Vec<Vec<u32>>> = vec![vec![]];
    let mut topic_entities: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n_etypes]];
    let mut frontier = vec![0usize];
    for (level, &k) in branching.iter().enumerate() {
        let mut next = Vec::new();
        for &node in &frontier {
            let ids = topic_docs[node].clone();
            if ids.len() < k * 5 {
                continue;
            }
            let model = NetClus::fit_subset(
                corpus,
                &ids,
                &NetClusConfig { k, lambda_s, iters: 60, seed: seed + level as u64 },
            );
            // Hard partition of documents.
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (pos, &d) in ids.iter().enumerate() {
                buckets[model.argmax_cluster(pos)].push(d);
            }
            for (z, bucket) in buckets.into_iter().enumerate() {
                let idx = parents.len();
                parents.push(Some(node));
                children.push(vec![]);
                children[node].push(idx);
                // Phrase representation of the cluster.
                let phrase_list = if phrases && !unigram_only {
                    rank_cluster_phrases(&segs, &bucket, corpus.num_docs(), 20)
                } else {
                    model.top_items(z, n_etypes, 20).into_iter().map(|(w, _)| vec![w]).collect()
                };
                topic_phrases.push(phrase_list);
                topic_entities.push(
                    (0..n_etypes)
                        .map(|x| model.top_items(z, x, 20).into_iter().map(|(id, _)| id).collect())
                        .collect(),
                );
                topic_docs.push(bucket);
                next.push(idx);
            }
        }
        frontier = next;
    }
    let name = match (phrases, unigram_only) {
        (true, false) => "NetClusphrase",
        (true, true) | (false, true) => "NetClusphrase1",
        (false, false) => "NetClus",
    };
    MethodHierarchy { name: name.into(), parents, children, topic_phrases, topic_entities }
}

/// Ranks a document cluster's phrases by frequency × purity vs the corpus.
fn rank_cluster_phrases(
    segs: &[Vec<Vec<u32>>],
    cluster: &[usize],
    n_docs: usize,
    top_n: usize,
) -> Vec<Vec<u32>> {
    use std::collections::HashMap;
    let mut inside: HashMap<&[u32], f64> = HashMap::new();
    for &d in cluster {
        for seg in &segs[d] {
            if !seg.is_empty() {
                *inside.entry(seg.as_slice()).or_insert(0.0) += 1.0;
            }
        }
    }
    let mut global: HashMap<&[u32], f64> = HashMap::new();
    for doc in segs {
        for seg in doc {
            if !seg.is_empty() {
                *global.entry(seg.as_slice()).or_insert(0.0) += 1.0;
            }
        }
    }
    let n_in = cluster.len().max(1) as f64;
    let mut scored: Vec<(Vec<u32>, f64)> = inside
        .into_iter()
        .filter(|&(_, c)| c >= 2.0)
        .map(|(p, c)| {
            let p_in = c / n_in;
            let p_all = global[p] / n_docs as f64;
            (p.to_vec(), p_in * (p_in / p_all.max(1e-12)).ln().max(0.0))
        })
        .collect();
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    scored.into_iter().take(top_n).map(|(p, _)| p).collect()
}

/// One intrusion question: option signatures plus the intruder index.
pub type Question = (Vec<Vec<f64>>, usize);

/// Builds phrase-intrusion questions for a method hierarchy.
pub fn phrase_intrusion_questions(
    mh: &MethodHierarchy,
    truth: &PapersGroundTruth,
    n_questions: usize,
    seed: u64,
) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut questions = Vec::new();
    let topics_with_sibs: Vec<usize> = (0..mh.parents.len())
        .filter(|&t| {
            mh.topic_phrases[t].len() >= 4
                && siblings(mh, t).iter().any(|&s| !mh.topic_phrases[s].is_empty())
        })
        .collect();
    if topics_with_sibs.is_empty() {
        return questions;
    }
    let mut guard = 0;
    while questions.len() < n_questions && guard < n_questions * 20 {
        guard += 1;
        let t = topics_with_sibs[rng.gen_range(0..topics_with_sibs.len())];
        let sibs: Vec<usize> =
            siblings(mh, t).into_iter().filter(|&s| !mh.topic_phrases[s].is_empty()).collect();
        let s = sibs[rng.gen_range(0..sibs.len())];
        let own: Vec<&Vec<u32>> = mh.topic_phrases[t].iter().take(10).collect();
        let intruder = &mh.topic_phrases[s][rng.gen_range(0..mh.topic_phrases[s].len().min(10))];
        let mut picks: Vec<&Vec<u32>> = Vec::new();
        while picks.len() < 4 {
            let cand = own[rng.gen_range(0..own.len())];
            if !picks.contains(&cand) && cand != intruder {
                picks.push(cand);
            }
            if picks.len() + 1 > own.len() {
                break;
            }
        }
        if picks.len() < 4 {
            continue;
        }
        let group: Vec<Vec<f64>> =
            picks.iter().map(|p| crate::signatures::phrase_signature(truth, p)).collect();
        let intruder_sig = crate::signatures::phrase_signature(truth, intruder);
        if !distinguishable(&group, &intruder_sig) {
            continue;
        }
        let pos = rng.gen_range(0..=group.len());
        let mut sigs = group;
        sigs.insert(pos, intruder_sig);
        questions.push((sigs, pos));
    }
    questions
}

/// Builds entity-intrusion questions for one entity type.
pub fn entity_intrusion_questions(
    mh: &MethodHierarchy,
    truth: &PapersGroundTruth,
    etype: usize,
    n_questions: usize,
    seed: u64,
) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut questions = Vec::new();
    let eligible: Vec<usize> = (0..mh.parents.len())
        .filter(|&t| {
            mh.topic_entities[t].get(etype).is_some_and(|l| l.len() >= 4)
                && siblings(mh, t)
                    .iter()
                    .any(|&s| mh.topic_entities[s].get(etype).is_some_and(|l| !l.is_empty()))
        })
        .collect();
    if eligible.is_empty() {
        return questions;
    }
    let mut guard = 0;
    while questions.len() < n_questions && guard < n_questions * 20 {
        guard += 1;
        let t = eligible[rng.gen_range(0..eligible.len())];
        let sibs: Vec<usize> = siblings(mh, t)
            .into_iter()
            .filter(|&s| mh.topic_entities[s].get(etype).is_some_and(|l| !l.is_empty()))
            .collect();
        let s = sibs[rng.gen_range(0..sibs.len())];
        let own = &mh.topic_entities[t][etype];
        let intr_list = &mh.topic_entities[s][etype];
        let intruder = intr_list[rng.gen_range(0..intr_list.len().min(10))];
        let mut picks: Vec<u32> = Vec::new();
        let mut tries = 0;
        while picks.len() < 4 && tries < 40 {
            tries += 1;
            let cand = own[rng.gen_range(0..own.len().min(10))];
            if !picks.contains(&cand) && cand != intruder {
                picks.push(cand);
            }
        }
        if picks.len() < 4 {
            continue;
        }
        let group: Vec<Vec<f64>> = picks
            .iter()
            .map(|&id| crate::signatures::entity_signature(truth, etype, id))
            .collect();
        let intruder_sig = crate::signatures::entity_signature(truth, etype, intruder);
        if !distinguishable(&group, &intruder_sig) {
            continue;
        }
        let pos = rng.gen_range(0..=group.len());
        let mut sigs = group;
        sigs.insert(pos, intruder_sig);
        questions.push((sigs, pos));
    }
    questions
}

/// Builds topic-intrusion questions: candidate child topics of a parent
/// plus one non-child; each topic represented by its top-5 phrases.
pub fn topic_intrusion_questions(
    mh: &MethodHierarchy,
    truth: &PapersGroundTruth,
    n_questions: usize,
    seed: u64,
) -> Vec<Question> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut questions = Vec::new();
    let parents: Vec<usize> =
        (0..mh.parents.len()).filter(|&t| mh.children[t].len() >= 2).collect();
    if parents.len() < 2 {
        return questions;
    }
    let topic_sig = |t: usize| {
        let phrases: Vec<Vec<u32>> = mh.topic_phrases[t].iter().take(5).cloned().collect();
        crate::signatures::topic_signature(truth, &phrases)
    };
    let mut guard = 0;
    while questions.len() < n_questions && guard < n_questions * 20 {
        guard += 1;
        let p = parents[rng.gen_range(0..parents.len())];
        let kids = &mh.children[p];
        let kid_depth = depth(mh, kids[0]);
        // A non-child at the same level (the paper's question design).
        let others: Vec<usize> = (0..mh.parents.len())
            .filter(|&t| {
                mh.parents[t].is_some()
                    && mh.parents[t] != Some(p)
                    && depth(mh, t) == kid_depth
                    && !mh.topic_phrases[t].is_empty()
            })
            .collect();
        if others.is_empty() {
            continue;
        }
        let intruder = others[rng.gen_range(0..others.len())];
        let take = kids.len().min(3);
        let opts: Vec<usize> = kids.iter().copied().take(take).collect();
        let group: Vec<Vec<f64>> = opts.iter().map(|&t| topic_sig(t)).collect();
        let intruder_sig = topic_sig(intruder);
        if !distinguishable(&group, &intruder_sig) {
            continue;
        }
        let pos = rng.gen_range(0..=group.len());
        let mut sigs = group;
        sigs.insert(pos, intruder_sig);
        questions.push((sigs, pos));
    }
    questions
}

fn siblings(mh: &MethodHierarchy, t: usize) -> Vec<usize> {
    match mh.parents[t] {
        None => vec![],
        Some(p) => mh.children[p].iter().copied().filter(|&c| c != t).collect(),
    }
}

fn depth(mh: &MethodHierarchy, mut t: usize) -> usize {
    let mut d = 0;
    while let Some(p) = mh.parents[t] {
        t = p;
        d += 1;
    }
    d
}

/// Whether the intruder signature is actually distinguishable from the
/// in-group options. Human question designers discard questions whose
/// intruder is indistinguishable (e.g. venue intruders between leaf
/// topics that share an area's venues); the oracle does the same.
fn distinguishable(group: &[Vec<f64>], intruder: &[f64]) -> bool {
    let dim = intruder.len();
    let mut mean = vec![0.0f64; dim];
    for g in group {
        for (m, v) in mean.iter_mut().zip(g) {
            *m += v;
        }
    }
    let (mut ab, mut aa, mut bb) = (0.0, 0.0, 0.0);
    for (m, v) in mean.iter().zip(intruder) {
        ab += m * v;
        aa += m * m;
        bb += v * v;
    }
    if aa <= 0.0 || bb <= 0.0 {
        return false; // empty signatures: nothing to judge
    }
    ab / (aa.sqrt() * bb.sqrt()) < 0.85
}

/// Scores a question set with a fresh 3-annotator panel.
pub fn score_questions(questions: &[Question], seed: u64) -> f64 {
    if questions.is_empty() {
        return 0.0;
    }
    let mut panel = SimulatedAnnotator::panel(seed, 3);
    panel_intrusion_accuracy(&mut panel, questions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::dblp_small;

    #[test]
    fn subtopic_runners_produce_rankings() {
        let p = dblp_small(300, 9);
        let r1 = cathyhin_subtopics(&p.corpus, 2, WeightMode::Equal, 1, 10);
        assert_eq!(r1.per_topic.len(), 2);
        assert_eq!(r1.per_topic[0].len(), 3);
        let r2 = netclus_subtopics(&p.corpus, 2, 0.3, 1, 10);
        assert_eq!(r2.per_topic.len(), 2);
        let r3 = topk_subtopics(&p.corpus, 2, 10);
        assert_eq!(r3.per_topic[0][2].len(), 10);
        // TopK's two "topics" are identical.
        assert_eq!(r3.per_topic[0][2], r3.per_topic[1][2]);
    }

    #[test]
    fn intrusion_questions_generate_and_score() {
        let p = dblp_small(400, 10);
        let mh = method_cathyhin(&p.corpus, &[2, 2], 3, false);
        let qs = phrase_intrusion_questions(&mh, &p.truth, 20, 1);
        assert!(!qs.is_empty());
        let acc = score_questions(&qs, 5);
        assert!((0.0..=1.0).contains(&acc));
        let eqs = entity_intrusion_questions(&mh, &p.truth, 0, 10, 2);
        assert!(!eqs.is_empty());
        let tqs = topic_intrusion_questions(&mh, &p.truth, 10, 3);
        assert!(!tqs.is_empty());
    }

    #[test]
    fn netclus_method_builds_hierarchy() {
        let p = dblp_small(300, 11);
        let mh = method_netclus(&p.corpus, &[2], 0.3, 1, true, false);
        assert!(mh.parents.len() >= 3);
        assert_eq!(mh.children[0].len(), 2);
    }
}
