//! Ground-truth topic signatures and latent quality for simulated
//! annotators (DESIGN.md §3: the noisy-oracle substitution for human
//! judges).

use lesm_corpus::synth::PapersGroundTruth;

/// The dense leaf-topic signature of a phrase: each constituent word votes
/// for its owning topic's *leaf descendants* (internal-topic words spread
/// their vote over the subtree's leaves); background words vote nowhere.
pub fn phrase_signature(truth: &PapersGroundTruth, tokens: &[u32]) -> Vec<f64> {
    let gt = &truth.hierarchy;
    let n_leaves = gt.leaves.len();
    let mut sig = vec![0.0f64; n_leaves];
    for &w in tokens {
        if let Some(owner) = truth.word_topic(w) {
            let leaves_under: Vec<usize> = gt
                .leaves
                .iter()
                .enumerate()
                .filter(|&(_, &l)| gt.path_nodes(l).contains(&owner))
                .map(|(i, _)| i)
                .collect();
            if !leaves_under.is_empty() {
                let share = 1.0 / leaves_under.len() as f64;
                for i in leaves_under {
                    sig[i] += share;
                }
            }
        }
    }
    sig
}

/// The leaf-topic signature of an entity: its empirical link distribution.
pub fn entity_signature(truth: &PapersGroundTruth, etype: usize, id: u32) -> Vec<f64> {
    let gt = &truth.hierarchy;
    let n_leaves = gt.leaves.len();
    let mut sig = vec![0.0f64; n_leaves];
    for (leaf, w) in truth.entity_leaf_dist(etype, id) {
        if let Some(i) = gt.leaf_index(leaf) {
            sig[i] = w;
        }
    }
    sig
}

/// The signature of a whole topic, aggregated from its top phrases.
pub fn topic_signature(truth: &PapersGroundTruth, phrases: &[Vec<u32>]) -> Vec<f64> {
    let n_leaves = truth.hierarchy.leaves.len();
    let mut sig = vec![0.0f64; n_leaves];
    for p in phrases {
        let s = phrase_signature(truth, p);
        for (a, b) in sig.iter_mut().zip(&s) {
            *a += b;
        }
    }
    sig
}

/// Latent quality of a phrase in `[0, 1]`, driving simulated Likert
/// ratings:
///
/// * a ground-truth multi-word phrase scores highest;
/// * an *incomplete* fragment of a ground-truth phrase scores low
///   ("vector machines" without "support");
/// * topically pure word sets score mid;
/// * mixed-topic or background-dominated strings score lowest.
pub fn phrase_quality(truth: &PapersGroundTruth, tokens: &[u32]) -> f64 {
    let gt = &truth.hierarchy;
    if tokens.is_empty() {
        return 0.0;
    }
    let is_gt_phrase = gt.phrases.iter().flatten().any(|p| p.as_slice() == tokens);
    if is_gt_phrase {
        return 0.95;
    }
    let is_fragment = tokens.len() >= 2
        && gt.phrases.iter().flatten().any(|p| {
            p.len() > tokens.len() && p.windows(tokens.len()).any(|w| w == tokens)
        });
    if is_fragment {
        return 0.35;
    }
    // Topical purity of the word set.
    let owners: Vec<Option<usize>> = tokens.iter().map(|&w| truth.word_topic(w)).collect();
    let topical: Vec<usize> = owners.iter().flatten().copied().collect();
    if topical.is_empty() {
        return 0.1; // all background
    }
    let mut counts = std::collections::HashMap::new();
    for &t in &topical {
        *counts.entry(t).or_insert(0usize) += 1;
    }
    let max_same = counts.values().copied().max().unwrap_or(0);
    let purity = max_same as f64 / tokens.len() as f64;
    if tokens.len() == 1 {
        0.55 // a clean topical unigram is decent but not a great phrase
    } else {
        0.15 + 0.45 * purity
    }
}

/// Coherence of a topic's phrase list in `[0, 1]`: concentration of the
/// aggregate signature (1 = all mass on one leaf subtree).
pub fn topic_coherence(truth: &PapersGroundTruth, phrases: &[Vec<u32>]) -> f64 {
    let sig = topic_signature(truth, phrases);
    let total: f64 = sig.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // Herfindahl concentration of the normalized signature, rescaled so a
    // uniform spread maps to ~0 and a point mass to 1.
    let h: f64 = sig.iter().map(|&x| (x / total) * (x / total)).sum();
    let n = sig.len() as f64;
    ((h - 1.0 / n) / (1.0 - 1.0 / n)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::dblp_small;

    #[test]
    fn gt_phrases_score_highest() {
        let p = dblp_small(100, 3);
        let gt = &p.truth.hierarchy;
        let leaf = gt.leaves[0];
        let phrase = gt.phrases[leaf][0].clone();
        let q_full = phrase_quality(&p.truth, &phrase);
        assert!(q_full > 0.9);
        if phrase.len() >= 3 {
            let q_frag = phrase_quality(&p.truth, &phrase[1..]);
            assert!(q_frag < 0.5, "fragment scored {q_frag}");
        }
        // Mixed-topic pair scores low.
        let other_leaf = gt.leaves[3];
        let mixed = vec![gt.own_words[leaf][0], gt.own_words[other_leaf][0]];
        assert!(phrase_quality(&p.truth, &mixed) < 0.5);
        // Background unigram scores lowest.
        let bg = vec![gt.background[0]];
        assert!(phrase_quality(&p.truth, &bg) < 0.2);
    }

    #[test]
    fn signatures_separate_topics() {
        let p = dblp_small(100, 4);
        let gt = &p.truth.hierarchy;
        let s0 = phrase_signature(&p.truth, &gt.phrases[gt.leaves[0]][0]);
        let s3 = phrase_signature(&p.truth, &gt.phrases[gt.leaves[3]][0]);
        assert!(s0[0] > 0.0);
        assert!(s3[3] > 0.0);
        assert_eq!(s0[3], 0.0);
        assert_eq!(s3[0], 0.0);
    }

    #[test]
    fn coherence_rewards_single_topic_lists() {
        let p = dblp_small(100, 5);
        let gt = &p.truth.hierarchy;
        let leaf = gt.leaves[0];
        let pure: Vec<Vec<u32>> = gt.phrases[leaf].clone();
        let mixed: Vec<Vec<u32>> =
            gt.leaves.iter().map(|&l| gt.phrases[l][0].clone()).collect();
        assert!(topic_coherence(&p.truth, &pure) > topic_coherence(&p.truth, &mixed));
    }
}
