//! Standard experiment datasets (the DBLP / NEWS / labeled / genealogy
//! substitutes of DESIGN.md §3, at the sizes the experiment binaries use).

use lesm_corpus::synth::{
    GenealogyConfig, Genealogy, HierarchySpec, LabeledConfig, LabeledCorpus, PapersConfig,
    SyntheticPapers,
};

/// DBLP-like corpus: 5 areas × 4 subareas, authors at leaves, venues at
/// areas (mirrors the 20-conference corpus of §3.3).
pub fn dblp(n_docs: usize, seed: u64) -> SyntheticPapers {
    SyntheticPapers::generate(&PapersConfig::dblp(n_docs, seed)).expect("valid preset")
}

/// A smaller 2×2 DBLP-like corpus for fast hierarchy experiments.
pub fn dblp_small(n_docs: usize, seed: u64) -> SyntheticPapers {
    let mut cfg = PapersConfig::dblp(n_docs, seed);
    cfg.hierarchy = HierarchySpec {
        branching: vec![2, 2],
        words_per_topic: 20,
        phrases_per_topic: 6,
        background_words: 40,
        zipf_s: 1.0,
    };
    cfg.entity_specs[0].pool_per_node = 12;
    cfg.entity_specs[1].pool_per_node = 3;
    SyntheticPapers::generate(&cfg).expect("valid config")
}

/// Serving-scale corpus plus a deterministic mined structure derived
/// from the generator's ground truth (`lesm_core::model_from_truth`) —
/// no EM, so 50k-document models build in seconds and are byte-stable
/// across runs. This is the model the serve/replay benchmarks snapshot.
pub fn replay_model(
    n_docs: usize,
    seed: u64,
) -> (lesm_corpus::Corpus, lesm_core::MinedStructure) {
    let papers = SyntheticPapers::generate(&PapersConfig::dblp_large(n_docs, seed))
        .expect("valid preset");
    let mined = lesm_core::model_from_truth(&papers);
    (papers.corpus, mined)
}

/// The replay corpus alone (same `dblp_large` preset as [`replay_model`])
/// for benchmarks that mine it themselves, e.g. `bench_update`.
pub fn replay_corpus(n_docs: usize, seed: u64) -> lesm_corpus::Corpus {
    let papers = SyntheticPapers::generate(&PapersConfig::dblp_large(n_docs, seed))
        .expect("valid preset");
    papers.corpus
}

/// NEWS-like corpus: 16 flat top stories with noisy person/location links.
pub fn news(n_docs: usize, seed: u64) -> SyntheticPapers {
    SyntheticPapers::generate(&PapersConfig::news(n_docs, seed)).expect("valid preset")
}

/// The 4-topic NEWS subset of §3.3.
pub fn news_subset(n_docs: usize, seed: u64) -> SyntheticPapers {
    let mut cfg = PapersConfig::news(n_docs, seed);
    cfg.hierarchy.branching = vec![4];
    SyntheticPapers::generate(&cfg).expect("valid preset")
}

/// Labeled flat corpus (the arXiv-physics stand-in of §4.4.1).
pub fn labeled(n_docs: usize, n_categories: usize, seed: u64) -> LabeledCorpus {
    LabeledCorpus::generate(&LabeledConfig { n_categories, n_docs, seed }).expect("valid config")
}

/// Academic genealogy with ground-truth advisor edges (§6.1.6).
pub fn genealogy(n_authors: usize, seed: u64) -> Genealogy {
    Genealogy::generate(&GenealogyConfig { n_authors, seed, ..GenealogyConfig::default() })
        .expect("valid config")
}

/// Restricts a corpus to the documents of one ground-truth level-1 subtree
/// — the "Database area" sub-corpus construction of Table 3.2.
pub fn subtree_corpus(
    papers: &SyntheticPapers,
    level1_node: usize,
) -> (lesm_corpus::Corpus, Vec<usize>) {
    let gt = &papers.truth.hierarchy;
    let keep: Vec<usize> = papers
        .truth
        .doc_leaf
        .iter()
        .enumerate()
        .filter(|&(_, &leaf)| gt.path_nodes(leaf).contains(&level1_node))
        .map(|(d, _)| d)
        .collect();
    let mut corpus = lesm_corpus::Corpus::new();
    corpus.vocab = papers.corpus.vocab.clone();
    corpus.entities = papers.corpus.entities.clone();
    for &d in &keep {
        corpus.docs.push(papers.corpus.docs[d].clone());
    }
    (corpus, keep)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_generate() {
        assert_eq!(dblp(50, 1).corpus.num_docs(), 50);
        assert_eq!(news(50, 1).corpus.num_docs(), 50);
        assert_eq!(labeled(50, 5, 1).corpus.num_docs(), 50);
        assert!(genealogy(40, 1).num_relations() > 0);
    }

    #[test]
    fn subtree_extraction_filters_docs() {
        let p = dblp_small(200, 2);
        let node1 = p.truth.hierarchy.nodes[0].children[0];
        let (sub, keep) = subtree_corpus(&p, node1);
        assert_eq!(sub.num_docs(), keep.len());
        assert!(keep.len() < 200);
        assert!(!keep.is_empty());
        for (&d, doc) in keep.iter().zip(&sub.docs) {
            assert_eq!(doc.tokens, p.corpus.docs[d].tokens);
        }
    }
}
