//! MI_K — mutual information between phrase-represented topics and gold
//! document categories (§4.4.1, Figure 4.2).
//!
//! Each of the top-K phrases per topic is labeled with the topic that ranks
//! it highest. For every document we look for contained labeled phrases:
//! if any are present, the joint event count `(topic, category)` is updated
//! with the averaged counts of the contained phrases; otherwise the count
//! is spread uniformly over topics. The score is the mutual information of
//! the resulting joint distribution.

use std::collections::HashMap;

/// Computes MI_K.
///
/// * `docs` — token-id sequences.
/// * `labels` — gold category per document (`0..n_categories`).
/// * `n_categories` — number of gold categories.
/// * `topic_phrases` — per topic, its top-K phrases as token sequences
///   (already deduplicated across topics: each phrase labeled by the topic
///   ranking it highest).
pub fn mutual_information_at_k(
    docs: &[Vec<u32>],
    labels: &[u32],
    n_categories: usize,
    topic_phrases: &[Vec<Vec<u32>>],
) -> f64 {
    assert_eq!(docs.len(), labels.len(), "every document needs a label");
    let k_topics = topic_phrases.len();
    if k_topics == 0 || n_categories == 0 || docs.is_empty() {
        return 0.0;
    }
    // Index phrases by first token for fast containment scanning.
    let mut by_first: HashMap<u32, Vec<(usize, &[u32])>> = HashMap::new();
    for (t, phrases) in topic_phrases.iter().enumerate() {
        for p in phrases {
            if let Some(&f) = p.first() {
                by_first.entry(f).or_default().push((t, p.as_slice()));
            }
        }
    }
    let mut joint = vec![vec![0.0f64; n_categories]; k_topics];
    for (doc, &label) in docs.iter().zip(labels) {
        let c = label as usize;
        if c >= n_categories {
            continue;
        }
        let mut topic_hits = vec![0.0f64; k_topics];
        let mut n_hits = 0usize;
        for start in 0..doc.len() {
            if let Some(cands) = by_first.get(&doc[start]) {
                for &(t, p) in cands {
                    if start + p.len() <= doc.len() && &doc[start..start + p.len()] == p {
                        topic_hits[t] += 1.0;
                        n_hits += 1;
                    }
                }
            }
        }
        if n_hits > 0 {
            for (t, h) in topic_hits.iter().enumerate() {
                if *h > 0.0 {
                    joint[t][c] += h / n_hits as f64;
                }
            }
        } else {
            let u = 1.0 / k_topics as f64;
            for row in joint.iter_mut() {
                row[c] += u;
            }
        }
    }
    mutual_information(&joint)
}

/// Mutual information of an (unnormalized, non-negative) joint count table.
pub fn mutual_information(joint: &[Vec<f64>]) -> f64 {
    let total: f64 = joint.iter().flat_map(|r| r.iter()).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let rows = joint.len();
    let cols = joint.first().map_or(0, Vec::len);
    let row_sums: Vec<f64> = joint.iter().map(|r| r.iter().sum::<f64>() / total).collect();
    let mut col_sums = vec![0.0; cols];
    for r in joint {
        for (c, &v) in r.iter().enumerate() {
            col_sums[c] += v / total;
        }
    }
    let mut mi = 0.0;
    for t in 0..rows {
        for c in 0..cols {
            let p = joint[t][c] / total;
            if p > 0.0 && row_sums[t] > 0.0 && col_sums[c] > 0.0 {
                mi += p * (p / (row_sums[t] * col_sums[c])).log2();
            }
        }
    }
    mi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_alignment_has_high_mi() {
        // 2 categories; topic phrases perfectly predict the category.
        let docs = vec![vec![0, 1, 2], vec![0, 1, 3], vec![4, 5, 6], vec![4, 5, 7]];
        let labels = vec![0, 0, 1, 1];
        let topics = vec![vec![vec![0, 1]], vec![vec![4, 5]]];
        let mi = mutual_information_at_k(&docs, &labels, 2, &topics);
        assert!((mi - 1.0).abs() < 1e-9, "perfect 2-way alignment should be 1 bit, got {mi}");
    }

    #[test]
    fn uninformative_phrases_have_zero_mi() {
        let docs = vec![vec![0, 1], vec![0, 1], vec![0, 1], vec![0, 1]];
        let labels = vec![0, 0, 1, 1];
        // Both topics claim disjoint phrases that never occur -> uniform spread.
        let topics = vec![vec![vec![8, 9]], vec![vec![10, 11]]];
        let mi = mutual_information_at_k(&docs, &labels, 2, &topics);
        assert!(mi.abs() < 1e-9);
    }

    #[test]
    fn partial_alignment_between_zero_and_one() {
        let docs = vec![vec![0, 1], vec![0, 1], vec![4, 5], vec![0, 1]];
        let labels = vec![0, 0, 1, 1];
        let topics = vec![vec![vec![0, 1]], vec![vec![4, 5]]];
        let mi = mutual_information_at_k(&docs, &labels, 2, &topics);
        assert!(mi > 0.0 && mi < 1.0);
    }

    #[test]
    fn mutual_information_of_independent_table_is_zero() {
        let joint = vec![vec![1.0, 1.0], vec![1.0, 1.0]];
        assert!(mutual_information(&joint).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(mutual_information_at_k(&[], &[], 2, &[vec![]]), 0.0);
        assert_eq!(mutual_information(&[]), 0.0);
    }
}
