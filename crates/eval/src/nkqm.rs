//! nKQM@K — normalized phrase quality measure for top-K phrases (§4.4.1).
//!
//! For method `M` with topics `t = 1..T` and per-rank judge scores:
//!
//! ```text
//! nKQM@K = (1/T) * sum_t [ sum_{j=1..K} score_aw(M_{t,j}) / log2(j+1) ] / IdealScore_K
//! ```
//!
//! `score_aw` is the agreement-weighted mean judge score (mean × linear
//! agreement kernel, see [`crate::kappa::item_agreement`]); `IdealScore_K`
//! is the DCG of the K best agreement-weighted scores over *all* judged
//! phrases, making methods comparable.

use crate::kappa::item_agreement;

/// Judge scores (1..=5 Likert) for one ranked phrase.
pub type JudgeScores = Vec<u8>;

/// Agreement-weighted score of one phrase: mean judge score × agreement.
pub fn score_aw(scores: &[u8], levels: usize) -> f64 {
    if scores.is_empty() {
        return 0.0;
    }
    let mean = scores.iter().map(|&s| s as f64).sum::<f64>() / scores.len() as f64;
    mean * item_agreement(scores, levels)
}

/// Computes nKQM@K.
///
/// * `per_topic` — for each topic, the judge-score vectors of that method's
///   ranked phrases (rank order preserved; may be shorter than `k`).
/// * `all_judged` — judge-score vectors of every phrase judged in the study
///   (across all methods), used for the ideal score.
/// * `k` — cutoff rank.
/// * `levels` — Likert scale size (5 in the paper).
pub fn nkqm_at_k(
    per_topic: &[Vec<JudgeScores>],
    all_judged: &[JudgeScores],
    k: usize,
    levels: usize,
) -> f64 {
    if per_topic.is_empty() || k == 0 {
        return 0.0;
    }
    let mut ideal: Vec<f64> = all_judged.iter().map(|s| score_aw(s, levels)).collect();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let ideal_score: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(j, s)| s / ((j + 2) as f64).log2())
        .sum();
    if ideal_score <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for topic in per_topic {
        let dcg: f64 = topic
            .iter()
            .take(k)
            .enumerate()
            .map(|(j, scores)| score_aw(scores, levels) / ((j + 2) as f64).log2())
            .sum();
        total += dcg / ideal_score;
    }
    total / per_topic.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_aw_prefers_consensus() {
        // Same mean (3), different agreement.
        assert!(score_aw(&[3, 3, 3], 5) > score_aw(&[1, 3, 5], 5));
    }

    #[test]
    fn perfect_method_scores_one() {
        // One topic whose phrases are exactly the K best judged phrases,
        // in agreement-weighted score order.
        let top: Vec<JudgeScores> = vec![vec![5, 5, 5], vec![4, 4, 4], vec![3, 3, 3]];
        let all = top.clone();
        let v = nkqm_at_k(&[top], &all, 3, 5);
        assert!((v - 1.0).abs() < 1e-9, "got {v}");
    }

    #[test]
    fn worse_ranking_scores_lower() {
        let good: Vec<JudgeScores> = vec![vec![5, 5, 5], vec![4, 4, 4], vec![2, 2, 2]];
        let bad: Vec<JudgeScores> = vec![vec![2, 2, 2], vec![4, 4, 4], vec![5, 5, 5]];
        let all: Vec<JudgeScores> = good.clone();
        let vg = nkqm_at_k(&[good], &all, 3, 5);
        let vb = nkqm_at_k(&[bad], &all, 3, 5);
        assert!(vg > vb);
    }

    #[test]
    fn empty_inputs_are_zero() {
        assert_eq!(nkqm_at_k(&[], &[], 5, 5), 0.0);
        assert_eq!(nkqm_at_k(&[vec![]], &[vec![3, 3]], 0, 5), 0.0);
    }

    #[test]
    fn averages_over_topics() {
        let t1: Vec<JudgeScores> = vec![vec![5, 5, 5]];
        let t2: Vec<JudgeScores> = vec![vec![1, 1, 1]];
        let all = vec![vec![5, 5, 5], vec![1, 1, 1]];
        let both = nkqm_at_k(&[t1.clone(), t2.clone()], &all, 1, 5);
        let only_good = nkqm_at_k(&[t1], &all, 1, 5);
        assert!(only_good > both);
    }
}
