//! Held-out perplexity for topic models.
//!
//! §3.3 notes PMI "is generally preferred over other quantitative metrics
//! such as perplexity or the likelihood of held-out data" — but perplexity
//! remains the standard sanity metric for the topic-model substrates, so
//! we provide it alongside PMI.

/// Per-token held-out perplexity of a fitted topic model on unseen
/// documents.
///
/// Document-topic proportions for held-out docs are estimated by a few
/// fold-in EM steps with the topic-word distributions frozen (the standard
/// evaluation protocol), then
/// `perplexity = exp( − Σ log p(w|d) / Σ |d| )`.
pub fn heldout_perplexity(
    docs: &[Vec<u32>],
    topic_word: &[Vec<f64>],
    alpha: f64,
    fold_in_iters: usize,
) -> f64 {
    let k = topic_word.len();
    if k == 0 || docs.is_empty() {
        return f64::INFINITY;
    }
    let mut total_ll = 0.0;
    let mut total_tokens = 0usize;
    for doc in docs {
        if doc.is_empty() {
            continue;
        }
        // Fold-in EM over theta with phi fixed.
        let mut theta = vec![1.0 / k as f64; k];
        for _ in 0..fold_in_iters.max(1) {
            let mut counts = vec![alpha; k];
            for &w in doc {
                let mut post: Vec<f64> =
                    (0..k).map(|z| theta[z] * topic_word[z][w as usize].max(1e-300)).collect();
                let s: f64 = post.iter().sum();
                if s > 0.0 {
                    for p in &mut post {
                        *p /= s;
                    }
                }
                for (c, p) in counts.iter_mut().zip(&post) {
                    *c += p;
                }
            }
            let s: f64 = counts.iter().sum();
            theta = counts.into_iter().map(|c| c / s).collect();
        }
        for &w in doc {
            let p: f64 = (0..k).map(|z| theta[z] * topic_word[z][w as usize]).sum();
            total_ll += p.max(1e-300).ln();
            total_tokens += 1;
        }
    }
    if total_tokens == 0 {
        return f64::INFINITY;
    }
    (-total_ll / total_tokens as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two disjoint "topics" over a 4-word vocabulary.
    fn phi() -> Vec<Vec<f64>> {
        vec![vec![0.45, 0.45, 0.05, 0.05], vec![0.05, 0.05, 0.45, 0.45]]
    }

    #[test]
    fn good_model_has_lower_perplexity_than_uniform() {
        let docs = vec![vec![0, 1, 0, 1], vec![2, 3, 2, 3]];
        let good = heldout_perplexity(&docs, &phi(), 0.1, 10);
        let uniform = vec![vec![0.25; 4]; 2];
        let bad = heldout_perplexity(&docs, &uniform, 0.1, 10);
        assert!(good < bad, "good {good:.2} vs uniform {bad:.2}");
        // Uniform model's perplexity equals the vocabulary size.
        assert!((bad - 4.0).abs() < 1e-6);
    }

    #[test]
    fn mismatched_docs_raise_perplexity() {
        // Docs that mix both topics in every position are harder than
        // single-topic docs under the same model.
        let pure = vec![vec![0, 1, 0, 1]];
        let mixed = vec![vec![0, 2, 1, 3]];
        let p_pure = heldout_perplexity(&pure, &phi(), 0.1, 10);
        let p_mixed = heldout_perplexity(&mixed, &phi(), 0.1, 10);
        assert!(p_pure < p_mixed);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(heldout_perplexity(&[], &phi(), 0.1, 5).is_infinite());
        assert!(heldout_perplexity(&[vec![]], &phi(), 0.1, 5).is_infinite());
        assert!(heldout_perplexity(&[vec![0]], &[], 0.1, 5).is_infinite());
    }
}
