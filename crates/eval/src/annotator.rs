//! Simulated annotators for intrusion-detection and rating studies.
//!
//! The dissertation's user studies (§3.3.2, §4.4) employ small panels of
//! human judges. Offline we substitute a *noisy oracle*: an annotator who
//! sees each option's ground-truth topic signature (a distribution over the
//! generator's leaf topics) and
//!
//! * picks as intruder the option least similar to the rest (with a noise
//!   probability of answering randomly), and
//! * converts a latent quality in `[0, 1]` to a 1–5 Likert rating with
//!   bounded noise.
//!
//! Because the published numbers order methods by how well their outputs
//! align with the underlying topics, a noisy oracle reproduces the ordering
//! deterministically (see DESIGN.md §3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic noisy-oracle annotator.
#[derive(Debug)]
pub struct SimulatedAnnotator {
    rng: StdRng,
    /// Probability of answering an intrusion question uniformly at random.
    noise: f64,
    /// Standard deviation of the rating noise in Likert units.
    rating_noise: f64,
}

impl SimulatedAnnotator {
    /// Creates an annotator with the given noise levels.
    ///
    /// `noise` is clamped to `[0, 1]`.
    pub fn new(seed: u64, noise: f64, rating_noise: f64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
            noise: noise.clamp(0.0, 1.0),
            rating_noise: rating_noise.max(0.0),
        }
    }

    /// A typical panel: three annotators with distinct seeds and mild noise
    /// (matching the 3-judge setup of §3.3.2).
    pub fn panel(base_seed: u64, size: usize) -> Vec<Self> {
        (0..size).map(|i| Self::new(base_seed.wrapping_add(i as u64 * 7919), 0.1, 0.5)).collect()
    }

    /// Picks the intruder among options described by topic signatures.
    ///
    /// Each signature is a dense non-negative vector over the same topic
    /// space. The oracle answer is the option with the lowest mean cosine
    /// similarity to the other options; with probability `noise` a uniform
    /// random option is returned instead.
    pub fn pick_intruder(&mut self, signatures: &[Vec<f64>]) -> usize {
        assert!(signatures.len() >= 2, "need at least two options");
        if self.rng.gen_bool(self.noise) {
            return self.rng.gen_range(0..signatures.len());
        }
        let n = signatures.len();
        let mut best = 0;
        let mut best_sim = f64::INFINITY;
        for i in 0..n {
            let mut total = 0.0;
            for j in 0..n {
                if i != j {
                    total += cosine(&signatures[i], &signatures[j]);
                }
            }
            let mean = total / (n - 1) as f64;
            if mean < best_sim {
                best_sim = mean;
                best = i;
            }
        }
        best
    }

    /// Converts a latent quality in `[0, 1]` to a Likert rating `1..=5`.
    pub fn rate(&mut self, quality01: f64) -> u8 {
        let base = 1.0 + quality01.clamp(0.0, 1.0) * 4.0;
        // Symmetric triangular noise approximating a Gaussian.
        let noise = (self.rng.gen::<f64>() - self.rng.gen::<f64>()) * self.rating_noise * 2.0;
        (base + noise).round().clamp(1.0, 5.0) as u8
    }
}

/// Cosine similarity with zero-vector guard.
fn cosine(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut ab, mut aa, mut bb) = (0.0, 0.0, 0.0);
    for (&x, &y) in a.iter().zip(b) {
        ab += x * y;
        aa += x * x;
        bb += y * y;
    }
    if aa <= 0.0 || bb <= 0.0 {
        return 0.0;
    }
    ab / (aa.sqrt() * bb.sqrt())
}

/// Scores a batch of intrusion questions: the fraction answered correctly
/// by a panel (a question counts only if *every* annotator finds the
/// intruder, mirroring the strict pooling of §3.3.2).
pub fn panel_intrusion_accuracy(
    panel: &mut [SimulatedAnnotator],
    questions: &[(Vec<Vec<f64>>, usize)],
) -> f64 {
    if questions.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (signatures, truth) in questions {
        let all_right = panel.iter_mut().all(|a| a.pick_intruder(signatures) == *truth);
        if all_right {
            correct += 1;
        }
    }
    correct as f64 / questions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_hot(k: usize, i: usize) -> Vec<f64> {
        let mut v = vec![0.0; k];
        v[i] = 1.0;
        v
    }

    #[test]
    fn oracle_finds_clear_intruder() {
        let mut a = SimulatedAnnotator::new(1, 0.0, 0.0);
        // Options 0-3 in topic 0, option 4 in topic 1.
        let sigs: Vec<Vec<f64>> =
            (0..5).map(|i| if i < 4 { one_hot(2, 0) } else { one_hot(2, 1) }).collect();
        assert_eq!(a.pick_intruder(&sigs), 4);
    }

    #[test]
    fn noise_degrades_accuracy() {
        let sigs: Vec<Vec<f64>> =
            (0..5).map(|i| if i < 4 { one_hot(2, 0) } else { one_hot(2, 1) }).collect();
        let questions: Vec<_> = (0..200).map(|_| (sigs.clone(), 4usize)).collect();
        let mut clean = vec![SimulatedAnnotator::new(2, 0.0, 0.0)];
        let mut noisy = vec![SimulatedAnnotator::new(2, 0.9, 0.0)];
        let acc_clean = panel_intrusion_accuracy(&mut clean, &questions);
        let acc_noisy = panel_intrusion_accuracy(&mut noisy, &questions);
        assert_eq!(acc_clean, 1.0);
        assert!(acc_noisy < 0.5);
    }

    #[test]
    fn ratings_track_quality() {
        let mut a = SimulatedAnnotator::new(3, 0.0, 0.3);
        let low: f64 = (0..100).map(|_| a.rate(0.1) as f64).sum::<f64>() / 100.0;
        let high: f64 = (0..100).map(|_| a.rate(0.9) as f64).sum::<f64>() / 100.0;
        assert!(high > low + 1.5, "high {high} low {low}");
        for _ in 0..50 {
            let r = a.rate(0.5);
            assert!((1..=5).contains(&r));
        }
    }

    #[test]
    fn deterministic_across_instances() {
        let sigs: Vec<Vec<f64>> = vec![one_hot(3, 0), one_hot(3, 0), one_hot(3, 2)];
        let mut a = SimulatedAnnotator::new(9, 0.2, 0.0);
        let mut b = SimulatedAnnotator::new(9, 0.2, 0.0);
        for _ in 0..20 {
            assert_eq!(a.pick_intruder(&sigs), b.pick_intruder(&sigs));
        }
    }

    #[test]
    fn ambiguous_options_answered_mixed() {
        // All options identical: any answer acceptable, must not panic.
        let sigs: Vec<Vec<f64>> = vec![one_hot(2, 0); 4];
        let mut a = SimulatedAnnotator::new(4, 0.0, 0.0);
        let ans = a.pick_intruder(&sigs);
        assert!(ans < 4);
    }
}
