//! Metrics for hierarchical relation mining (§6.1.6).
//!
//! TPFG predicts, for every author, a ranked list of potential advisors;
//! the prediction rule P@(k, θ) accepts the true advisor if it appears in
//! the top-k candidates with sufficient probability. We report accuracy
//! over authors with ground truth, plus standard precision/recall/F1 over
//! pair decisions.

/// Confusion counts over binary pair decisions.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RelationMetrics {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives.
    pub fn_: usize,
    /// True negatives.
    pub tn: usize,
}

impl RelationMetrics {
    /// Precision `tp / (tp + fp)` (0 when undefined).
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)` (0 when undefined).
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// F1 score (harmonic mean of precision and recall).
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r <= 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all decisions.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.tp + self.tn + self.fp + self.fn_)
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Accuracy of parent predictions: the fraction of nodes with ground truth
/// whose predicted parent matches (the headline number of §6.1.6).
///
/// Nodes without ground truth (roots) are skipped; a prediction of `None`
/// for a node that has a true advisor counts as wrong.
pub fn parent_accuracy(predicted: &[Option<u32>], truth: &[Option<u32>]) -> f64 {
    assert_eq!(predicted.len(), truth.len());
    let mut total = 0usize;
    let mut correct = 0usize;
    for (p, t) in predicted.iter().zip(truth) {
        if let Some(t) = t {
            total += 1;
            if p.as_ref() == Some(t) {
                correct += 1;
            }
        }
    }
    ratio(correct, total)
}

/// Builds pair-level confusion counts from ranked candidate decisions.
///
/// `decisions[i]` holds `(candidate, accepted)` pairs for node `i`; the
/// truth is the node's true parent. Every accepted wrong candidate is a
/// false positive; a missed true parent is a false negative; accepted true
/// parents are true positives.
pub fn pair_metrics(decisions: &[Vec<(u32, bool)>], truth: &[Option<u32>]) -> RelationMetrics {
    assert_eq!(decisions.len(), truth.len());
    let mut m = RelationMetrics::default();
    for (cands, t) in decisions.iter().zip(truth) {
        let mut found_true = false;
        for &(c, accepted) in cands {
            let is_true = t.is_some_and(|tt| tt == c);
            match (accepted, is_true) {
                (true, true) => {
                    m.tp += 1;
                    found_true = true;
                }
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => {}
            }
        }
        if t.is_some() && !found_true {
            m.fn_ += 1;
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_accuracy_counts_only_truthful_nodes() {
        let truth = vec![None, Some(0), Some(0), Some(1)];
        let pred = vec![Some(3), Some(0), Some(1), Some(1)];
        // Node 0 is a root (skipped); nodes 1 and 3 correct, node 2 wrong.
        assert!((parent_accuracy(&pred, &truth) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn none_prediction_is_wrong_when_truth_exists() {
        let truth = vec![Some(0), Some(0)];
        let pred = vec![None, Some(0)];
        assert!((parent_accuracy(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metrics_formulas() {
        let m = RelationMetrics { tp: 3, fp: 1, fn_: 2, tn: 4 };
        assert!((m.precision() - 0.75).abs() < 1e-12);
        assert!((m.recall() - 0.6).abs() < 1e-12);
        assert!((m.f1() - 2.0 * 0.75 * 0.6 / 1.35).abs() < 1e-12);
        assert!((m.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn pair_metrics_assembles_confusion() {
        let truth = vec![Some(1), Some(2)];
        let decisions = vec![
            vec![(1, true), (3, true), (4, false)],  // tp, fp, tn
            vec![(5, false), (6, true)],             // tn, fp, and missed truth -> fn
        ];
        let m = pair_metrics(&decisions, &truth);
        assert_eq!(m, RelationMetrics { tp: 1, fp: 2, fn_: 1, tn: 2 });
    }

    #[test]
    fn zero_denominators_are_zero() {
        let m = RelationMetrics::default();
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.recall(), 0.0);
        assert_eq!(m.f1(), 0.0);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(parent_accuracy(&[], &[]), 0.0);
    }
}
