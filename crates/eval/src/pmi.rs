//! Pointwise mutual information (PMI) and the heterogeneous extension HPMI.
//!
//! Eq. 3.44 scores the semantic coherence of one topic's top-K words; the
//! dissertation extends it to multi-typed topics as HPMI (eq. 3.45). Both
//! estimate probabilities from document-level co-occurrence frequencies in
//! the evaluated corpus.

use lesm_corpus::Corpus;
use std::collections::HashMap;

/// An item whose occurrence statistics HPMI tracks: `(type, id)` where
/// types follow the collapsed-network convention (entity types first, the
/// term type last).
pub type Item = (usize, u32);

/// Document-occurrence statistics for PMI/HPMI estimation.
///
/// For every item we store the sorted list of documents containing it;
/// joint probabilities are computed by sorted-list intersection. Smoothing
/// (`0.01` pseudo-documents) avoids `-inf` for never-co-occurring pairs.
#[derive(Debug, Clone)]
pub struct CoOccurrenceStats {
    n_docs: usize,
    postings: HashMap<Item, Vec<u32>>,
    term_type: usize,
}

impl CoOccurrenceStats {
    /// Builds statistics from a corpus. The term type index is
    /// `corpus.entities.num_types()` (matching `lesm_net::collapsed_network`).
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let term_type = corpus.entities.num_types();
        let mut postings: HashMap<Item, Vec<u32>> = HashMap::new();
        for (d, doc) in corpus.docs.iter().enumerate() {
            let d = d as u32;
            for &w in &doc.tokens {
                let e = postings.entry((term_type, w)).or_default();
                if e.last() != Some(&d) {
                    e.push(d);
                }
            }
            for ent in &doc.entities {
                let e = postings.entry((ent.etype, ent.id)).or_default();
                if e.last() != Some(&d) {
                    e.push(d);
                }
            }
        }
        Self { n_docs: corpus.num_docs(), postings, term_type }
    }

    /// The term type index used for word items.
    pub fn term_type(&self) -> usize {
        self.term_type
    }

    /// Number of documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Number of documents containing `item`.
    pub fn count(&self, item: Item) -> usize {
        self.postings.get(&item).map_or(0, Vec::len)
    }

    /// Number of documents containing both items.
    pub fn joint_count(&self, a: Item, b: Item) -> usize {
        if a == b {
            return self.count(a);
        }
        let (Some(pa), Some(pb)) = (self.postings.get(&a), self.postings.get(&b)) else {
            return 0;
        };
        let (short, long) = if pa.len() <= pb.len() { (pa, pb) } else { (pb, pa) };
        // Galloping would be faster asymptotically; linear merge is fine for
        // the top-K lists this metric evaluates.
        let mut i = 0;
        let mut j = 0;
        let mut c = 0;
        while i < short.len() && j < long.len() {
            match short[i].cmp(&long[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    c += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        c
    }

    /// Smoothed pointwise mutual information between two items:
    /// `log p(a, b) / (p(a) p(b))`.
    ///
    /// An empty corpus carries no co-occurrence evidence, so `n_docs == 0`
    /// returns `0.0` instead of the `SMOOTH / 0` NaN/±inf that would
    /// otherwise poison every average built on top of this score.
    pub fn pmi(&self, a: Item, b: Item) -> f64 {
        const SMOOTH: f64 = 0.01;
        if self.n_docs == 0 {
            return 0.0;
        }
        let n = self.n_docs as f64;
        let pa = (self.count(a) as f64 + SMOOTH) / n;
        let pb = (self.count(b) as f64 + SMOOTH) / n;
        let pab = (self.joint_count(a, b) as f64 + SMOOTH) / n;
        (pab / (pa * pb)).ln()
    }
}

/// PMI of a topic's top-K items of a single type (eq. 3.44): the average
/// pairwise PMI over unordered pairs.
pub fn pmi_topic(stats: &CoOccurrenceStats, items: &[Item]) -> f64 {
    let k = items.len();
    if k < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    for i in 0..k {
        for j in (i + 1)..k {
            total += stats.pmi(items[i], items[j]);
        }
    }
    total * 2.0 / (k as f64 * (k - 1) as f64)
}

/// HPMI between two typed top-K lists (eq. 3.45).
///
/// When both lists are the same type this reduces to [`pmi_topic`] on the
/// first list; for cross-type lists all `|x| * |y|` pairs are averaged.
pub fn hpmi_pair(stats: &CoOccurrenceStats, x_items: &[Item], y_items: &[Item]) -> f64 {
    let same_type = !x_items.is_empty()
        && !y_items.is_empty()
        && x_items[0].0 == y_items[0].0
        && x_items == y_items;
    if same_type {
        return pmi_topic(stats, x_items);
    }
    if x_items.is_empty() || y_items.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    for &a in x_items {
        for &b in y_items {
            total += stats.pmi(a, b);
        }
    }
    total / (x_items.len() * y_items.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::Corpus;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        // "data mining" pair co-occurs in 3 docs; "data" and "web" never.
        for _ in 0..3 {
            let d = c.push_text("data mining");
            c.link_entity(d, author, "alice").unwrap();
        }
        let d = c.push_text("web search");
        c.link_entity(d, author, "bob").unwrap();
        c
    }

    #[test]
    fn joint_counts_intersect() {
        let c = corpus();
        let s = CoOccurrenceStats::from_corpus(&c);
        let t = s.term_type();
        let data = (t, c.vocab.get("data").unwrap());
        let mining = (t, c.vocab.get("mining").unwrap());
        let web = (t, c.vocab.get("web").unwrap());
        assert_eq!(s.count(data), 3);
        assert_eq!(s.joint_count(data, mining), 3);
        assert_eq!(s.joint_count(data, web), 0);
        assert_eq!(s.joint_count(data, data), 3);
    }

    #[test]
    fn pmi_signs() {
        let c = corpus();
        let s = CoOccurrenceStats::from_corpus(&c);
        let t = s.term_type();
        let data = (t, c.vocab.get("data").unwrap());
        let mining = (t, c.vocab.get("mining").unwrap());
        let web = (t, c.vocab.get("web").unwrap());
        assert!(s.pmi(data, mining) > 0.0, "perfect co-occurrence is positive");
        assert!(s.pmi(data, web) < 0.0, "never co-occurring is negative");
    }

    #[test]
    fn hpmi_cross_type() {
        let c = corpus();
        let s = CoOccurrenceStats::from_corpus(&c);
        let t = s.term_type();
        let data = (t, c.vocab.get("data").unwrap());
        let alice = (0usize, 0u32);
        let bob = (0usize, 1u32);
        // alice always with data, bob never.
        let good = hpmi_pair(&s, &[data], &[alice]);
        let bad = hpmi_pair(&s, &[data], &[bob]);
        assert!(good > bad);
    }

    #[test]
    fn empty_corpus_pmi_is_zero_and_finite() {
        let c = Corpus::new();
        let s = CoOccurrenceStats::from_corpus(&c);
        let t = s.term_type();
        assert_eq!(s.n_docs(), 0);
        let p = s.pmi((t, 0), (t, 1));
        assert!(p.is_finite(), "empty-corpus PMI must be finite, got {p}");
        assert_eq!(p, 0.0);
        assert_eq!(pmi_topic(&s, &[(t, 0), (t, 1)]), 0.0);
        assert_eq!(hpmi_pair(&s, &[(t, 0)], &[(0, 0)]), 0.0);
    }

    #[test]
    fn pmi_topic_of_coherent_set_beats_incoherent() {
        let c = corpus();
        let s = CoOccurrenceStats::from_corpus(&c);
        let t = s.term_type();
        let data = (t, c.vocab.get("data").unwrap());
        let mining = (t, c.vocab.get("mining").unwrap());
        let web = (t, c.vocab.get("web").unwrap());
        assert!(pmi_topic(&s, &[data, mining]) > pmi_topic(&s, &[data, web]));
        assert_eq!(pmi_topic(&s, &[data]), 0.0);
    }
}
