//! Weighted Cohen's kappa for ordinal rating agreement.
//!
//! The nKQM@K measure of §4.4.1 weights each phrase's mean judge score by
//! inter-judge agreement so that unanimous (3,3,3) outranks scattered
//! (1,3,5). We use linearly weighted Cohen's kappa between two raters and
//! average over rater pairs for panels of three or more.

/// Linearly weighted Cohen's kappa between two raters over paired ordinal
/// ratings in `1..=levels`.
///
/// Returns `1.0` for perfect agreement; values near `0` indicate chance
/// agreement. Returns `0.0` for empty input or degenerate marginals.
///
/// ```
/// use lesm_eval::kappa::weighted_cohen_kappa;
///
/// let a = [1, 2, 3, 4, 5];
/// assert!((weighted_cohen_kappa(&a, &a, 5) - 1.0).abs() < 1e-12);
/// let close = [1, 2, 3, 4, 4];
/// let far = [5, 4, 3, 2, 1];
/// assert!(weighted_cohen_kappa(&a, &close, 5) > weighted_cohen_kappa(&a, &far, 5));
/// ```
pub fn weighted_cohen_kappa(a: &[u8], b: &[u8], levels: usize) -> f64 {
    assert_eq!(a.len(), b.len(), "raters must score the same items");
    if a.is_empty() || levels < 2 {
        return 0.0;
    }
    let n = a.len() as f64;
    let l = levels;
    let mut observed = vec![vec![0.0; l]; l];
    let mut marg_a = vec![0.0; l];
    let mut marg_b = vec![0.0; l];
    for (&x, &y) in a.iter().zip(b) {
        let (x, y) = ((x as usize).clamp(1, l) - 1, (y as usize).clamp(1, l) - 1);
        observed[x][y] += 1.0;
        marg_a[x] += 1.0;
        marg_b[y] += 1.0;
    }
    let weight = |i: usize, j: usize| 1.0 - (i as f64 - j as f64).abs() / (l - 1) as f64;
    let mut po = 0.0;
    let mut pe = 0.0;
    for i in 0..l {
        for j in 0..l {
            po += weight(i, j) * observed[i][j] / n;
            pe += weight(i, j) * (marg_a[i] / n) * (marg_b[j] / n);
        }
    }
    if (1.0 - pe).abs() < 1e-12 {
        // Both raters degenerate on one category: full credit iff identical.
        return if po >= 1.0 - 1e-12 { 1.0 } else { 0.0 };
    }
    (po - pe) / (1.0 - pe)
}

/// Mean pairwise weighted kappa across a panel of raters.
///
/// `ratings[r]` holds rater `r`'s scores over the common item list.
pub fn panel_kappa(ratings: &[Vec<u8>], levels: usize) -> f64 {
    let r = ratings.len();
    if r < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0;
    for i in 0..r {
        for j in (i + 1)..r {
            total += weighted_cohen_kappa(&ratings[i], &ratings[j], levels);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Per-item agreement weight in `[0, 1]`: the mean pairwise linear
/// agreement `1 - |s_i - s_j| / (levels - 1)` over judge pairs.
///
/// This is the per-phrase factor used inside nKQM's `score_aw` — a single
/// item cannot carry a full kappa, so the linear-weight kernel of the kappa
/// is applied directly.
pub fn item_agreement(scores: &[u8], levels: usize) -> f64 {
    let n = scores.len();
    if n < 2 || levels < 2 {
        return 1.0;
    }
    let mut total = 0.0;
    let mut pairs = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1.0 - (scores[i] as f64 - scores[j] as f64).abs() / (levels - 1) as f64;
            pairs += 1;
        }
    }
    total / pairs as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_agreement_is_one() {
        let a = vec![1, 2, 3, 4, 5, 3, 2];
        assert!((weighted_cohen_kappa(&a, &a, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn near_agreement_beats_scattered() {
        let a = vec![3, 3, 4, 2, 5, 1, 3, 4];
        let close = vec![3, 4, 4, 2, 4, 1, 3, 5];
        let far = vec![5, 1, 1, 5, 1, 5, 1, 1];
        let k_close = weighted_cohen_kappa(&a, &close, 5);
        let k_far = weighted_cohen_kappa(&a, &far, 5);
        assert!(k_close > k_far);
    }

    #[test]
    fn degenerate_identical_raters() {
        let a = vec![3, 3, 3];
        assert_eq!(weighted_cohen_kappa(&a, &a, 5), 1.0);
        let b = vec![4, 4, 4];
        assert_eq!(weighted_cohen_kappa(&a, &b, 5), 0.0);
    }

    #[test]
    fn item_agreement_orders_consensus() {
        // (3,3,3) has full agreement; (1,3,5) does not.
        assert!((item_agreement(&[3, 3, 3], 5) - 1.0).abs() < 1e-12);
        let scattered = item_agreement(&[1, 3, 5], 5);
        assert!(scattered < 0.7);
        assert!(scattered > 0.0);
    }

    #[test]
    fn panel_averages_pairs() {
        let ratings = vec![vec![1, 2, 3], vec![1, 2, 3], vec![3, 2, 1]];
        let k = panel_kappa(&ratings, 3);
        assert!(k < 1.0);
        let unanimous = vec![vec![1, 2, 3]; 3];
        assert!((panel_kappa(&unanimous, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(weighted_cohen_kappa(&[], &[], 5), 0.0);
    }
}
