//! Evaluation metrics and simulated annotators.
//!
//! Implements every quantitative measure the dissertation's experiments
//! report: pointwise mutual information and its heterogeneous extension HPMI
//! (eqs. 3.44–3.45), the nKQM@K phrase-quality measure with weighted Cohen's
//! kappa agreement (§4.4.1), the MI_K mutual-information curve (§4.4.1),
//! precision/recall/accuracy for relation mining (§6.1.6), plus the
//! *simulated annotators* that stand in for the human judges of the
//! intrusion-detection and coherence studies (see DESIGN.md §3).

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod annotator;
pub mod kappa;
pub mod mi;
pub mod nkqm;
pub mod perplexity;
pub mod pmi;
pub mod relation;

pub use annotator::SimulatedAnnotator;
pub use perplexity::heldout_perplexity;
pub use kappa::weighted_cohen_kappa;
pub use mi::mutual_information_at_k;
pub use nkqm::nkqm_at_k;
pub use pmi::{CoOccurrenceStats, hpmi_pair, pmi_topic};
pub use relation::RelationMetrics;

/// Standardizes scores to z-scores (mean 0, sd 1), the normalization used in
/// Figures 4.4–4.5. Returns zeros when the standard deviation vanishes.
pub fn z_scores(xs: &[f64]) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd < 1e-12 {
        return vec![0.0; xs.len()];
    }
    xs.iter().map(|x| (x - mean) / sd).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_scores_standardize() {
        let z = z_scores(&[1.0, 2.0, 3.0]);
        assert!((z[0] + z[2]).abs() < 1e-12);
        assert!(z[1].abs() < 1e-12);
        let mean: f64 = z.iter().sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn z_scores_constant_input() {
        assert_eq!(z_scores(&[5.0, 5.0]), vec![0.0, 0.0]);
        assert!(z_scores(&[]).is_empty());
    }
}
