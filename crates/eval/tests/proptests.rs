//! Property-based tests for evaluation metrics.

use lesm_eval::kappa::{item_agreement, panel_kappa, weighted_cohen_kappa};
use lesm_eval::mi::mutual_information;
use lesm_eval::nkqm::{nkqm_at_k, score_aw};
use lesm_eval::z_scores;
use proptest::prelude::*;

fn ratings(n: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(1u8..=5, n)
}

proptest! {
    #[test]
    fn kappa_self_agreement_is_one(a in ratings(10)) {
        let k = weighted_cohen_kappa(&a, &a, 5);
        prop_assert!((k - 1.0).abs() < 1e-9 || k == 0.0); // 0 only for degenerate single-category marginals handled as 1 in code
        prop_assert!(k >= 0.99 || a.iter().all(|&x| x == a[0]));
    }

    #[test]
    fn kappa_is_symmetric(a in ratings(12), b in ratings(12)) {
        let k1 = weighted_cohen_kappa(&a, &b, 5);
        let k2 = weighted_cohen_kappa(&b, &a, 5);
        prop_assert!((k1 - k2).abs() < 1e-9);
        prop_assert!(k1 <= 1.0 + 1e-9);
    }

    #[test]
    fn item_agreement_bounds(scores in ratings(5)) {
        let a = item_agreement(&scores, 5);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn panel_kappa_bounded_above(rs in proptest::collection::vec(ratings(8), 2..5)) {
        let k = panel_kappa(&rs, 5);
        prop_assert!(k <= 1.0 + 1e-9);
    }

    #[test]
    fn z_scores_have_zero_mean_unit_sd(xs in proptest::collection::vec(-100.0f64..100.0, 2..40)) {
        let z = z_scores(&xs);
        let n = z.len() as f64;
        let mean: f64 = z.iter().sum::<f64>() / n;
        prop_assert!(mean.abs() < 1e-8);
        let var: f64 = z.iter().map(|v| v * v).sum::<f64>() / n;
        prop_assert!(var < 1.0 + 1e-8);
        // Unit variance unless input was constant.
        let spread = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - xs.iter().cloned().fold(f64::INFINITY, f64::min);
        if spread > 1e-6 {
            prop_assert!((var - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn mutual_information_nonnegative_and_bounded(
        joint in proptest::collection::vec(proptest::collection::vec(0.0f64..5.0, 3), 3)
    ) {
        let mi = mutual_information(&joint);
        prop_assert!(mi >= -1e-9);
        prop_assert!(mi <= (3f64).log2() + 1e-9);
    }

    #[test]
    fn mi_zero_for_product_distributions(r in proptest::collection::vec(0.1f64..5.0, 3), c in proptest::collection::vec(0.1f64..5.0, 4)) {
        let joint: Vec<Vec<f64>> = r.iter().map(|&ri| c.iter().map(|&cj| ri * cj).collect()).collect();
        let mi = mutual_information(&joint);
        prop_assert!(mi.abs() < 1e-9, "independent table has MI {mi}");
    }

    #[test]
    fn nkqm_is_bounded(per_topic in proptest::collection::vec(proptest::collection::vec(ratings(3), 1..6), 1..4), k in 1usize..6) {
        let all: Vec<Vec<u8>> = per_topic.iter().flatten().cloned().collect();
        let v = nkqm_at_k(&per_topic, &all, k, 5);
        prop_assert!((0.0..=1.0 + 1e-9).contains(&v), "nKQM = {v}");
    }

    #[test]
    fn score_aw_bounded_by_mean(scores in ratings(4)) {
        let s = score_aw(&scores, 5);
        let mean: f64 = scores.iter().map(|&x| x as f64).sum::<f64>() / 4.0;
        prop_assert!(s <= mean + 1e-9);
        prop_assert!(s >= 0.0);
    }
}
