//! Fire/silent fixture pairs for the workspace passes (DESIGN.md §16).
//!
//! Every rule the multi-pass auditor ships gets at least one fixture that
//! must fire and one that must stay silent, driven through the public
//! `Workspace::from_sources` + `run_pass` API — the same machinery the
//! `lesm-lint` binary uses — so the gate tested here is the gate shipped.

use lesm_lint::{parse_passes, render_json, run_pass, FileViolation, Pass, RuleId, Workspace};

/// Builds an in-memory workspace from `(path, source)` pairs.
fn ws(sources: &[(&str, &str)]) -> Workspace {
    Workspace::from_sources(
        sources.iter().map(|(p, s)| (p.to_string(), s.as_bytes().to_vec())).collect(),
    )
}

fn rules(violations: &[FileViolation]) -> Vec<RuleId> {
    violations.iter().map(|v| v.violation.rule).collect()
}

// ---------------------------------------------------------------- taint (D4)

#[test]
fn taint_follows_a_laundered_clock_two_hops_to_a_pub_sink() {
    // The ambient read sits two private hops below the pub surface; only
    // the call graph can see that `expose_value` serves it.
    let src = "\
fn clock_value() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
fn relay_value() -> u64 {
    clock_value()
}
pub fn expose_value() -> u64 {
    relay_value()
}
";
    let w = ws(&[("crates/foo/src/lib.rs", src)]);
    let out = run_pass(&w, Pass::Taint);
    assert_eq!(rules(&out), vec![RuleId::D4], "{out:?}");
    // The violation lands at the seed, not the sink, and names the sink.
    assert_eq!(out[0].violation.line, 2, "{out:?}");
    assert!(out[0].violation.note.contains("expose_value"), "{}", out[0].violation.note);
}

#[test]
fn taint_is_silent_when_the_seed_never_reaches_a_sink() {
    // Same seed, but every caller is private and nothing in a wire file
    // touches it: observable output cannot depend on it.
    let src = "\
fn clock_value() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
fn relay_value() -> u64 {
    clock_value()
}
";
    let w = ws(&[("crates/foo/src/lib.rs", src)]);
    assert!(run_pass(&w, Pass::Taint).is_empty());
}

#[test]
fn taint_pragma_at_the_seed_silences_the_chain() {
    let src = "\
pub fn expose_value() -> u64 {
    // lesm-lint: allow(D4) — latency metric, never serialized into a response
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}
";
    let w = ws(&[("crates/foo/src/lib.rs", src)]);
    assert!(run_pass(&w, Pass::Taint).is_empty());
}

#[test]
fn taint_treats_private_fns_in_wire_files_as_sinks() {
    // In a serialization file even a private fn is presumed to feed bytes.
    let src = "\
fn stamp() -> u64 {
    let t = SystemTime::now();
    0
}
";
    let w = ws(&[("crates/serve/src/wire.rs", src)]);
    let out = run_pass(&w, Pass::Taint);
    assert_eq!(rules(&out), vec![RuleId::D4], "{out:?}");
}

// ------------------------------------------------------------- unsafe (U1-U3)

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = "\
pub fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}
";
    let w = ws(&[("crates/foo/src/lib.rs", src)]);
    let out = run_pass(&w, Pass::Unsafe);
    assert_eq!(rules(&out), vec![RuleId::U1], "{out:?}");
}

#[test]
fn unsafe_with_nearby_safety_comment_is_silent() {
    let src = "\
pub fn peek(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees index 0 is in bounds.
    unsafe { *v.get_unchecked(0) }
}
";
    let w = ws(&[("crates/foo/src/lib.rs", src)]);
    assert!(run_pass(&w, Pass::Unsafe).is_empty());
}

#[test]
fn raw_primitive_outside_the_allowlist_fires() {
    let src = "\
pub fn view(p: *const u8, n: usize) -> u32 {
    // SAFETY: caller contract.
    unsafe { std::slice::from_raw_parts(p, n).len() as u32 }
}
";
    let w = ws(&[("crates/foo/src/lib.rs", src)]);
    let out = run_pass(&w, Pass::Unsafe);
    assert_eq!(rules(&out), vec![RuleId::U2], "{out:?}");
}

#[test]
fn raw_primitive_in_an_allowlisted_file_is_silent() {
    let src = "\
pub fn view(p: *const u8, n: usize) -> usize {
    // SAFETY: caller contract.
    unsafe { std::slice::from_raw_parts(p, n).len() }
}
";
    let w = ws(&[("crates/serve/src/mapping.rs", src)]);
    assert!(run_pass(&w, Pass::Unsafe).is_empty());
}

#[test]
fn pub_target_feature_fn_and_ungated_caller_both_fire() {
    let src = "\
// SAFETY: callers must prove avx2 via is_x86_feature_detected.
#[target_feature(enable = \"avx2\")]
pub unsafe fn dot_avx2(a: &[f32]) -> f32 {
    0.0
}
pub fn dot(a: &[f32]) -> f32 {
    // SAFETY: wrong — nothing checked the CPU feature.
    unsafe { dot_avx2(a) }
}
";
    let w = ws(&[("crates/foo/src/lib.rs", src)]);
    let mut got = rules(&run_pass(&w, Pass::Unsafe));
    got.sort();
    assert_eq!(got, vec![RuleId::U3, RuleId::U3], "pub decl + ungated call");
}

#[test]
fn gated_private_target_feature_fn_is_silent() {
    let src = "\
// SAFETY: callers must prove avx2 via is_x86_feature_detected.
#[target_feature(enable = \"avx2\")]
unsafe fn dot_avx2(a: &[f32]) -> f32 {
    0.0
}
pub fn dot(a: &[f32]) -> f32 {
    if is_x86_feature_detected!(\"avx2\") {
        // SAFETY: the runtime check above proves avx2 is available.
        return unsafe { dot_avx2(a) };
    }
    0.0
}
";
    let w = ws(&[("crates/foo/src/lib.rs", src)]);
    assert!(run_pass(&w, Pass::Unsafe).is_empty());
}

// --------------------------------------------------------------- casts (W1)

#[test]
fn narrowing_cast_in_a_wire_crate_fires() {
    let src = "\
pub fn header(n: usize) -> u32 {
    n as u32
}
";
    let w = ws(&[("crates/serve/src/wire.rs", src)]);
    let out = run_pass(&w, Pass::Casts);
    assert_eq!(rules(&out), vec![RuleId::W1], "{out:?}");
}

#[test]
fn in_range_literal_narrowing_is_silent() {
    let src = "\
pub fn version() -> u32 {
    let tag = 0x4c45_u32;
    7 as u32 + 255 as u32 + tag
}
";
    let w = ws(&[("crates/serve/src/wire.rs", src)]);
    assert!(run_pass(&w, Pass::Casts).is_empty());
}

#[test]
fn float_to_int_cast_in_a_wire_crate_fires() {
    let src = "\
pub fn quantize(score: f64) -> u64 {
    score.floor() as u64
}
pub fn half() -> u64 {
    0.5 as u64
}
";
    let w = ws(&[("crates/query/src/engine.rs", src)]);
    let out = run_pass(&w, Pass::Casts);
    assert_eq!(rules(&out), vec![RuleId::W1, RuleId::W1], "{out:?}");
}

#[test]
fn widening_and_non_wire_crates_are_silent() {
    let widen = "\
pub fn widen(n: u32) -> u64 {
    n as u64
}
";
    // The identical narrowing that fires in serve stays legal elsewhere:
    // W1 polices wire encoding paths, not arithmetic crates.
    let narrow = "\
pub fn shrink(n: usize) -> u32 {
    n as u32
}
use std::collections::BTreeMap as Map;
";
    let w = ws(&[("crates/serve/src/wire.rs", widen), ("crates/core/src/lib.rs", narrow)]);
    assert!(run_pass(&w, Pass::Casts).is_empty());
}

#[test]
fn cast_pragma_with_reason_silences_w1() {
    let src = "\
pub fn header(n: usize) -> u32 {
    // lesm-lint: allow(W1) — n is a section count proven < 32 by the builder
    n as u32
}
";
    let w = ws(&[("crates/serve/src/wire.rs", src)]);
    assert!(run_pass(&w, Pass::Casts).is_empty());
}

// ------------------------------------------------------- CLI plumbing

#[test]
fn parse_passes_accepts_all_and_dedups_into_canonical_order() {
    assert_eq!(parse_passes("all").expect("all"), Pass::ALL.to_vec());
    assert_eq!(
        parse_passes("casts,taint,casts").expect("list"),
        vec![Pass::Taint, Pass::Casts],
        "canonical order, duplicates collapsed"
    );
    assert!(parse_passes("tokens,bogus").is_err());
    assert!(parse_passes("").is_err());
}

#[test]
fn json_rendering_is_stable_and_escaped() {
    let src = "\
pub fn header(n: usize) -> u32 {
    n as u32
}
";
    let w = ws(&[("crates/serve/src/wire.rs", src)]);
    let out = run_pass(&w, Pass::Casts);
    let json = render_json(&out);
    assert!(json.starts_with("[\n  {\"file\":\"crates/serve/src/wire.rs\",\"line\":2,\"rule\":\"W1\","), "{json}");
    assert!(json.ends_with("}\n]\n"), "{json}");
    // Field order is part of the contract.
    let body = json.lines().nth(1).expect("one object");
    let fields: Vec<usize> = ["\"file\":", "\"line\":", "\"rule\":", "\"note\":", "\"snippet\":"]
        .iter()
        .map(|f| body.find(f).expect(f))
        .collect();
    assert!(fields.windows(2).all(|p| p[0] < p[1]), "field order drifted: {body}");
    assert_eq!(render_json(&[]), "[]\n");
}
