//! Per-rule fixtures: every rule must demonstrably fire on a minimal
//! violating source and stay silent on the canonical fix. These are the
//! acceptance fixtures for the DESIGN.md §11 contract.

use lesm_lint::{check_source, FileClass, RuleId};

fn rules_in(src: &str, class: FileClass) -> Vec<RuleId> {
    check_source(src.as_bytes(), class).into_iter().map(|v| v.rule).collect()
}

fn fires(src: &str, class: FileClass, rule: RuleId) -> bool {
    rules_in(src, class).contains(&rule)
}

// --- D1: float ordering must go through total_cmp ------------------------

#[test]
fn d1_fires_on_partial_cmp_sort() {
    let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
    assert!(fires(src, FileClass::Lib, RuleId::D1));
    // Applies to binaries too: ordering bugs corrupt experiment tables.
    assert!(fires(src, FileClass::Bin, RuleId::D1));
}

#[test]
fn d1_silent_on_total_cmp() {
    let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }";
    assert!(!fires(src, FileClass::Lib, RuleId::D1));
}

// --- D2: HashMap/HashSet iteration must be canonicalized -----------------

#[test]
fn d2_fires_on_accumulating_map_iteration() {
    let src = r#"
use std::collections::HashMap;
fn total(m: &HashMap<u32, f64>) -> f64 {
    let mut sum = 0.0;
    for (_, v) in m.iter() {
        sum += v;
    }
    sum
}
"#;
    assert!(fires(src, FileClass::Lib, RuleId::D2));
}

#[test]
fn d2_fires_on_values_sum() {
    let src = r#"
use std::collections::HashMap;
fn total(m: &HashMap<u32, f64>) -> f64 { m.values().sum() }
"#;
    assert!(fires(src, FileClass::Lib, RuleId::D2));
}

#[test]
fn d2_silent_on_collect_and_sort() {
    let src = r#"
use std::collections::HashMap;
fn total(m: &HashMap<u32, f64>) -> f64 {
    let mut entries: Vec<(u32, f64)> = m.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable_by_key(|&(k, _)| k);
    entries.iter().map(|&(_, v)| v).sum()
}
"#;
    assert!(!fires(src, FileClass::Lib, RuleId::D2));
}

#[test]
fn d2_silent_in_test_module() {
    let src = r#"
use std::collections::HashMap;
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn order_does_not_matter_here() {
        let m: HashMap<u32, f64> = HashMap::new();
        let _: f64 = m.values().sum();
    }
}
"#;
    assert!(!fires(src, FileClass::Lib, RuleId::D2));
}

#[test]
fn d2_suppressible_with_reasoned_pragma() {
    let src = r#"
use std::collections::HashMap;
fn bump(m: &HashMap<u32, u64>, out: &mut std::collections::HashMap<u32, u64>) {
    // lesm-lint: allow(D2) — integer accumulation into a keyed map is order-independent
    for (k, v) in m.iter() {
        *out.entry(*k).or_insert(0) += v;
    }
}
"#;
    assert!(!fires(src, FileClass::Lib, RuleId::D2));
}

// --- D3: no ambient nondeterminism in library code -----------------------

#[test]
fn d3_fires_on_system_time_env_and_thread_rng() {
    for expr in
        ["std::time::SystemTime::now()", "std::env::var(\"HOME\").ok()", "rand::thread_rng()"]
    {
        let src = format!("fn f() {{ let _ = {expr}; }}");
        assert!(fires(&src, FileClass::Lib, RuleId::D3), "D3 should fire on {expr}");
    }
}

#[test]
fn d3_silent_on_scratch_state_and_atomic_tuning_knobs() {
    // The adaptive-dispatch machinery holds mutable state — reusable
    // scratch buffers and an atomic threshold global — but none of it is
    // *ambient*: it never reads clocks, env vars, or entropy, so results
    // stay a pure function of inputs. D3 must not mistake it for
    // nondeterminism.
    let src = r#"
use std::sync::atomic::{AtomicU64, Ordering};

static PAR_THRESHOLD: AtomicU64 = AtomicU64::new(262_144);

pub fn set_par_threshold(units: u64) {
    PAR_THRESHOLD.store(units, Ordering::Relaxed);
}

pub struct PowerScratch {
    next: Vec<f64>,
}

pub fn effective(requested: usize) -> usize {
    if requested != 0 {
        return requested;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

pub fn iterate(scratch: &mut PowerScratch, dim: usize) {
    scratch.next.resize(dim, 0.0);
    let _ = PAR_THRESHOLD.load(Ordering::Relaxed);
}
"#;
    assert!(!fires(src, FileClass::Lib, RuleId::D3));
}

#[test]
fn d3_clean_on_the_real_scratch_bearing_kernels() {
    // The production sources that gained scratch reuse in the kernel
    // overhaul must stay free of ambient state end to end.
    let fixture_root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    for rel in ["crates/par/src/lib.rs", "crates/strod/src/power.rs", "crates/linalg/src/mat.rs"]
    {
        let src = std::fs::read_to_string(format!("{fixture_root}/{rel}")).unwrap();
        assert!(
            !fires(&src, FileClass::Lib, RuleId::D3),
            "{rel} picked up ambient nondeterminism"
        );
    }
}

#[test]
fn d3_silent_on_seeded_rng_and_in_binaries() {
    let lib = "fn f() { let rng = StdRng::seed_from_u64(42); }";
    assert!(!fires(lib, FileClass::Lib, RuleId::D3));
    // Binaries own the ambient environment (arg parsing, timing displays).
    let bin = "fn main() { let _ = std::env::var(\"LESM_THREADS\"); }";
    assert!(!fires(bin, FileClass::Bin, RuleId::D3));
}

// --- R1: no unwrap/expect/panic family in library code -------------------

#[test]
fn r1_fires_on_each_panic_form() {
    for stmt in [
        "x.unwrap();",
        "x.expect(\"reason\");",
        "panic!(\"boom\");",
        "unreachable!();",
        "todo!();",
    ] {
        let src = format!("fn f(x: Option<u32>) {{ {stmt} }}");
        assert!(fires(&src, FileClass::Lib, RuleId::R1), "R1 should fire on {stmt}");
    }
}

#[test]
fn r1_silent_on_typed_errors_tests_and_binaries() {
    let lib = "fn f(x: Option<u32>) -> Result<u32, E> { x.ok_or(E::Missing) }";
    assert!(!fires(lib, FileClass::Lib, RuleId::R1));
    let test_mod = r#"
#[cfg(test)]
mod tests {
    #[test]
    fn asserts_may_unwrap() {
        Some(1).unwrap();
    }
}
"#;
    assert!(!fires(test_mod, FileClass::Lib, RuleId::R1));
    let bin = "fn main() { std::fs::read(\"x\").unwrap(); }";
    assert!(!fires(bin, FileClass::Bin, RuleId::R1));
}

#[test]
fn r1_silent_on_unwrap_or_family() {
    let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0).max(x.unwrap_or_else(|| 1)) }";
    assert!(!fires(src, FileClass::Lib, RuleId::R1));
}

// --- R2: no console output in library code -------------------------------

#[test]
fn r2_fires_on_println_and_eprintln() {
    assert!(fires("fn f() { println!(\"x\"); }", FileClass::Lib, RuleId::R2));
    assert!(fires("fn f() { eprintln!(\"x\"); }", FileClass::Lib, RuleId::R2));
}

#[test]
fn r2_silent_in_binaries_and_on_writeln() {
    assert!(!fires("fn main() { println!(\"x\"); }", FileClass::Bin, RuleId::R2));
    let src = "fn f(w: &mut impl std::io::Write) { let _ = writeln!(w, \"x\"); }";
    assert!(!fires(src, FileClass::Lib, RuleId::R2));
}

// --- P0: malformed pragmas are themselves violations ---------------------

#[test]
fn p0_fires_on_reasonless_or_unknown_rule_pragma() {
    assert!(fires("// lesm-lint: allow(D2)\nfn f() {}", FileClass::Lib, RuleId::P0));
    assert!(fires("// lesm-lint: allow(D9) — nope\nfn f() {}", FileClass::Lib, RuleId::P0));
}

#[test]
fn p0_cannot_be_suppressed_by_another_pragma() {
    let src = "// lesm-lint: allow(P0) — trying to silence the gate\n// lesm-lint: allow(D2)\nfn f() {}";
    assert!(fires(src, FileClass::Lib, RuleId::P0));
}

#[test]
fn p0_silent_on_well_formed_pragma() {
    let src = "// lesm-lint: allow(R2) — demo fixture\nfn f() {}";
    assert!(!fires(src, FileClass::Lib, RuleId::P0));
}

// --- Lexer-level fixtures: strings and comments hide rule text ----------

#[test]
fn rule_text_inside_strings_and_comments_is_inert() {
    let src = r##"
fn f() -> &'static str {
    // v.sort_by(|a, b| a.partial_cmp(b).unwrap()); println!("x");
    /* outer /* nested block comment: x.unwrap() */ still comment */
    let plain = "x.unwrap(); panic!(\"boom\")";
    let raw = r#"m.values().sum::<f64>() println!("y")"#;
    plain
}
"##;
    assert!(rules_in(src, FileClass::Lib).is_empty(), "got: {:?}", rules_in(src, FileClass::Lib));
}

#[test]
fn code_after_raw_string_and_nested_comment_is_still_linted() {
    let src = r##"
fn f() {
    let _raw = r#"harmless"#;
    /* level one /* level two */ back to one */
    Some(1).unwrap();
}
"##;
    assert!(fires(src, FileClass::Lib, RuleId::R1));
}

#[test]
fn cfg_not_test_scope_is_still_linted() {
    let src = r#"
#[cfg(not(test))]
fn f(x: Option<u32>) {
    x.unwrap();
}
"#;
    assert!(fires(src, FileClass::Lib, RuleId::R1));
}
