//! The gate itself: the workspace must satisfy the contract it ships.
//!
//! This test runs the full auditor over the real source tree, so any new
//! violation (or malformed pragma) fails `cargo test` — the same signal
//! `scripts/verify.sh` enforces via the `lesm-lint` binary.

use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.join("../..").canonicalize().expect("workspace root exists")
}

#[test]
fn workspace_has_zero_violations() {
    let root = workspace_root();
    assert!(root.join("Cargo.toml").exists(), "resolved a non-root dir: {}", root.display());
    let violations = lesm_lint::lint_workspace(&root).expect("workspace walk succeeds");
    let rendered: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
    assert!(
        violations.is_empty(),
        "lesm-lint found {} violation(s):\n{}",
        violations.len(),
        rendered.join("\n")
    );
}

#[test]
fn workspace_walk_covers_the_library_crates() {
    // Guard against the walker silently skipping everything (in which case
    // the zero-violations test above would pass vacuously).
    let root = workspace_root();
    for rel in [
        "crates/core/src/lib.rs",
        "crates/serve/src/snapshot.rs",
        "crates/relations/src/preprocess.rs",
    ] {
        assert!(root.join(rel).exists(), "expected governed file missing: {rel}");
        assert!(
            lesm_lint::classify(rel).is_some(),
            "governed file not classified for linting: {rel}"
        );
    }
    // Test and vendor trees stay out of scope.
    assert!(lesm_lint::classify("crates/cli/tests/cli_pipeline.rs").is_none());
    assert!(lesm_lint::classify("vendor/proptest/src/lib.rs").is_none());
    assert!(lesm_lint::classify("target/debug/build/foo.rs").is_none());
}
