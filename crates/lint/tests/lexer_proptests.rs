//! Property tests for the lexer's totality guarantees: arbitrary byte
//! soup must never panic, and the token stream must tile the input.

use lesm_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

proptest! {
    /// The core safety property: `lex` is total over arbitrary bytes
    /// (invalid UTF-8, unterminated literals, stray quotes, NULs, ...).
    #[test]
    fn lex_never_panics_on_arbitrary_bytes(bytes in proptest::collection::vec(0u8..=255u8, 0..512)) {
        let _ = lex(&bytes);
    }

    /// Rust-looking fragments with quote/comment openers in adversarial
    /// positions — denser coverage of the string/comment state machine
    /// than uniform bytes.
    #[test]
    fn lex_never_panics_on_quote_heavy_text(s in r#"[a-z0-9"'/*#\\ \n—]{0,200}"#) {
        let _ = lex(s.as_bytes());
    }

    /// Token spans are in-bounds, non-empty, and non-overlapping in order.
    #[test]
    fn token_spans_are_ordered_and_in_bounds(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let tokens = lex(&bytes);
        let mut prev_end = 0usize;
        for t in &tokens {
            prop_assert!(t.start >= prev_end, "overlapping tokens");
            prop_assert!(t.start < t.end, "empty token span");
            prop_assert!(t.end <= bytes.len(), "span out of bounds");
            prev_end = t.end;
        }
    }

    /// Line numbers never decrease and never exceed the newline count.
    #[test]
    fn token_lines_are_monotonic(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let tokens = lex(&bytes);
        let lines = 1 + bytes.iter().filter(|&&b| b == b'\n').count() as u32;
        let mut prev = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= prev);
            prop_assert!(t.line <= lines);
            prev = t.line;
        }
    }

    /// Every byte outside whitespace is covered by some token: nothing is
    /// silently dropped (comments and unterminated literals included).
    #[test]
    fn non_whitespace_bytes_are_covered(bytes in proptest::collection::vec(0u8..=255u8, 0..256)) {
        let tokens = lex(&bytes);
        let mut covered = vec![false; bytes.len()];
        for t in &tokens {
            for slot in &mut covered[t.start..t.end] {
                *slot = true;
            }
        }
        for (i, &b) in bytes.iter().enumerate() {
            // Mirror the lexer's whitespace set (includes vertical tab).
            if !matches!(b, b' ' | b'\t' | b'\n' | b'\r' | 0x0b | 0x0c) {
                prop_assert!(covered[i], "byte {i} ({b:#04x}) not covered by any token");
            }
        }
    }
}

/// Deterministic spot-checks for the constructs the property tests rarely
/// assemble whole.
#[test]
fn raw_string_with_hashes_lexes_as_one_token() {
    let src = br####"let s = r##"a "# b"##;"####;
    let tokens = lex(src);
    assert!(
        tokens
            .iter()
            .any(|t| t.kind == TokenKind::RawStr && t.text(src).starts_with(b"r##")),
        "raw string not found in {tokens:?}"
    );
}

#[test]
fn unterminated_block_comment_extends_to_eof() {
    let src = b"fn f() {} /* never closed";
    let tokens = lex(src);
    let last = tokens.last().expect("tokens");
    assert_eq!(last.kind, TokenKind::BlockComment);
    assert_eq!(last.end, src.len());
}
