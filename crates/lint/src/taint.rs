//! Pass 2 — determinism taint (rule D4).
//!
//! The token-local D2/D3 rules see a nondeterministic *expression*; this
//! pass sees where its value can *go*. Taint seeds at every ambient
//! source (clock / env / RNG — the D3 set), every address-identity read
//! (`addr_of`, `as_ptr … as usize`), and every un-canonicalized
//! `HashMap`/`HashSet` iteration that does **not** carry an `allow(D2)`
//! pragma (a D2 waiver asserts order-independence, so it is not a
//! seed). From the seed's enclosing fn, taint propagates *caller-ward*
//! along the approximate call graph: if a helper reads the clock, every
//! fn that calls the helper is tainted. A violation fires when taint
//! reaches a sink:
//!
//! - a bare-`pub` library fn (the crate's promised-deterministic API), or
//! - any fn in a wire file — snapshot/section writers, cursor codecs,
//!   HTTP framing (`crates/serve`, `crates/query` serve paths).
//!
//! The sole escape is `lesm-lint: allow(D4)`: at the seed line it
//! clears the source; at a call-site line or a callee's declaration
//! line it severs that propagation edge. Every waiver needs a reason.
//!
//! One violation is reported per *seed*, at the seed's line, naming the
//! nearest sink reached and the call chain — so a laundered clock shows
//! up where the clock is read, not at the innocent API boundary.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::pragma;
use crate::rules::{ambient_sites, address_of_sites, d2_sites, FileClass, RuleId, Violation};
use crate::source::Workspace;
use crate::symbols::{SymbolTable, Vis};
use crate::FileViolation;

/// Files whose every fn is a wire sink: bytes leaving these reach
/// snapshots, cursors, or HTTP responses, all of which must be
/// byte-identical across runs.
const WIRE_FILES: &[&str] = &[
    "crates/serve/src/snapshot.rs",
    "crates/serve/src/v2.rs",
    "crates/serve/src/wire.rs",
    "crates/serve/src/http.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/front.rs",
    "crates/serve/src/shard.rs",
    "crates/serve/src/store.rs",
    "crates/serve/src/query.rs",
    "crates/query/src/engine.rs",
    "crates/query/src/parts.rs",
];

/// Why a fn counts as a sink.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Sink {
    /// Bare-`pub` library API.
    PubApi,
    /// Lives in a wire file.
    Wire,
}

fn sink_kind(ws: &Workspace, syms: &SymbolTable, f: usize) -> Option<Sink> {
    let sym = &syms.fns[f];
    if sym.in_test {
        return None;
    }
    if WIRE_FILES.contains(&ws.files[sym.file].rel.as_str()) {
        return Some(Sink::Wire);
    }
    if sym.vis == Vis::Pub {
        return Some(Sink::PubApi);
    }
    None
}

/// Runs the taint pass over a loaded workspace.
pub fn run(ws: &Workspace, syms: &SymbolTable, graph: &CallGraph) -> Vec<FileViolation> {
    let mut out = Vec::new();
    for (fi, file) in ws.files.iter().enumerate() {
        if file.class != FileClass::Lib {
            continue;
        }
        let cx = file.cx();
        let mut seeds: Vec<(usize, &str)> = Vec::new();
        for t in ambient_sites(&cx) {
            seeds.push((t, "ambient clock/env/RNG read"));
        }
        for t in address_of_sites(&cx) {
            seeds.push((t, "address-dependent value"));
        }
        for t in d2_sites(&cx) {
            // An allow(D2) pragma asserts the iteration is
            // order-independent — then there is nothing to propagate.
            if !pragma::suppresses(&file.pragmas, RuleId::D2, cx.line(t)) {
                seeds.push((t, "un-canonicalized hash-order iteration"));
            }
        }
        seeds.sort_unstable();
        for (tok, desc) in seeds {
            let line = cx.line(tok);
            if pragma::suppresses(&file.pragmas, RuleId::D4, line) {
                continue;
            }
            let Some(seed_fn) = syms.enclosing_fn(fi, tok) else { continue };
            if syms.fns[seed_fn].in_test {
                continue;
            }
            if let Some((sink, chain)) = reach_sink(ws, syms, graph, seed_fn) {
                out.push(FileViolation {
                    path: file.rel.clone(),
                    violation: Violation {
                        rule: RuleId::D4,
                        line,
                        note: describe(ws, syms, desc, seed_fn, sink, &chain),
                        snippet: file.snippet(line),
                    },
                });
            }
        }
    }
    out
}

/// BFS caller-ward from `seed_fn`; returns the nearest sink and the fn
/// chain `[seed_fn, …, sink]`. Deterministic: adjacency is sorted and
/// the frontier is processed in insertion order.
fn reach_sink(
    ws: &Workspace,
    syms: &SymbolTable,
    graph: &CallGraph,
    seed_fn: usize,
) -> Option<(usize, Vec<usize>)> {
    if sink_kind(ws, syms, seed_fn).is_some() {
        return Some((seed_fn, vec![seed_fn]));
    }
    let mut prev: Vec<(usize, usize)> = Vec::new(); // (fn, predecessor)
    let mut visited: BTreeSet<usize> = BTreeSet::new();
    let mut frontier: Vec<usize> = vec![seed_fn];
    visited.insert(seed_fn);
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &f in &frontier {
            for e in &graph.callers[f] {
                let caller = e.other;
                if visited.contains(&caller) {
                    continue;
                }
                let cfile = &ws.files[syms.fns[caller].file];
                // allow(D4) at the call site or at the callee's
                // declaration severs this edge.
                if pragma::suppresses(&cfile.pragmas, RuleId::D4, e.line)
                    || pragma::suppresses(&cfile.pragmas, RuleId::D4, syms.fns[caller].line)
                {
                    continue;
                }
                visited.insert(caller);
                prev.push((caller, f));
                if sink_kind(ws, syms, caller).is_some() {
                    // Unwind the predecessor chain back to the seed.
                    let mut chain = vec![caller];
                    let mut cur = caller;
                    while cur != seed_fn {
                        match prev.iter().find(|&&(n, _)| n == cur) {
                            Some(&(_, p)) => {
                                chain.push(p);
                                cur = p;
                            }
                            None => break,
                        }
                    }
                    chain.reverse();
                    return Some((caller, chain));
                }
                next.push(caller);
            }
        }
        frontier = next;
    }
    None
}

fn describe(
    ws: &Workspace,
    syms: &SymbolTable,
    desc: &str,
    seed_fn: usize,
    sink: usize,
    chain: &[usize],
) -> String {
    let sym = &syms.fns[sink];
    let what = match sink_kind(ws, syms, sink) {
        Some(Sink::Wire) => "wire path",
        _ => "pub API",
    };
    let at = format!("({}:{})", ws.files[sym.file].rel, sym.line);
    let mut note = if sink == seed_fn {
        format!("{desc} inside {what} fn `{}` {at}", sym.name)
    } else {
        format!(
            "{desc} in `{}` flows to {what} fn `{}` {at}",
            syms.fns[seed_fn].name, sym.name
        )
    };
    // Name up to three intermediate hops of the laundering chain.
    let mid = &chain[1..chain.len().saturating_sub(1).max(1)];
    if !mid.is_empty() {
        let hops: Vec<&str> =
            mid.iter().take(3).map(|&f| syms.fns[f].name.as_str()).collect();
        let ell = if mid.len() > 3 { " → …" } else { "" };
        note.push_str(&format!(" via `{}`{}", hops.join("` → `"), ell));
    }
    note.push_str("; canonicalize the value or carry `lesm-lint: allow(D4)` with a reason");
    note
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::source::Workspace;

    fn taint(files: Vec<(&str, &str)>) -> Vec<FileViolation> {
        let ws = Workspace::from_sources(
            files
                .into_iter()
                .map(|(p, s)| (p.to_string(), s.as_bytes().to_vec()))
                .collect(),
        );
        let syms = SymbolTable::build(&ws);
        let graph = CallGraph::build(&ws, &syms);
        run(&ws, &syms, &graph)
    }

    #[test]
    fn clock_in_private_helper_reaching_pub_api_fires() {
        let v = taint(vec![(
            "crates/core/src/t.rs",
            "use std::time::Instant;\nfn stamp() -> Instant { Instant::now() }\npub fn api() -> u64 { stamp(); 0 }\n",
        )]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].violation.rule, RuleId::D4);
        assert_eq!(v[0].violation.line, 2);
        assert!(v[0].violation.note.contains("`api`"), "{}", v[0].violation.note);
    }

    #[test]
    fn private_dead_end_is_silent() {
        let v = taint(vec![(
            "crates/core/src/t.rs",
            "use std::time::Instant;\nfn stamp() -> Instant { Instant::now() }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn allow_d4_at_seed_silences() {
        let v = taint(vec![(
            "crates/core/src/t.rs",
            "use std::time::Instant;\nfn stamp() -> Instant {\n    // lesm-lint: allow(D4) — never leaves the log line\n    Instant::now()\n}\npub fn api() -> u64 { stamp(); 0 }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn wire_file_fn_is_a_sink_even_when_private() {
        let v = taint(vec![
            (
                "crates/core/src/t.rs",
                "pub(crate) fn jitter() -> u64 { rand::random() }\n",
            ),
            (
                "crates/serve/src/wire.rs",
                "fn frame() { crate::jitter(); }\n",
            ),
        ]);
        assert_eq!(v.len(), 1);
        assert!(v[0].violation.note.contains("wire path"), "{}", v[0].violation.note);
        assert_eq!(v[0].path, "crates/core/src/t.rs");
    }

    #[test]
    fn d2_pragma_means_not_a_seed() {
        let v = taint(vec![(
            "crates/core/src/t.rs",
            "use std::collections::HashMap;\npub fn total(m: &HashMap<u32, u64>) -> u64 {\n    let mut s = 0;\n    // lesm-lint: allow(D2) — u64 sum is order-independent\n    for (_, v) in m.iter() { s += v; }\n    s\n}\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }
}
