//! lesm-lint — the workspace determinism & robustness auditor.
//!
//! Every guarantee the lesm workspace sells — bit-identical output
//! across thread counts, byte-identical snapshots and server responses,
//! panic-free typed errors — used to be enforced only by after-the-fact
//! tests. This crate enforces them at the *source* level, on every
//! build: a hand-rolled lexer ([`lexer`]), a `#[cfg(test)]` scope
//! tracker ([`scope`]), and a rule engine ([`rules`]) checking the
//! static-analysis contract of DESIGN.md §11. On top of the per-file
//! token rules sits the multi-pass workspace analyzer of DESIGN.md §16:
//! a symbol table ([`symbols`]) and approximate call graph
//! ([`callgraph`]) feeding determinism taint ([`taint`]), the unsafe
//! audit ([`unsafe_audit`]), and wire-truncation checking ([`casts`]).
//! The sole escape hatch is the `// lesm-lint: allow(rule) — reason`
//! pragma ([`pragma`]), whose reason is mandatory.
//!
//! The linter must itself satisfy the contract it enforces, so this
//! crate uses no `HashMap`, no `unwrap`, and returns typed errors.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod callgraph;
pub mod casts;
pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod scope;
pub mod source;
pub mod symbols;
pub mod taint;
pub mod unsafe_audit;

use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::{check_source, FileClass, RuleId, Violation};
pub use source::Workspace;

/// A violation annotated with the file it was found in.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Path relative to the workspace root.
    pub path: String,
    /// The violation itself.
    pub violation: Violation,
}

impl fmt::Display for FileViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = &self.violation;
        write!(
            f,
            "{}:{}: {}: {}\n    {}",
            self.path,
            v.line,
            v.rule.as_str(),
            v.note,
            v.snippet
        )
    }
}

impl FileViolation {
    /// One JSON object, fields always in the order
    /// `file`, `line`, `rule`, `note`, `snippet` — the machine-readable
    /// contract of `--format json`.
    pub fn to_json(&self) -> String {
        let v = &self.violation;
        format!(
            "{{\"file\":{},\"line\":{},\"rule\":{},\"note\":{},\"snippet\":{}}}",
            json_str(&self.path),
            v.line,
            json_str(v.rule.as_str()),
            json_str(&v.note),
            json_str(&v.snippet)
        )
    }
}

/// Escapes a string for JSON output (hand-rolled: this crate takes no
/// dependencies).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders a violation list as a JSON array, one object per line.
pub fn render_json(violations: &[FileViolation]) -> String {
    if violations.is_empty() {
        return "[]\n".to_string();
    }
    let mut out = String::from("[\n");
    for (i, v) in violations.iter().enumerate() {
        out.push_str("  ");
        out.push_str(&v.to_json());
        out.push_str(if i + 1 < violations.len() { ",\n" } else { "\n" });
    }
    out.push_str("]\n");
    out
}

/// Why a lint run could not complete.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem access failed.
    Io {
        /// Offending path.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The given root is not a lesm workspace.
    NotAWorkspace(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "io error at {}: {source}", path.display()),
            Self::NotAWorkspace(p) => {
                write!(f, "{} does not look like the lesm workspace root (no crates/ dir)", p.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Crates whose every file is [`FileClass::Bin`]: experiment drivers and
/// user-facing binaries, which are allowed to print and to crash.
const BIN_CRATES: [&str; 3] = ["cli", "bench", "fuzz-harness"];

/// Directory names never walked: generated output, third-party code,
/// and test/bench/example sources (test code is exempt from the
/// contract wholesale, so there is nothing to check there).
const SKIP_DIRS: [&str; 7] = ["target", "vendor", "tests", "benches", "examples", ".git", "fixtures"];

/// Classifies a workspace-relative path. Returns `None` for files the
/// contract does not govern.
pub fn classify(rel: &str) -> Option<FileClass> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    for d in SKIP_DIRS {
        if rel.split('/').any(|seg| seg == d) {
            return None;
        }
    }
    if rel == "build.rs" || rel.ends_with("/build.rs") {
        return None;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (krate, _) = rest.split_once('/')?;
        if BIN_CRATES.contains(&krate) {
            return Some(FileClass::Bin);
        }
        if rest.ends_with("/src/main.rs") || rel.contains("/src/bin/") {
            return Some(FileClass::Bin);
        }
        return Some(FileClass::Lib);
    }
    if rel.starts_with("src/") {
        // The facade crate at the workspace root is library code.
        return Some(FileClass::Lib);
    }
    None
}

/// Recursively lists `.rs` files under `dir`, sorted by name at every
/// level — the linter's own output must be deterministic.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
    let mut names: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
        names.push(entry.path());
    }
    names.sort();
    for path in names {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// One analyzer pass, selectable via `lesm-lint --passes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Per-file token rules: D1–D3, R1, R2, P0.
    Tokens,
    /// Call-graph determinism taint: D4.
    Taint,
    /// Unsafe audit: U1–U3.
    Unsafe,
    /// Wire truncation: W1.
    Casts,
}

impl Pass {
    /// Every pass, in canonical execution order.
    pub const ALL: [Pass; 4] = [Pass::Tokens, Pass::Taint, Pass::Unsafe, Pass::Casts];

    /// The `--passes` spelling.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Tokens => "tokens",
            Pass::Taint => "taint",
            Pass::Unsafe => "unsafe",
            Pass::Casts => "casts",
        }
    }
}

/// Parses a `--passes` spec: `all` or a comma list of pass names.
/// Duplicates collapse; execution order is always canonical.
pub fn parse_passes(spec: &str) -> Result<Vec<Pass>, String> {
    if spec.trim() == "all" {
        return Ok(Pass::ALL.to_vec());
    }
    let mut wanted = Vec::new();
    for name in spec.split(',') {
        let name = name.trim();
        let pass = Pass::ALL
            .into_iter()
            .find(|p| p.name() == name)
            .ok_or_else(|| {
                format!("unknown pass `{name}` (expected: tokens, taint, unsafe, casts, all)")
            })?;
        if !wanted.contains(&pass) {
            wanted.push(pass);
        }
    }
    if wanted.is_empty() {
        return Err("empty pass list".to_string());
    }
    Ok(Pass::ALL.into_iter().filter(|p| wanted.contains(p)).collect())
}

/// Runs one pass over a loaded workspace. Results are unsorted; callers
/// go through [`audit`] for the canonical ordering.
pub fn run_pass(ws: &Workspace, pass: Pass) -> Vec<FileViolation> {
    match pass {
        Pass::Tokens => {
            let mut out = Vec::new();
            for file in &ws.files {
                out.extend(check_source(&file.src, file.class).into_iter().map(
                    |violation| FileViolation { path: file.rel.clone(), violation },
                ));
            }
            out
        }
        Pass::Taint => {
            let syms = symbols::SymbolTable::build(ws);
            let graph = callgraph::CallGraph::build(ws, &syms);
            taint::run(ws, &syms, &graph)
        }
        Pass::Unsafe => {
            let syms = symbols::SymbolTable::build(ws);
            let graph = callgraph::CallGraph::build(ws, &syms);
            unsafe_audit::run(ws, &syms, &graph)
        }
        Pass::Casts => casts::run(ws),
    }
}

/// Runs the requested passes and returns the merged findings, sorted by
/// path, line, rule — the linter's output is itself deterministic.
pub fn audit(ws: &Workspace, passes: &[Pass]) -> Vec<FileViolation> {
    let mut out = Vec::new();
    for &pass in passes {
        out.extend(run_pass(ws, pass));
    }
    audit_merge(out)
}

/// Sorts raw pass findings into the canonical report order (path, line,
/// rule, note) and drops exact duplicates. [`audit`] in two halves, for
/// callers that drive [`run_pass`] themselves (the CLI times each pass).
pub fn audit_merge(mut out: Vec<FileViolation>) -> Vec<FileViolation> {
    out.sort_by(|a, b| {
        (a.path.as_str(), a.violation.line, a.violation.rule.as_str(), a.violation.note.as_str())
            .cmp(&(b.path.as_str(), b.violation.line, b.violation.rule.as_str(), b.violation.note.as_str()))
    });
    out.dedup_by(|a, b| {
        a.path == b.path
            && a.violation.line == b.violation.line
            && a.violation.rule == b.violation.rule
            && a.violation.note == b.violation.note
    });
    out
}

/// Lists every governed `.rs` file under `root` as sorted
/// workspace-relative paths with `/` separators.
pub fn governed_files(root: &Path) -> Result<Vec<String>, LintError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    let mut files: Vec<PathBuf> = Vec::new();
    walk(&crates_dir, &mut files)?;
    let src_dir = root.join("src");
    if src_dir.is_dir() {
        walk(&src_dir, &mut files)?;
    }
    Ok(files
        .into_iter()
        .map(|abs| match abs.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => abs.to_string_lossy().replace('\\', "/"),
        })
        .collect())
}

/// Lints one file on disk with the per-file token rules only. `rel` is
/// the workspace-relative path used for classification and reporting.
/// The workspace passes (taint, unsafe, casts) need the whole tree in
/// view — use [`Workspace::load`] + [`audit`] for those.
pub fn lint_file(root: &Path, rel: &str) -> Result<Vec<FileViolation>, LintError> {
    let Some(class) = classify(rel) else { return Ok(Vec::new()) };
    let abs = root.join(rel);
    let src = std::fs::read(&abs).map_err(|source| LintError::Io { path: abs, source })?;
    Ok(check_source(&src, class)
        .into_iter()
        .map(|violation| FileViolation { path: rel.to_string(), violation })
        .collect())
}

/// Runs the full pass pipeline over the workspace rooted at `root`:
/// every governed `.rs` file under `crates/` and `src/`, all four
/// passes. Results are sorted by path, then line.
pub fn lint_workspace(root: &Path) -> Result<Vec<FileViolation>, LintError> {
    let ws = Workspace::load(root)?;
    Ok(audit(&ws, &Pass::ALL))
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        assert_eq!(classify("crates/roles/src/type_a.rs"), Some(FileClass::Lib));
        assert_eq!(classify("crates/cli/src/lib.rs"), Some(FileClass::Bin));
        assert_eq!(classify("crates/bench/src/bin/exp.rs"), Some(FileClass::Bin));
        assert_eq!(classify("crates/fuzz-harness/src/runner.rs"), Some(FileClass::Bin));
        assert_eq!(classify("crates/serve/src/main.rs"), Some(FileClass::Bin));
        assert_eq!(classify("crates/hier/src/bin/tool.rs"), Some(FileClass::Bin));
        assert_eq!(classify("src/lib.rs"), Some(FileClass::Lib));
        assert_eq!(classify("crates/hier/tests/proptests.rs"), None);
        assert_eq!(classify("crates/hier/benches/em.rs"), None);
        assert_eq!(classify("examples/demo.rs"), None);
        assert_eq!(classify("vendor/rand/src/lib.rs"), None);
        assert_eq!(classify("crates/serve/README.md"), None);
    }
}
