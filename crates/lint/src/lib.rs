//! lesm-lint — the workspace determinism & robustness auditor.
//!
//! Every guarantee the lesm workspace sells — bit-identical output
//! across thread counts, byte-identical snapshots and server responses,
//! panic-free typed errors — used to be enforced only by after-the-fact
//! tests. This crate enforces them at the *source* level, on every
//! build: a hand-rolled lexer ([`lexer`]), a `#[cfg(test)]` scope
//! tracker ([`scope`]), and a rule engine ([`rules`]) checking the
//! static-analysis contract of DESIGN.md §11. The sole escape hatch is
//! the `// lesm-lint: allow(rule) — reason` pragma ([`pragma`]), whose
//! reason is mandatory.
//!
//! The linter must itself satisfy the contract it enforces, so this
//! crate uses no `HashMap`, no `unwrap`, and returns typed errors.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod lexer;
pub mod pragma;
pub mod rules;
pub mod scope;

use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::{check_source, FileClass, RuleId, Violation};

/// A violation annotated with the file it was found in.
#[derive(Debug, Clone)]
pub struct FileViolation {
    /// Path relative to the workspace root.
    pub path: String,
    /// The violation itself.
    pub violation: Violation,
}

impl fmt::Display for FileViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = &self.violation;
        write!(
            f,
            "{}:{}: {}: {}\n    {}",
            self.path,
            v.line,
            v.rule.as_str(),
            v.note,
            v.snippet
        )
    }
}

/// Why a lint run could not complete.
#[derive(Debug)]
pub enum LintError {
    /// Filesystem access failed.
    Io {
        /// Offending path.
        path: PathBuf,
        /// Underlying error.
        source: std::io::Error,
    },
    /// The given root is not a lesm workspace.
    NotAWorkspace(PathBuf),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { path, source } => write!(f, "io error at {}: {source}", path.display()),
            Self::NotAWorkspace(p) => {
                write!(f, "{} does not look like the lesm workspace root (no crates/ dir)", p.display())
            }
        }
    }
}

impl std::error::Error for LintError {}

/// Crates whose every file is [`FileClass::Bin`]: experiment drivers and
/// user-facing binaries, which are allowed to print and to crash.
const BIN_CRATES: [&str; 3] = ["cli", "bench", "fuzz-harness"];

/// Directory names never walked: generated output, third-party code,
/// and test/bench/example sources (test code is exempt from the
/// contract wholesale, so there is nothing to check there).
const SKIP_DIRS: [&str; 7] = ["target", "vendor", "tests", "benches", "examples", ".git", "fixtures"];

/// Classifies a workspace-relative path. Returns `None` for files the
/// contract does not govern.
pub fn classify(rel: &str) -> Option<FileClass> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") {
        return None;
    }
    for d in SKIP_DIRS {
        if rel.split('/').any(|seg| seg == d) {
            return None;
        }
    }
    if rel == "build.rs" || rel.ends_with("/build.rs") {
        return None;
    }
    if let Some(rest) = rel.strip_prefix("crates/") {
        let (krate, _) = rest.split_once('/')?;
        if BIN_CRATES.contains(&krate) {
            return Some(FileClass::Bin);
        }
        if rest.ends_with("/src/main.rs") || rel.contains("/src/bin/") {
            return Some(FileClass::Bin);
        }
        return Some(FileClass::Lib);
    }
    if rel.starts_with("src/") {
        // The facade crate at the workspace root is library code.
        return Some(FileClass::Lib);
    }
    None
}

/// Recursively lists `.rs` files under `dir`, sorted by name at every
/// level — the linter's own output must be deterministic.
fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), LintError> {
    let entries = std::fs::read_dir(dir)
        .map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
    let mut names: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|source| LintError::Io { path: dir.to_path_buf(), source })?;
        names.push(entry.path());
    }
    names.sort();
    for path in names {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file on disk. `rel` is the workspace-relative path used
/// for classification and reporting.
pub fn lint_file(root: &Path, rel: &str) -> Result<Vec<FileViolation>, LintError> {
    let Some(class) = classify(rel) else { return Ok(Vec::new()) };
    let abs = root.join(rel);
    let src = std::fs::read(&abs).map_err(|source| LintError::Io { path: abs, source })?;
    Ok(check_source(&src, class)
        .into_iter()
        .map(|violation| FileViolation { path: rel.to_string(), violation })
        .collect())
}

/// Lints the whole workspace rooted at `root`: every governed `.rs`
/// file under `crates/` and `src/`. Results are sorted by path, then
/// line.
pub fn lint_workspace(root: &Path) -> Result<Vec<FileViolation>, LintError> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(LintError::NotAWorkspace(root.to_path_buf()));
    }
    let mut files: Vec<PathBuf> = Vec::new();
    walk(&crates_dir, &mut files)?;
    let src_dir = root.join("src");
    if src_dir.is_dir() {
        walk(&src_dir, &mut files)?;
    }
    let mut out = Vec::new();
    for abs in files {
        let rel = match abs.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => abs.to_string_lossy().replace('\\', "/"),
        };
        out.extend(lint_file(root, &rel)?);
    }
    Ok(out)
}

/// Locates the workspace root: walks up from `start` until a directory
/// containing both `Cargo.toml` and `crates/` is found.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start);
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir.to_path_buf());
        }
        cur = dir.parent();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matrix() {
        assert_eq!(classify("crates/roles/src/type_a.rs"), Some(FileClass::Lib));
        assert_eq!(classify("crates/cli/src/lib.rs"), Some(FileClass::Bin));
        assert_eq!(classify("crates/bench/src/bin/exp.rs"), Some(FileClass::Bin));
        assert_eq!(classify("crates/fuzz-harness/src/runner.rs"), Some(FileClass::Bin));
        assert_eq!(classify("crates/serve/src/main.rs"), Some(FileClass::Bin));
        assert_eq!(classify("crates/hier/src/bin/tool.rs"), Some(FileClass::Bin));
        assert_eq!(classify("src/lib.rs"), Some(FileClass::Lib));
        assert_eq!(classify("crates/hier/tests/proptests.rs"), None);
        assert_eq!(classify("crates/hier/benches/em.rs"), None);
        assert_eq!(classify("examples/demo.rs"), None);
        assert_eq!(classify("vendor/rand/src/lib.rs"), None);
        assert_eq!(classify("crates/serve/README.md"), None);
    }
}
