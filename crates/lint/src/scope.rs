//! `#[cfg(test)]` / `#[test]` / `mod tests` scope tracking.
//!
//! The robustness rules only apply to *shipping* code: anything compiled
//! away outside `cfg(test)` may unwrap and iterate HashMaps to its
//! heart's content. This pass walks the significant token stream once,
//! maintaining a brace-depth stack of regions opened by a test marker,
//! and labels every token with whether it is inside one.
//!
//! Recognized markers:
//!
//! - an attribute whose tokens mention `test` and do not mention `not`
//!   (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`,
//!   `#[cfg_attr(test, …)]`, `#[bench]` is *not* matched — the bench
//!   crate is exempted at the crate level instead);
//! - `mod tests` / `mod test`.
//!
//! A marker arms a "pending" flag; the next `{` at any depth opens the
//! test region (the item body), a `;` first instead cancels it
//! (`#[cfg(test)] use …;` — the item has no body to mark).

use crate::lexer::{Token, TokenKind};

/// Marks which tokens of a file live under a test scope. Index-aligned
/// with the *significant* token slice passed to [`test_scopes`].
pub fn test_scopes(src: &[u8], sig: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; sig.len()];
    let mut depth: usize = 0;
    let mut test_depths: Vec<usize> = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < sig.len() {
        let t = &sig[i];
        let text = t.text(src);
        match t.kind {
            TokenKind::Punct => match text {
                b"#" => {
                    // Attribute: `#[…]` or `#![…]`. Consume the balanced
                    // bracket group wholesale so its internal brackets
                    // and braces cannot disturb depth tracking.
                    let mut j = i + 1;
                    if sig.get(j).is_some_and(|t| t.text(src) == b"!") {
                        j += 1;
                    }
                    if sig.get(j).is_some_and(|t| t.text(src) == b"[") {
                        let (end, is_test) = scan_attr(src, sig, j);
                        if is_test {
                            pending = true;
                        }
                        for f in flags.iter_mut().take(end.min(sig.len())).skip(i) {
                            *f = !test_depths.is_empty();
                        }
                        i = end;
                        continue;
                    }
                }
                b"{" => {
                    depth += 1;
                    if pending {
                        test_depths.push(depth);
                        pending = false;
                    }
                }
                b"}" => {
                    if test_depths.last() == Some(&depth) {
                        test_depths.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                b";" => pending = false,
                _ => {}
            },
            TokenKind::Ident if text == b"mod"
                && sig
                    .get(i + 1)
                    .is_some_and(|n| matches!(n.text(src), b"tests" | b"test"))
                => {
                    pending = true;
                }
            _ => {}
        }
        flags[i] = !test_depths.is_empty();
        i += 1;
    }
    flags
}

/// Scans the attribute's balanced `[…]` group starting at `open`
/// (the index of `[`). Returns (index one past the closing `]`,
/// whether the attribute marks a test scope).
fn scan_attr(src: &[u8], sig: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < sig.len() {
        let t = &sig[j];
        match t.kind {
            TokenKind::Punct => match t.text(src) {
                b"[" | b"(" | b"{" => depth += 1,
                b"]" | b")" | b"}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return (j + 1, has_test && !has_not);
                    }
                }
                _ => {}
            },
            TokenKind::Ident => match t.text(src) {
                b"test" | b"tests" => has_test = true,
                b"not" => has_not = true,
                _ => {}
            },
            _ => {}
        }
        j += 1;
    }
    (sig.len(), has_test && !has_not)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn scopes(src: &str) -> Vec<(String, bool)> {
        let toks = lex(src.as_bytes());
        let sig: Vec<_> = toks
            .into_iter()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        let flags = test_scopes(src.as_bytes(), &sig);
        sig.iter()
            .zip(&flags)
            .map(|(t, &f)| (String::from_utf8_lossy(t.text(src.as_bytes())).into_owned(), f))
            .collect()
    }

    fn flag_of(scopes: &[(String, bool)], ident: &str) -> bool {
        scopes
            .iter()
            .find(|(s, _)| s == ident)
            .map(|&(_, f)| f)
            .unwrap_or_else(|| panic!("ident {ident} not found"))
    }

    #[test]
    fn cfg_test_module_is_test_scope() {
        let s = scopes("fn live() { a(); }\n#[cfg(test)]\nmod tests { fn t() { b(); } }\nfn tail() { c(); }");
        assert!(!flag_of(&s, "a"));
        assert!(flag_of(&s, "b"));
        assert!(!flag_of(&s, "c"));
    }

    #[test]
    fn test_attr_on_fn() {
        let s = scopes("#[test]\nfn check() { x(); }\nfn live() { y(); }");
        assert!(flag_of(&s, "x"));
        assert!(!flag_of(&s, "y"));
    }

    #[test]
    fn cfg_not_test_is_live_code() {
        let s = scopes("#[cfg(not(test))]\nfn live() { a(); }");
        assert!(!flag_of(&s, "a"));
    }

    #[test]
    fn cfg_all_test_is_test_scope() {
        let s = scopes("#[cfg(all(test, feature = \"x\"))]\nfn helper() { a(); }");
        assert!(flag_of(&s, "a"));
    }

    #[test]
    fn attr_on_braceless_item_cancels_at_semicolon() {
        let s = scopes("#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { a(); }");
        assert!(!flag_of(&s, "a"));
    }

    #[test]
    fn mod_tests_without_attr() {
        let s = scopes("mod tests { fn t() { a(); } }\nfn live() { b(); }");
        assert!(flag_of(&s, "a"));
        assert!(!flag_of(&s, "b"));
    }

    #[test]
    fn nested_braces_inside_test_module_stay_test() {
        let s = scopes("#[cfg(test)]\nmod tests { fn t() { if x { deep(); } } }\nfn live() { out(); }");
        assert!(flag_of(&s, "deep"));
        assert!(!flag_of(&s, "out"));
    }

    #[test]
    fn derive_between_cfg_and_item_keeps_pending() {
        let s = scopes("#[cfg(test)]\n#[derive(Debug)]\nstruct T { f: u32 }\nfn live() { a(); }");
        assert!(flag_of(&s, "f"));
        assert!(!flag_of(&s, "a"));
    }
}
