//! Pass 3 — the unsafe audit (rules U1–U3).
//!
//! - **U1** — every `unsafe` keyword in live (non-test) code needs a
//!   `// SAFETY:` comment on the same line or within the four lines
//!   above it. The comment is the proof obligation; the rule only
//!   checks it exists, not that it is right.
//! - **U2** — the raw-memory primitives (`from_raw_parts`,
//!   `copy_nonoverlapping`, `transmute`, volatile/unaligned access) are
//!   confined to the allowlisted modules that own a safety argument:
//!   the zero-copy snapshot view (`serve::mapping`) and the `linalg`
//!   AVX2 shims. Anywhere else they are a violation even *with* a
//!   SAFETY comment — new unsafe surface needs a new allowlist entry,
//!   which is a reviewed decision, not a local one.
//! - **U3** — `#[target_feature]` fns must be non-`pub` (callers
//!   cannot be trusted to check CPU features), and every resolved call
//!   site must sit inside a fn whose body mentions
//!   `is_x86_feature_detected` — the runtime gate that makes the call
//!   sound.

use std::collections::BTreeSet;

use crate::callgraph::CallGraph;
use crate::lexer::TokenKind;
use crate::pragma;
use crate::rules::{RuleId, Violation};
use crate::source::Workspace;
use crate::symbols::{SymbolTable, Vis};
use crate::FileViolation;

/// How far above the `unsafe` keyword a SAFETY comment may sit.
const SAFETY_WINDOW: u32 = 4;

/// Files allowed to use the raw-memory primitives of U2.
const UNSAFE_ALLOWLIST: &[&str] =
    &["crates/serve/src/mapping.rs", "crates/linalg/src/lib.rs"];

/// Raw-memory primitives confined by U2.
const RAW_PRIMITIVES: &[&[u8]] = &[
    b"from_raw_parts",
    b"from_raw_parts_mut",
    b"copy_nonoverlapping",
    b"transmute",
    b"read_volatile",
    b"write_volatile",
    b"read_unaligned",
    b"write_unaligned",
];

/// Runs the unsafe audit over a loaded workspace.
pub fn run(ws: &Workspace, syms: &SymbolTable, graph: &CallGraph) -> Vec<FileViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        let cx = file.cx();
        // Lines carrying a SAFETY: comment anywhere in the file.
        let safety_lines: BTreeSet<u32> = file
            .tokens
            .iter()
            .filter(|t| {
                matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment)
                    && t.text(&file.src).windows(7).any(|w| w == b"SAFETY:")
            })
            .map(|t| t.line)
            .collect();
        let allowlisted = UNSAFE_ALLOWLIST.contains(&file.rel.as_str());
        for i in 0..cx.sig.len() {
            if !cx.is_ident(i) || !cx.live(i) {
                continue;
            }
            let line = cx.line(i);
            match cx.text(i) {
                b"unsafe" => {
                    let lo = line.saturating_sub(SAFETY_WINDOW);
                    let documented = safety_lines.range(lo..=line).next().is_some();
                    if !documented && !pragma::suppresses(&file.pragmas, RuleId::U1, line) {
                        out.push(FileViolation {
                            path: file.rel.clone(),
                            violation: Violation {
                                rule: RuleId::U1,
                                line,
                                note: "`unsafe` without an adjacent `// SAFETY:` comment \
                                       stating the proof obligation"
                                    .into(),
                                snippet: file.snippet(line),
                            },
                        });
                    }
                }
                t if RAW_PRIMITIVES.contains(&t)
                    && !allowlisted
                    && !pragma::suppresses(&file.pragmas, RuleId::U2, line) =>
                {
                    out.push(FileViolation {
                        path: file.rel.clone(),
                        violation: Violation {
                            rule: RuleId::U2,
                            line,
                            note: format!(
                                "raw-memory primitive `{}` outside the allowlisted \
                                 unsafe modules (serve::mapping, linalg)",
                                String::from_utf8_lossy(t)
                            ),
                            snippet: file.snippet(line),
                        },
                    });
                }
                _ => {}
            }
        }
    }

    // U3: target_feature fns — non-pub, and every call runtime-gated.
    for (fi, sym) in syms.fns.iter().enumerate() {
        if !sym.target_feature || sym.in_test {
            continue;
        }
        let decl_file = &ws.files[sym.file];
        if sym.vis == Vis::Pub
            && !pragma::suppresses(&decl_file.pragmas, RuleId::U3, sym.line)
        {
            out.push(FileViolation {
                path: decl_file.rel.clone(),
                violation: Violation {
                    rule: RuleId::U3,
                    line: sym.line,
                    note: format!(
                        "`#[target_feature]` fn `{}` is pub; keep it private behind a \
                         runtime-detection wrapper",
                        sym.name
                    ),
                    snippet: decl_file.snippet(sym.line),
                },
            });
        }
        for e in &graph.callers[fi] {
            let caller = &syms.fns[e.other];
            let cfile = &ws.files[caller.file];
            if caller_is_gated(ws, syms, e.other) {
                continue;
            }
            if pragma::suppresses(&cfile.pragmas, RuleId::U3, e.line) {
                continue;
            }
            out.push(FileViolation {
                path: cfile.rel.clone(),
                violation: Violation {
                    rule: RuleId::U3,
                    line: e.line,
                    note: format!(
                        "call to `#[target_feature]` fn `{}` in `{}` without an \
                         `is_x86_feature_detected` gate in the calling fn",
                        sym.name, caller.name
                    ),
                    snippet: cfile.snippet(e.line),
                },
            });
        }
    }
    out
}

/// True when the caller's body mentions the runtime feature gate.
fn caller_is_gated(ws: &Workspace, syms: &SymbolTable, caller: usize) -> bool {
    let sym = &syms.fns[caller];
    let Some((start, end)) = sym.body else { return false };
    let cx = ws.files[sym.file].cx();
    (start..=end.min(cx.sig.len().saturating_sub(1)))
        .any(|i| cx.is_ident(i) && cx.text(i) == b"is_x86_feature_detected")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::source::Workspace;

    fn audit(files: Vec<(&str, &str)>) -> Vec<FileViolation> {
        let ws = Workspace::from_sources(
            files
                .into_iter()
                .map(|(p, s)| (p.to_string(), s.as_bytes().to_vec()))
                .collect(),
        );
        let syms = SymbolTable::build(&ws);
        let graph = CallGraph::build(&ws, &syms);
        run(&ws, &syms, &graph)
    }

    #[test]
    fn unsafe_without_safety_comment_fires_u1() {
        let v = audit(vec![(
            "crates/core/src/u.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        )]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].violation.rule, RuleId::U1);
    }

    #[test]
    fn safety_comment_above_silences_u1() {
        let v = audit(vec![(
            "crates/core/src/u.rs",
            "// SAFETY: caller guarantees p is valid for reads.\npub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn raw_primitive_outside_allowlist_fires_u2() {
        let v = audit(vec![(
            "crates/core/src/u.rs",
            "// SAFETY: len checked by caller.\npub fn f(p: *const u8, n: usize) -> &'static [u8] { unsafe { std::slice::from_raw_parts(p, n) } }\n",
        )]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].violation.rule, RuleId::U2);
    }

    #[test]
    fn allowlisted_module_passes_u2() {
        let v = audit(vec![(
            "crates/serve/src/mapping.rs",
            "// SAFETY: len checked by caller.\npub fn f(p: *const u8, n: usize) -> &'static [u8] { unsafe { std::slice::from_raw_parts(p, n) } }\n",
        )]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pub_target_feature_fn_fires_u3() {
        let v = audit(vec![(
            "crates/core/src/u.rs",
            "#[target_feature(enable = \"avx2\")]\n// SAFETY: caller must check avx2.\npub unsafe fn kernel() {}\n",
        )]);
        assert!(v.iter().any(|v| v.violation.rule == RuleId::U3), "{v:?}");
    }

    #[test]
    fn ungated_call_fires_u3_and_gated_call_passes() {
        let fired = audit(vec![(
            "crates/core/src/u.rs",
            "#[target_feature(enable = \"avx2\")]\n// SAFETY: callers gate on avx2.\nunsafe fn kernel() {}\nfn fast() {\n    // SAFETY: gate omitted on purpose.\n    unsafe { kernel() }\n}\n",
        )]);
        assert!(fired.iter().any(|v| v.violation.rule == RuleId::U3), "{fired:?}");
        let gated = audit(vec![(
            "crates/core/src/u.rs",
            "#[target_feature(enable = \"avx2\")]\n// SAFETY: callers gate on avx2.\nunsafe fn kernel() {}\nfn fast() {\n    if is_x86_feature_detected!(\"avx2\") {\n        // SAFETY: gated on the line above.\n        unsafe { kernel() }\n    }\n}\n",
        )]);
        assert!(gated.iter().all(|v| v.violation.rule != RuleId::U3), "{gated:?}");
    }
}
