//! Pass 1 — the workspace symbol table.
//!
//! A single sweep over every library file's significant tokens collects
//! all function items: name, declaration line, visibility, enclosing
//! `impl` type, inline-module path, body token range, and whether the
//! fn carries `#[target_feature]`. The table is deliberately
//! *approximate* — it tracks braces, attributes and `impl`/`mod`
//! headers the way the scope tracker does, not the way rustc does — but
//! it is total (any byte soup produces a table, never a panic) and
//! over-inclusive in the directions the downstream passes need:
//! when in doubt a fn is recorded, and name lookups return every
//! candidate.
//!
//! Binary-class files (`cli`, `bench`, `fuzz-harness`, `src/bin`) stay
//! out of the table: libraries cannot call into binaries, and letting
//! bin fns shadow lib fn names would fabricate call edges.

use std::collections::BTreeMap;

use crate::lexer::TokenKind;
use crate::rules::{Cx, FileClass};
use crate::source::Workspace;

/// Item visibility, as far as tokens can tell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vis {
    /// No `pub`.
    Private,
    /// `pub(crate)` / `pub(super)` / `pub(in …)`.
    Scoped,
    /// Bare `pub` — part of the crate's public API surface.
    Pub,
}

/// One function item.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Function name.
    pub name: String,
    /// Index into [`Workspace::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Visibility.
    pub vis: Vis,
    /// Declared inside a `#[cfg(test)]` / `mod tests` region.
    pub in_test: bool,
    /// Significant-token index range of the body: `[open, close]`
    /// braces inclusive. `None` for bodyless declarations (trait
    /// methods, `extern` fns).
    pub body: Option<(usize, usize)>,
    /// Enclosing `impl` type name (last path segment), if any.
    pub self_type: Option<String>,
    /// Inline `mod` path within the file (`""` at file scope).
    pub module: String,
    /// Carries `#[target_feature(…)]`.
    pub target_feature: bool,
}

/// The workspace-wide function table with name and position indexes.
pub struct SymbolTable {
    /// All functions, in (file, token) order.
    pub fns: Vec<FnSym>,
    /// name → indexes into `fns`.
    by_name: BTreeMap<String, Vec<usize>>,
    /// Per file: `(body_start, body_end, fn index)` sorted by start.
    bodies: Vec<Vec<(usize, usize, usize)>>,
}

impl SymbolTable {
    /// Builds the table over every library-class file of `ws`.
    pub fn build(ws: &Workspace) -> SymbolTable {
        let mut fns = Vec::new();
        for (fi, file) in ws.files.iter().enumerate() {
            if file.class != FileClass::Lib {
                continue;
            }
            scan_file(&file.cx(), fi, &mut fns);
        }
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut bodies: Vec<Vec<(usize, usize, usize)>> = vec![Vec::new(); ws.files.len()];
        for (i, f) in fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
            if let Some((s, e)) = f.body {
                if let Some(slot) = bodies.get_mut(f.file) {
                    slot.push((s, e, i));
                }
            }
        }
        for b in &mut bodies {
            b.sort_unstable();
        }
        SymbolTable { fns, by_name, bodies }
    }

    /// Every function with this name (over-approximate resolution).
    pub fn named(&self, name: &[u8]) -> &[usize] {
        match std::str::from_utf8(name).ok().and_then(|n| self.by_name.get(n)) {
            Some(v) => v,
            None => &[],
        }
    }

    /// The innermost function whose body contains sig token `tok` of
    /// file `file`.
    pub fn enclosing_fn(&self, file: usize, tok: usize) -> Option<usize> {
        let mut best: Option<(usize, usize)> = None; // (start, fn idx)
        for &(s, e, idx) in self.bodies.get(file)?.iter() {
            if s > tok {
                break;
            }
            if tok <= e && best.is_none_or(|(bs, _)| s >= bs) {
                best = Some((s, idx));
            }
        }
        best.map(|(_, idx)| idx)
    }
}

/// Attribute group scan: returns (index one past the closing `]`,
/// whether the attribute mentions `target_feature`).
fn scan_attr(cx: &Cx, open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut tf = false;
    let mut j = open;
    while j < cx.sig.len() {
        match cx.sig[j].kind {
            TokenKind::Punct => match cx.text(j) {
                b"[" | b"(" | b"{" => depth += 1,
                b"]" | b")" | b"}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return (j + 1, tf);
                    }
                }
                _ => {}
            },
            TokenKind::Ident if cx.text(j) == b"target_feature" => tf = true,
            _ => {}
        }
        j += 1;
    }
    (cx.sig.len(), tf)
}

/// Parses the type name out of an `impl` header starting right after the
/// `impl` keyword: skips the generic parameter list, then takes the last
/// path segment before `{`/`where` — preferring the `for Type` side of a
/// trait impl.
fn impl_type_name(cx: &Cx, start: usize) -> Option<String> {
    let mut j = start;
    // Generic parameters directly after `impl`.
    if cx.is_punct(j, b"<") {
        let mut angle = 0i32;
        while j < cx.sig.len() && j < start + 128 {
            match cx.text(j) {
                b"<" => angle += 1,
                b">" => {
                    angle -= 1;
                    if angle == 0 {
                        j += 1;
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
    }
    let mut last_ident: Option<String> = None;
    let mut angle = 0i32;
    while j < cx.sig.len() && j < start + 160 {
        match cx.sig[j].kind {
            TokenKind::Punct => match cx.text(j) {
                b"<" => angle += 1,
                b">" => angle = (angle - 1).max(0),
                b"{" | b";" if angle == 0 => break,
                _ => {}
            },
            TokenKind::Ident if angle == 0 => match cx.text(j) {
                b"for" => last_ident = None, // restart on the `for Type` side
                b"where" => break,
                b"dyn" | b"mut" | b"const" | b"unsafe" => {}
                t => last_ident = Some(String::from_utf8_lossy(t).into_owned()),
            },
            _ => {}
        }
        j += 1;
    }
    last_ident
}

/// From the token after a fn's name, finds the body open brace: the
/// first `{` at bracket depth 0, unless a `;` (bodyless) comes first.
fn find_body_open(cx: &Cx, start: usize) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = start;
    while j < cx.sig.len() && j < start + 2048 {
        match cx.text(j) {
            b"(" | b"[" => depth += 1,
            b")" | b"]" => depth -= 1,
            b"{" if depth <= 0 => return Some(j),
            b";" if depth <= 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Matching close brace for the `{` at `open`.
fn find_body_close(cx: &Cx, open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < cx.sig.len() {
        match cx.text(j) {
            b"{" => depth += 1,
            b"}" => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    cx.sig.len().saturating_sub(1)
}

fn scan_file(cx: &Cx, file: usize, out: &mut Vec<FnSym>) {
    let mut depth = 0usize;
    let mut impl_stack: Vec<(usize, Option<String>)> = Vec::new();
    let mut mod_stack: Vec<(usize, String)> = Vec::new();
    let mut pending_vis = Vis::Private;
    let mut pending_tf = false;
    let mut pending_impl: Option<Option<String>> = None;
    let mut pending_mod: Option<String> = None;
    let mut i = 0;
    while i < cx.sig.len() {
        match cx.sig[i].kind {
            TokenKind::Punct => match cx.text(i) {
                b"#" => {
                    let mut j = i + 1;
                    if cx.is_punct(j, b"!") {
                        j += 1;
                    }
                    if cx.is_punct(j, b"[") {
                        let (end, tf) = scan_attr(cx, j);
                        pending_tf |= tf;
                        i = end;
                        continue;
                    }
                }
                b"{" => {
                    depth += 1;
                    if let Some(ty) = pending_impl.take() {
                        impl_stack.push((depth, ty));
                    }
                    if let Some(m) = pending_mod.take() {
                        mod_stack.push((depth, m));
                    }
                    pending_vis = Vis::Private;
                    pending_tf = false;
                }
                b"}" => {
                    if impl_stack.last().is_some_and(|&(d, _)| d == depth) {
                        impl_stack.pop();
                    }
                    if mod_stack.last().is_some_and(|&(d, _)| d == depth) {
                        mod_stack.pop();
                    }
                    depth = depth.saturating_sub(1);
                }
                b";" => {
                    pending_vis = Vis::Private;
                    pending_tf = false;
                    pending_impl = None;
                    pending_mod = None;
                }
                _ => {}
            },
            TokenKind::Ident => match cx.text(i) {
                b"pub" => {
                    pending_vis =
                        if cx.is_punct(i + 1, b"(") { Vis::Scoped } else { Vis::Pub };
                }
                b"impl" => {
                    pending_impl = Some(impl_type_name(cx, i + 1));
                }
                b"mod" if cx.is_ident(i + 1) => {
                    pending_mod =
                        Some(String::from_utf8_lossy(cx.text(i + 1)).into_owned());
                }
                b"fn" if cx.is_ident(i + 1) => {
                    let name = String::from_utf8_lossy(cx.text(i + 1)).into_owned();
                    let body_open = find_body_open(cx, i + 2);
                    let body = body_open.map(|o| (o, find_body_close(cx, o)));
                    out.push(FnSym {
                        name,
                        file,
                        line: cx.line(i),
                        vis: pending_vis,
                        in_test: !cx.live(i),
                        body,
                        self_type: impl_stack.last().and_then(|(_, t)| t.clone()),
                        module: mod_stack
                            .iter()
                            .map(|(_, m)| m.as_str())
                            .collect::<Vec<_>>()
                            .join("::"),
                        target_feature: pending_tf,
                    });
                    pending_vis = Vis::Private;
                    pending_tf = false;
                    i += 2;
                    continue;
                }
                _ => {}
            },
            _ => {}
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    fn table(src: &str) -> (Workspace, SymbolTable) {
        let ws = Workspace::from_sources(vec![(
            "crates/core/src/demo.rs".to_string(),
            src.as_bytes().to_vec(),
        )]);
        let t = SymbolTable::build(&ws);
        (ws, t)
    }

    #[test]
    fn free_fns_and_visibility() {
        let (_ws, t) = table(
            "pub fn api() {}\npub(crate) fn scoped() {}\nfn private() {}\n",
        );
        let names: Vec<(&str, Vis)> =
            t.fns.iter().map(|f| (f.name.as_str(), f.vis)).collect();
        assert_eq!(
            names,
            [("api", Vis::Pub), ("scoped", Vis::Scoped), ("private", Vis::Private)]
        );
    }

    #[test]
    fn impl_methods_carry_their_type() {
        let (_ws, t) = table(
            "struct S;\nimpl S { pub fn m(&self) {} }\nimpl std::fmt::Display for S { fn fmt(&self) {} }\n",
        );
        let m = &t.fns[t.named(b"m")[0]];
        assert_eq!(m.self_type.as_deref(), Some("S"));
        let f = &t.fns[t.named(b"fmt")[0]];
        assert_eq!(f.self_type.as_deref(), Some("S"));
    }

    #[test]
    fn generic_impl_and_inline_modules() {
        let (_ws, t) = table(
            "mod inner { impl<T: Clone> Wrapper<T> { fn get(&self) {} } }\n",
        );
        let g = &t.fns[t.named(b"get")[0]];
        assert_eq!(g.self_type.as_deref(), Some("Wrapper"));
        assert_eq!(g.module, "inner");
    }

    #[test]
    fn test_scope_and_target_feature_flags() {
        let (_ws, t) = table(
            "#[cfg(target_arch = \"x86_64\")]\n#[target_feature(enable = \"avx2\")]\nfn kernel() {}\n#[cfg(test)]\nmod tests { fn helper() {} }\n",
        );
        let k = &t.fns[t.named(b"kernel")[0]];
        assert!(k.target_feature && !k.in_test);
        let h = &t.fns[t.named(b"helper")[0]];
        assert!(h.in_test && !h.target_feature);
    }

    #[test]
    fn enclosing_fn_is_innermost() {
        let (ws, t) = table("fn outer() { fn inner() { work(); } more(); }\n");
        let cx = ws.files[0].cx();
        let work_tok = (0..cx.sig.len()).find(|&i| cx.text(i) == b"work").unwrap();
        let more_tok = (0..cx.sig.len()).find(|&i| cx.text(i) == b"more").unwrap();
        assert_eq!(t.fns[t.enclosing_fn(0, work_tok).unwrap()].name, "inner");
        assert_eq!(t.fns[t.enclosing_fn(0, more_tok).unwrap()].name, "outer");
    }

    #[test]
    fn bodyless_decls_have_no_body() {
        let (_ws, t) = table("trait T { fn decl(&self); fn with_default(&self) {} }\n");
        assert!(t.fns[t.named(b"decl")[0]].body.is_none());
        assert!(t.fns[t.named(b"with_default")[0]].body.is_some());
    }
}
