//! A hand-rolled lexer for (a useful superset of) Rust source.
//!
//! The rule engine only needs a token stream that is *reliable about what
//! is code and what is not*: line comments, (nested) block comments,
//! string literals, raw strings with any hash count, byte strings, char
//! literals vs. lifetimes, and numbers must never leak their contents
//! into the significant-token stream, or `// unwrap() is fine here` and
//! `"partial_cmp"` would produce phantom violations.
//!
//! The lexer therefore works on raw bytes (`&[u8]`), is total (every
//! input — including invalid UTF-8 and truncated literals — produces a
//! token stream; unterminated literals extend to end of input), and
//! never panics. Bytes `>= 0x80` are treated as identifier characters
//! outside literals, which is the right call for the only place valid
//! Rust allows them (identifiers) and harmless everywhere else.

/// What a token is; the rule engine mostly cares about `Ident`, `Punct`
/// and the comment kinds (for pragmas).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (also raw identifiers, `r#match`).
    Ident,
    /// Lifetime (`'a`, `'static`) — *not* a char literal.
    Lifetime,
    /// Numeric literal, including suffixed (`1_000u64`, `0x1f`, `1e-9`).
    Number,
    /// `"…"` or `b"…"` string literal.
    Str,
    /// `r"…"` / `r#"…"#` / `br#"…"#` raw string literal.
    RawStr,
    /// `'x'` / `b'x'` char or byte literal.
    Char,
    /// Any other single byte of punctuation (`::` is two `:` tokens).
    Punct,
    /// `// …` (also `///`, `//!`); text excludes the newline.
    LineComment,
    /// `/* … */`, nesting-aware.
    BlockComment,
}

/// One lexed token: byte span into the source plus the 1-based line its
/// first byte sits on.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

impl Token {
    /// The token's bytes within `src`.
    pub fn text<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        src.get(self.start..self.end).unwrap_or(b"")
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. Total: never fails, never panics, and the returned
/// spans are in-bounds, non-overlapping and monotonically increasing.
pub fn lex(src: &[u8]) -> Vec<Token> {
    Lexer { src, i: 0, line: 1, toks: Vec::new() }.run()
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    toks: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        while self.i < self.src.len() {
            let b = self.src[self.i];
            match b {
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                b' ' | b'\t' | b'\r' | 0x0b | 0x0c => self.i += 1,
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(self.i),
                b'\'' => self.char_or_lifetime(),
                b'0'..=b'9' => self.number(),
                _ if is_ident_start(b) => self.ident_or_prefixed_literal(),
                _ => {
                    self.push(TokenKind::Punct, self.i, self.i + 1, self.line);
                    self.i += 1;
                }
            }
        }
        self.toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.i + ahead).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize, line: u32) {
        self.toks.push(Token { kind, start, end: end.min(self.src.len()), line });
    }

    fn line_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.src.len() && self.src[self.i] != b'\n' {
            self.i += 1;
        }
        self.push(TokenKind::LineComment, start, self.i, line);
    }

    fn block_comment(&mut self) {
        let start = self.i;
        let line = self.line;
        self.i += 2; // consume `/*`
        let mut depth = 1usize;
        while self.i < self.src.len() && depth > 0 {
            match (self.src[self.i], self.peek(1)) {
                (b'/', Some(b'*')) => {
                    depth += 1;
                    self.i += 2;
                }
                (b'*', Some(b'/')) => {
                    depth -= 1;
                    self.i += 2;
                }
                (b'\n', _) => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokenKind::BlockComment, start, self.i, line);
    }

    /// A `"…"` string whose token span starts at `start` (which may be
    /// earlier than the opening quote for `b"…"`). `self.i` must sit on
    /// the opening `"`.
    fn string(&mut self, start: usize) {
        let line = self.line;
        self.i += 1; // opening quote
        while self.i < self.src.len() {
            match self.src[self.i] {
                b'\\' => self.i = (self.i + 2).min(self.src.len()),
                b'"' => {
                    self.i += 1;
                    self.push(TokenKind::Str, start, self.i, line);
                    return;
                }
                b'\n' => {
                    self.line += 1;
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.push(TokenKind::Str, start, self.i, line); // unterminated
    }

    /// A raw string; `self.i` sits on the first `#` or the opening `"`,
    /// `start` is the span start (at the `r`/`b` prefix).
    fn raw_string(&mut self, start: usize) {
        let line = self.line;
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.i += 1;
        }
        self.i += 1; // opening quote (guaranteed by caller's lookahead)
        loop {
            match self.peek(0) {
                None => break, // unterminated
                Some(b'\n') => {
                    self.line += 1;
                    self.i += 1;
                }
                Some(b'"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek(1 + seen) == Some(b'#') {
                        seen += 1;
                    }
                    if seen == hashes {
                        self.i += 1 + hashes;
                        break;
                    }
                    self.i += 1;
                }
                Some(_) => self.i += 1,
            }
        }
        self.push(TokenKind::RawStr, start, self.i, line);
    }

    /// `'` starts either a char literal or a lifetime.
    fn char_or_lifetime(&mut self) {
        let start = self.i;
        let line = self.line;
        match self.peek(1) {
            Some(b'\\') => {
                // Escaped char literal: scan to the closing quote.
                self.i += 2;
                while self.i < self.src.len() {
                    match self.src[self.i] {
                        b'\\' => self.i = (self.i + 2).min(self.src.len()),
                        b'\'' => {
                            self.i += 1;
                            break;
                        }
                        b'\n' => break, // malformed; don't swallow the line
                        _ => self.i += 1,
                    }
                }
                self.push(TokenKind::Char, start, self.i, line);
            }
            Some(b) if is_ident_continue(b) => {
                // `'a` — lifetime unless a closing quote follows the
                // identifier-shaped run ('x', '字', '_').
                let mut j = self.i + 1;
                while j < self.src.len() && is_ident_continue(self.src[j]) {
                    j += 1;
                }
                if self.src.get(j) == Some(&b'\'') {
                    self.i = j + 1;
                    self.push(TokenKind::Char, start, self.i, line);
                } else {
                    self.i = j;
                    self.push(TokenKind::Lifetime, start, self.i, line);
                }
            }
            Some(b) if b != b'\'' && b != b'\n' && self.peek(2) == Some(b'\'') => {
                // Punctuation char literal: `'"'`, `'('`, `' '`, `','` —
                // three bytes, closing quote included. Without this the
                // quote would leak as `Punct` and the `"` of `'"'` would
                // open a phantom string, desyncing everything after it.
                self.i += 3;
                self.push(TokenKind::Char, start, self.i, line);
            }
            _ => {
                // `'''`, a stray quote at EOF… — not meaningful to any
                // rule; emit the quote as punctuation and move on.
                self.push(TokenKind::Punct, start, self.i + 1, line);
                self.i += 1;
            }
        }
    }

    fn number(&mut self) {
        let start = self.i;
        let line = self.line;
        while self.i < self.src.len() {
            let b = self.src[self.i];
            if b.is_ascii_alphanumeric() || b == b'_' {
                // `1e-9` / `2E+10`: the sign belongs to the literal.
                if (b == b'e' || b == b'E')
                    && matches!(self.peek(1), Some(b'+') | Some(b'-'))
                    && self.peek(2).is_some_and(|d| d.is_ascii_digit())
                {
                    self.i += 2;
                }
                self.i += 1;
            } else if b == b'.'
                && self.peek(1).is_some_and(|d| d.is_ascii_digit())
                && !matches!(self.toks.last(), Some(t) if t.kind == TokenKind::Punct
                    && t.end == start && t.text(self.src) == b".")
            {
                // Fractional part — but `0..10` must stay two tokens, and
                // `x.0.1` (tuple-in-tuple) keeps `.` as punctuation.
                self.i += 1;
            } else {
                break;
            }
        }
        self.push(TokenKind::Number, start, self.i, line);
    }

    /// An identifier, which may turn out to prefix a literal: `r"…"`,
    /// `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, or a raw identifier
    /// `r#match`.
    fn ident_or_prefixed_literal(&mut self) {
        let start = self.i;
        let line = self.line;
        let mut j = self.i;
        while j < self.src.len() && is_ident_continue(self.src[j]) {
            j += 1;
        }
        let ident = &self.src[start..j];
        let next = self.src.get(j).copied();
        match (ident, next) {
            (b"r" | b"b" | b"br" | b"rb", Some(b'"')) => {
                self.i = j;
                if ident == b"b" {
                    self.string(start);
                } else {
                    self.raw_string(start);
                }
            }
            (b"r" | b"br" | b"rb", Some(b'#')) => {
                // Raw string with hashes — or a raw identifier (`r#match`).
                let mut k = j;
                while self.src.get(k) == Some(&b'#') {
                    k += 1;
                }
                if self.src.get(k) == Some(&b'"') {
                    self.i = j;
                    self.raw_string(start);
                } else if ident == b"r" && k == j + 1 && self.src.get(k).copied().is_some_and(is_ident_start) {
                    let mut m = k;
                    while m < self.src.len() && is_ident_continue(self.src[m]) {
                        m += 1;
                    }
                    self.i = m;
                    self.push(TokenKind::Ident, start, m, line);
                } else {
                    self.i = j;
                    self.push(TokenKind::Ident, start, j, line);
                }
            }
            (b"b", Some(b'\'')) => {
                self.i = j;
                // Reuse the char scanner; span start includes the `b`.
                let save = self.toks.len();
                self.char_or_lifetime();
                if let Some(t) = self.toks.get_mut(save) {
                    t.start = start;
                }
            }
            _ => {
                self.i = j;
                self.push(TokenKind::Ident, start, j, line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src.as_bytes())
            .into_iter()
            .map(|t| (t.kind, String::from_utf8_lossy(t.text(src.as_bytes())).into_owned()))
            .collect()
    }

    #[test]
    fn line_and_block_comments() {
        let toks = kinds("a // hi\nb /* x /* nested */ y */ c");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::LineComment && s == "// hi"));
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokenKind::BlockComment && s == "/* x /* nested */ y */"));
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "call .unwrap() // here"; x"#);
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Str && s.contains("unwrap")));
        // No Ident token named unwrap escaped the literal.
        assert!(!toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
        assert!(!toks.iter().any(|(k, _)| matches!(k, TokenKind::LineComment)));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"inner " quote .expect("x")"# ; done"###);
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::RawStr && s.contains("expect")));
        assert!(!toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "expect"));
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "done"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds(r##"let a = b"unwrap"; let c = b'x'; let d = br#"y"#;"##);
        assert!(!toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "unwrap"));
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Char && s == "b'x'"));
        assert!(toks.iter().any(|(k, _)| *k == TokenKind::RawStr));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'z'; let n = '\\n'; }");
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Lifetime && s == "'a"));
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Char && s == "'z'"));
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Char && s == "'\\n'"));
    }

    #[test]
    fn punctuation_char_literals_do_not_desync() {
        // `'"'` must lex as one Char token; the `"` inside it must not
        // open a string that swallows the rest of the file.
        let toks = kinds("match c { '\"' => quote(), _ => other() } trailing");
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Char && s == "'\"'"));
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "trailing"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Str));
        let toks = kinds("let p = '('; let sp = ' '; let c = ','; end");
        let chars: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, s)| s.as_str())
            .collect();
        assert_eq!(chars, ["'('", "' '", "','"]);
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "end"));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.iter().any(|(k, s)| *k == TokenKind::Ident && s == "r#match"));
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let toks = kinds("for i in 0..10 { let x = 1.5e-3f64; let y = t.0.1; }");
        let nums: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, s)| s.as_str())
            .collect();
        assert!(nums.contains(&"0"));
        assert!(nums.contains(&"10"));
        assert!(nums.contains(&"1.5e-3f64"));
        // Tuple field access stays split: `.0` / `.1`, not `0.1`.
        assert!(nums.contains(&"0") && nums.contains(&"1"));
        assert!(!nums.contains(&"0.1"));
    }

    #[test]
    fn line_numbers_are_tracked() {
        let src = "a\nb\n/* c\nd */\ne";
        let toks = lex(src.as_bytes());
        let by_text: Vec<(String, u32)> = toks
            .iter()
            .map(|t| (String::from_utf8_lossy(t.text(src.as_bytes())).into_owned(), t.line))
            .collect();
        assert!(by_text.contains(&("a".into(), 1)));
        assert!(by_text.contains(&("b".into(), 2)));
        assert!(by_text.contains(&("e".into(), 5)));
    }

    #[test]
    fn unterminated_literals_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* open", "'", "b'", "1e+", "r#"] {
            let toks = lex(src.as_bytes());
            for t in &toks {
                assert!(t.start <= t.end && t.end <= src.len());
            }
        }
    }

    #[test]
    fn spans_are_monotonic_and_in_bounds() {
        let src = "fn main() { let x = \"s\"; /* c */ 'a' }";
        let toks = lex(src.as_bytes());
        let mut prev_end = 0;
        for t in &toks {
            assert!(t.start >= prev_end);
            assert!(t.end <= src.len());
            prev_end = t.end;
        }
    }
}
