//! Preloaded workspace sources for the multi-pass analyzer.
//!
//! The per-file token rules (DESIGN.md §11) can lex on demand, but the
//! workspace passes (§16) — symbol graph, taint, unsafe audit, casts —
//! need every governed file in memory at once, lexed exactly once, with
//! test scopes and pragmas precomputed. [`Workspace`] is that store:
//! files sorted by path, each carrying its significant-token stream,
//! per-token test flags, and parsed pragmas.

use crate::lexer::{lex, Token, TokenKind};
use crate::pragma::{self, Pragma};
use crate::rules::{Cx, FileClass};
use crate::scope::test_scopes;
use crate::{classify, LintError};
use std::path::Path;

/// One governed source file, fully lexed and annotated.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// How the file ships (decides which rules bind).
    pub class: FileClass,
    /// Raw bytes.
    pub src: Vec<u8>,
    /// Every token, including comments (pragma scanning).
    pub tokens: Vec<Token>,
    /// Significant tokens only (comments stripped).
    pub sig: Vec<Token>,
    /// Per-`sig`-token test-scope flags.
    pub in_test: Vec<bool>,
    /// Parsed `lesm-lint:` pragmas.
    pub pragmas: Vec<Pragma>,
    /// Byte offsets of line starts (snippet rendering).
    pub lines: Vec<usize>,
}

impl SourceFile {
    fn new(rel: String, class: FileClass, src: Vec<u8>) -> Self {
        let tokens = lex(&src);
        let sig: Vec<Token> = tokens
            .iter()
            .copied()
            .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .collect();
        let in_test = test_scopes(&src, &sig);
        let pragmas = pragma::collect(&src, &tokens);
        let lines = crate::rules::line_starts(&src);
        SourceFile { rel, class, src, tokens, sig, in_test, pragmas, lines }
    }

    /// The rule-engine view of this file.
    pub(crate) fn cx(&self) -> Cx<'_> {
        Cx { src: &self.src, sig: &self.sig, in_test: &self.in_test }
    }

    /// Renders the (trimmed, capped) source line for a violation.
    pub(crate) fn snippet(&self, line: u32) -> String {
        crate::rules::snippet_at(&self.src, &self.lines, line)
    }
}

/// Every governed file of a workspace, ready for the pass pipeline.
pub struct Workspace {
    /// Files sorted by relative path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Loads all governed `.rs` files under `root` (same walk and
    /// classification as [`crate::lint_workspace`] always used).
    pub fn load(root: &Path) -> Result<Self, LintError> {
        let rels = crate::governed_files(root)?;
        let mut files = Vec::with_capacity(rels.len());
        for rel in rels {
            let Some(class) = classify(&rel) else { continue };
            let abs = root.join(&rel);
            let src =
                std::fs::read(&abs).map_err(|source| LintError::Io { path: abs, source })?;
            files.push(SourceFile::new(rel, class, src));
        }
        Ok(Workspace { files })
    }

    /// Builds a workspace from in-memory sources (fixtures). Paths that
    /// [`classify`] rejects are skipped, exactly as on disk.
    pub fn from_sources(sources: Vec<(String, Vec<u8>)>) -> Self {
        let mut files: Vec<SourceFile> = sources
            .into_iter()
            .filter_map(|(rel, src)| classify(&rel).map(|class| SourceFile::new(rel, class, src)))
            .collect();
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Workspace { files }
    }
}
