//! Pass 1 — the approximate call graph.
//!
//! Resolution is by name, deliberately over-approximate: `.method(x)`
//! links to *every* workspace fn called `method`, `Type::method(x)`
//! prefers fns whose `impl` type matches `Type`, and a bare `name(x)`
//! links to every fn called `name`. Two dampers keep the
//! over-approximation from collapsing into "everything calls
//! everything": ubiquitous `std` method names (`new`, `len`, `iter`,
//! `push`, …) never resolve through bare or receiver calls, and
//! capitalized bare calls (`Some(…)`, `Vec::from` handled separately)
//! are treated as tuple constructors, not calls. Missing an edge can
//! hide a taint path; inventing one only costs a pragma — so every
//! ambiguity resolves toward *more* edges for non-ubiquitous names.

use crate::lexer::TokenKind;
use crate::rules::{Cx, FileClass};
use crate::source::Workspace;
use crate::symbols::SymbolTable;

/// Method/function names so common in `std` that name-resolution on
/// them would wire the whole workspace together. Receiver and bare
/// calls on these names are dropped; `Type::name(…)` still resolves
/// when `Type` matches a workspace `impl`.
const UBIQUITOUS: &[&[u8]] = &[
    b"as_bytes", b"as_mut", b"as_mut_ptr", b"as_ptr", b"as_ref", b"as_slice",
    b"as_str", b"binary_search", b"binary_search_by", b"borrow", b"borrow_mut",
    b"chain", b"chars", b"clamp", b"clear", b"clone", b"cloned", b"cmp",
    b"collect", b"contains", b"contains_key", b"copied", b"count", b"default",
    b"drain", b"entry", b"enumerate", b"eq", b"extend", b"filter", b"filter_map",
    b"find", b"flat_map", b"flatten", b"fold", b"from", b"get", b"get_mut",
    b"get_or_insert_with", b"hash", b"insert", b"into", b"into_iter", b"is_empty",
    b"is_none", b"is_some", b"iter", b"iter_mut", b"join", b"keys", b"last",
    b"len", b"lines", b"map", b"map_err", b"max", b"max_by", b"max_by_key",
    b"min", b"min_by", b"min_by_key", b"new", b"next", b"ok", b"ok_or",
    b"ok_or_else", b"parse", b"partial_cmp", b"pop", b"position", b"push",
    b"push_str", b"read", b"remove", b"repeat", b"replace", b"resize", b"rev",
    b"reverse", b"rotate_left", b"rotate_right", b"skip", b"sort", b"sort_by",
    b"sort_by_key", b"sort_unstable", b"sort_unstable_by", b"sort_unstable_by_key",
    b"split", b"split_at", b"split_whitespace", b"starts_with", b"ends_with",
    b"step_by", b"sum", b"take", b"then", b"then_with", b"to_owned", b"to_string",
    b"to_vec", b"trim", b"truncate", b"try_into", b"unwrap_or", b"unwrap_or_default",
    b"unwrap_or_else", b"values", b"values_mut", b"windows", b"with_capacity",
    b"write", b"write_all", b"zip",
];

/// Keywords that can directly precede `(` without being a call.
const CALL_KEYWORDS: &[&[u8]] = &[
    b"if", b"while", b"match", b"for", b"loop", b"return", b"in", b"as",
    b"where", b"fn", b"let", b"else", b"move", b"unsafe", b"impl", b"dyn",
    b"pub", b"crate", b"super", b"self", b"Self", b"ref", b"mut", b"box",
    b"await", b"yield", b"use", b"extern",
];

fn is_ubiquitous(name: &[u8]) -> bool {
    UBIQUITOUS.contains(&name)
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// The other endpoint (index into [`SymbolTable::fns`]).
    pub other: usize,
    /// 1-based line of the call site (in the *caller's* file).
    pub line: u32,
}

/// Caller→callee and callee→caller adjacency, indexed like
/// [`SymbolTable::fns`].
pub struct CallGraph {
    /// Per fn: resolved callees.
    pub callees: Vec<Vec<Edge>>,
    /// Per fn: resolved callers (the reverse edges).
    pub callers: Vec<Vec<Edge>>,
}

impl CallGraph {
    /// Builds the graph by scanning every library file for call-shaped
    /// token patterns and resolving them through `syms`.
    pub fn build(ws: &Workspace, syms: &SymbolTable) -> CallGraph {
        let n = syms.fns.len();
        let mut callees: Vec<Vec<Edge>> = vec![Vec::new(); n];
        let mut callers: Vec<Vec<Edge>> = vec![Vec::new(); n];
        for (fi, file) in ws.files.iter().enumerate() {
            if file.class != FileClass::Lib {
                continue;
            }
            let cx = file.cx();
            scan_calls(&cx, fi, syms, &mut callees, &mut callers);
        }
        for adj in callees.iter_mut().chain(callers.iter_mut()) {
            adj.sort_by_key(|e| (e.other, e.line));
            adj.dedup_by_key(|e| e.other);
        }
        CallGraph { callees, callers }
    }
}

/// If the ident at `i` starts a call (possibly through a turbofish),
/// returns `true`: `name(` or `name::<…>(`.
fn is_call_head(cx: &Cx, i: usize) -> bool {
    if cx.is_punct(i + 1, b"(") {
        return true;
    }
    // Turbofish: name ::< … > (
    if cx.is_punct(i + 1, b":") && cx.is_punct(i + 2, b":") && cx.is_punct(i + 3, b"<") {
        let mut angle = 0i32;
        let mut j = i + 3;
        while j < cx.sig.len() && j < i + 64 {
            match cx.text(j) {
                b"<" => angle += 1,
                b">" => {
                    angle -= 1;
                    if angle == 0 {
                        return cx.is_punct(j + 1, b"(");
                    }
                }
                b";" | b"{" => return false,
                _ => {}
            }
            j += 1;
        }
    }
    false
}

fn scan_calls(
    cx: &Cx,
    file: usize,
    syms: &SymbolTable,
    callees: &mut [Vec<Edge>],
    callers: &mut [Vec<Edge>],
) {
    for i in 0..cx.sig.len() {
        if cx.sig[i].kind != TokenKind::Ident || !cx.live(i) || !is_call_head(cx, i) {
            continue;
        }
        let name = cx.text(i);
        if CALL_KEYWORDS.contains(&name) {
            continue;
        }
        // The declaration itself (`fn name(`) is not a call.
        if i > 0 && cx.is_ident(i - 1) && cx.text(i - 1) == b"fn" {
            continue;
        }
        let Some(caller) = syms.enclosing_fn(file, i) else { continue };
        if syms.fns[caller].in_test {
            continue;
        }
        let line = cx.line(i);

        // Shape of the call: receiver method, path-qualified, or bare.
        let after_path_sep =
            i >= 2 && cx.is_punct(i - 1, b":") && cx.is_punct(i - 2, b":");
        let targets: Vec<usize> = if i > 0 && cx.is_punct(i - 1, b".") {
            // `.name(` — receiver call.
            if is_ubiquitous(name) {
                continue;
            }
            syms.named(name).to_vec()
        } else if after_path_sep && i >= 3 && cx.is_ident(i - 3) {
            // `Qual::name(` — prefer methods of a matching impl type.
            let qual = cx.text(i - 3);
            let all = syms.named(name);
            let matching: Vec<usize> = all
                .iter()
                .copied()
                .filter(|&f| {
                    let st = syms.fns[f].self_type.as_deref().map(str::as_bytes);
                    st == Some(qual)
                        || (qual == b"Self"
                            && st.is_some()
                            && st
                                == syms.fns[caller]
                                    .self_type
                                    .as_deref()
                                    .map(str::as_bytes))
                })
                .collect();
            if !matching.is_empty() {
                matching
            } else if is_ubiquitous(name) {
                continue; // `Vec::new(…)` etc.: no workspace impl matched.
            } else {
                all.to_vec()
            }
        } else if after_path_sep {
            // `::name(` after a closing `>` or similar — resolve by name.
            if is_ubiquitous(name) {
                continue;
            }
            syms.named(name).to_vec()
        } else {
            // Bare `name(` — capitalized idents are tuple constructors.
            if is_ubiquitous(name) || name.first().is_some_and(u8::is_ascii_uppercase) {
                continue;
            }
            syms.named(name).to_vec()
        };

        for callee in targets {
            if callee == caller || syms.fns[callee].in_test {
                continue;
            }
            callees[caller].push(Edge { other: callee, line });
            callers[callee].push(Edge { other: caller, line });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    fn graph(files: Vec<(&str, &str)>) -> (SymbolTable, CallGraph) {
        let ws = Workspace::from_sources(
            files
                .into_iter()
                .map(|(p, s)| (p.to_string(), s.as_bytes().to_vec()))
                .collect(),
        );
        let syms = SymbolTable::build(&ws);
        let graph = CallGraph::build(&ws, &syms);
        (syms, graph)
    }

    fn idx(syms: &SymbolTable, name: &str) -> usize {
        syms.named(name.as_bytes())[0]
    }

    #[test]
    fn bare_call_links_across_files() {
        let (syms, g) = graph(vec![
            ("crates/core/src/a.rs", "pub fn top() { helper_step(1); }\n"),
            ("crates/hier/src/b.rs", "pub fn helper_step(x: u32) {}\n"),
        ]);
        let top = idx(&syms, "top");
        let helper = idx(&syms, "helper_step");
        assert!(g.callees[top].iter().any(|e| e.other == helper));
        assert!(g.callers[helper].iter().any(|e| e.other == top));
    }

    #[test]
    fn ubiquitous_names_do_not_link() {
        let (syms, g) = graph(vec![
            ("crates/core/src/a.rs", "pub fn top(v: &[u8]) { v.len(); }\n"),
            ("crates/hier/src/b.rs", "pub fn len() -> usize { 0 }\n"),
        ]);
        assert!(g.callees[idx(&syms, "top")].is_empty());
    }

    #[test]
    fn qualified_call_prefers_matching_impl() {
        let (syms, g) = graph(vec![(
            "crates/core/src/a.rs",
            "struct A; struct B;\nimpl A { fn go(x: u32) {} }\nimpl B { fn go(x: u32) {} }\npub fn top() { A::go(1); }\n",
        )]);
        let top = idx(&syms, "top");
        assert_eq!(g.callees[top].len(), 1);
        let callee = g.callees[top][0].other;
        assert_eq!(syms.fns[callee].self_type.as_deref(), Some("A"));
    }

    #[test]
    fn turbofish_call_resolves() {
        let (syms, g) = graph(vec![(
            "crates/core/src/a.rs",
            "fn kernel<const N: usize>(x: u32) {}\npub fn top() { kernel::<4>(1); }\n",
        )]);
        assert!(g.callees[idx(&syms, "top")]
            .iter()
            .any(|e| e.other == idx(&syms, "kernel")));
    }

    #[test]
    fn test_fns_stay_out_of_the_graph() {
        let (syms, g) = graph(vec![(
            "crates/core/src/a.rs",
            "pub fn prod() {}\n#[cfg(test)]\nmod tests { fn t() { super::prod(); } }\n",
        )]);
        assert!(g.callers[idx(&syms, "prod")].is_empty());
    }
}
