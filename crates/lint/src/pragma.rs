//! The `lesm-lint: allow` pragma — the sole escape hatch.
//!
//! Grammar (inside any `//` or `/* */` comment):
//!
//! ```text
//! lesm-lint: allow(RULE[, RULE]*) — reason text
//! ```
//!
//! The rule list names the rules being waived (`D1`…`R2`). The reason is
//! **mandatory**: a pragma without one — or naming an unknown rule — is
//! itself a violation (`P0`), so silence can never be bought without a
//! written justification. The separator before the reason may be an em
//! dash, one or more `-`, or a `:`.
//!
//! A pragma suppresses matching violations on its own line (trailing
//! comment) and on the line directly below (comment-above style).

use crate::rules::RuleId;
use crate::lexer::{Token, TokenKind};

/// A parsed pragma, or the record of a malformed one.
#[derive(Debug, Clone)]
pub struct Pragma {
    /// Line the pragma comment starts on.
    pub line: u32,
    /// Rules it waives (empty when malformed).
    pub rules: Vec<RuleId>,
    /// Parse failure description; `None` for a well-formed pragma.
    pub error: Option<String>,
}

const MARKER: &str = "lesm-lint:";

/// Extracts every pragma from the comment tokens of a file.
pub fn collect(src: &[u8], tokens: &[Token]) -> Vec<Pragma> {
    let mut out = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = String::from_utf8_lossy(t.text(src));
        // Doc comments *describe* the pragma syntax; only plain comments
        // can carry a live pragma.
        if text.starts_with("///")
            || text.starts_with("//!")
            || text.starts_with("/**")
            || text.starts_with("/*!")
        {
            continue;
        }
        if let Some(pos) = text.find(MARKER) {
            out.push(parse(&text[pos + MARKER.len()..], t.line));
        }
    }
    out
}

fn parse(rest: &str, line: u32) -> Pragma {
    let malformed = |msg: &str| Pragma { line, rules: Vec::new(), error: Some(msg.into()) };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("allow") else {
        return malformed("expected `allow(RULE, …)` after `lesm-lint:`");
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix('(') else {
        return malformed("expected `(` after `allow`");
    };
    let Some(close) = rest.find(')') else {
        return malformed("unclosed rule list: missing `)`");
    };
    let mut rules = Vec::new();
    for name in rest[..close].split(',') {
        let name = name.trim();
        match RuleId::parse(name) {
            Some(r) => rules.push(r),
            None => return malformed(&format!("unknown rule `{name}` in allow list")),
        }
    }
    if rules.is_empty() {
        return malformed("empty rule list");
    }
    // Everything after `)` minus separator punctuation must be a reason.
    let reason = rest[close + 1..]
        .trim_start()
        .trim_start_matches(['—', '-', ':', '–'])
        .trim();
    if reason.is_empty() {
        return malformed("missing reason: every allow pragma must say why");
    }
    Pragma { line, rules, error: None }
}

/// True if a well-formed pragma waives `rule` for a violation on `line`
/// (pragma on the same line, or on the line directly above).
pub fn suppresses(pragmas: &[Pragma], rule: RuleId, line: u32) -> bool {
    pragmas.iter().any(|p| {
        p.error.is_none()
            && (p.line == line || p.line + 1 == line)
            && p.rules.contains(&rule)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn pragmas(src: &str) -> Vec<Pragma> {
        collect(src.as_bytes(), &lex(src.as_bytes()))
    }

    #[test]
    fn well_formed_pragma_parses() {
        let p = pragmas("// lesm-lint: allow(D2) — u64 accumulation is order-independent\nx();");
        assert_eq!(p.len(), 1);
        assert!(p[0].error.is_none());
        assert_eq!(p[0].rules, vec![RuleId::D2]);
        assert!(suppresses(&p, RuleId::D2, 2));
        assert!(suppresses(&p, RuleId::D2, 1));
        assert!(!suppresses(&p, RuleId::D2, 3));
        assert!(!suppresses(&p, RuleId::D1, 2));
    }

    #[test]
    fn multi_rule_list_and_ascii_separator() {
        let p = pragmas("let x = 1; // lesm-lint: allow(D1, R1) - fixture exercising both rules");
        assert!(p[0].error.is_none());
        assert_eq!(p[0].rules, vec![RuleId::D1, RuleId::R1]);
    }

    #[test]
    fn missing_reason_is_malformed() {
        let p = pragmas("// lesm-lint: allow(D2)");
        assert!(p[0].error.as_deref().is_some_and(|e| e.contains("reason")));
        assert!(!suppresses(&p, RuleId::D2, 1));
    }

    #[test]
    fn separator_only_is_still_missing_reason() {
        let p = pragmas("// lesm-lint: allow(D2) — ");
        assert!(p[0].error.is_some());
    }

    #[test]
    fn unknown_rule_is_malformed() {
        let p = pragmas("// lesm-lint: allow(D9) — whatever");
        assert!(p[0].error.as_deref().is_some_and(|e| e.contains("unknown rule")));
    }

    #[test]
    fn pragma_in_block_comment() {
        let p = pragmas("/* lesm-lint: allow(R2) — render path */ println!(\"x\");");
        assert!(p[0].error.is_none());
        assert!(suppresses(&p, RuleId::R2, 1));
    }

    #[test]
    fn mention_in_string_is_not_a_pragma() {
        let p = pragmas("let s = \"lesm-lint: allow(D2)\";");
        assert!(p.is_empty());
    }
}
