//! Pass 4 — wire truncation (rule W1).
//!
//! The serve and query crates write snapshot sections, cursor offsets,
//! and HTTP framing: every integer that crosses that boundary is a
//! contract. A lossy `as` cast there silently truncates at scale — the
//! exact bug class behind the `IndexOverflow` hardening — so inside
//! `crates/serve/src/` and `crates/query/src/` (library files only;
//! tests are exempt wholesale):
//!
//! - `… as u8/u16/u32/i8/i16/i32/f32` fires: narrowing must go through
//!   `try_into` with a typed error. In-range integer literals
//!   (`7 as u32`) are exempt — nothing to lose.
//! - `float as integer` fires (including through `floor`/`ceil`/
//!   `round`/`trunc`): saturating float casts are value-dependent;
//!   wire code must make rounding explicit and checked.
//!
//! Widening casts (`u32 as usize`, `u32 as u64`) stay legal — they are
//! lossless on every supported target and the query engine uses them
//! heavily for indexing. The escape hatch, as always, is a reasoned
//! `lesm-lint: allow(W1)` pragma.

use crate::lexer::TokenKind;
use crate::pragma;
use crate::rules::{FileClass, RuleId, Violation};
use crate::source::Workspace;
use crate::FileViolation;

/// Crate prefixes whose library sources write wire formats.
const WIRE_PREFIXES: &[&str] = &["crates/serve/src/", "crates/query/src/"];

/// Cast targets that can drop bits from any non-literal source.
const NARROW_TARGETS: &[&[u8]] =
    &[b"u8", b"u16", b"u32", b"i8", b"i16", b"i32", b"f32"];

/// Integer cast targets checked for float-valued sources.
const INT_TARGETS: &[&[u8]] =
    &[b"u64", b"usize", b"i64", b"isize", b"u128", b"i128"];

/// Runs the wire-truncation pass over a loaded workspace.
pub fn run(ws: &Workspace) -> Vec<FileViolation> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.class != FileClass::Lib
            || !WIRE_PREFIXES.iter().any(|p| file.rel.starts_with(p))
        {
            continue;
        }
        let cx = file.cx();
        for i in 0..cx.sig.len() {
            if !cx.is_ident(i) || !cx.live(i) || cx.text(i) != b"as" {
                continue;
            }
            // `use x as y;` renames, it does not cast.
            if in_use_statement(&cx, i) {
                continue;
            }
            if !cx.is_ident(i + 1) {
                continue; // `as *const T` etc. — pointer casts are U2 turf.
            }
            let target = cx.text(i + 1);
            let lossy = if NARROW_TARGETS.contains(&target) {
                !literal_fits(&cx, i, target)
            } else if INT_TARGETS.contains(&target) {
                float_source(&cx, i)
            } else {
                false
            };
            if !lossy {
                continue;
            }
            let line = cx.line(i);
            if pragma::suppresses(&file.pragmas, RuleId::W1, line) {
                continue;
            }
            out.push(FileViolation {
                path: file.rel.clone(),
                violation: Violation {
                    rule: RuleId::W1,
                    line,
                    note: format!(
                        "lossy `as {}` cast on a wire path; use `try_into` with a \
                         typed error (or `From` where lossless)",
                        String::from_utf8_lossy(target)
                    ),
                    snippet: file.snippet(line),
                },
            });
        }
    }
    out
}

/// Walks back (bounded) for a `use` keyword with no statement boundary
/// in between — then this `as` is a rename.
fn in_use_statement(cx: &crate::rules::Cx, i: usize) -> bool {
    let lo = i.saturating_sub(24);
    for j in (lo..i).rev() {
        match cx.text(j) {
            b";" | b"{" | b"}" | b"(" | b")" | b"=" => return false,
            b"use" => return true,
            _ => {}
        }
    }
    false
}

/// True when the cast source is an integer literal whose value fits the
/// target type — `0 as u32` or `0xFF as u8` lose nothing.
fn literal_fits(cx: &crate::rules::Cx, as_tok: usize, target: &[u8]) -> bool {
    if as_tok == 0 || cx.sig[as_tok - 1].kind != TokenKind::Number {
        return false;
    }
    let Some(v) = parse_int(cx.text(as_tok - 1)) else { return false };
    let max: u128 = match target {
        b"u8" => u8::MAX as u128,
        b"u16" => u16::MAX as u128,
        b"u32" => u32::MAX as u128,
        b"i8" => i8::MAX as u128,
        b"i16" => i16::MAX as u128,
        b"i32" => i32::MAX as u128,
        // `1.5 as f32` style float-literal casts stay flagged: the
        // fits-check only vouches for integers.
        _ => return false,
    };
    v <= max
}

/// Parses an integer literal (decimal/hex/octal/binary, `_` separators,
/// type suffix). `None` for float-shaped literals.
fn parse_int(text: &[u8]) -> Option<u128> {
    let s: String = String::from_utf8_lossy(text).replace('_', "");
    // Strip a type suffix like `u32` / `i64` / `usize`.
    let body = strip_suffix(&s);
    if body.contains('.') || (body.starts_with(|c: char| c.is_ascii_digit()) && body.contains(['e', 'E']) && !body.starts_with("0x") && !body.starts_with("0X")) {
        return None;
    }
    if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u128::from_str_radix(hex, 16).ok()
    } else if let Some(oct) = body.strip_prefix("0o").or_else(|| body.strip_prefix("0O")) {
        u128::from_str_radix(oct, 8).ok()
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        u128::from_str_radix(bin, 2).ok()
    } else {
        body.parse().ok()
    }
}

/// Removes a trailing integer type suffix (`123u32` → `123`).
fn strip_suffix(s: &str) -> &str {
    for suf in [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64",
        "i128", "isize",
    ] {
        if let Some(body) = s.strip_suffix(suf) {
            if !body.is_empty() {
                return body;
            }
        }
    }
    s
}

/// True when the cast source is visibly float-valued: a float literal,
/// or a `floor()`/`ceil()`/`round()`/`trunc()` call result.
fn float_source(cx: &crate::rules::Cx, as_tok: usize) -> bool {
    if as_tok == 0 {
        return false;
    }
    let prev = as_tok - 1;
    if cx.sig[prev].kind == TokenKind::Number {
        let t = cx.text(prev);
        return t.contains(&b'.')
            || t.ends_with(b"f32")
            || t.ends_with(b"f64")
            || (!t.starts_with(b"0x") && !t.starts_with(b"0X") && t.iter().any(|&b| b == b'e' || b == b'E'));
    }
    // `(expr).floor() as u64` — walk back over the call parens to the
    // method name.
    if cx.is_punct(prev, b")") {
        let mut depth = 0i32;
        let lo = prev.saturating_sub(256);
        for j in (lo..=prev).rev() {
            match cx.text(j) {
                b")" => depth += 1,
                b"(" => {
                    depth -= 1;
                    if depth == 0 {
                        return j >= 1
                            && matches!(
                                cx.text(j - 1),
                                b"floor" | b"ceil" | b"round" | b"trunc"
                            );
                    }
                }
                _ => {}
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Workspace;

    fn casts(path: &str, src: &str) -> Vec<FileViolation> {
        let ws = Workspace::from_sources(vec![(path.to_string(), src.as_bytes().to_vec())]);
        run(&ws)
    }

    #[test]
    fn narrowing_in_wire_crate_fires() {
        let v = casts(
            "crates/serve/src/v2x.rs",
            "pub fn n(x: usize) -> u32 { x as u32 }\n",
        );
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].violation.rule, RuleId::W1);
    }

    #[test]
    fn widening_is_silent() {
        let v = casts(
            "crates/query/src/eng.rs",
            "pub fn w(x: u32) -> usize { x as usize }\npub fn w2(x: u32) -> u64 { x as u64 }\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn in_range_literal_is_silent_out_of_range_fires() {
        let ok = casts("crates/serve/src/s.rs", "pub fn k() -> u8 { 255 as u8 }\n");
        assert!(ok.is_empty(), "{ok:?}");
        let bad = casts("crates/serve/src/s.rs", "pub fn k() -> u8 { 256 as u8 }\n");
        assert_eq!(bad.len(), 1);
    }

    #[test]
    fn float_to_int_fires() {
        let v = casts(
            "crates/serve/src/s.rs",
            "pub fn f(x: f64) -> u64 { (x * 8.0).floor() as u64 }\n",
        );
        assert_eq!(v.len(), 1);
        let lit = casts("crates/serve/src/s.rs", "pub fn g() -> u64 { 1.5 as u64 }\n");
        assert_eq!(lit.len(), 1);
    }

    #[test]
    fn non_wire_crate_is_silent() {
        let v = casts("crates/hier/src/em2.rs", "pub fn n(x: usize) -> u32 { x as u32 }\n");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn use_rename_and_tests_are_exempt() {
        let v = casts(
            "crates/serve/src/s.rs",
            "use std::io::Error as IoErr;\npub fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t(x: usize) -> u32 { x as u32 }\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn pragma_silences_w1() {
        let v = casts(
            "crates/serve/src/s.rs",
            "pub fn n(x: usize) -> u32 {\n    // lesm-lint: allow(W1) — x is a section id, bounded by header checks\n    x as u32\n}\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }
}
