//! The determinism & robustness rule engine (DESIGN.md §11).
//!
//! Rules operate on the significant-token stream (comments and literal
//! contents already stripped by the lexer) with per-token test-scope
//! flags from [`crate::scope`]. Everything here is heuristic in the way
//! a reviewer is heuristic: false negatives are possible (the rules
//! cannot see through every indirection), but a match is precise enough
//! that the only sanctioned way to silence one is the
//! `// lesm-lint: allow(rule) — reason` pragma.
//!
//! | rule | contract |
//! |------|----------|
//! | D1   | no `partial_cmp`-based ordering — `total_cmp` / `Ord` only |
//! | D2   | no un-canonicalized iteration over `HashMap`/`HashSet` in library code |
//! | D3   | no ambient nondeterminism (`SystemTime::now`, `env::var`, `thread_rng`, `Instant::now`) in library code |
//! | R1   | no `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test library code |
//! | R2   | no `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` in library code |
//! | P0   | malformed `lesm-lint:` pragma (missing reason, unknown rule) |
//!
//! The workspace-level passes (DESIGN.md §16) add D4 (determinism
//! taint, [`crate::taint`]), U1–U3 (unsafe audit,
//! [`crate::unsafe_audit`]) and W1 (wire truncation, [`crate::casts`]);
//! this module only hosts their [`RuleId`]s and the shared site
//! detectors ([`ambient_sites`], [`d2_sites`]).
//!
//! D2 recognizes two canonicalization idioms and lets them pass without
//! a pragma, because they make iteration order irrelevant:
//!
//! 1. the statement containing the iteration also sorts (`sort*`/
//!    `sorted_*` call) or collects into a `BTreeMap`/`BTreeSet`;
//! 2. the iteration's statement binds a name whose *next* statement
//!    immediately sorts it (`let mut v: Vec<_> = m.iter().collect();
//!    v.sort_unstable();`), or a `for` loop is directly followed by a
//!    statement containing a `sort*` call (accumulate-then-sort, the
//!    PR 3 PageRank fix shape).

use std::collections::BTreeSet;

use crate::lexer::{lex, Token, TokenKind};
use crate::pragma;
use crate::scope::test_scopes;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// `partial_cmp`-based ordering.
    D1,
    /// Un-canonicalized `HashMap`/`HashSet` iteration.
    D2,
    /// Ambient nondeterminism.
    D3,
    /// Determinism taint: an ambient/iteration-order value flowing to a
    /// pub API or wire/response sink (DESIGN.md §16).
    D4,
    /// Panicking constructs in library code.
    R1,
    /// Console output in library code.
    R2,
    /// `unsafe` without an adjacent `// SAFETY:` argument.
    U1,
    /// Raw-pointer primitives outside the allowlisted modules.
    U2,
    /// `#[target_feature]` hygiene: non-pub, runtime-detection-gated.
    U3,
    /// Lossy `as` narrowing cast in a wire crate.
    W1,
    /// Malformed pragma.
    P0,
}

impl RuleId {
    /// Parses a rule name as written in a pragma.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "D1" => Some(Self::D1),
            "D2" => Some(Self::D2),
            "D3" => Some(Self::D3),
            "D4" => Some(Self::D4),
            "R1" => Some(Self::R1),
            "R2" => Some(Self::R2),
            "U1" => Some(Self::U1),
            "U2" => Some(Self::U2),
            "U3" => Some(Self::U3),
            "W1" => Some(Self::W1),
            _ => None,
        }
    }

    /// Stable display name.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::D1 => "D1",
            Self::D2 => "D2",
            Self::D3 => "D3",
            Self::D4 => "D4",
            Self::R1 => "R1",
            Self::R2 => "R2",
            Self::U1 => "U1",
            Self::U2 => "U2",
            Self::U3 => "U3",
            Self::W1 => "W1",
            Self::P0 => "P0",
        }
    }
}

/// How a file ships, which decides the rules that bind it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library crate source: the full contract applies.
    Lib,
    /// Binary / experiment / harness source (`cli`, `bench`,
    /// `fuzz-harness`, any `src/bin/`, `src/main.rs`): only D1 (and
    /// pragma hygiene) apply — binaries may print and may crash.
    Bin,
}

/// One rule violation at a source location.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which rule fired.
    pub rule: RuleId,
    /// 1-based line.
    pub line: u32,
    /// The offending source line, trimmed.
    pub snippet: String,
    /// What to do about it.
    pub note: String,
}

fn rule_applies(rule: RuleId, class: FileClass) -> bool {
    match rule {
        RuleId::D1 | RuleId::P0 => true,
        RuleId::D2 | RuleId::D3 | RuleId::R1 | RuleId::R2 => class == FileClass::Lib,
        // Workspace-level pass rules: never emitted by check_source.
        RuleId::D4 | RuleId::U1 | RuleId::U2 | RuleId::U3 | RuleId::W1 => false,
    }
}

/// Lints one file's source. `class` comes from the workspace walker.
pub fn check_source(src: &[u8], class: FileClass) -> Vec<Violation> {
    let all = lex(src);
    let sig: Vec<Token> = all
        .iter()
        .copied()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();
    let in_test = test_scopes(src, &sig);
    let pragmas = pragma::collect(src, &all);
    let lines = line_starts(src);

    let cx = Cx { src, sig: &sig, in_test: &in_test };
    let mut raw: Vec<Violation> = Vec::new();
    for p in &pragmas {
        if let Some(err) = &p.error {
            raw.push(Violation {
                rule: RuleId::P0,
                line: p.line,
                snippet: snippet_at(src, &lines, p.line),
                note: format!("malformed pragma: {err}"),
            });
        }
    }
    if rule_applies(RuleId::D1, class) {
        rule_d1(&cx, &lines, &mut raw);
    }
    if rule_applies(RuleId::R1, class) {
        rule_r1(&cx, &lines, &mut raw);
    }
    if rule_applies(RuleId::R2, class) {
        rule_r2(&cx, &lines, &mut raw);
    }
    if rule_applies(RuleId::D3, class) {
        rule_d3(&cx, &lines, &mut raw);
    }
    if rule_applies(RuleId::D2, class) {
        rule_d2(&cx, &lines, &mut raw);
    }

    // Pragma suppression, then dedupe (for-loop and chain detection can
    // both fire on one line) and order by position.
    let mut seen = BTreeSet::new();
    let mut out: Vec<Violation> = Vec::new();
    for v in raw {
        if v.rule != RuleId::P0 && pragma::suppresses(&pragmas, v.rule, v.line) {
            continue;
        }
        if seen.insert((v.line, v.rule)) {
            out.push(v);
        }
    }
    out.sort_by_key(|a| (a.line, a.rule));
    out
}

/// Shared per-file state for the rule passes. Also used by the
/// workspace-level passes (taint, unsafe audit, casts), which construct
/// it from preloaded [`crate::source::SourceFile`]s.
pub(crate) struct Cx<'a> {
    pub(crate) src: &'a [u8],
    pub(crate) sig: &'a [Token],
    pub(crate) in_test: &'a [bool],
}

impl<'a> Cx<'a> {
    pub(crate) fn text(&self, i: usize) -> &'a [u8] {
        match self.sig.get(i) {
            Some(t) => t.text(self.src),
            None => b"",
        }
    }
    pub(crate) fn is_punct(&self, i: usize, p: &[u8]) -> bool {
        self.sig.get(i).is_some_and(|t| t.kind == TokenKind::Punct) && self.text(i) == p
    }
    pub(crate) fn is_ident(&self, i: usize) -> bool {
        self.sig.get(i).is_some_and(|t| t.kind == TokenKind::Ident)
    }
    pub(crate) fn live(&self, i: usize) -> bool {
        !self.in_test.get(i).copied().unwrap_or(false)
    }
    pub(crate) fn line(&self, i: usize) -> u32 {
        self.sig.get(i).map(|t| t.line).unwrap_or(0)
    }
}

pub(crate) fn line_starts(src: &[u8]) -> Vec<usize> {
    let mut starts = vec![0usize];
    for (i, &b) in src.iter().enumerate() {
        if b == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

pub(crate) fn snippet_at(src: &[u8], lines: &[usize], line: u32) -> String {
    let idx = (line as usize).saturating_sub(1);
    let Some(&start) = lines.get(idx) else { return String::new() };
    let end = lines.get(idx + 1).map(|&e| e.saturating_sub(1)).unwrap_or(src.len());
    let raw = src.get(start..end).unwrap_or(b"");
    let mut s = String::from_utf8_lossy(raw).trim().to_string();
    if s.len() > 120 {
        s.truncate(117);
        s.push_str("...");
    }
    s
}

fn push(cx: &Cx, lines: &[usize], out: &mut Vec<Violation>, rule: RuleId, i: usize, note: &str) {
    out.push(Violation {
        rule,
        line: cx.line(i),
        snippet: snippet_at(cx.src, lines, cx.line(i)),
        note: note.to_string(),
    });
}

// ---------------------------------------------------------------- D1

fn rule_d1(cx: &Cx, lines: &[usize], out: &mut Vec<Violation>) {
    for i in 0..cx.sig.len() {
        if cx.live(i)
            && cx.is_ident(i)
            && cx.text(i) == b"partial_cmp"
            && i > 0
            && cx.is_punct(i - 1, b".")
            && cx.is_punct(i + 1, b"(")
        {
            push(
                cx,
                lines,
                out,
                RuleId::D1,
                i,
                "order via f64::total_cmp (or Ord::cmp) — partial_cmp is not total and its \
                 NaN handling has already caused nondeterministic output once",
            );
        }
    }
}

// ---------------------------------------------------------------- R1

fn rule_r1(cx: &Cx, lines: &[usize], out: &mut Vec<Violation>) {
    for i in 0..cx.sig.len() {
        if !cx.live(i) || !cx.is_ident(i) {
            continue;
        }
        let t = cx.text(i);
        let method = matches!(t, b"unwrap" | b"expect")
            && i > 0
            && cx.is_punct(i - 1, b".")
            && cx.is_punct(i + 1, b"(");
        let mac = matches!(t, b"panic" | b"unreachable" | b"todo" | b"unimplemented")
            && cx.is_punct(i + 1, b"!")
            && (i == 0 || !cx.is_punct(i - 1, b"."));
        if method || mac {
            push(
                cx,
                lines,
                out,
                RuleId::R1,
                i,
                "library code must return typed errors, not crash the caller (DESIGN.md §10)",
            );
        }
    }
}

// ---------------------------------------------------------------- R2

fn rule_r2(cx: &Cx, lines: &[usize], out: &mut Vec<Violation>) {
    for i in 0..cx.sig.len() {
        if cx.live(i)
            && cx.is_ident(i)
            && matches!(cx.text(i), b"println" | b"eprintln" | b"print" | b"eprint" | b"dbg")
            && cx.is_punct(i + 1, b"!")
        {
            push(
                cx,
                lines,
                out,
                RuleId::R2,
                i,
                "library crates must not write to the console — return data and let the \
                 CLI/serve render paths print",
            );
        }
    }
}

// ---------------------------------------------------------------- D3

/// Token indices of ambient-nondeterminism reads: the D3 pattern set.
/// Shared with the taint pass, which seeds on the same sites.
pub(crate) fn ambient_sites(cx: &Cx) -> Vec<usize> {
    let path2 = |i: usize, a: &[u8], b: &[u8]| {
        cx.text(i) == a
            && cx.is_punct(i + 1, b":")
            && cx.is_punct(i + 2, b":")
            && cx.text(i + 3) == b
    };
    let mut sites = Vec::new();
    for i in 0..cx.sig.len() {
        if !cx.live(i) || !cx.is_ident(i) {
            continue;
        }
        let hit = path2(i, b"SystemTime", b"now")
            || path2(i, b"Instant", b"now")
            || path2(i, b"env", b"var")
            || path2(i, b"env", b"var_os")
            || path2(i, b"rand", b"random")
            || cx.text(i) == b"thread_rng";
        if hit {
            sites.push(i);
        }
    }
    sites
}

/// Token indices of address-of-as-integer reads (`p.as_ptr() … as usize`,
/// `ptr::addr_of!`): allocation addresses vary run to run (ASLR), so a
/// pointer laundered into an integer is an ambient source for the taint
/// pass. Not a standalone rule — pointer *use* is U2's business.
pub(crate) fn address_of_sites(cx: &Cx) -> Vec<usize> {
    let mut sites = Vec::new();
    for i in 0..cx.sig.len() {
        if !cx.live(i) || !cx.is_ident(i) {
            continue;
        }
        let t = cx.text(i);
        if matches!(t, b"addr_of" | b"addr_of_mut") {
            sites.push(i);
            continue;
        }
        if matches!(t, b"as_ptr" | b"as_mut_ptr") {
            // `…as_ptr() as usize` within the same expression tail.
            let mut j = i + 1;
            while j < cx.sig.len() && j < i + 10 {
                if cx.is_punct(j, b";") || cx.is_punct(j, b"{") || cx.is_punct(j, b"}") {
                    break;
                }
                if cx.is_ident(j)
                    && cx.text(j) == b"as"
                    && matches!(cx.text(j + 1), b"usize" | b"u64" | b"isize" | b"i64")
                {
                    sites.push(i);
                    break;
                }
                j += 1;
            }
        }
    }
    sites
}

fn rule_d3(cx: &Cx, lines: &[usize], out: &mut Vec<Violation>) {
    for i in ambient_sites(cx) {
        push(
            cx,
            lines,
            out,
            RuleId::D3,
            i,
            "ambient nondeterminism: thread clocks/env/RNG state makes output depend on \
             when and where the library runs — take the value as a parameter instead",
        );
    }
}

// ---------------------------------------------------------------- D2

const ITER_METHODS: [&[u8]; 9] = [
    b"iter",
    b"iter_mut",
    b"keys",
    b"values",
    b"values_mut",
    b"into_iter",
    b"into_keys",
    b"into_values",
    b"drain",
];

fn is_sortish(t: &[u8]) -> bool {
    t.starts_with(b"sort") || t.starts_with(b"sorted") || t == b"BTreeMap" || t == b"BTreeSet"
}

#[derive(Default)]
struct MapBindings {
    /// Names whose outermost type is `HashMap`/`HashSet`.
    direct: BTreeSet<Vec<u8>>,
    /// Names whose type *contains* a `HashMap`/`HashSet` (e.g.
    /// `Vec<HashMap<…>>`): indexing them yields a map.
    containers: BTreeSet<Vec<u8>>,
    /// Same-file functions returning a map directly.
    fns: BTreeSet<Vec<u8>>,
}

/// What a type region names, outermost-first.
enum TypeShape {
    Direct,
    Container,
    Other,
}

fn rule_d2(cx: &Cx, lines: &[usize], out: &mut Vec<Violation>) {
    for i in d2_sites(cx) {
        push(cx, lines, out, RuleId::D2, i, D2_NOTE);
    }
}

/// Token indices of un-canonicalized `HashMap`/`HashSet` iterations (the
/// D2 pattern, minus pragma handling). Shared with the taint pass, which
/// treats the same sites as order-nondeterminism seeds.
pub(crate) fn d2_sites(cx: &Cx) -> Vec<usize> {
    let mut sites = Vec::new();
    let binds = collect_bindings(cx);
    if binds.direct.is_empty() && binds.containers.is_empty() {
        return sites;
    }
    let mut for_expr_ranges: Vec<(usize, usize)> = Vec::new();

    // Pass 1: for-loops.
    for i in 0..cx.sig.len() {
        if !(cx.live(i) && cx.is_ident(i) && cx.text(i) == b"for") {
            continue;
        }
        let Some((in_idx, body_open)) = for_shape(cx, i) else { continue };
        let expr = (in_idx + 1, body_open);
        for_expr_ranges.push(expr);
        if expr_iterates_map(cx, &binds, expr.0, expr.1) {
            // Same-expression canonicalizer (`…keys().collect::<BTreeSet<_>>()`)?
            let canon_inline = (expr.0..expr.1).any(|j| is_sortish(cx.text(j)));
            // Accumulate-then-sort: the statement right after the loop
            // body sorts what the loop built.
            let canon_after = stmt_after_block_sorts(cx, body_open);
            if !canon_inline && !canon_after {
                sites.push(i);
            }
        }
    }

    // Pass 2: iterator-method chains on map receivers.
    for i in 0..cx.sig.len() {
        if !(cx.live(i)
            && cx.is_ident(i)
            && ITER_METHODS.contains(&cx.text(i))
            && i > 0
            && cx.is_punct(i - 1, b".")
            && cx.is_punct(i + 1, b"("))
        {
            continue;
        }
        if for_expr_ranges.iter().any(|&(s, e)| i >= s && i < e) {
            continue; // already judged as part of the for-loop expression
        }
        if !receiver_is_map(cx, &binds, i - 1) {
            continue;
        }
        if !statement_is_canonicalized(cx, i) {
            sites.push(i);
        }
    }
    sites
}

const D2_NOTE: &str = "HashMap/HashSet iteration order is arbitrary — collect and sort by key \
                       before accumulating or emitting (the PR 3 PageRank fix), collect into a \
                       BTree, or justify order-independence with a pragma";

fn collect_bindings(cx: &Cx) -> MapBindings {
    let mut b = MapBindings::default();
    // Sub-pass 1: `name: Type` declarations (fields, params, let-with-
    // annotation) and `fn name(…) -> Map`.
    for i in 0..cx.sig.len() {
        if !cx.live(i) {
            continue;
        }
        if cx.is_ident(i)
            && cx.is_punct(i + 1, b":")
            && !cx.is_punct(i + 2, b":")
            && (i == 0 || !cx.is_punct(i - 1, b":"))
        {
            match type_shape(cx, i + 2) {
                TypeShape::Direct => {
                    b.direct.insert(cx.text(i).to_vec());
                }
                TypeShape::Container => {
                    b.containers.insert(cx.text(i).to_vec());
                }
                TypeShape::Other => {}
            }
        }
        if cx.is_ident(i) && cx.text(i) == b"fn" && cx.is_ident(i + 1) {
            if let Some(arrow) = find_return_arrow(cx, i + 2) {
                if matches!(type_shape(cx, arrow), TypeShape::Direct) {
                    b.fns.insert(cx.text(i + 1).to_vec());
                }
            }
        }
    }
    // Sub-pass 2: inference from `let` initializers and container loops.
    for i in 0..cx.sig.len() {
        if !cx.live(i) || !cx.is_ident(i) {
            continue;
        }
        if cx.text(i) == b"let" {
            let mut j = i + 1;
            if cx.text(j) == b"mut" {
                j += 1;
            }
            if !cx.is_ident(j) || !cx.is_punct(j + 1, b"=") || cx.is_punct(j + 2, b"=") {
                continue;
            }
            let name = cx.text(j);
            let mut k = j + 2;
            while cx.is_punct(k, b"&") || cx.text(k) == b"mut" {
                k += 1;
            }
            // `HashMap::new()` / `std::collections::HashSet::from(…)`:
            // any map ident in the pre-call path.
            let mut path_has_map = false;
            let mut m = k;
            while m < cx.sig.len() && m < k + 8 {
                if cx.is_punct(m, b"(") || cx.is_punct(m, b";") {
                    break;
                }
                if matches!(cx.text(m), b"HashMap" | b"HashSet") {
                    path_has_map = true;
                }
                m += 1;
            }
            let from_fn = cx.is_ident(k) && b.fns.contains(cx.text(k)) && cx.is_punct(k + 1, b"(");
            let from_index =
                cx.is_ident(k) && b.containers.contains(cx.text(k)) && cx.is_punct(k + 1, b"[");
            if path_has_map || from_fn || from_index {
                b.direct.insert(name.to_vec());
            }
        }
        // `for tf in &vec_of_maps { … }` binds `tf` to a map.
        if cx.text(i) == b"for" && cx.is_ident(i + 1) && cx.text(i + 2) == b"in" {
            let mut k = i + 3;
            while cx.is_punct(k, b"&") || cx.text(k) == b"mut" {
                k += 1;
            }
            if cx.is_ident(k)
                && b.containers.contains(cx.text(k))
                && !cx.is_punct(k + 1, b"[")
            {
                b.direct.insert(cx.text(i + 1).to_vec());
            }
        }
    }
    b
}

/// Classifies the type region starting at `start` (after `:` or `->`).
fn type_shape(cx: &Cx, start: usize) -> TypeShape {
    let mut angle: i32 = 0;
    let mut first: Option<&[u8]> = None;
    let mut any_map = false;
    let mut j = start;
    while j < cx.sig.len() {
        let t = cx.text(j);
        match cx.sig[j].kind {
            TokenKind::Punct => match t {
                b"<" => angle += 1,
                b">" => {
                    if angle == 0 {
                        break;
                    }
                    angle -= 1;
                }
                b"," | b";" | b")" | b"}" | b"{" | b"=" if angle == 0 => break,
                b"&" => {}
                _ => {}
            },
            TokenKind::Ident => {
                if matches!(t, b"HashMap" | b"HashSet") {
                    any_map = true;
                }
                let is_path_seg = cx.is_punct(j + 1, b":") && cx.is_punct(j + 2, b":");
                if first.is_none()
                    && !matches!(t, b"mut" | b"dyn" | b"impl" | b"const")
                    && !is_path_seg
                {
                    first = Some(t);
                }
            }
            _ => {}
        }
        j += 1;
        if j > start + 64 {
            break; // bail on pathological regions
        }
    }
    match first {
        Some(b"HashMap") | Some(b"HashSet") => TypeShape::Direct,
        _ if any_map => TypeShape::Container,
        _ => TypeShape::Other,
    }
}

/// From a position after `fn name`, finds the `->` of the signature
/// (skipping the balanced parameter parens); returns the index just
/// after `->`, or None when the fn returns `()` or braces come first.
fn find_return_arrow(cx: &Cx, start: usize) -> Option<usize> {
    let mut depth: i32 = 0;
    let mut j = start;
    while j < cx.sig.len() && j < start + 256 {
        match cx.text(j) {
            b"(" | b"[" => depth += 1,
            b")" | b"]" => depth -= 1,
            b"{" | b";" if depth <= 0 => return None,
            b"-" if depth == 0 && cx.is_punct(j + 1, b">") => return Some(j + 2),
            _ => {}
        }
        j += 1;
    }
    None
}

/// For a `for` at index `i`, finds the `in` keyword and the `{` opening
/// the loop body. Returns None for non-loop `for` (e.g. `impl X for Y`).
fn for_shape(cx: &Cx, i: usize) -> Option<(usize, usize)> {
    let mut depth: i32 = 0;
    let mut j = i + 1;
    let mut in_idx = None;
    while j < cx.sig.len() && j < i + 512 {
        match cx.sig[j].kind {
            TokenKind::Punct => match cx.text(j) {
                b"(" | b"[" => depth += 1,
                b")" | b"]" => depth -= 1,
                b"{" if depth <= 0 => {
                    return in_idx.map(|m| (m, j));
                }
                b";" if depth <= 0 => return None,
                _ => {}
            },
            TokenKind::Ident if depth == 0 && cx.text(j) == b"in" && in_idx.is_none() => {
                in_idx = Some(j);
            }
            _ => {}
        }
        j += 1;
    }
    None
}

/// Does the expression in `[s, e)` iterate a tracked map? True when it
/// mentions a direct map binding, or indexes into a map container.
fn expr_iterates_map(cx: &Cx, b: &MapBindings, s: usize, e: usize) -> bool {
    for j in s..e.min(cx.sig.len()) {
        if !cx.is_ident(j) {
            continue;
        }
        let t = cx.text(j);
        if b.direct.contains(t) {
            return true;
        }
        if b.containers.contains(t) && cx.is_punct(j + 1, b"[") {
            return true;
        }
        if b.fns.contains(t) && cx.is_punct(j + 1, b"(") {
            return true;
        }
    }
    false
}

/// Walks a method-call receiver chain backwards from the `.` at `dot`
/// and decides whether it denotes a tracked map (`m`, `self.m`,
/// `x.field[i]`, `container[i]`).
fn receiver_is_map(cx: &Cx, b: &MapBindings, dot: usize) -> bool {
    let mut j = dot; // index of the `.` before the iter method
    loop {
        if j == 0 {
            return false;
        }
        // Element before this `.`.
        let prev = j - 1;
        if cx.is_punct(prev, b"]") {
            // Skip the balanced index expression.
            let mut depth = 1i32;
            let mut k = prev;
            while k > 0 && depth > 0 {
                k -= 1;
                if cx.is_punct(k, b"]") {
                    depth += 1;
                } else if cx.is_punct(k, b"[") {
                    depth -= 1;
                }
            }
            // `container[…]` → the receiver is a map element.
            if k > 0 && cx.is_ident(k - 1) {
                if b.containers.contains(cx.text(k - 1)) || b.direct.contains(cx.text(k - 1)) {
                    return true;
                }
                j = k - 1; // keep walking the chain: `a.b[…].iter()`
                continue;
            }
            return false;
        }
        if cx.is_ident(prev) {
            if b.direct.contains(cx.text(prev)) {
                return true;
            }
            // `self.field.iter()` / `a.b.iter()` — step over `.` chains.
            if prev >= 2 && cx.is_punct(prev - 1, b".") {
                j = prev - 1;
                continue;
            }
            return false;
        }
        return false;
    }
}

/// Statement boundaries around token `i`: `[start, end)` delimited by
/// `;`, `{`, `}` at the token's nesting level.
fn statement_span(cx: &Cx, i: usize) -> (usize, usize) {
    // Backward: depth counts close-brackets we must reopen.
    let mut depth: i32 = 0;
    let mut s = i;
    while s > 0 {
        let p = s - 1;
        if cx.sig[p].kind == TokenKind::Punct {
            match cx.text(p) {
                b")" | b"]" => depth += 1,
                b"(" | b"[" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b";" | b"{" | b"}" if depth == 0 => break,
                _ => {}
            }
        }
        s = p;
    }
    let mut depth: i32 = 0;
    let mut e = i;
    while e < cx.sig.len() {
        if cx.sig[e].kind == TokenKind::Punct {
            match cx.text(e) {
                b"(" | b"[" => depth += 1,
                b")" | b"]" => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                b";" | b"{" | b"}" if depth == 0 => break,
                _ => {}
            }
        }
        e += 1;
    }
    (s, e)
}

/// The two sanctioned D2 shapes for an iterator-method statement:
/// a canonicalizer in the same statement, or `let`-binding followed by
/// an immediate sort of the bound name.
fn statement_is_canonicalized(cx: &Cx, i: usize) -> bool {
    let (s, e) = statement_span(cx, i);
    if (s..e).any(|j| cx.is_ident(j) && is_sortish(cx.text(j))) {
        return true;
    }
    // `let [mut] NAME = …;  NAME.sort…(…)` or `NAME = …; NAME.sort…`.
    let mut j = s;
    if cx.text(j) == b"let" {
        j += 1;
    }
    if cx.text(j) == b"mut" {
        j += 1;
    }
    if !cx.is_ident(j) {
        return false;
    }
    let name = cx.text(j);
    // Optional `: Type` annotation before the `=`.
    let mut k = j + 1;
    if cx.is_punct(k, b":") && !cx.is_punct(k + 1, b":") {
        let mut angle: i32 = 0;
        k += 1;
        while k < e {
            match cx.text(k) {
                b"<" => angle += 1,
                b">" => angle -= 1,
                b"=" if angle <= 0 => break,
                _ => {}
            }
            k += 1;
        }
    }
    if !cx.is_punct(k, b"=") {
        return false;
    }
    // First tokens of the next statement.
    if e < cx.sig.len() && cx.is_punct(e, b";") {
        let n = e + 1;
        if cx.is_ident(n)
            && cx.text(n) == name
            && cx.is_punct(n + 1, b".")
            && cx.is_ident(n + 2)
            && is_sortish(cx.text(n + 2))
        {
            return true;
        }
    }
    false
}

/// After a `for` body closes, does the very next statement sort
/// something (the accumulate-then-sort idiom)?
fn stmt_after_block_sorts(cx: &Cx, body_open: usize) -> bool {
    let mut depth = 0i32;
    let mut j = body_open;
    while j < cx.sig.len() {
        if cx.sig[j].kind == TokenKind::Punct {
            match cx.text(j) {
                b"{" => depth += 1,
                b"}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    // Scan the following statement (bounded look-ahead).
    let mut k = j + 1;
    let end = (k + 16).min(cx.sig.len());
    while k < end {
        if cx.is_punct(k, b";") || cx.is_punct(k, b"{") || cx.is_punct(k, b"}") {
            break;
        }
        if cx.is_ident(k) && is_sortish(cx.text(k)) {
            return true;
        }
        k += 1;
    }
    false
}
