//! `lesm-lint` — command-line front end for the workspace auditor.
//!
//! ```text
//! lesm-lint --workspace [--root DIR]   # audit every governed file
//! lesm-lint [--root DIR] FILE...       # audit specific files (workspace-relative)
//!
//! --passes LIST    comma list of tokens,taint,unsafe,casts (default: all)
//! --format FMT     human (default) or json
//! --timing         print per-pass wall time to stderr
//! ```
//!
//! File mode still loads the whole workspace — the taint pass needs the
//! full call graph even to judge one file — and then reports only the
//! violations landing in the named files.
//!
//! Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use lesm_lint::{FileViolation, Pass, Workspace};

enum Format {
    Human,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut files: Vec<String> = Vec::new();
    let mut passes: Vec<Pass> = Pass::ALL.to_vec();
    let mut format = Format::Human;
    let mut timing = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--timing" => timing = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--passes" => match it.next() {
                Some(spec) => match lesm_lint::parse_passes(spec) {
                    Ok(p) => passes = p,
                    Err(e) => return usage(&e),
                },
                None => return usage("--passes needs a comma list (tokens,taint,unsafe,casts | all)"),
            },
            "--format" => match it.next().map(String::as_str) {
                Some("human") => format = Format::Human,
                Some("json") => format = Format::Json,
                Some(other) => return usage(&format!("unknown format `{other}` (human | json)")),
                None => return usage("--format needs an argument (human | json)"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: lesm-lint (--workspace | FILE...) [--root DIR] [--passes LIST] \
                     [--format human|json] [--timing]\n\n\
                     Audits lesm workspace sources against the determinism & robustness\n\
                     contract (DESIGN.md §11, §16) in four passes:\n\n\
                     tokens  D1 no partial_cmp ordering; D2 no un-canonicalized HashMap/\n\
                     \x20       HashSet iteration; D3 no ambient nondeterminism; R1 no unwrap/\n\
                     \x20       panic in library code; R2 no console output in library code;\n\
                     \x20       P0 malformed allow-pragma\n\
                     taint   D4 ambient/hash-order values reaching pub APIs or wire paths\n\
                     \x20       through the call graph\n\
                     unsafe  U1 unsafe needs adjacent // SAFETY:; U2 raw-memory primitives\n\
                     \x20       confined to allowlisted modules; U3 #[target_feature] fns\n\
                     \x20       non-pub and runtime-gated\n\
                     casts   W1 lossy `as` casts on wire paths (serve/query)\n\n\
                     Escape hatch: // lesm-lint: allow(RULE) — mandatory reason"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            other => files.push(other.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        return usage("nothing to lint: pass --workspace or one or more files");
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match lesm_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("lesm-lint: cannot find workspace root from {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("lesm-lint: {e}");
            return ExitCode::from(2);
        }
    };

    // The library stays clock-free (its own D3/D4 rules); only this
    // binary, which never feeds timing into any output byte stream,
    // reads the monotonic clock — and only onto stderr.
    let mut all: Vec<FileViolation> = Vec::new();
    for &pass in &passes {
        let t0 = Instant::now();
        all.extend(lesm_lint::run_pass(&ws, pass));
        if timing {
            eprintln!(
                "lesm-lint: pass {:<6} {:>8.2} ms",
                pass.name(),
                t0.elapsed().as_secs_f64() * 1e3
            );
        }
    }
    let mut violations = lesm_lint::audit_merge(all);
    if !files.is_empty() {
        let wanted: Vec<String> = files.iter().map(|f| f.replace('\\', "/")).collect();
        violations.retain(|v| wanted.iter().any(|w| w == &v.path));
    }

    match format {
        Format::Json => {
            print!("{}", lesm_lint::render_json(&violations));
        }
        Format::Human if violations.is_empty() => {
            println!("lesm-lint: clean ({})", if workspace { "workspace" } else { "files" });
        }
        Format::Human => {
            for v in &violations {
                println!("{v}");
            }
            println!("\nlesm-lint: {} violation(s)", violations.len());
        }
    }
    if violations.is_empty() { ExitCode::SUCCESS } else { ExitCode::FAILURE }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!(
        "lesm-lint: {msg}\nusage: lesm-lint (--workspace | FILE...) [--root DIR] \
         [--passes LIST] [--format human|json] [--timing]"
    );
    ExitCode::from(2)
}
