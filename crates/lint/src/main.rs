//! `lesm-lint` — command-line front end for the workspace auditor.
//!
//! ```text
//! lesm-lint --workspace [--root DIR]   # lint every governed file
//! lesm-lint [--root DIR] FILE...       # lint specific files (workspace-relative)
//! ```
//!
//! Exit status: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut root: Option<PathBuf> = None;
    let mut workspace = false;
    let mut files: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--workspace" => workspace = true,
            "--root" => match it.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory argument"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: lesm-lint (--workspace | FILE...) [--root DIR]\n\n\
                     Audits lesm workspace sources against the determinism & robustness\n\
                     contract (DESIGN.md §11). Rules: D1 no partial_cmp ordering; D2 no\n\
                     un-canonicalized HashMap/HashSet iteration; D3 no ambient\n\
                     nondeterminism; R1 no unwrap/expect/panic in library code; R2 no\n\
                     console output in library code; P0 malformed allow-pragma.\n\n\
                     Escape hatch: // lesm-lint: allow(RULE) — mandatory reason"
                );
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                return usage(&format!("unknown flag `{other}`"));
            }
            other => files.push(other.to_string()),
        }
    }
    if !workspace && files.is_empty() {
        return usage("nothing to lint: pass --workspace or one or more files");
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            match lesm_lint::find_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("lesm-lint: cannot find workspace root from {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };

    let result = if workspace {
        lesm_lint::lint_workspace(&root)
    } else {
        let mut all = Vec::new();
        let mut err = None;
        for f in &files {
            match lesm_lint::lint_file(&root, f) {
                Ok(vs) => all.extend(vs),
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            Some(e) => Err(e),
            None => Ok(all),
        }
    };

    match result {
        Ok(violations) if violations.is_empty() => {
            println!("lesm-lint: clean ({})", if workspace { "workspace" } else { "files" });
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("\nlesm-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lesm-lint: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("lesm-lint: {msg}\nusage: lesm-lint (--workspace | FILE...) [--root DIR]");
    ExitCode::from(2)
}
