//! The `lesm` command-line tool (thin shell over [`lesm_cli`]).

use lesm_cli::{parse_args, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = run(command);
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Synth { docs, seed } => {
            let papers = lesm_corpus::synth::SyntheticPapers::generate(
                &lesm_corpus::synth::PapersConfig::dblp(docs, seed),
            )
            .map_err(|e| e.to_string())?;
            let stdout = std::io::stdout();
            lesm_corpus::io::write_tsv(&papers.corpus, stdout.lock())
                .map_err(|e| e.to_string())
        }
        Command::Mine { input, k, depth, threads, em_tol } => {
            let corpus = lesm_cli::load_corpus(&input)?;
            let json = lesm_cli::run_mine(&corpus, k, depth, threads, em_tol)?;
            print!("{json}");
            Ok(())
        }
        Command::Search { input, query } => {
            let corpus = lesm_cli::load_corpus(&input)?;
            for line in lesm_cli::run_search(&corpus, &query, 4, 1)? {
                println!("{line}");
            }
            Ok(())
        }
        Command::Advisors { input } => {
            let corpus = lesm_cli::load_corpus(&input)?;
            print!("{}", lesm_cli::run_advisors(&corpus)?);
            Ok(())
        }
    }
}
