//! The `lesm` command-line tool (thin shell over [`lesm_cli`]).

use lesm_cli::{parse_args, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = run(command);
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Synth { docs, seed } => {
            let papers = lesm_corpus::synth::SyntheticPapers::generate(
                &lesm_corpus::synth::PapersConfig::dblp(docs, seed),
            )
            .map_err(|e| e.to_string())?;
            let stdout = std::io::stdout();
            lesm_corpus::io::write_tsv(&papers.corpus, stdout.lock())
                .map_err(|e| e.to_string())
        }
        Command::Mine { input, k, depth, threads, em_tol } => {
            let corpus = lesm_cli::load_corpus(&input)?;
            let json = lesm_cli::run_mine(&corpus, k, depth, threads, em_tol)?;
            print!("{json}");
            Ok(())
        }
        Command::Snapshot { input, output, k, depth, threads, em_tol } => {
            let corpus = lesm_cli::load_corpus(&input)?;
            let summary = lesm_cli::run_snapshot(&corpus, &output, k, depth, threads, em_tol)?;
            println!("{summary}");
            Ok(())
        }
        Command::Serve { snapshot, addr, workers, cache, shutdown_file } => {
            let snap = lesm_serve::load_snapshot_file(&snapshot).map_err(|e| e.to_string())?;
            let config = lesm_serve::ServerConfig {
                addr,
                workers,
                cache_capacity: cache,
                shutdown_file: shutdown_file.map(std::path::PathBuf::from),
                ..lesm_serve::ServerConfig::default()
            };
            let handle = lesm_serve::Server::start(snap, config).map_err(|e| e.to_string())?;
            println!("listening on http://{}", handle.addr());
            handle.join();
            Ok(())
        }
        Command::Search { input, query } => {
            for line in lesm_cli::run_search_input(&input, &query, 4, 1)? {
                println!("{line}");
            }
            Ok(())
        }
        Command::Advisors { input } => {
            let corpus = lesm_cli::load_corpus(&input)?;
            print!("{}", lesm_cli::run_advisors(&corpus)?);
            Ok(())
        }
    }
}
