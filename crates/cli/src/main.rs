//! The `lesm` command-line tool (thin shell over [`lesm_cli`]).

use std::io::Write;

use lesm_cli::{parse_args, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = match parse_args(&args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let outcome = run(command);
    if let Err(e) = outcome {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Writes to stdout without panicking when the read end has gone away
/// (`lesm ... | head` closes the pipe early): `BrokenPipe` is a clean
/// exit, any other stdout failure a typed error. `println!` would panic
/// on EPIPE because Rust starts with SIGPIPE ignored.
fn emit(text: &str) -> Result<(), String> {
    let mut out = std::io::stdout().lock();
    match out.write_all(text.as_bytes()).and_then(|()| out.flush()) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
        Err(e) => Err(format!("cannot write to stdout: {e}")),
    }
}

fn run(command: Command) -> Result<(), String> {
    match command {
        Command::Help => emit(USAGE),
        Command::Synth { docs, seed } => {
            let papers = lesm_corpus::synth::SyntheticPapers::generate(
                &lesm_corpus::synth::PapersConfig::dblp(docs, seed),
            )
            .map_err(|e| e.to_string())?;
            let stdout = std::io::stdout();
            match lesm_corpus::io::write_tsv(&papers.corpus, stdout.lock()) {
                Ok(()) => Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::BrokenPipe => std::process::exit(0),
                Err(e) => Err(e.to_string()),
            }
        }
        Command::Mine { input, k, depth, threads, em_tol, par_threshold } => {
            if let Some(units) = par_threshold {
                lesm_par::set_par_threshold(units);
            }
            let corpus = lesm_cli::load_corpus(&input)?;
            let json = lesm_cli::run_mine(&corpus, k, depth, threads, em_tol)?;
            emit(&json)
        }
        Command::Snapshot { input, output, k, depth, threads, em_tol, par_threshold, format } => {
            if let Some(units) = par_threshold {
                lesm_par::set_par_threshold(units);
            }
            let corpus = lesm_cli::load_corpus(&input)?;
            let summary =
                lesm_cli::run_snapshot(&corpus, &output, k, depth, threads, em_tol, format)?;
            emit(&format!("{summary}\n"))
        }
        Command::Inspect { input } => {
            let report =
                lesm_serve::describe_artifact_file(&input).map_err(|e| e.to_string())?;
            emit(&report)
        }
        Command::Shard { snapshot, out_dir, by, shards } => {
            let summary = lesm_cli::run_shard(&snapshot, &out_dir, &by, shards)?;
            emit(&format!("{summary}\n"))
        }
        Command::Serve { snapshot, addr, workers, cache, queue, shutdown_file } => {
            let config = lesm_serve::ServerConfig {
                addr,
                workers,
                cache_capacity: cache,
                queue_depth: queue,
                shutdown_file: shutdown_file.map(std::path::PathBuf::from),
                ..lesm_serve::ServerConfig::default()
            };
            let path = std::path::Path::new(&snapshot);
            let handle = match lesm_cli::classify_serve_input(&snapshot) {
                lesm_cli::ServeInput::Store => {
                    lesm_serve::Server::start_store(path, config).map_err(|e| e.to_string())?
                }
                lesm_cli::ServeInput::Manifest => {
                    lesm_serve::Server::start_sharded(path, config).map_err(|e| e.to_string())?
                }
                lesm_cli::ServeInput::Artifact => {
                    let model =
                        lesm_serve::load_model_file(&snapshot).map_err(|e| e.to_string())?;
                    lesm_serve::Server::start_model(model, config).map_err(|e| e.to_string())?
                }
            };
            emit(&format!("listening on http://{}\n", handle.addr()))?;
            handle.join();
            Ok(())
        }
        Command::Search { input, query } => {
            for line in lesm_cli::run_search_input(&input, &query, 4, 1)? {
                emit(&format!("{line}\n"))?;
            }
            Ok(())
        }
        Command::Update {
            target,
            delta,
            k,
            depth,
            threads,
            update_iters,
            update_tol,
            max_delta_chain,
        } => {
            let summary = lesm_cli::run_update(
                &target,
                &delta,
                k,
                depth,
                threads,
                update_iters,
                update_tol,
                max_delta_chain,
            )?;
            emit(&format!("{summary}\n"))
        }
        Command::Query { snapshot, query } => {
            let response = lesm_cli::run_query_input(&snapshot, &query)?;
            emit(&format!("{response}\n"))
        }
        Command::Advisors { input } => {
            let corpus = lesm_cli::load_corpus(&input)?;
            emit(&lesm_cli::run_advisors(&corpus)?)
        }
    }
}
