//! Library backing the `lesm` command-line tool.
//!
//! Subcommands:
//!
//! * `lesm synth --docs N --seed S` — emit a synthetic DBLP-like corpus
//!   as TSV (for demos and smoke tests);
//! * `lesm mine <corpus.tsv> [--k K --depth D]` — mine a topical
//!   hierarchy and print it as JSON;
//! * `lesm snapshot <corpus.tsv> <out.lesm>` — mine once and persist the
//!   structure as a binary snapshot artifact;
//! * `lesm serve <snapshot.lesm> --addr HOST:PORT --workers N` — serve
//!   `/search`, `/topics/{id}` and `/hierarchy` from a snapshot;
//! * `lesm update <store_dir | snapshot.lesm> <new.tsv>` — append
//!   documents to an existing model and refresh it by warm-started
//!   incremental EM, publishing into the store (hot-swap) or over the
//!   snapshot file;
//! * `lesm search <corpus.tsv | snapshot.lesm> <query…>` — topic-aware
//!   document search (snapshot inputs, detected by magic bytes, skip
//!   re-mining entirely);
//! * `lesm advisors <corpus.tsv>` — TPFG advisor–advisee mining over the
//!   corpus' author/year structure, rendered as an advising forest.
//!
//! Argument parsing is hand-rolled (the workspace avoids a CLI
//! dependency); all logic lives here so it is unit-testable, and
//! `main.rs` stays a thin shell.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_corpus::synth::GenPaper;
use lesm_corpus::{Corpus, LoadOptions};
use lesm_hier::em::{EmConfig, WeightMode};
use lesm_hier::hierarchy::{CathyConfig, ChildCount};
use lesm_relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm_relations::tpfg::{Tpfg, TpfgConfig};
use lesm_relations::AdvisingForest;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Emit a synthetic corpus as TSV.
    Synth {
        /// Number of documents.
        docs: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Mine a hierarchy and print JSON.
    Mine {
        /// Input TSV path.
        input: String,
        /// Children per topic.
        k: usize,
        /// Hierarchy depth.
        depth: usize,
        /// Worker threads (`0` = all available cores).
        threads: usize,
        /// EM early-exit tolerance (`0` = run every iteration).
        em_tol: f64,
        /// Adaptive-dispatch cutoff in abstract work units (`None` keeps
        /// the library default). Does not affect results, only whether
        /// small calls fan out to worker threads.
        par_threshold: Option<u64>,
    },
    /// Mine a hierarchy and persist it as a binary snapshot.
    Snapshot {
        /// Input TSV path.
        input: String,
        /// Output `.lesm` artifact path.
        output: String,
        /// Children per topic.
        k: usize,
        /// Hierarchy depth.
        depth: usize,
        /// Worker threads (`0` = all available cores).
        threads: usize,
        /// EM early-exit tolerance (`0` = run every iteration).
        em_tol: f64,
        /// Adaptive-dispatch cutoff in abstract work units (`None` keeps
        /// the library default).
        par_threshold: Option<u64>,
        /// Artifact format version to write (1 or 2; 2 is the default).
        format: u32,
    },
    /// Dump a snapshot artifact's section table (`lesm snapshot inspect`).
    Inspect {
        /// The `.lesm` artifact to describe.
        input: String,
    },
    /// Split a snapshot into per-shard artifacts plus a manifest.
    Shard {
        /// Input `.lesm` snapshot path (any format version).
        snapshot: String,
        /// Output directory for the shard artifacts and `manifest.json`.
        out_dir: String,
        /// Assignment strategy: `entity-range` or `topic-subtree`.
        by: String,
        /// Number of shards (>= 1).
        shards: usize,
    },
    /// Serve queries from a snapshot artifact, a shard manifest, or a
    /// versioned snapshot store directory.
    Serve {
        /// Input: `.lesm` snapshot, shard `manifest.json`, or store dir.
        snapshot: String,
        /// Bind address (`HOST:PORT`; port 0 picks an ephemeral port).
        addr: String,
        /// Worker-thread count.
        workers: usize,
        /// Response-cache capacity in entries (must be >= 1).
        cache: usize,
        /// Accept-queue depth before connections are shed with 503.
        queue: usize,
        /// Optional signal file; the server shuts down once it exists.
        shutdown_file: Option<String>,
    },
    /// Topic-aware search (TSV corpus or `.lesm` snapshot input).
    Search {
        /// Input TSV or snapshot path.
        input: String,
        /// Query text.
        query: String,
    },
    /// Incrementally update a snapshot or store with appended documents
    /// (warm-start EM; see DESIGN.md §15).
    Update {
        /// A versioned store directory or a `.lesm` snapshot path.
        target: String,
        /// TSV file with the documents to append.
        delta: String,
        /// Children per topic (must match the base mine).
        k: usize,
        /// Hierarchy depth (must match the base mine).
        depth: usize,
        /// Worker threads (`0` = all available cores).
        threads: usize,
        /// Warm-start EM iteration budget.
        update_iters: usize,
        /// Warm-start EM relative-improvement tolerance.
        update_tol: f64,
        /// Delta chain length that forces compaction to a full artifact.
        max_delta_chain: u64,
    },
    /// Typed structural query against a snapshot (`lesm-query` engine).
    Query {
        /// Input `.lesm` snapshot path (either format version).
        snapshot: String,
        /// Program: an inline JSON literal (starts with `{`) or a path
        /// to a JSON file.
        query: String,
    },
    /// Advisor-advisee mining.
    Advisors {
        /// Input TSV path.
        input: String,
    },
    /// Print usage.
    Help,
}

/// Parses command-line arguments (excluding `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "synth" => {
            let mut docs = 1000usize;
            let mut seed = 42u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--docs" => docs = next_value(&mut it, flag)?,
                    "--seed" => seed = next_value(&mut it, flag)?,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Command::Synth { docs, seed })
        }
        "mine" => {
            let input = it.next().ok_or("mine needs an input path")?.clone();
            let mut k = 4usize;
            let mut depth = 2usize;
            let mut threads = 0usize;
            let mut em_tol = 0.0f64;
            let mut par_threshold = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--k" => k = next_value(&mut it, flag)?,
                    "--depth" => depth = next_value(&mut it, flag)?,
                    "--threads" => threads = next_value(&mut it, flag)?,
                    "--em-tol" => em_tol = next_value(&mut it, flag)?,
                    "--par-threshold" => par_threshold = Some(next_value(&mut it, flag)?),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if k == 0 || depth == 0 {
                return Err("--k and --depth must be positive".into());
            }
            if em_tol < 0.0 || !em_tol.is_finite() {
                return Err("--em-tol must be a finite non-negative number".into());
            }
            Ok(Command::Mine { input, k, depth, threads, em_tol, par_threshold })
        }
        "snapshot" => {
            let input = it.next().ok_or("snapshot needs an input path")?.clone();
            if input == "inspect" {
                let input = it.next().ok_or("snapshot inspect needs an artifact path")?.clone();
                if it.next().is_some() {
                    return Err("snapshot inspect takes exactly one path".into());
                }
                return Ok(Command::Inspect { input });
            }
            let output = it.next().ok_or("snapshot needs an output path")?.clone();
            let mut k = 4usize;
            let mut depth = 2usize;
            let mut threads = 0usize;
            let mut em_tol = 0.0f64;
            let mut par_threshold = None;
            let mut format = 2u32;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--k" => k = next_value(&mut it, flag)?,
                    "--depth" => depth = next_value(&mut it, flag)?,
                    "--threads" => threads = next_value(&mut it, flag)?,
                    "--em-tol" => em_tol = next_value(&mut it, flag)?,
                    "--par-threshold" => par_threshold = Some(next_value(&mut it, flag)?),
                    "--format" => {
                        let raw: String = next_value(&mut it, flag)?;
                        format = match raw.as_str() {
                            "v1" | "1" => 1,
                            "v2" | "2" => 2,
                            other => return Err(format!("--format got {other:?}; use v1 or v2")),
                        };
                    }
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if k == 0 || depth == 0 {
                return Err("--k and --depth must be positive".into());
            }
            if em_tol < 0.0 || !em_tol.is_finite() {
                return Err("--em-tol must be a finite non-negative number".into());
            }
            Ok(Command::Snapshot { input, output, k, depth, threads, em_tol, par_threshold, format })
        }
        "shard" => {
            let snapshot = it.next().ok_or("shard needs a snapshot path")?.clone();
            let out_dir = it.next().ok_or("shard needs an output directory")?.clone();
            let mut by = "entity-range".to_string();
            let mut shards = 2usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--by" => by = next_value(&mut it, flag)?,
                    "--shards" => shards = next_value(&mut it, flag)?,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if lesm_serve::ShardBy::parse(&by).is_none() {
                return Err(format!("--by got {by:?}; use entity-range or topic-subtree"));
            }
            if shards == 0 {
                return Err("--shards must be >= 1".into());
            }
            Ok(Command::Shard { snapshot, out_dir, by, shards })
        }
        "serve" => {
            let snapshot = it.next().ok_or("serve needs a snapshot path")?.clone();
            let mut addr = "127.0.0.1:7878".to_string();
            let mut workers = 4usize;
            let mut cache = 1024usize;
            let mut queue = 128usize;
            let mut shutdown_file = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--addr" => addr = next_value(&mut it, flag)?,
                    "--workers" => workers = next_value(&mut it, flag)?,
                    "--cache" => cache = next_value(&mut it, flag)?,
                    "--queue" => queue = next_value(&mut it, flag)?,
                    "--shutdown-file" => shutdown_file = Some(next_value(&mut it, flag)?),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if workers == 0 {
                return Err("--workers must be >= 1 (the server needs at least one handler thread)".into());
            }
            if cache == 0 {
                return Err(
                    "--cache must be >= 1 (use a small capacity like 1 to keep reuse minimal)"
                        .into(),
                );
            }
            if queue == 0 {
                return Err("--queue must be >= 1".into());
            }
            Ok(Command::Serve { snapshot, addr, workers, cache, queue, shutdown_file })
        }
        "search" => {
            let input = it.next().ok_or("search needs an input path")?.clone();
            let query: Vec<String> = it.cloned().collect();
            if query.is_empty() {
                return Err("search needs a query".into());
            }
            Ok(Command::Search { input, query: query.join(" ") })
        }
        "advisors" => {
            let input = it.next().ok_or("advisors needs an input path")?.clone();
            Ok(Command::Advisors { input })
        }
        "update" => {
            let target =
                it.next().ok_or("update needs a store directory or snapshot path")?.clone();
            let delta = it.next().ok_or("update needs a delta TSV path")?.clone();
            let mut k = 4usize;
            let mut depth = 2usize;
            let mut threads = 0usize;
            let mut update_iters = 30usize;
            let mut update_tol = 1e-5f64;
            let mut max_delta_chain = 4u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--k" => k = next_value(&mut it, flag)?,
                    "--depth" => depth = next_value(&mut it, flag)?,
                    "--threads" => threads = next_value(&mut it, flag)?,
                    "--update-iters" => update_iters = next_value(&mut it, flag)?,
                    "--update-tol" => update_tol = next_value(&mut it, flag)?,
                    "--max-delta-chain" => max_delta_chain = next_value(&mut it, flag)?,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if k == 0 || depth == 0 {
                return Err("--k and --depth must be positive".into());
            }
            if update_iters == 0 {
                return Err("--update-iters must be >= 1".into());
            }
            if update_tol < 0.0 || !update_tol.is_finite() {
                return Err("--update-tol must be a finite non-negative number".into());
            }
            if max_delta_chain == 0 {
                return Err("--max-delta-chain must be >= 1".into());
            }
            Ok(Command::Update {
                target,
                delta,
                k,
                depth,
                threads,
                update_iters,
                update_tol,
                max_delta_chain,
            })
        }
        "query" => {
            let snapshot = it.next().ok_or("query needs a snapshot path")?.clone();
            let query = it
                .next()
                .ok_or("query needs a program (JSON file path or inline literal)")?
                .clone();
            if it.next().is_some() {
                return Err("query takes exactly one snapshot and one program argument".into());
            }
            Ok(Command::Query { snapshot, query })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command {other}; try `lesm help`")),
    }
}

fn next_value<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse().map_err(|_| {
        format!(
            "{flag} got {raw:?}, which is not a valid {}",
            std::any::type_name::<T>().rsplit("::").next().unwrap_or("value")
        )
    })
}

/// The usage text.
pub const USAGE: &str = "\
lesm — latent entity structure mining

USAGE:
  lesm synth [--docs N] [--seed S]        emit a synthetic corpus as TSV
  lesm mine <corpus.tsv> [--k K] [--depth D] [--threads T] [--em-tol TOL]
            [--par-threshold U]           mine a hierarchy, print JSON
  lesm snapshot <corpus.tsv> <out.lesm> [--k K] [--depth D] [--threads T] [--em-tol TOL]
            [--par-threshold U] [--format v1|v2]
                                          mine once, save a binary snapshot
  lesm snapshot inspect <file.lesm>       dump an artifact's section table
  lesm shard <snapshot.lesm> <out_dir> [--by entity-range|topic-subtree]
             [--shards N]                 split a snapshot into v2 shards
  lesm serve <snapshot.lesm | manifest.json | store_dir>
             [--addr HOST:PORT] [--workers N] [--cache N] [--queue N]
             [--shutdown-file PATH]       serve queries
  lesm update <store_dir | snapshot.lesm> <new.tsv> [--k K] [--depth D]
            [--threads T] [--update-iters N] [--update-tol TOL]
            [--max-delta-chain C]           append documents and refresh the
                                          model by warm-started incremental EM
  lesm search <corpus.tsv | snapshot.lesm> <query...>
                                          topic-aware document search
  lesm query <snapshot.lesm> <query.json | '{...}'>
                                          typed structural query (JSON program)
  lesm advisors <corpus.tsv>              mine advisor-advisee relations

`--threads 0` (the default) uses every available core; any thread count
produces identical output. `--par-threshold U` sets the adaptive-dispatch
cutoff in abstract work units (~1 unit per f64 multiply-add): parallel
calls carrying less work than U run on one thread to skip fan-out
overhead. It changes scheduling only, never results.
`--em-tol` stops each EM run once the relative
objective improvement drops below TOL (0, the default, always runs the
full iteration budget). `search` detects snapshot inputs by their magic
bytes and answers from the persisted structure without re-mining; format
v2 artifacts (the default) are mapped zero-copy. `query` runs a composable
filter/traverse/path/rank pipeline (see README \"Querying\" and DESIGN.md
§14) and prints the JSON response a server's POST /query returns for the
same program. The server exposes GET
/search?q=...&top=N, /topics/{id}, /hierarchy, /healthz and /metrics,
plus POST /query, sheds connections with 503 once `--queue` accepted connections are
waiting, and shuts down gracefully once the `--shutdown-file` path
exists. Serving a shard manifest boots one local server per shard plus a
front that merges byte-identically to an unsharded server; serving a
store directory hot-swaps to each newly published snapshot version.
`update` appends the TSV documents to the model's corpus (append-only:
every existing id stays stable), warm-starts EM from the previous fit
under the `--update-iters`/`--update-tol` budget, and publishes the
result — into the store as the next version (a serving `lesm serve
store_dir` hot-swaps to it), or atomically over the snapshot file. The
artifact records its delta lineage; once a chain of updates exceeds
`--max-delta-chain`, the artifact is written compacted (no lineage) and
the chain restarts. Same base + same update sequence = byte-identical
artifacts and responses, for any `--threads`.

TSV format (one doc per line):
  title text<TAB>etype=name|etype=name<TAB>year
";

/// Default miner configuration used by the CLI. `threads = 0` resolves to
/// all available cores; any value produces identical output. `em_tol = 0`
/// disables the EM early exit.
pub fn cli_miner_config(k: usize, depth: usize, threads: usize, em_tol: f64) -> MinerConfig {
    MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::Fixed(k),
            max_depth: depth,
            em: EmConfig {
                iters: 200,
                restarts: 4,
                seed: 7,
                background: true,
                weights: WeightMode::Learned,
                ..EmConfig::default()
            },
            min_links: 20,
            subnet_threshold: 0.5,
        },
        threads,
        em_tol,
        ..MinerConfig::default()
    }
}

/// Runs `mine` on an already-loaded corpus; returns the JSON.
pub fn run_mine(
    corpus: &Corpus,
    k: usize,
    depth: usize,
    threads: usize,
    em_tol: f64,
) -> Result<String, String> {
    let mined = LatentStructureMiner::mine(corpus, &cli_miner_config(k, depth, threads, em_tol))
        .map_err(|e| e.to_string())?;
    Ok(lesm_core::export::hierarchy_to_json(corpus, &mined, 10))
}

/// Renders the top-10 search hits for `query` against an already-mined
/// structure (shared by the TSV path, the snapshot path, and the server).
pub fn search_lines(corpus: &Corpus, mined: &MinedStructure, query: &str) -> Vec<String> {
    let hits = lesm_core::search::search(corpus, mined, query, 10);
    lesm_core::search::render_hits(corpus, mined, &hits)
}

/// Runs `search` on a TSV corpus (mines first); returns rendered lines.
pub fn run_search(corpus: &Corpus, query: &str, k: usize, depth: usize) -> Result<Vec<String>, String> {
    let mined = LatentStructureMiner::mine(corpus, &cli_miner_config(k, depth, 0, 0.0))
        .map_err(|e| e.to_string())?;
    Ok(search_lines(corpus, &mined, query))
}

/// Runs `search` on either input kind: `.lesm` snapshots (detected by
/// magic bytes; both format versions) answer from the persisted
/// structure without re-mining — v2 artifacts map zero-copy; anything
/// else is loaded as TSV and mined with the default CLI config.
pub fn run_search_input(
    input: &str,
    query: &str,
    k: usize,
    depth: usize,
) -> Result<Vec<String>, String> {
    if lesm_serve::is_snapshot_file(input) {
        let model = lesm_serve::load_model_file(input).map_err(|e| e.to_string())?;
        Ok(model.search_lines(query, 10))
    } else {
        let corpus = load_corpus(input)?;
        run_search(&corpus, query, k, depth)
    }
}

/// Runs `snapshot`: mines `corpus` with the default CLI config and writes
/// the binary artifact to `output` in the requested format version.
/// Returns a human-readable summary.
pub fn run_snapshot(
    corpus: &Corpus,
    output: &str,
    k: usize,
    depth: usize,
    threads: usize,
    em_tol: f64,
    format: u32,
) -> Result<String, String> {
    let mined = LatentStructureMiner::mine(corpus, &cli_miner_config(k, depth, threads, em_tol))
        .map_err(|e| e.to_string())?;
    match format {
        1 => lesm_serve::save_snapshot_file(output, corpus, &mined).map_err(|e| e.to_string())?,
        2 => {
            lesm_serve::save_snapshot_v2_file(output, corpus, &mined).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unsupported snapshot format v{other}")),
    }
    let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "wrote {output} (format v{format}): {} topics, {} docs, {bytes} bytes",
        mined.hierarchy.len(),
        corpus.num_docs()
    ))
}

/// Runs `shard`: loads the snapshot (any format version), splits its
/// documents into `shards` v2 artifacts under `out_dir`, and writes
/// `manifest.json`. Returns a human-readable summary.
pub fn run_shard(
    snapshot: &str,
    out_dir: &str,
    by: &str,
    shards: usize,
) -> Result<String, String> {
    let by = lesm_serve::ShardBy::parse(by)
        .ok_or_else(|| format!("unknown strategy {by:?}; use entity-range or topic-subtree"))?;
    let snap = match lesm_serve::load_model_file(snapshot).map_err(|e| e.to_string())? {
        lesm_serve::Model::Owned(snap) => *snap,
        lesm_serve::Model::Mapped(mapped) => mapped.to_snapshot().map_err(|e| e.to_string())?,
    };
    let manifest = lesm_serve::write_shards(
        &snap.corpus,
        &snap.mined,
        by,
        shards,
        std::path::Path::new(out_dir),
    )
    .map_err(|e| e.to_string())?;
    let docs: Vec<String> = manifest.docs.iter().map(usize::to_string).collect();
    Ok(format!(
        "wrote {} shards by {} to {out_dir} (docs per shard: {}), manifest.json",
        manifest.files.len(),
        manifest.by,
        docs.join("/"),
    ))
}

/// What `lesm serve` was pointed at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeInput {
    /// A single `.lesm` artifact (either format version).
    Artifact,
    /// A shard `manifest.json` — boot shard servers plus a front.
    Manifest,
    /// A versioned snapshot store directory — serve with hot-swap.
    Store,
}

/// Classifies the `lesm serve` input path by shape: a directory with a
/// `CURRENT` pointer is a store, a `.json` file is a shard manifest,
/// anything else is treated as a snapshot artifact.
pub fn classify_serve_input(path: &str) -> ServeInput {
    let p = std::path::Path::new(path);
    if lesm_serve::store::is_store_dir(p) {
        ServeInput::Store
    } else if p.extension().is_some_and(|e| e == "json") {
        ServeInput::Manifest
    } else {
        ServeInput::Artifact
    }
}

/// Converts a corpus with author links and years into TPFG paper records.
///
/// The author entity type is located by name (`"author"`); docs lacking a
/// year or authors are skipped.
pub fn corpus_to_papers(corpus: &Corpus) -> Result<(Vec<GenPaper>, usize), String> {
    let author = author_type(corpus)?;
    let n_authors = corpus.entities.count(author);
    let papers: Vec<GenPaper> = corpus
        .docs
        .iter()
        .filter_map(|d| {
            let year = d.year?;
            let authors: Vec<u32> = d.entities_of(author).collect();
            if authors.is_empty() {
                None
            } else {
                Some(GenPaper { year, authors })
            }
        })
        .collect();
    if papers.is_empty() {
        return Err("no documents with both a year and author links".into());
    }
    Ok((papers, n_authors))
}

/// Locates the `"author"` entity type (shared by [`corpus_to_papers`] and
/// [`run_advisors`], so neither needs to re-derive — or assume — its
/// presence).
fn author_type(corpus: &Corpus) -> Result<usize, String> {
    (0..corpus.entities.num_types())
        .find(|&t| corpus.entities.type_name(t) == Some("author"))
        .ok_or_else(|| "corpus has no 'author' entity type".into())
}

/// Runs `query`: loads the snapshot (either format version), builds the
/// query index, and executes the JSON program — the same
/// `lesm_query::run_query` code path a server's `POST /query` runs, so
/// the returned response is byte-identical to a served response body
/// (the binary appends one trailing newline when printing). `query` is
/// an inline program when it starts with `{`, otherwise a file path.
pub fn run_query_input(snapshot: &str, query: &str) -> Result<String, String> {
    let body = if query.trim_start().starts_with('{') {
        query.to_string()
    } else {
        std::fs::read_to_string(query).map_err(|e| format!("cannot read {query}: {e}"))?
    };
    let model = lesm_serve::load_model_file(snapshot).map_err(|e| e.to_string())?;
    let parts = model.query_parts()?;
    let index = lesm_query::QueryIndex::build(parts).map_err(|e| e.to_string())?;
    lesm_query::run_query(&index, &body).map_err(|e| e.to_string())
}

/// Runs `update`: loads the base model from a store directory (its
/// `CURRENT` version) or a `.lesm` snapshot file, appends the delta TSV
/// documents to its corpus, refines the structure by warm-started
/// incremental EM under the given budget, and publishes the result — as
/// the store's next version, or atomically over the snapshot file. The
/// published artifact is always format v2 and carries delta lineage
/// unless the update chain exceeded `max_delta_chain`, in which case it
/// is written compacted (no lineage) and the chain restarts.
///
/// Determinism: the same base plus the same delta file produces a
/// byte-identical artifact, for any `threads` value.
#[allow(clippy::too_many_arguments)]
pub fn run_update(
    target: &str,
    delta_tsv: &str,
    k: usize,
    depth: usize,
    threads: usize,
    update_iters: usize,
    update_tol: f64,
    max_delta_chain: u64,
) -> Result<String, String> {
    let path = std::path::Path::new(target);
    let is_store = lesm_serve::store::is_store_dir(path);
    let (base_name, model) = if is_store {
        lesm_serve::store::load_current(path).map_err(|e| e.to_string())?
    } else {
        let name =
            path.file_name().and_then(|n| n.to_str()).unwrap_or(target).to_string();
        (name, lesm_serve::load_model_file(target).map_err(|e| e.to_string())?)
    };
    // Lineage only travels on v2 artifacts; a v1 base starts a new chain.
    let base_chain = match &model {
        lesm_serve::Model::Mapped(m) => m.delta_info().map_or(0, |d| d.chain_depth),
        lesm_serve::Model::Owned(_) => 0,
    };
    let snap = match model {
        lesm_serve::Model::Owned(snap) => *snap,
        lesm_serve::Model::Mapped(m) => m.to_snapshot().map_err(|e| e.to_string())?,
    };
    let lesm_serve::Snapshot { corpus: mut merged, mined: base } = snap;
    let base_docs = merged.num_docs();
    let base_words = merged.num_words();
    let base_entities: Vec<u64> =
        (0..merged.entities.num_types()).map(|t| merged.entities.count(t) as u64).collect();

    let file = std::fs::File::open(delta_tsv)
        .map_err(|e| format!("cannot open {delta_tsv}: {e}"))?;
    let appended = lesm_corpus::append_tsv(
        &mut merged,
        std::io::BufReader::new(file),
        &LoadOptions::default(),
    )
    .map_err(|e| e.to_string())?;

    let budget = lesm_core::UpdateBudget { iters: update_iters, tol: update_tol };
    let config = cli_miner_config(k, depth, threads, 0.0);
    let updated = LatentStructureMiner::update(&merged, &base, base_docs, &config, &budget)
        .map_err(|e| e.to_string())?;

    let chain_depth = base_chain + 1;
    let compact = chain_depth > max_delta_chain;
    let bytes = if compact {
        lesm_serve::save_snapshot_v2(&merged, &updated).map_err(|e| e.to_string())?
    } else {
        let lineage = lesm_serve::DeltaInfo {
            base_artifact: base_name.clone(),
            base_docs: base_docs as u64,
            base_words: base_words as u64,
            base_entities,
            chain_depth,
        };
        lesm_serve::save_snapshot_v2_with_lineage(&merged, &updated, None, Some(&lineage))
            .map_err(|e| e.to_string())?
    };
    let published = if is_store {
        lesm_serve::store::publish(path, &bytes).map_err(|e| e.to_string())?
    } else {
        // Atomic in-place replace: a concurrent reader sees the old or the
        // new artifact in full, never a torn file.
        let tmp = format!("{target}.tmp");
        std::fs::write(&tmp, &bytes).map_err(|e| format!("cannot write {tmp}: {e}"))?;
        std::fs::rename(&tmp, target).map_err(|e| format!("cannot replace {target}: {e}"))?;
        base_name.clone()
    };
    Ok(format!(
        "updated {base_name} -> {published}: +{appended} docs ({} total), {}, {} bytes",
        merged.num_docs(),
        if compact {
            "compacted (chain reset)".to_string()
        } else {
            format!("delta chain depth {chain_depth}")
        },
        bytes.len()
    ))
}

/// Runs `advisors`; returns the rendered advising forest.
pub fn run_advisors(corpus: &Corpus) -> Result<String, String> {
    let (papers, n_authors) = corpus_to_papers(corpus)?;
    let author = author_type(corpus)?;
    let graph = CandidateGraph::build(&papers, n_authors, &PreprocessConfig::default())
        .map_err(|e| e.to_string())?;
    let result = Tpfg::infer(&graph, &TpfgConfig::default()).map_err(|e| e.to_string())?;
    let forest = AdvisingForest::from_result(&result, 1, 0.3);
    let name = |a: u32| {
        corpus
            .entities
            .name(lesm_corpus::EntityRef::new(author, a))
            .to_string()
    };
    Ok(forest.render(&name, 10))
}

/// Loads a TSV corpus from a file path.
pub fn load_corpus(path: &str) -> Result<Corpus, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    lesm_corpus::load_tsv(std::io::BufReader::new(file), &LoadOptions::default())
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_subcommands() {
        assert_eq!(
            parse_args(&s(&["synth", "--docs", "50", "--seed", "9"])).unwrap(),
            Command::Synth { docs: 50, seed: 9 }
        );
        assert_eq!(
            parse_args(&s(&["mine", "in.tsv", "--k", "3", "--depth", "1"])).unwrap(),
            Command::Mine {
                input: "in.tsv".into(),
                k: 3,
                depth: 1,
                threads: 0,
                em_tol: 0.0,
                par_threshold: None
            }
        );
        assert_eq!(
            parse_args(&s(&["mine", "in.tsv", "--threads", "4"])).unwrap(),
            Command::Mine {
                input: "in.tsv".into(),
                k: 4,
                depth: 2,
                threads: 4,
                em_tol: 0.0,
                par_threshold: None
            }
        );
        assert_eq!(
            parse_args(&s(&["mine", "in.tsv", "--em-tol", "1e-6"])).unwrap(),
            Command::Mine {
                input: "in.tsv".into(),
                k: 4,
                depth: 2,
                threads: 0,
                em_tol: 1e-6,
                par_threshold: None
            }
        );
        assert_eq!(
            parse_args(&s(&["mine", "in.tsv", "--par-threshold", "4096"])).unwrap(),
            Command::Mine {
                input: "in.tsv".into(),
                k: 4,
                depth: 2,
                threads: 0,
                em_tol: 0.0,
                par_threshold: Some(4096)
            }
        );
        assert_eq!(
            parse_args(&s(&["snapshot", "in.tsv", "out.lesm", "--par-threshold", "0"])).unwrap(),
            Command::Snapshot {
                input: "in.tsv".into(),
                output: "out.lesm".into(),
                k: 4,
                depth: 2,
                threads: 0,
                em_tol: 0.0,
                par_threshold: Some(0),
                format: 2
            }
        );
        assert_eq!(
            parse_args(&s(&["snapshot", "in.tsv", "out.lesm", "--format", "v1"])).unwrap(),
            Command::Snapshot {
                input: "in.tsv".into(),
                output: "out.lesm".into(),
                k: 4,
                depth: 2,
                threads: 0,
                em_tol: 0.0,
                par_threshold: None,
                format: 1
            }
        );
        assert_eq!(
            parse_args(&s(&["snapshot", "inspect", "art.lesm"])).unwrap(),
            Command::Inspect { input: "art.lesm".into() }
        );
        assert_eq!(
            parse_args(&s(&["shard", "art.lesm", "out", "--by", "topic-subtree", "--shards", "4"]))
                .unwrap(),
            Command::Shard {
                snapshot: "art.lesm".into(),
                out_dir: "out".into(),
                by: "topic-subtree".into(),
                shards: 4
            }
        );
        assert_eq!(
            parse_args(&s(&["shard", "art.lesm", "out"])).unwrap(),
            Command::Shard {
                snapshot: "art.lesm".into(),
                out_dir: "out".into(),
                by: "entity-range".into(),
                shards: 2
            }
        );
        assert_eq!(
            parse_args(&s(&["search", "in.tsv", "query", "processing"])).unwrap(),
            Command::Search { input: "in.tsv".into(), query: "query processing".into() }
        );
        assert_eq!(
            parse_args(&s(&["advisors", "in.tsv"])).unwrap(),
            Command::Advisors { input: "in.tsv".into() }
        );
        assert_eq!(
            parse_args(&s(&["query", "art.lesm", "q.json"])).unwrap(),
            Command::Query { snapshot: "art.lesm".into(), query: "q.json".into() }
        );
        assert_eq!(
            parse_args(&s(&["query", "art.lesm", "{\"steps\":[]}"])).unwrap(),
            Command::Query { snapshot: "art.lesm".into(), query: "{\"steps\":[]}".into() }
        );
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&s(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(parse_args(&s(&["mine"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--k", "zero"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--k", "0"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--em-tol", "-1"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--em-tol", "NaN"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--par-threshold", "-1"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--par-threshold", "lots"])).is_err());
        assert!(parse_args(&s(&["search", "x"])).is_err());
        assert!(parse_args(&s(&["frobnicate"])).is_err());
        assert!(parse_args(&s(&["synth", "--bogus", "1"])).is_err());
        assert!(parse_args(&s(&["serve", "m.lesm", "--workers", "0"])).is_err());
        assert!(parse_args(&s(&["serve", "m.lesm", "--cache", "0"])).is_err());
        assert!(parse_args(&s(&["serve", "m.lesm", "--queue", "0"])).is_err());
        assert!(parse_args(&s(&["snapshot", "in.tsv", "out.lesm", "--format", "v3"])).is_err());
        assert!(parse_args(&s(&["snapshot", "inspect"])).is_err());
        assert!(parse_args(&s(&["snapshot", "inspect", "a.lesm", "b.lesm"])).is_err());
        assert!(parse_args(&s(&["shard", "a.lesm"])).is_err());
        assert!(parse_args(&s(&["shard", "a.lesm", "out", "--by", "vibes"])).is_err());
        assert!(parse_args(&s(&["shard", "a.lesm", "out", "--shards", "0"])).is_err());
        assert!(parse_args(&s(&["query", "a.lesm"])).is_err());
        assert!(parse_args(&s(&["query", "a.lesm", "q.json", "extra"])).is_err());
    }

    #[test]
    fn parse_errors_name_the_flag_and_the_value() {
        let e = parse_args(&s(&["mine", "x", "--k", "zero"])).unwrap_err();
        assert!(e.contains("--k") && e.contains("zero"), "unhelpful message: {e}");
        let e = parse_args(&s(&["synth", "--docs", "-3"])).unwrap_err();
        assert!(e.contains("--docs") && e.contains("-3"), "unhelpful message: {e}");
        let e = parse_args(&s(&["mine", "x", "--em-tol"])).unwrap_err();
        assert!(e.contains("--em-tol") && e.contains("needs a value"));
    }

    #[test]
    fn corpus_to_papers_extracts_author_year_records() {
        let tsv = "a b\tauthor=x|author=y\t2001\nc d\tauthor=x\t2002\nno year\tauthor=z\t\n";
        let corpus =
            lesm_corpus::load_tsv(tsv.as_bytes(), &LoadOptions::default()).unwrap();
        let (papers, n) = corpus_to_papers(&corpus).unwrap();
        assert_eq!(papers.len(), 2, "the year-less doc is skipped");
        assert_eq!(n, 3);
        assert_eq!(papers[0].year, 2001);
        assert_eq!(papers[0].authors.len(), 2);
    }

    #[test]
    fn corpus_without_authors_is_an_error() {
        let tsv = "a b\tvenue=V\t2001\n";
        let corpus =
            lesm_corpus::load_tsv(tsv.as_bytes(), &LoadOptions::default()).unwrap();
        assert!(corpus_to_papers(&corpus).is_err());
    }
}
