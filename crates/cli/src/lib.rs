//! Library backing the `lesm` command-line tool.
//!
//! Subcommands:
//!
//! * `lesm synth --docs N --seed S` — emit a synthetic DBLP-like corpus
//!   as TSV (for demos and smoke tests);
//! * `lesm mine <corpus.tsv> [--k K --depth D]` — mine a topical
//!   hierarchy and print it as JSON;
//! * `lesm snapshot <corpus.tsv> <out.lesm>` — mine once and persist the
//!   structure as a binary snapshot artifact;
//! * `lesm serve <snapshot.lesm> --addr HOST:PORT --workers N` — serve
//!   `/search`, `/topics/{id}` and `/hierarchy` from a snapshot;
//! * `lesm search <corpus.tsv | snapshot.lesm> <query…>` — topic-aware
//!   document search (snapshot inputs, detected by magic bytes, skip
//!   re-mining entirely);
//! * `lesm advisors <corpus.tsv>` — TPFG advisor–advisee mining over the
//!   corpus' author/year structure, rendered as an advising forest.
//!
//! Argument parsing is hand-rolled (the workspace avoids a CLI
//! dependency); all logic lives here so it is unit-testable, and
//! `main.rs` stays a thin shell.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use lesm_core::pipeline::{LatentStructureMiner, MinedStructure, MinerConfig};
use lesm_corpus::synth::GenPaper;
use lesm_corpus::{Corpus, LoadOptions};
use lesm_hier::em::{EmConfig, WeightMode};
use lesm_hier::hierarchy::{CathyConfig, ChildCount};
use lesm_relations::preprocess::{CandidateGraph, PreprocessConfig};
use lesm_relations::tpfg::{Tpfg, TpfgConfig};
use lesm_relations::AdvisingForest;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Emit a synthetic corpus as TSV.
    Synth {
        /// Number of documents.
        docs: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Mine a hierarchy and print JSON.
    Mine {
        /// Input TSV path.
        input: String,
        /// Children per topic.
        k: usize,
        /// Hierarchy depth.
        depth: usize,
        /// Worker threads (`0` = all available cores).
        threads: usize,
        /// EM early-exit tolerance (`0` = run every iteration).
        em_tol: f64,
        /// Adaptive-dispatch cutoff in abstract work units (`None` keeps
        /// the library default). Does not affect results, only whether
        /// small calls fan out to worker threads.
        par_threshold: Option<u64>,
    },
    /// Mine a hierarchy and persist it as a binary snapshot.
    Snapshot {
        /// Input TSV path.
        input: String,
        /// Output `.lesm` artifact path.
        output: String,
        /// Children per topic.
        k: usize,
        /// Hierarchy depth.
        depth: usize,
        /// Worker threads (`0` = all available cores).
        threads: usize,
        /// EM early-exit tolerance (`0` = run every iteration).
        em_tol: f64,
        /// Adaptive-dispatch cutoff in abstract work units (`None` keeps
        /// the library default).
        par_threshold: Option<u64>,
    },
    /// Serve queries from a snapshot artifact.
    Serve {
        /// Input `.lesm` snapshot path.
        snapshot: String,
        /// Bind address (`HOST:PORT`; port 0 picks an ephemeral port).
        addr: String,
        /// Worker-thread count.
        workers: usize,
        /// Response-cache capacity in entries (must be >= 1).
        cache: usize,
        /// Optional signal file; the server shuts down once it exists.
        shutdown_file: Option<String>,
    },
    /// Topic-aware search (TSV corpus or `.lesm` snapshot input).
    Search {
        /// Input TSV or snapshot path.
        input: String,
        /// Query text.
        query: String,
    },
    /// Advisor-advisee mining.
    Advisors {
        /// Input TSV path.
        input: String,
    },
    /// Print usage.
    Help,
}

/// Parses command-line arguments (excluding `argv[0]`).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let Some(cmd) = it.next() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "synth" => {
            let mut docs = 1000usize;
            let mut seed = 42u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--docs" => docs = next_value(&mut it, flag)?,
                    "--seed" => seed = next_value(&mut it, flag)?,
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            Ok(Command::Synth { docs, seed })
        }
        "mine" => {
            let input = it.next().ok_or("mine needs an input path")?.clone();
            let mut k = 4usize;
            let mut depth = 2usize;
            let mut threads = 0usize;
            let mut em_tol = 0.0f64;
            let mut par_threshold = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--k" => k = next_value(&mut it, flag)?,
                    "--depth" => depth = next_value(&mut it, flag)?,
                    "--threads" => threads = next_value(&mut it, flag)?,
                    "--em-tol" => em_tol = next_value(&mut it, flag)?,
                    "--par-threshold" => par_threshold = Some(next_value(&mut it, flag)?),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if k == 0 || depth == 0 {
                return Err("--k and --depth must be positive".into());
            }
            if em_tol < 0.0 || !em_tol.is_finite() {
                return Err("--em-tol must be a finite non-negative number".into());
            }
            Ok(Command::Mine { input, k, depth, threads, em_tol, par_threshold })
        }
        "snapshot" => {
            let input = it.next().ok_or("snapshot needs an input path")?.clone();
            let output = it.next().ok_or("snapshot needs an output path")?.clone();
            let mut k = 4usize;
            let mut depth = 2usize;
            let mut threads = 0usize;
            let mut em_tol = 0.0f64;
            let mut par_threshold = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--k" => k = next_value(&mut it, flag)?,
                    "--depth" => depth = next_value(&mut it, flag)?,
                    "--threads" => threads = next_value(&mut it, flag)?,
                    "--em-tol" => em_tol = next_value(&mut it, flag)?,
                    "--par-threshold" => par_threshold = Some(next_value(&mut it, flag)?),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if k == 0 || depth == 0 {
                return Err("--k and --depth must be positive".into());
            }
            if em_tol < 0.0 || !em_tol.is_finite() {
                return Err("--em-tol must be a finite non-negative number".into());
            }
            Ok(Command::Snapshot { input, output, k, depth, threads, em_tol, par_threshold })
        }
        "serve" => {
            let snapshot = it.next().ok_or("serve needs a snapshot path")?.clone();
            let mut addr = "127.0.0.1:7878".to_string();
            let mut workers = 4usize;
            let mut cache = 1024usize;
            let mut shutdown_file = None;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--addr" => addr = next_value(&mut it, flag)?,
                    "--workers" => workers = next_value(&mut it, flag)?,
                    "--cache" => cache = next_value(&mut it, flag)?,
                    "--shutdown-file" => shutdown_file = Some(next_value(&mut it, flag)?),
                    other => return Err(format!("unknown flag {other}")),
                }
            }
            if workers == 0 {
                return Err("--workers must be >= 1 (the server needs at least one handler thread)".into());
            }
            if cache == 0 {
                return Err(
                    "--cache must be >= 1 (use a small capacity like 1 to keep reuse minimal)"
                        .into(),
                );
            }
            Ok(Command::Serve { snapshot, addr, workers, cache, shutdown_file })
        }
        "search" => {
            let input = it.next().ok_or("search needs an input path")?.clone();
            let query: Vec<String> = it.cloned().collect();
            if query.is_empty() {
                return Err("search needs a query".into());
            }
            Ok(Command::Search { input, query: query.join(" ") })
        }
        "advisors" => {
            let input = it.next().ok_or("advisors needs an input path")?.clone();
            Ok(Command::Advisors { input })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command {other}; try `lesm help`")),
    }
}

fn next_value<T: std::str::FromStr>(
    it: &mut std::slice::Iter<'_, String>,
    flag: &str,
) -> Result<T, String> {
    let raw = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    raw.parse().map_err(|_| {
        format!(
            "{flag} got {raw:?}, which is not a valid {}",
            std::any::type_name::<T>().rsplit("::").next().unwrap_or("value")
        )
    })
}

/// The usage text.
pub const USAGE: &str = "\
lesm — latent entity structure mining

USAGE:
  lesm synth [--docs N] [--seed S]        emit a synthetic corpus as TSV
  lesm mine <corpus.tsv> [--k K] [--depth D] [--threads T] [--em-tol TOL]
            [--par-threshold U]           mine a hierarchy, print JSON
  lesm snapshot <corpus.tsv> <out.lesm> [--k K] [--depth D] [--threads T] [--em-tol TOL]
            [--par-threshold U]           mine once, save a binary snapshot
  lesm serve <snapshot.lesm> [--addr HOST:PORT] [--workers N] [--cache N]
             [--shutdown-file PATH]       serve queries from a snapshot
  lesm search <corpus.tsv | snapshot.lesm> <query...>
                                          topic-aware document search
  lesm advisors <corpus.tsv>              mine advisor-advisee relations

`--threads 0` (the default) uses every available core; any thread count
produces identical output. `--par-threshold U` sets the adaptive-dispatch
cutoff in abstract work units (~1 unit per f64 multiply-add): parallel
calls carrying less work than U run on one thread to skip fan-out
overhead. It changes scheduling only, never results.
`--em-tol` stops each EM run once the relative
objective improvement drops below TOL (0, the default, always runs the
full iteration budget). `search` detects snapshot inputs by their magic
bytes and answers from the persisted structure without re-mining. The
server exposes GET /search?q=...&top=N, /topics/{id}, /hierarchy,
/healthz and /metrics, and shuts down gracefully once the
`--shutdown-file` path exists.

TSV format (one doc per line):
  title text<TAB>etype=name|etype=name<TAB>year
";

/// Default miner configuration used by the CLI. `threads = 0` resolves to
/// all available cores; any value produces identical output. `em_tol = 0`
/// disables the EM early exit.
pub fn cli_miner_config(k: usize, depth: usize, threads: usize, em_tol: f64) -> MinerConfig {
    MinerConfig {
        hierarchy: CathyConfig {
            children: ChildCount::Fixed(k),
            max_depth: depth,
            em: EmConfig {
                iters: 200,
                restarts: 4,
                seed: 7,
                background: true,
                weights: WeightMode::Learned,
                ..EmConfig::default()
            },
            min_links: 20,
            subnet_threshold: 0.5,
        },
        threads,
        em_tol,
        ..MinerConfig::default()
    }
}

/// Runs `mine` on an already-loaded corpus; returns the JSON.
pub fn run_mine(
    corpus: &Corpus,
    k: usize,
    depth: usize,
    threads: usize,
    em_tol: f64,
) -> Result<String, String> {
    let mined = LatentStructureMiner::mine(corpus, &cli_miner_config(k, depth, threads, em_tol))
        .map_err(|e| e.to_string())?;
    Ok(lesm_core::export::hierarchy_to_json(corpus, &mined, 10))
}

/// Renders the top-10 search hits for `query` against an already-mined
/// structure (shared by the TSV path, the snapshot path, and the server).
pub fn search_lines(corpus: &Corpus, mined: &MinedStructure, query: &str) -> Vec<String> {
    let hits = lesm_core::search::search(corpus, mined, query, 10);
    lesm_core::search::render_hits(corpus, mined, &hits)
}

/// Runs `search` on a TSV corpus (mines first); returns rendered lines.
pub fn run_search(corpus: &Corpus, query: &str, k: usize, depth: usize) -> Result<Vec<String>, String> {
    let mined = LatentStructureMiner::mine(corpus, &cli_miner_config(k, depth, 0, 0.0))
        .map_err(|e| e.to_string())?;
    Ok(search_lines(corpus, &mined, query))
}

/// Runs `search` on either input kind: `.lesm` snapshots (detected by
/// magic bytes) answer from the persisted structure without re-mining;
/// anything else is loaded as TSV and mined with the default CLI config.
pub fn run_search_input(
    input: &str,
    query: &str,
    k: usize,
    depth: usize,
) -> Result<Vec<String>, String> {
    if lesm_serve::is_snapshot_file(input) {
        let snapshot = lesm_serve::load_snapshot_file(input).map_err(|e| e.to_string())?;
        Ok(search_lines(&snapshot.corpus, &snapshot.mined, query))
    } else {
        let corpus = load_corpus(input)?;
        run_search(&corpus, query, k, depth)
    }
}

/// Runs `snapshot`: mines `corpus` with the default CLI config and writes
/// the binary artifact to `output`. Returns a human-readable summary.
pub fn run_snapshot(
    corpus: &Corpus,
    output: &str,
    k: usize,
    depth: usize,
    threads: usize,
    em_tol: f64,
) -> Result<String, String> {
    let mined = LatentStructureMiner::mine(corpus, &cli_miner_config(k, depth, threads, em_tol))
        .map_err(|e| e.to_string())?;
    lesm_serve::save_snapshot_file(output, corpus, &mined).map_err(|e| e.to_string())?;
    let bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    Ok(format!(
        "wrote {output}: {} topics, {} docs, {bytes} bytes",
        mined.hierarchy.len(),
        corpus.num_docs()
    ))
}

/// Converts a corpus with author links and years into TPFG paper records.
///
/// The author entity type is located by name (`"author"`); docs lacking a
/// year or authors are skipped.
pub fn corpus_to_papers(corpus: &Corpus) -> Result<(Vec<GenPaper>, usize), String> {
    let author = author_type(corpus)?;
    let n_authors = corpus.entities.count(author);
    let papers: Vec<GenPaper> = corpus
        .docs
        .iter()
        .filter_map(|d| {
            let year = d.year?;
            let authors: Vec<u32> = d.entities_of(author).collect();
            if authors.is_empty() {
                None
            } else {
                Some(GenPaper { year, authors })
            }
        })
        .collect();
    if papers.is_empty() {
        return Err("no documents with both a year and author links".into());
    }
    Ok((papers, n_authors))
}

/// Locates the `"author"` entity type (shared by [`corpus_to_papers`] and
/// [`run_advisors`], so neither needs to re-derive — or assume — its
/// presence).
fn author_type(corpus: &Corpus) -> Result<usize, String> {
    (0..corpus.entities.num_types())
        .find(|&t| corpus.entities.type_name(t) == Some("author"))
        .ok_or_else(|| "corpus has no 'author' entity type".into())
}

/// Runs `advisors`; returns the rendered advising forest.
pub fn run_advisors(corpus: &Corpus) -> Result<String, String> {
    let (papers, n_authors) = corpus_to_papers(corpus)?;
    let author = author_type(corpus)?;
    let graph = CandidateGraph::build(&papers, n_authors, &PreprocessConfig::default())
        .map_err(|e| e.to_string())?;
    let result = Tpfg::infer(&graph, &TpfgConfig::default()).map_err(|e| e.to_string())?;
    let forest = AdvisingForest::from_result(&result, 1, 0.3);
    let name = |a: u32| {
        corpus
            .entities
            .name(lesm_corpus::EntityRef::new(author, a))
            .to_string()
    };
    Ok(forest.render(&name, 10))
}

/// Loads a TSV corpus from a file path.
pub fn load_corpus(path: &str) -> Result<Corpus, String> {
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    lesm_corpus::load_tsv(std::io::BufReader::new(file), &LoadOptions::default())
        .map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| a.to_string()).collect()
    }

    #[test]
    fn parses_subcommands() {
        assert_eq!(
            parse_args(&s(&["synth", "--docs", "50", "--seed", "9"])).unwrap(),
            Command::Synth { docs: 50, seed: 9 }
        );
        assert_eq!(
            parse_args(&s(&["mine", "in.tsv", "--k", "3", "--depth", "1"])).unwrap(),
            Command::Mine {
                input: "in.tsv".into(),
                k: 3,
                depth: 1,
                threads: 0,
                em_tol: 0.0,
                par_threshold: None
            }
        );
        assert_eq!(
            parse_args(&s(&["mine", "in.tsv", "--threads", "4"])).unwrap(),
            Command::Mine {
                input: "in.tsv".into(),
                k: 4,
                depth: 2,
                threads: 4,
                em_tol: 0.0,
                par_threshold: None
            }
        );
        assert_eq!(
            parse_args(&s(&["mine", "in.tsv", "--em-tol", "1e-6"])).unwrap(),
            Command::Mine {
                input: "in.tsv".into(),
                k: 4,
                depth: 2,
                threads: 0,
                em_tol: 1e-6,
                par_threshold: None
            }
        );
        assert_eq!(
            parse_args(&s(&["mine", "in.tsv", "--par-threshold", "4096"])).unwrap(),
            Command::Mine {
                input: "in.tsv".into(),
                k: 4,
                depth: 2,
                threads: 0,
                em_tol: 0.0,
                par_threshold: Some(4096)
            }
        );
        assert_eq!(
            parse_args(&s(&["snapshot", "in.tsv", "out.lesm", "--par-threshold", "0"])).unwrap(),
            Command::Snapshot {
                input: "in.tsv".into(),
                output: "out.lesm".into(),
                k: 4,
                depth: 2,
                threads: 0,
                em_tol: 0.0,
                par_threshold: Some(0)
            }
        );
        assert_eq!(
            parse_args(&s(&["search", "in.tsv", "query", "processing"])).unwrap(),
            Command::Search { input: "in.tsv".into(), query: "query processing".into() }
        );
        assert_eq!(
            parse_args(&s(&["advisors", "in.tsv"])).unwrap(),
            Command::Advisors { input: "in.tsv".into() }
        );
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&s(&["help"])).unwrap(), Command::Help);
    }

    #[test]
    fn rejects_bad_args() {
        assert!(parse_args(&s(&["mine"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--k", "zero"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--k", "0"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--em-tol", "-1"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--em-tol", "NaN"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--par-threshold", "-1"])).is_err());
        assert!(parse_args(&s(&["mine", "x", "--par-threshold", "lots"])).is_err());
        assert!(parse_args(&s(&["search", "x"])).is_err());
        assert!(parse_args(&s(&["frobnicate"])).is_err());
        assert!(parse_args(&s(&["synth", "--bogus", "1"])).is_err());
        assert!(parse_args(&s(&["serve", "m.lesm", "--workers", "0"])).is_err());
        assert!(parse_args(&s(&["serve", "m.lesm", "--cache", "0"])).is_err());
    }

    #[test]
    fn parse_errors_name_the_flag_and_the_value() {
        let e = parse_args(&s(&["mine", "x", "--k", "zero"])).unwrap_err();
        assert!(e.contains("--k") && e.contains("zero"), "unhelpful message: {e}");
        let e = parse_args(&s(&["synth", "--docs", "-3"])).unwrap_err();
        assert!(e.contains("--docs") && e.contains("-3"), "unhelpful message: {e}");
        let e = parse_args(&s(&["mine", "x", "--em-tol"])).unwrap_err();
        assert!(e.contains("--em-tol") && e.contains("needs a value"));
    }

    #[test]
    fn corpus_to_papers_extracts_author_year_records() {
        let tsv = "a b\tauthor=x|author=y\t2001\nc d\tauthor=x\t2002\nno year\tauthor=z\t\n";
        let corpus =
            lesm_corpus::load_tsv(tsv.as_bytes(), &LoadOptions::default()).unwrap();
        let (papers, n) = corpus_to_papers(&corpus).unwrap();
        assert_eq!(papers.len(), 2, "the year-less doc is skipped");
        assert_eq!(n, 3);
        assert_eq!(papers[0].year, 2001);
        assert_eq!(papers[0].authors.len(), 2);
    }

    #[test]
    fn corpus_without_authors_is_an_error() {
        let tsv = "a b\tvenue=V\t2001\n";
        let corpus =
            lesm_corpus::load_tsv(tsv.as_bytes(), &LoadOptions::default()).unwrap();
        assert!(corpus_to_papers(&corpus).is_err());
    }
}
