//! CLI integration tests for `lesm update`: incremental mining appends
//! documents to a snapshot or store, carries delta lineage on the
//! published artifact, compacts past the configured chain depth, and is
//! byte-deterministic for any thread count.

use lesm_cli::{parse_args, run_snapshot, run_update, Command};
use lesm_corpus::io::write_tsv;
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
use lesm_corpus::Corpus;

fn temp_dir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lesm-cli-update-test-{name}-{}", std::process::id()));
    p
}

fn write_corpus(corpus: &Corpus, name: &str) -> std::path::PathBuf {
    let path = temp_dir(name);
    let file = std::fs::File::create(&path).expect("create temp file");
    write_tsv(corpus, std::io::BufWriter::new(file)).expect("write tsv");
    path
}

fn synth_corpus(docs: usize, seed: u64) -> Corpus {
    let mut cfg = PapersConfig::dblp(docs, seed);
    cfg.hierarchy.branching = vec![2];
    cfg.entity_specs[0].level = 1;
    cfg.entity_specs[0].pool_per_node = 5;
    cfg.entity_specs[1].pool_per_node = 2;
    SyntheticPapers::generate(&cfg).unwrap().corpus
}

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

#[test]
fn parse_update_subcommand() {
    match parse_args(&s(&["update", "store", "delta.tsv"])).unwrap() {
        Command::Update { target, delta, k, depth, threads, update_iters, update_tol, max_delta_chain } => {
            assert_eq!((target.as_str(), delta.as_str()), ("store", "delta.tsv"));
            assert_eq!((k, depth, threads), (4, 2, 0));
            assert_eq!(update_iters, 30);
            assert_eq!(update_tol, 1e-5);
            assert_eq!(max_delta_chain, 4);
        }
        other => panic!("expected Update, got {other:?}"),
    }
    match parse_args(&s(&[
        "update", "m.lesm", "d.tsv", "--k", "3", "--depth", "1", "--update-iters", "5",
        "--update-tol", "0.001", "--max-delta-chain", "2",
    ]))
    .unwrap()
    {
        Command::Update { k, depth, update_iters, update_tol, max_delta_chain, .. } => {
            assert_eq!((k, depth), (3, 1));
            assert_eq!(update_iters, 5);
            assert_eq!(update_tol, 0.001);
            assert_eq!(max_delta_chain, 2);
        }
        other => panic!("expected Update, got {other:?}"),
    }
    assert!(parse_args(&s(&["update", "only-target"])).is_err());
    assert!(parse_args(&s(&["update", "a", "b", "--update-iters", "0"])).is_err());
    assert!(parse_args(&s(&["update", "a", "b", "--max-delta-chain", "0"])).is_err());
    assert!(parse_args(&s(&["update", "a", "b", "--update-tol", "-1"])).is_err());
}

#[test]
fn update_snapshot_in_place_is_deterministic_and_carries_lineage() {
    let base = synth_corpus(260, 31);
    let delta = synth_corpus(26, 77);
    let delta_tsv = write_corpus(&delta, "delta.tsv");

    // Same artifact file name in two directories: lineage records the base
    // name, so determinism is only byte-exact for identically named bases.
    let da = temp_dir("run-a");
    let db = temp_dir("run-b");
    std::fs::create_dir_all(&da).unwrap();
    std::fs::create_dir_all(&db).unwrap();
    let a = da.join("base.lesm");
    let b = db.join("base.lesm");
    run_snapshot(&base, a.to_str().unwrap(), 2, 1, 1, 0.0, 2).expect("snapshot");
    std::fs::copy(&a, &b).expect("copy base");

    // Update the two copies with different thread counts: byte-identical.
    let summary = run_update(a.to_str().unwrap(), delta_tsv.to_str().unwrap(), 2, 1, 1, 30, 1e-5, 4)
        .expect("update a");
    run_update(b.to_str().unwrap(), delta_tsv.to_str().unwrap(), 2, 1, 4, 30, 1e-5, 4)
        .expect("update b");
    assert!(summary.contains("+26 docs"), "unexpected summary: {summary}");
    assert!(summary.contains("delta chain depth 1"), "unexpected summary: {summary}");
    assert_eq!(
        std::fs::read(&a).unwrap(),
        std::fs::read(&b).unwrap(),
        "update must be byte-deterministic across thread counts"
    );

    // The published artifact is a full v2 snapshot with delta lineage.
    let report = lesm_serve::describe_artifact_file(a.to_str().unwrap()).expect("inspect");
    assert!(report.contains("delta-lineage"), "missing lineage section:\n{report}");
    let model = lesm_serve::load_model_file(a.to_str().unwrap()).expect("load updated");
    let lesm_serve::Model::Mapped(mapped) = &model else { panic!("expected mapped v2 model") };
    let info = mapped.delta_info().expect("lineage present");
    assert_eq!(info.base_docs, 260);
    assert_eq!(info.chain_depth, 1);
    assert_eq!(info.base_artifact, a.file_name().unwrap().to_string_lossy());

    // The updated artifact still answers searches (full data sections).
    let query = base.vocab.name(base.docs[0].tokens[0]).unwrap().to_string();
    let lines = lesm_cli::run_search_input(a.to_str().unwrap(), &query, 2, 1).expect("search");
    assert!(!lines.is_empty(), "updated snapshot should answer queries");

    std::fs::remove_file(delta_tsv).ok();
    std::fs::remove_dir_all(da).ok();
    std::fs::remove_dir_all(db).ok();
}

#[test]
fn store_updates_publish_new_versions_and_compact_past_chain_limit() {
    let base = synth_corpus(200, 5);
    let delta = synth_corpus(20, 99);
    let delta_tsv = write_corpus(&delta, "store-delta.tsv");

    // Seed a versioned store with the base artifact as v0001.
    let seed_lesm = temp_dir("store-seed.lesm");
    run_snapshot(&base, seed_lesm.to_str().unwrap(), 2, 1, 1, 0.0, 2).expect("snapshot");
    let dir = temp_dir("store");
    std::fs::remove_dir_all(&dir).ok();
    let bytes = std::fs::read(&seed_lesm).unwrap();
    let v1 = lesm_serve::store::publish(&dir, &bytes).expect("publish base");
    assert_eq!(v1, "v0001.lesm");

    // Chain: depth 1, depth 2, then depth 3 > --max-delta-chain 2 compacts.
    let s1 = run_update(dir.to_str().unwrap(), delta_tsv.to_str().unwrap(), 2, 1, 1, 20, 1e-4, 2)
        .expect("update 1");
    assert!(s1.contains("v0001.lesm -> v0002.lesm"), "unexpected summary: {s1}");
    assert!(s1.contains("delta chain depth 1"), "unexpected summary: {s1}");
    let s2 = run_update(dir.to_str().unwrap(), delta_tsv.to_str().unwrap(), 2, 1, 1, 20, 1e-4, 2)
        .expect("update 2");
    assert!(s2.contains("delta chain depth 2"), "unexpected summary: {s2}");
    let s3 = run_update(dir.to_str().unwrap(), delta_tsv.to_str().unwrap(), 2, 1, 1, 20, 1e-4, 2)
        .expect("update 3");
    assert!(s3.contains("compacted (chain reset)"), "unexpected summary: {s3}");

    // CURRENT tracks the latest publish; lineage reflects the chain state.
    assert_eq!(
        lesm_serve::store::current_version(&dir).unwrap().as_deref(),
        Some("v0004.lesm")
    );
    let (name, model) = lesm_serve::store::load_current(&dir).expect("load current");
    assert_eq!(name, "v0004.lesm");
    let lesm_serve::Model::Mapped(mapped) = &model else { panic!("expected mapped v2 model") };
    assert!(mapped.delta_info().is_none(), "compacted artifact must carry no lineage");

    // Each update appended the same 20 docs on top of the 200 base docs.
    assert!(s3.contains("+20 docs (260 total)"), "unexpected summary: {s3}");

    std::fs::remove_file(delta_tsv).ok();
    std::fs::remove_file(seed_lesm).ok();
    std::fs::remove_dir_all(&dir).ok();
}
