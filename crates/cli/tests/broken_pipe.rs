//! A closed stdout reader (`lesm ... | head`) must be a clean exit, not a
//! "failed printing to stdout: Broken pipe" panic (DESIGN.md §10). Rust
//! binaries start with SIGPIPE ignored, so `println!` panics on EPIPE
//! unless the writer handles it — these tests drive the real `lesm`
//! binary against a pipe whose read end closes after a few bytes.

use std::io::Read;
use std::process::{Command, Stdio};

/// Runs `lesm <args>`, reads `take` bytes of stdout, drops the pipe, and
/// returns (exit success, captured stderr).
fn run_then_close_stdout(args: &[&str], take: usize) -> (bool, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_lesm"))
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn lesm");
    {
        let stdout = child.stdout.take().expect("stdout piped");
        let mut buf = vec![0u8; take];
        let mut handle = stdout.take(take as u64);
        let _ = handle.read_exact(&mut buf);
        // Dropping `handle` (and the pipe inside it) closes the read end;
        // the child's next write gets EPIPE.
    }
    let out = child.wait_with_output().expect("wait for lesm");
    (out.status.success(), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn synth_into_closed_pipe_exits_cleanly() {
    // 4000 docs of TSV comfortably exceed the ~64 KiB pipe buffer, so the
    // child is still writing when the read end goes away.
    let (ok, stderr) =
        run_then_close_stdout(&["synth", "--docs", "4000", "--seed", "7"], 1024);
    assert!(ok, "synth into a closed pipe should exit 0, stderr:\n{stderr}");
    assert!(!stderr.contains("panicked"), "synth panicked on EPIPE:\n{stderr}");
}

#[test]
fn help_into_closed_pipe_never_panics() {
    // Usage fits in the pipe buffer, so this normally completes; the
    // assertion is that an early-closing reader can never panic it.
    let (_ok, stderr) = run_then_close_stdout(&["help"], 1);
    assert!(!stderr.contains("panicked"), "help panicked on EPIPE:\n{stderr}");
}
