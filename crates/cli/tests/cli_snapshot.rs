//! CLI integration tests for the snapshot/serve subsystem: `snapshot`
//! writes a loadable `.lesm` artifact, `search` answers from either input
//! kind with identical output, and the snapshot path never re-runs EM.

use lesm_cli::{load_corpus, parse_args, run_search, run_search_input, run_snapshot, Command};
use lesm_corpus::io::write_tsv;
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};
use lesm_corpus::Corpus;
use lesm_hier::em::EdgeState;

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lesm-cli-snapshot-test-{name}-{}", std::process::id()));
    p
}

fn write_corpus(corpus: &Corpus, name: &str) -> std::path::PathBuf {
    let path = temp_path(name);
    let file = std::fs::File::create(&path).expect("create temp file");
    write_tsv(corpus, std::io::BufWriter::new(file)).expect("write tsv");
    path
}

fn synth_corpus(docs: usize, seed: u64) -> Corpus {
    let mut cfg = PapersConfig::dblp(docs, seed);
    cfg.hierarchy.branching = vec![2];
    cfg.entity_specs[0].level = 1;
    cfg.entity_specs[0].pool_per_node = 5;
    cfg.entity_specs[1].pool_per_node = 2;
    SyntheticPapers::generate(&cfg).unwrap().corpus
}

#[test]
fn snapshot_search_matches_tsv_search_and_never_reruns_em() {
    let corpus = synth_corpus(300, 31);
    let tsv = write_corpus(&corpus, "roundtrip");
    let lesm = temp_path("roundtrip.lesm");

    let summary =
        run_snapshot(&corpus, lesm.to_str().unwrap(), 2, 1, 1, 0.0, 2).expect("snapshot");
    assert!(summary.contains("topics"), "unexpected summary: {summary}");
    assert!(lesm_serve::is_snapshot_file(lesm.to_str().unwrap()));
    assert!(!lesm_serve::is_snapshot_file(tsv.to_str().unwrap()));

    // Query with a token that is guaranteed to occur in the corpus.
    let query = corpus.vocab.name(corpus.docs[0].tokens[0]).unwrap().to_string();

    // TSV input: mined on this thread, so the flatten counter advances.
    let before_tsv = EdgeState::flattens_on_this_thread();
    let tsv_lines = run_search_input(tsv.to_str().unwrap(), &query, 2, 1).expect("tsv search");
    assert!(
        EdgeState::flattens_on_this_thread() > before_tsv,
        "TSV search path should have mined (positive control)"
    );

    // Snapshot input: answered from the artifact, EM must not run at all.
    let before_snap = EdgeState::flattens_on_this_thread();
    let snap_lines =
        run_search_input(lesm.to_str().unwrap(), &query, 2, 1).expect("snapshot search");
    assert_eq!(
        EdgeState::flattens_on_this_thread(),
        before_snap,
        "snapshot-backed search must not re-run EM"
    );

    assert_eq!(snap_lines, tsv_lines, "the two input kinds must answer identically");
    assert!(!snap_lines.is_empty(), "query should match the synthetic corpus");

    // And both equal the in-memory reference path.
    let loaded = load_corpus(tsv.to_str().unwrap()).unwrap();
    assert_eq!(run_search(&loaded, &query, 2, 1).unwrap(), tsv_lines);

    std::fs::remove_file(tsv).ok();
    std::fs::remove_file(lesm).ok();
}

#[test]
fn corrupted_snapshot_is_a_clean_error() {
    let corpus = synth_corpus(200, 5);
    let lesm = temp_path("corrupt.lesm");
    run_snapshot(&corpus, lesm.to_str().unwrap(), 2, 1, 1, 0.0, 2).expect("snapshot");
    let mut bytes = std::fs::read(&lesm).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&lesm, &bytes).unwrap();
    let err = run_search_input(lesm.to_str().unwrap(), "mining", 2, 1)
        .expect_err("corrupted snapshot must not load");
    assert!(err.contains("checksum"), "unexpected error: {err}");
    std::fs::remove_file(lesm).ok();
}

fn s(v: &[&str]) -> Vec<String> {
    v.iter().map(|x| x.to_string()).collect()
}

#[test]
fn parse_snapshot_subcommand() {
    match parse_args(&s(&["snapshot", "in.tsv", "out.lesm"])).unwrap() {
        Command::Snapshot { input, output, k, depth, threads, em_tol, par_threshold, format } => {
            assert_eq!((input.as_str(), output.as_str()), ("in.tsv", "out.lesm"));
            assert_eq!((k, depth, threads), (4, 2, 0));
            assert_eq!(em_tol, 0.0);
            assert_eq!(par_threshold, None);
            assert_eq!(format, 2, "v2 is the default artifact format");
        }
        other => panic!("expected Snapshot, got {other:?}"),
    }
    match parse_args(&s(&["snapshot", "a", "b", "--k", "3", "--depth", "1"])).unwrap() {
        Command::Snapshot { k, depth, .. } => assert_eq!((k, depth), (3, 1)),
        other => panic!("expected Snapshot, got {other:?}"),
    }
    assert!(parse_args(&s(&["snapshot", "only-input"])).is_err());
    assert!(parse_args(&s(&["snapshot", "a", "b", "--k", "0"])).is_err());
}

#[test]
fn parse_serve_subcommand() {
    match parse_args(&s(&["serve", "m.lesm"])).unwrap() {
        Command::Serve { snapshot, addr, workers, cache, queue, shutdown_file } => {
            assert_eq!(snapshot, "m.lesm");
            assert_eq!(addr, "127.0.0.1:7878");
            assert_eq!((workers, cache, queue), (4, 1024, 128));
            assert_eq!(shutdown_file, None);
        }
        other => panic!("expected Serve, got {other:?}"),
    }
    match parse_args(&s(&[
        "serve", "m.lesm", "--addr", "0.0.0.0:80", "--workers", "2", "--cache", "16",
        "--shutdown-file", "/tmp/stop",
    ]))
    .unwrap()
    {
        Command::Serve { addr, workers, cache, shutdown_file, .. } => {
            assert_eq!(addr, "0.0.0.0:80");
            assert_eq!((workers, cache), (2, 16));
            assert_eq!(shutdown_file.as_deref(), Some("/tmp/stop"));
        }
        other => panic!("expected Serve, got {other:?}"),
    }
    assert!(parse_args(&s(&["serve"])).is_err());
    assert!(parse_args(&s(&["serve", "m.lesm", "--workers", "0"])).is_err());
}
