//! Integration tests for the CLI library: the synth → mine / search /
//! advisors round trip on temporary files.

use lesm_cli::{corpus_to_papers, load_corpus, run_advisors, run_mine, run_search};
use lesm_corpus::io::write_tsv;
use lesm_corpus::synth::{GenealogyConfig, Genealogy, PapersConfig, SyntheticPapers};
use lesm_corpus::Corpus;

fn temp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("lesm-cli-test-{name}-{}", std::process::id()));
    p
}

fn write_corpus(corpus: &Corpus, name: &str) -> std::path::PathBuf {
    let path = temp_path(name);
    let file = std::fs::File::create(&path).expect("create temp file");
    write_tsv(corpus, std::io::BufWriter::new(file)).expect("write tsv");
    path
}

#[test]
fn synth_mine_roundtrip_produces_balanced_json() {
    let mut cfg = PapersConfig::dblp(500, 17);
    cfg.hierarchy.branching = vec![2];
    cfg.entity_specs[0].level = 1;
    cfg.entity_specs[0].pool_per_node = 5;
    cfg.entity_specs[1].pool_per_node = 2;
    let papers = SyntheticPapers::generate(&cfg).unwrap();
    let path = write_corpus(&papers.corpus, "mine");
    let corpus = load_corpus(path.to_str().unwrap()).unwrap();
    assert_eq!(corpus.num_docs(), 500);
    let json = run_mine(&corpus, 2, 1, 2, 0.0).unwrap();
    assert!(lesm_core::export::is_balanced_json(&json));
    assert!(json.contains("\"phrases\""));
    std::fs::remove_file(path).ok();
}

/// End-to-end determinism diff (PR 1 contract, re-verified against the
/// flat-arena EM core): `mine` output is byte-identical across
/// `--threads 1/2/4` and across repeated runs — with and without the EM
/// early exit enabled.
#[test]
fn mine_output_is_byte_identical_across_threads_and_runs() {
    let mut cfg = PapersConfig::dblp(300, 23);
    cfg.hierarchy.branching = vec![2];
    cfg.entity_specs[0].level = 1;
    cfg.entity_specs[0].pool_per_node = 5;
    cfg.entity_specs[1].pool_per_node = 2;
    let papers = SyntheticPapers::generate(&cfg).unwrap();
    let path = write_corpus(&papers.corpus, "identical");
    let corpus = load_corpus(path.to_str().unwrap()).unwrap();
    for em_tol in [0.0, 1e-8] {
        let reference = run_mine(&corpus, 2, 1, 1, em_tol).unwrap();
        for threads in [1usize, 2, 4] {
            let json = run_mine(&corpus, 2, 1, threads, em_tol).unwrap();
            assert_eq!(
                json, reference,
                "mine output differs (threads={threads}, em_tol={em_tol})"
            );
        }
    }
    std::fs::remove_file(path).ok();
}

#[test]
fn search_returns_relevant_lines() {
    let mut cfg = PapersConfig::dblp(500, 19);
    cfg.hierarchy.branching = vec![2];
    cfg.entity_specs[0].level = 1;
    cfg.entity_specs[0].pool_per_node = 5;
    cfg.entity_specs[1].pool_per_node = 2;
    let papers = SyntheticPapers::generate(&cfg).unwrap();
    let path = write_corpus(&papers.corpus, "search");
    let corpus = load_corpus(path.to_str().unwrap()).unwrap();
    // Query a ground-truth leaf word (names survive the TSV round trip).
    let leaf = papers.truth.hierarchy.leaves[0];
    let word = papers.truth.hierarchy.own_words[leaf][0];
    let query = papers.corpus.vocab.name_or_unk(word);
    let lines = run_search(&corpus, query, 2, 1).unwrap();
    assert!(!lines.is_empty());
    assert!(lines[0].contains("score"));
    assert!(lines.iter().filter(|l| l.contains(query)).count() * 2 >= lines.len());
    std::fs::remove_file(path).ok();
}

#[test]
fn advisors_runs_on_genealogy_tsv() {
    // Build a corpus whose author/year structure carries the genealogy.
    let gen = Genealogy::generate(&GenealogyConfig {
        n_authors: 80,
        seed: 21,
        ..GenealogyConfig::default()
    })
    .unwrap();
    let mut corpus = Corpus::new();
    let author = corpus.entities.add_type("author");
    for p in gen.papers.iter().take(4000) {
        let d = corpus.push_text("paper");
        corpus.docs[d].year = Some(p.year);
        for &a in &p.authors {
            corpus.link_entity(d, author, &format!("a{a}")).unwrap();
        }
    }
    let path = write_corpus(&corpus, "advisors");
    let loaded = load_corpus(path.to_str().unwrap()).unwrap();
    let (papers, n) = corpus_to_papers(&loaded).unwrap();
    assert_eq!(papers.len(), corpus.num_docs());
    assert!(n <= 80);
    let rendered = run_advisors(&loaded).unwrap();
    assert!(rendered.contains("a"), "forest renders author labels");
    std::fs::remove_file(path).ok();
}
