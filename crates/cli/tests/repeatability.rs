//! Same-process repeatability: the determinism contract (DESIGN.md §11)
//! promises byte-identical exports for identical inputs *within one
//! process*, where each `HashMap` instance gets a fresh random hash seed.
//! Running the pipelines twice in a single test catches any remaining
//! iteration-order dependence that a run-to-run diff across processes
//! would only catch flakily.

use lesm_cli::{corpus_to_papers, run_advisors, run_mine};
use lesm_corpus::synth::{PapersConfig, SyntheticPapers};

fn fixture() -> lesm_corpus::Corpus {
    let mut cfg = PapersConfig::dblp(250, 91);
    cfg.hierarchy.branching = vec![2];
    cfg.entity_specs[0].level = 1;
    cfg.entity_specs[0].pool_per_node = 5;
    cfg.entity_specs[1].pool_per_node = 2;
    SyntheticPapers::generate(&cfg).expect("synth corpus").corpus
}

#[test]
fn mine_export_is_byte_identical_within_one_process() {
    let corpus = fixture();
    let first = run_mine(&corpus, 2, 1, 2, 1e-8).expect("first mine");
    let second = run_mine(&corpus, 2, 1, 2, 1e-8).expect("second mine");
    assert!(first == second, "mine JSON export differs between identical same-process runs");
    assert!(!first.is_empty() && first.contains("\"phrases\""));
}

#[test]
fn advisor_mining_is_byte_identical_within_one_process() {
    // run_advisors exercises the TPFG preprocessing path, whose candidate
    // features are float sums over per-pair yearly co-publication maps —
    // exactly the accumulation class D2 polices.
    let corpus = fixture();
    let (papers, _) = corpus_to_papers(&corpus).expect("papers view");
    assert!(!papers.is_empty(), "fixture must yield author/year records");
    let first = run_advisors(&corpus).expect("first advisors run");
    let second = run_advisors(&corpus).expect("second advisors run");
    assert!(first == second, "advisor output differs between identical same-process runs");
}
