//! [`QueryIndex`]: the derived, deterministic structure queries execute
//! against.
//!
//! Built from [`IndexParts`] only, so every backend — owned v1 model,
//! mapped v2 snapshot (cold section decoded once), or a front tier that
//! merged shard contributions — constructs bit-identical state. All
//! doc-derived quantities are set unions or integer counts; the only
//! floating-point inference (TPFG advisor edges) runs over the identical
//! global paper list on every backend, so its outputs are bit-identical
//! too (DESIGN.md §11, §14).

use std::collections::HashMap;
use std::sync::OnceLock;

use crate::parts::{IndexParts, TopicMeta};
use crate::program::TopicRef;
use crate::QueryError;
use lesm_corpus::synth::GenPaper;
use lesm_relations::{AdvisingForest, CandidateGraph, PreprocessConfig, Tpfg, TpfgConfig};

/// Advisor→advisee edges predicted by TPFG (`P@(1, 0.3)`, matching the
/// `lesm advisors` CLI), adjacency per author id, ascending.
#[derive(Debug, Default)]
pub struct AdvisorEdges {
    pub advisees: Vec<Vec<u32>>,
    pub advisors: Vec<Vec<u32>>,
}

/// The immutable query index. Construction is the only expensive step;
/// execution reads pre-sorted adjacency and integer count tables.
#[derive(Debug)]
pub struct QueryIndex {
    pub(crate) type_names: Vec<String>,
    pub(crate) entity_names: Vec<Vec<String>>,
    pub(crate) topics: Vec<TopicMeta>,
    /// Lookup maps (queried by key, never iterated — DESIGN.md §11).
    name_to_id: Vec<HashMap<String, u32>>,
    path_to_topic: HashMap<String, usize>,
    type_by_name: HashMap<String, usize>,
    pub(crate) doc_gids: Vec<u64>,
    pub(crate) doc_years: Vec<Option<i32>>,
    pub(crate) doc_leafs: Vec<usize>,
    pub(crate) doc_entities: Vec<Vec<(u32, u32)>>,
    /// etype → entity id → ascending local doc indices (deduplicated).
    pub(crate) entity_docs: Vec<Vec<Vec<u32>>>,
    /// etype → entity id → ascending co-occurring same-type entity ids.
    pub(crate) cooccur: Vec<Vec<Vec<u32>>>,
    /// etype → topic → entity occurrence counts (nonzero only at each
    /// doc's leaf topic; subtree aggregates are exact integer sums).
    pub(crate) leaf_counts: Vec<Vec<Vec<u64>>>,
    pub(crate) author_type: Option<usize>,
    /// FNV-1a 64 over the canonical parts serialization. Folded into
    /// every cursor's stamp so a cursor minted against one model version
    /// is a typed [`QueryError::BadCursor`] against any other — a page
    /// stream can never silently interleave two hot-swapped models. It is
    /// content-derived, not an epoch, so cursors survive restarts and
    /// rebuilds of the *same* model (DESIGN.md §14).
    pub(crate) model_stamp: u64,
    advisor: OnceLock<AdvisorEdges>,
}

/// Checks that a count fits the engine's `u32` node-id space. The
/// traversal engine seeds frontiers with `0..n as u32` ranges; an
/// unchecked cast past `u32::MAX` would silently wrap and drop every
/// node above the wrap point, so the bound is enforced once, here, at
/// build time.
pub(crate) fn checked_id_range(n: usize, what: &str) -> Result<(), QueryError> {
    if u32::try_from(n).is_err() {
        return Err(QueryError::IndexOverflow(format!(
            "{what} count {n} exceeds the u32 node-id range"
        )));
    }
    Ok(())
}

/// Converts an index position from a [`checked_id_range`]-validated id
/// space (documents, topics, entity types, one type's entities) to a
/// `u32` node id. This is the crate's sole narrowing point: every
/// caller indexes a space whose size was proven `<= u32::MAX` at build
/// time, so the cast cannot truncate.
pub(crate) fn id32(i: usize) -> u32 {
    debug_assert!(u32::try_from(i).is_ok(), "id {i} escaped checked_id_range validation");
    // lesm-lint: allow(W1) — sole narrowing point; inputs come from id spaces proven <= u32::MAX by checked_id_range at build
    i as u32
}

impl QueryIndex {
    /// Builds the index from canonical parts. Fails with
    /// [`QueryError::IndexOverflow`] if any id range (documents, topics,
    /// or one type's entities) does not fit the engine's `u32` node ids.
    pub fn build(parts: IndexParts) -> Result<QueryIndex, QueryError> {
        let model_stamp = crate::engine::fnv1a64(parts.to_text().as_bytes());
        let IndexParts { type_names, entity_names, topics, docs } = parts;
        let n_types = type_names.len();
        let n_topics = topics.len();
        checked_id_range(docs.len(), "document")?;
        checked_id_range(n_topics, "topic")?;
        checked_id_range(n_types, "entity type")?;
        for (t, names) in entity_names.iter().enumerate() {
            let type_name = type_names.get(t).map(String::as_str).unwrap_or("?");
            checked_id_range(names.len(), &format!("entity (type {type_name:?})"))?;
        }

        let mut name_to_id: Vec<HashMap<String, u32>> = Vec::with_capacity(n_types);
        for names in &entity_names {
            let mut map = HashMap::with_capacity(names.len());
            for (id, name) in names.iter().enumerate() {
                map.entry(name.clone()).or_insert(id32(id));
            }
            name_to_id.push(map);
        }
        let mut type_by_name = HashMap::with_capacity(n_types);
        for (t, name) in type_names.iter().enumerate() {
            type_by_name.entry(name.clone()).or_insert(t);
        }
        let mut path_to_topic = HashMap::with_capacity(n_topics);
        for (t, topic) in topics.iter().enumerate() {
            path_to_topic.entry(topic.path.clone()).or_insert(t);
        }

        let mut doc_gids = Vec::with_capacity(docs.len());
        let mut doc_years = Vec::with_capacity(docs.len());
        let mut doc_leafs = Vec::with_capacity(docs.len());
        let mut doc_entities = Vec::with_capacity(docs.len());
        let mut entity_docs: Vec<Vec<Vec<u32>>> = entity_names
            .iter()
            .map(|names| vec![Vec::new(); names.len()])
            .collect();
        let mut leaf_counts: Vec<Vec<Vec<u64>>> = entity_names
            .iter()
            .map(|names| vec![vec![0u64; names.len()]; n_topics])
            .collect();
        let mut cooccur: Vec<Vec<Vec<u32>>> = entity_names
            .iter()
            .map(|names| vec![Vec::new(); names.len()])
            .collect();
        let mut members: Vec<u32> = Vec::new();
        for (d, doc) in docs.into_iter().enumerate() {
            doc_gids.push(doc.gid);
            doc_years.push(doc.year);
            doc_leafs.push(doc.leaf);
            for &(t, id) in &doc.entities {
                let (t, id) = (t as usize, id as usize);
                leaf_counts[t][doc.leaf][id] += 1;
                let list = &mut entity_docs[t][id];
                if list.last() != Some(&id32(d)) {
                    list.push(id32(d));
                }
            }
            for (t, adjacency) in cooccur.iter_mut().enumerate() {
                members.clear();
                members.extend(doc.entities.iter().filter(|&&(et, _)| et as usize == t).map(|&(_, id)| id));
                members.sort_unstable();
                members.dedup();
                for &a in &members {
                    for &b in &members {
                        if a != b {
                            adjacency[a as usize].push(b);
                        }
                    }
                }
            }
            doc_entities.push(doc.entities);
        }
        for lists in &mut cooccur {
            for list in lists {
                list.sort_unstable();
                list.dedup();
            }
        }
        let author_type = type_by_name.get("author").copied();

        Ok(QueryIndex {
            type_names,
            entity_names,
            topics,
            name_to_id,
            path_to_topic,
            type_by_name,
            doc_gids,
            doc_years,
            doc_leafs,
            doc_entities,
            entity_docs,
            cooccur,
            leaf_counts,
            author_type,
            model_stamp,
            advisor: OnceLock::new(),
        })
    }

    pub fn num_types(&self) -> usize {
        self.type_names.len()
    }

    pub fn num_topics(&self) -> usize {
        self.topics.len()
    }

    pub fn num_docs(&self) -> usize {
        self.doc_gids.len()
    }

    pub fn num_entities(&self, etype: usize) -> usize {
        self.entity_names[etype].len()
    }

    /// Resolves an entity type by catalog name.
    pub fn resolve_type(&self, name: &str) -> Result<usize, QueryError> {
        self.type_by_name
            .get(name)
            .copied()
            .ok_or_else(|| QueryError::UnknownType(name.to_string()))
    }

    /// Resolves a topic by index or hierarchy path.
    pub fn resolve_topic(&self, r: &TopicRef) -> Result<usize, QueryError> {
        match r {
            TopicRef::Id(id) if *id < self.topics.len() => Ok(*id),
            TopicRef::Id(id) => Err(QueryError::UnknownTopic(id.to_string())),
            TopicRef::Path(p) => self
                .path_to_topic
                .get(p)
                .copied()
                .ok_or_else(|| QueryError::UnknownTopic(p.clone())),
        }
    }

    /// Looks up an entity id by name.
    pub fn entity_by_name(&self, etype: usize, name: &str) -> Option<u32> {
        self.name_to_id[etype].get(name).copied()
    }

    /// The subtree rooted at `t` (inclusive), ascending. Robust against
    /// hostile parts with cyclic child links: each topic visits once.
    pub fn subtree(&self, t: usize) -> Vec<usize> {
        let mut seen = vec![false; self.topics.len()];
        let mut out = Vec::new();
        let mut stack = vec![t];
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            out.push(n);
            stack.extend(self.topics[n].children.iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// Integer entity counts aggregated over the subtree of `t`.
    pub fn subtree_counts(&self, etype: usize, t: usize) -> Vec<u64> {
        let mut out = vec![0u64; self.num_entities(etype)];
        for z in self.subtree(t) {
            for (e, &c) in self.leaf_counts[etype][z].iter().enumerate() {
                out[e] += c;
            }
        }
        out
    }

    /// Advisor→advisee edges, inferred lazily on first use. Corpora
    /// without an `author` type, years, or surviving candidates yield
    /// empty edge sets rather than errors: "no advisors found" is a valid
    /// query answer.
    pub fn advisor_edges(&self) -> &AdvisorEdges {
        self.advisor.get_or_init(|| self.build_advisor_edges())
    }

    fn build_advisor_edges(&self) -> AdvisorEdges {
        let Some(author) = self.author_type else {
            return AdvisorEdges::default();
        };
        let n_authors = self.num_entities(author);
        let mut edges = AdvisorEdges {
            advisees: vec![Vec::new(); n_authors],
            advisors: vec![Vec::new(); n_authors],
        };
        // Mirrors `corpus_to_papers`: docs in ascending global order,
        // keeping only those with a year and at least one author.
        let papers: Vec<GenPaper> = self
            .doc_entities
            .iter()
            .zip(&self.doc_years)
            .filter_map(|(ents, year)| {
                let year = (*year)?;
                let authors: Vec<u32> = ents
                    .iter()
                    .filter(|&&(t, _)| t as usize == author)
                    .map(|&(_, id)| id)
                    .collect();
                if authors.is_empty() {
                    None
                } else {
                    Some(GenPaper { year, authors })
                }
            })
            .collect();
        if papers.is_empty() {
            return edges;
        }
        let Ok(graph) = CandidateGraph::build(&papers, n_authors, &PreprocessConfig::default())
        else {
            return edges;
        };
        let Ok(result) = Tpfg::infer(&graph, &TpfgConfig::default()) else {
            return edges;
        };
        let forest = AdvisingForest::from_result(&result, 1, 0.3);
        for node in &forest.nodes {
            for &child in &node.children {
                edges.advisees[node.author as usize].push(id32(child));
                edges.advisors[child].push(node.author);
            }
        }
        for list in edges.advisees.iter_mut().chain(edges.advisors.iter_mut()) {
            list.sort_unstable();
            list.dedup();
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parts::DocRecord;

    pub(crate) fn tiny_parts() -> IndexParts {
        IndexParts {
            type_names: vec!["author".into(), "venue".into()],
            entity_names: vec![
                vec!["alice".into(), "bob".into(), "carol".into()],
                vec!["vldb".into()],
            ],
            topics: vec![
                TopicMeta { parent: None, children: vec![1, 2], path: "o".into() },
                TopicMeta { parent: Some(0), children: vec![], path: "o/1".into() },
                TopicMeta { parent: Some(0), children: vec![], path: "o/2".into() },
            ],
            docs: vec![
                DocRecord {
                    gid: 0,
                    year: Some(2000),
                    leaf: 1,
                    entities: vec![(0, 0), (0, 1), (1, 0)],
                },
                DocRecord { gid: 1, year: Some(2004), leaf: 2, entities: vec![(0, 1), (0, 2)] },
                DocRecord { gid: 2, year: Some(2006), leaf: 1, entities: vec![(0, 0), (0, 0)] },
            ],
        }
    }

    #[test]
    fn adjacency_and_counts_are_exact() {
        let idx = QueryIndex::build(tiny_parts()).unwrap();
        assert_eq!(idx.cooccur[0][1], vec![0, 2]);
        assert_eq!(idx.entity_docs[0][0], vec![0, 2]);
        // alice occurs once in doc 0 (leaf 1) and twice in doc 2 (leaf 1).
        assert_eq!(idx.leaf_counts[0][1][0], 3);
        assert_eq!(idx.subtree_counts(0, 0), vec![3, 2, 1]);
        assert_eq!(idx.subtree(0), vec![0, 1, 2]);
        assert_eq!(idx.subtree(1), vec![1]);
    }

    #[test]
    fn resolution_is_typed() {
        let idx = QueryIndex::build(tiny_parts()).unwrap();
        assert_eq!(idx.resolve_type("venue").unwrap(), 1);
        assert!(matches!(idx.resolve_type("nope"), Err(QueryError::UnknownType(_))));
        assert_eq!(idx.resolve_topic(&TopicRef::Path("o/2".into())).unwrap(), 2);
        assert!(idx.resolve_topic(&TopicRef::Id(9)).is_err());
        assert_eq!(idx.entity_by_name(0, "carol"), Some(2));
    }

    #[test]
    fn oversized_id_ranges_are_a_typed_build_error() {
        // The guard itself: anything past u32::MAX must refuse.
        assert!(super::checked_id_range(u32::MAX as usize, "document").is_ok());
        let r = super::checked_id_range(u32::MAX as usize + 1, "document");
        match r {
            Err(QueryError::IndexOverflow(m)) => {
                assert!(m.contains("document"), "{m}");
            }
            other => panic!("expected IndexOverflow, got {other:?}"),
        }
        // Overflow is a server-state error (HTTP 500), not a request error.
        assert!(!QueryError::IndexOverflow(String::new()).is_request_error());
        // In-range parts still build.
        assert!(QueryIndex::build(tiny_parts()).is_ok());
    }

    #[test]
    fn cyclic_topic_links_terminate() {
        let mut parts = tiny_parts();
        parts.topics[1].children = vec![0]; // hostile cycle
        let idx = QueryIndex::build(parts).unwrap();
        assert_eq!(idx.subtree(0), vec![0, 1, 2]);
    }

    #[test]
    fn advisor_edges_default_empty_without_signal() {
        let mut parts = tiny_parts();
        for d in &mut parts.docs {
            d.year = None;
        }
        let idx = QueryIndex::build(parts).unwrap();
        assert!(idx.advisor_edges().advisees.iter().all(Vec::is_empty));
    }
}
