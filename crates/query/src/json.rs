//! Hand-rolled, dependency-free JSON parser for query programs.
//!
//! Accepts the RFC 8259 grammar with two deliberate restrictions that keep
//! query parsing total and deterministic: input size and nesting depth are
//! hard-capped, and duplicate object keys are rejected (a program with two
//! `"steps"` keys has no single canonical meaning). Object key order is
//! preserved in a `Vec`, never a hash map, so re-serialization and error
//! reporting cannot depend on process-random iteration (DESIGN.md §11).

use std::fmt;

/// Maximum accepted input size in bytes.
pub const MAX_JSON_BYTES: usize = 64 * 1024;
/// Maximum accepted nesting depth (arrays + objects).
pub const MAX_JSON_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an integer, if it is one (no fraction, in range).
    pub fn as_i64(&self) -> Option<i64> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && n >= -(2f64.powi(53)) && n <= 2f64.powi(53) {
            Some(n as i64)
        } else {
            None
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Human-readable variant name for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure with the byte offset where it was detected.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub what: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.what, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<Json, JsonError> {
    if input.len() > MAX_JSON_BYTES {
        return Err(JsonError {
            offset: MAX_JSON_BYTES,
            what: format!("input exceeds {MAX_JSON_BYTES} bytes"),
        });
    }
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: impl Into<String>) -> JsonError {
        JsonError { offset: self.pos, what: what.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_JSON_DEPTH {
            return Err(self.err(format!("nesting deeper than {MAX_JSON_DEPTH}")));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string().map_err(|e| JsonError {
                offset: e.offset,
                what: format!("object key: {}", e.what),
            })?;
            if pairs.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control byte in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar; input is a &str so boundaries hold.
                    let rest = &self.bytes[self.pos..];
                    let step = match rest[0] {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = std::str::from_utf8(&rest[..step.min(rest.len())])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                    self.pos += step;
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u`, combining surrogate pairs.
    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let hi = self.hex4()?;
        if (0xd800..0xdc00).contains(&hi) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xdc00..0xe000).contains(&lo) {
                    let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                    return char::from_u32(code).ok_or_else(|| self.err("bad surrogate pair"));
                }
            }
            return Err(self.err("lone high surrogate"));
        }
        if (0xdc00..0xe000).contains(&hi) {
            return Err(self.err("lone low surrogate"));
        }
        char::from_u32(hi).ok_or_else(|| self.err("bad unicode escape"))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > from
        };
        // RFC 8259 int part: "0" or a nonzero digit followed by digits.
        let int_start = self.pos;
        if !digits(self) {
            return Err(self.err("expected digits"));
        }
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(self.err("leading zero"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        if !n.is_finite() {
            return Err(self.err("number out of range"));
        }
        Ok(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_values() {
        let v = parse_json(r#"{"a": [1, 2.5, -3e2], "b": {"c": null, "d": true}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Null));
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse_json(r#""a\"b\\c\n\u0041\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "a\"b\\c\nA😀");
    }

    #[test]
    fn rejects_hostile_inputs() {
        for bad in [
            "", "{", "[1,", "{\"a\":}", "nul", "01", "1.", "--1", "\"\\q\"",
            "\"\\ud800\"", "{\"a\":1,\"a\":2}", "[1] trailing", "\u{7}",
        ] {
            assert!(parse_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn depth_and_size_caps_hold() {
        let deep = "[".repeat(MAX_JSON_DEPTH + 2) + &"]".repeat(MAX_JSON_DEPTH + 2);
        assert!(parse_json(&deep).is_err());
        let big = format!("\"{}\"", "x".repeat(MAX_JSON_BYTES));
        assert!(parse_json(&big).is_err());
    }

    #[test]
    fn integers_are_detected() {
        assert_eq!(parse_json("7").unwrap().as_i64(), Some(7));
        assert_eq!(parse_json("7.5").unwrap().as_i64(), None);
    }
}
