//! The typed query program: a deterministic pipeline of steps parsed from a
//! compact JSON representation.
//!
//! A request body looks like:
//!
//! ```json
//! {"steps": [
//!    {"filter": {"type": "author", "name": "alice"}},
//!    {"traverse": {"edge": "advisees"}},
//!    {"filter": {"topic": "o/1", "years": {"min": 2006}}},
//!    {"rank": {"by": "combined", "topic": "o/1", "limit": 10}}
//!  ],
//!  "page": 20}
//! ```
//!
//! Parsing is strict: unknown step names, unknown fields, and out-of-range
//! caps are typed errors, never silently ignored — a hostile or typo'd
//! program must fail the same way on every replica (DESIGN.md §11).

use crate::json::{parse_json, Json};
use crate::QueryError;

/// Maximum steps per program.
pub const MAX_STEPS: usize = 16;
/// Maximum `path` search depth.
pub const MAX_PATH_DEPTH: usize = 8;
/// Maximum enumerated paths per `path` step.
pub const MAX_PATH_LIMIT: usize = 1000;
/// Maximum names per filter.
pub const MAX_NAMES: usize = 64;
/// Maximum page size.
pub const MAX_PAGE: usize = 1000;

/// Node-kind selector in a filter (`"type"` field).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KindSel {
    /// An entity type, by catalog name (e.g. `"author"`).
    Entity(String),
    Topic,
    Doc,
}

/// A topic reference: numeric index or hierarchy path (e.g. `"o/1/2"`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopicRef {
    Id(usize),
    Path(String),
}

/// A typed edge the engine can follow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Edge {
    /// Entity → same-type entities sharing a document.
    Coauthor,
    /// Advisor → advisee (TPFG prediction, author type only).
    Advisees,
    /// Advisee → advisor (reverse of [`Edge::Advisees`]).
    Advisors,
    /// Entity → leaf topics of its documents.
    Topics,
    /// Topic/doc → member entities, optionally restricted to one type name.
    Entities(Option<String>),
    /// Entity/topic → documents.
    Docs,
    /// Topic → parent topic.
    Parent,
    /// Topic → child topics.
    Children,
}

impl Edge {
    pub fn name(&self) -> &'static str {
        match self {
            Edge::Coauthor => "coauthor",
            Edge::Advisees => "advisees",
            Edge::Advisors => "advisors",
            Edge::Topics => "topics",
            Edge::Entities(_) => "entities",
            Edge::Docs => "docs",
            Edge::Parent => "parent",
            Edge::Children => "children",
        }
    }
}

/// Predicates of a `filter` step (also the target spec of a `path` step).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FilterSpec {
    pub kind: Option<KindSel>,
    pub names: Vec<String>,
    /// Inclusive year bounds; `None` side is unbounded.
    pub years: Option<(Option<i64>, Option<i64>)>,
    pub topic: Option<TopicRef>,
    /// Minimum popularity score `p(e|topic)`; requires `topic`.
    pub min_score: Option<f64>,
}

/// `path` result mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathMode {
    /// Keep source nodes with a path to the target set.
    Exists,
    /// Enumerate the paths themselves.
    Paths,
}

/// Ranking criterion (§5.2 entity roles).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankBy {
    Pop,
    Pur,
    Combined,
}

/// One pipeline step.
#[derive(Debug, Clone, PartialEq)]
pub enum Step {
    Filter(FilterSpec),
    Traverse { edge: Edge },
    Path { to: FilterSpec, edges: Vec<Edge>, max_depth: usize, mode: PathMode, limit: usize },
    Rank { by: RankBy, topic: TopicRef, limit: Option<usize> },
}

/// A parsed query request: the program plus pagination intent.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRequest {
    pub steps: Vec<Step>,
    /// Page size; `None` returns everything in one response.
    pub page: Option<usize>,
    /// Resume cursor (raw, validated by the executor).
    pub cursor: Option<String>,
}

fn bad(what: impl Into<String>) -> QueryError {
    QueryError::Program(what.into())
}

fn obj<'a>(v: &'a Json, ctx: &str) -> Result<&'a [(String, Json)], QueryError> {
    v.as_obj().ok_or_else(|| bad(format!("{ctx} must be an object, got {}", v.type_name())))
}

fn str_field(v: &Json, ctx: &str) -> Result<String, QueryError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| bad(format!("{ctx} must be a string, got {}", v.type_name())))
}

fn usize_field(v: &Json, ctx: &str, max: usize) -> Result<usize, QueryError> {
    let n = v
        .as_i64()
        .ok_or_else(|| bad(format!("{ctx} must be an integer, got {}", v.type_name())))?;
    if n < 0 {
        return Err(bad(format!("{ctx} must be non-negative")));
    }
    let n = n as usize;
    if n > max {
        return Err(bad(format!("{ctx} exceeds the cap of {max}")));
    }
    Ok(n)
}

fn topic_ref(v: &Json, ctx: &str) -> Result<TopicRef, QueryError> {
    match v {
        Json::Num(_) => Ok(TopicRef::Id(usize_field(v, ctx, usize::MAX)?)),
        Json::Str(s) => Ok(TopicRef::Path(s.clone())),
        other => Err(bad(format!("{ctx} must be a topic index or path, got {}", other.type_name()))),
    }
}

/// Parses a full request body (steps + page/cursor).
pub fn parse_request(body: &str) -> Result<QueryRequest, QueryError> {
    let root = parse_json(body).map_err(QueryError::Json)?;
    let pairs = obj(&root, "request")?;
    let mut steps = None;
    let mut page = None;
    let mut cursor = None;
    for (k, v) in pairs {
        match k.as_str() {
            "steps" => steps = Some(parse_steps(v)?),
            "page" => {
                let n = usize_field(v, "page", MAX_PAGE)?;
                if n == 0 {
                    return Err(bad("page must be at least 1"));
                }
                page = Some(n);
            }
            "cursor" => cursor = Some(str_field(v, "cursor")?),
            other => return Err(bad(format!("unknown request field {other:?}"))),
        }
    }
    let steps = steps.ok_or_else(|| bad("request is missing \"steps\""))?;
    if page.is_some() && cursor.is_some() {
        return Err(bad("pass either \"page\" or \"cursor\", not both (the cursor encodes the page size)"));
    }
    Ok(QueryRequest { steps, page, cursor })
}

fn parse_steps(v: &Json) -> Result<Vec<Step>, QueryError> {
    let arr = v.as_arr().ok_or_else(|| bad("\"steps\" must be an array"))?;
    if arr.is_empty() {
        return Err(bad("\"steps\" must not be empty"));
    }
    if arr.len() > MAX_STEPS {
        return Err(bad(format!("more than {MAX_STEPS} steps")));
    }
    let steps: Vec<Step> = arr.iter().map(parse_step).collect::<Result<_, _>>()?;
    // A pipeline must start from a seeded universe, and terminal steps
    // (rank, path enumeration) change the result shape, so nothing may
    // follow them.
    match &steps[0] {
        Step::Filter(spec) if spec.kind.is_some() => {}
        Step::Filter(_) => return Err(bad("the first filter must name a \"type\" to seed the node set")),
        _ => return Err(bad("programs must start with a filter step")),
    }
    for (i, step) in steps.iter().enumerate() {
        let last = i + 1 == steps.len();
        match step {
            Step::Rank { .. } if !last => return Err(bad("rank must be the last step")),
            Step::Path { mode: PathMode::Paths, .. } if !last => {
                return Err(bad("a path step with mode \"paths\" must be the last step"))
            }
            _ => {}
        }
    }
    Ok(steps)
}

fn parse_step(v: &Json) -> Result<Step, QueryError> {
    let pairs = obj(v, "step")?;
    if pairs.len() != 1 {
        return Err(bad("each step must have exactly one key (filter/traverse/path/rank)"));
    }
    let (name, body) = &pairs[0];
    match name.as_str() {
        "filter" => Ok(Step::Filter(parse_filter(body, "filter")?)),
        "traverse" => parse_traverse(body),
        "path" => parse_path(body),
        "rank" => parse_rank(body),
        other => Err(bad(format!("unknown step {other:?}"))),
    }
}

fn parse_filter(v: &Json, ctx: &str) -> Result<FilterSpec, QueryError> {
    let pairs = obj(v, ctx)?;
    let mut spec = FilterSpec::default();
    for (k, val) in pairs {
        match k.as_str() {
            "type" => {
                let t = str_field(val, "filter type")?;
                spec.kind = Some(match t.as_str() {
                    "topic" => KindSel::Topic,
                    "doc" => KindSel::Doc,
                    _ => KindSel::Entity(t),
                });
            }
            "name" => spec.names.push(str_field(val, "filter name")?),
            "names" => {
                let arr = val.as_arr().ok_or_else(|| bad("\"names\" must be an array"))?;
                for item in arr {
                    spec.names.push(str_field(item, "filter names entry")?);
                }
            }
            "years" => {
                let ypairs = obj(val, "years")?;
                let mut min = None;
                let mut max = None;
                for (yk, yv) in ypairs {
                    let bound = yv
                        .as_i64()
                        .ok_or_else(|| bad(format!("years {yk} must be an integer")))?;
                    match yk.as_str() {
                        "min" => min = Some(bound),
                        "max" => max = Some(bound),
                        other => return Err(bad(format!("unknown years field {other:?}"))),
                    }
                }
                if min.is_none() && max.is_none() {
                    return Err(bad("years needs a min and/or max"));
                }
                if let (Some(lo), Some(hi)) = (min, max) {
                    if lo > hi {
                        return Err(bad("years min exceeds max"));
                    }
                }
                spec.years = Some((min, max));
            }
            "topic" => spec.topic = Some(topic_ref(val, "filter topic")?),
            "min_score" => {
                let s = val
                    .as_f64()
                    .ok_or_else(|| bad("min_score must be a number"))?;
                if !(0.0..=1.0).contains(&s) {
                    return Err(bad("min_score must be in [0, 1]"));
                }
                spec.min_score = Some(s);
            }
            other => return Err(bad(format!("unknown filter field {other:?}"))),
        }
    }
    if spec.names.len() > MAX_NAMES {
        return Err(bad(format!("more than {MAX_NAMES} names in one filter")));
    }
    if spec.min_score.is_some() && spec.topic.is_none() {
        return Err(bad("min_score requires a topic"));
    }
    if spec.kind.is_none()
        && spec.names.is_empty()
        && spec.years.is_none()
        && spec.topic.is_none()
    {
        return Err(bad(format!("{ctx} has no predicates")));
    }
    Ok(spec)
}

fn parse_edge(name: &str, etype: Option<String>) -> Result<Edge, QueryError> {
    match name {
        "coauthor" => Ok(Edge::Coauthor),
        "advisees" => Ok(Edge::Advisees),
        "advisors" => Ok(Edge::Advisors),
        "topics" => Ok(Edge::Topics),
        "entities" => Ok(Edge::Entities(etype)),
        "docs" => Ok(Edge::Docs),
        "parent" => Ok(Edge::Parent),
        "children" => Ok(Edge::Children),
        other => Err(bad(format!("unknown edge {other:?}"))),
    }
}

fn parse_traverse(v: &Json) -> Result<Step, QueryError> {
    let pairs = obj(v, "traverse")?;
    let mut edge_name = None;
    let mut etype = None;
    for (k, val) in pairs {
        match k.as_str() {
            "edge" => edge_name = Some(str_field(val, "traverse edge")?),
            "type" => etype = Some(str_field(val, "traverse type")?),
            other => return Err(bad(format!("unknown traverse field {other:?}"))),
        }
    }
    let name = edge_name.ok_or_else(|| bad("traverse is missing \"edge\""))?;
    if etype.is_some() && name != "entities" {
        return Err(bad("traverse \"type\" only applies to the \"entities\" edge"));
    }
    Ok(Step::Traverse { edge: parse_edge(&name, etype)? })
}

fn parse_path(v: &Json) -> Result<Step, QueryError> {
    let pairs = obj(v, "path")?;
    let mut to = None;
    let mut edges: Option<Vec<Edge>> = None;
    let mut max_depth = None;
    let mut mode = PathMode::Exists;
    let mut limit = 100usize;
    for (k, val) in pairs {
        match k.as_str() {
            "to" => to = Some(parse_filter(val, "path target")?),
            "edges" => {
                let arr = val.as_arr().ok_or_else(|| bad("path edges must be an array"))?;
                let parsed: Vec<Edge> = arr
                    .iter()
                    .map(|e| parse_edge(&str_field(e, "path edge")?, None))
                    .collect::<Result<_, _>>()?;
                if parsed.is_empty() {
                    return Err(bad("path edges must not be empty"));
                }
                edges = Some(parsed);
            }
            "max_depth" => max_depth = Some(usize_field(val, "max_depth", MAX_PATH_DEPTH)?),
            "mode" => {
                mode = match str_field(val, "path mode")?.as_str() {
                    "exists" => PathMode::Exists,
                    "paths" => PathMode::Paths,
                    other => return Err(bad(format!("unknown path mode {other:?}"))),
                }
            }
            "limit" => {
                limit = usize_field(val, "path limit", MAX_PATH_LIMIT)?;
                if limit == 0 {
                    return Err(bad("path limit must be at least 1"));
                }
            }
            other => return Err(bad(format!("unknown path field {other:?}"))),
        }
    }
    let to = to.ok_or_else(|| bad("path is missing \"to\""))?;
    if to.kind.is_none() {
        return Err(bad("path target must name a \"type\""));
    }
    let edges = edges.ok_or_else(|| bad("path is missing \"edges\""))?;
    let max_depth = max_depth.ok_or_else(|| bad("path is missing \"max_depth\""))?;
    if max_depth == 0 {
        return Err(bad("max_depth must be at least 1"));
    }
    Ok(Step::Path { to, edges, max_depth, mode, limit })
}

fn parse_rank(v: &Json) -> Result<Step, QueryError> {
    let pairs = obj(v, "rank")?;
    let mut by = None;
    let mut topic = None;
    let mut limit = None;
    for (k, val) in pairs {
        match k.as_str() {
            "by" => {
                by = Some(match str_field(val, "rank by")?.as_str() {
                    "pop" => RankBy::Pop,
                    "pur" => RankBy::Pur,
                    "combined" => RankBy::Combined,
                    other => return Err(bad(format!("unknown rank criterion {other:?}"))),
                })
            }
            "topic" => topic = Some(topic_ref(val, "rank topic")?),
            "limit" => {
                let n = usize_field(val, "rank limit", MAX_PAGE)?;
                if n == 0 {
                    return Err(bad("rank limit must be at least 1"));
                }
                limit = Some(n);
            }
            other => return Err(bad(format!("unknown rank field {other:?}"))),
        }
    }
    Ok(Step::Rank {
        by: by.ok_or_else(|| bad("rank is missing \"by\""))?,
        topic: topic.ok_or_else(|| bad("rank is missing \"topic\""))?,
        limit,
    })
}

// ---------------------------------------------------------------------------
// Canonical serialization: a stable byte representation of the parsed steps,
// independent of the submitted JSON's whitespace and field order. Cursors
// hash these bytes so a cursor can only resume the exact program that
// produced it.
// ---------------------------------------------------------------------------

fn push_filter(out: &mut String, spec: &FilterSpec) {
    out.push_str("filter(");
    match &spec.kind {
        Some(KindSel::Entity(name)) => {
            out.push_str("type=");
            out.push_str(name);
        }
        Some(KindSel::Topic) => out.push_str("type=#topic"),
        Some(KindSel::Doc) => out.push_str("type=#doc"),
        None => {}
    }
    for name in &spec.names {
        out.push_str(";name=");
        out.push_str(name);
    }
    if let Some((min, max)) = &spec.years {
        out.push_str(";years=");
        if let Some(lo) = min {
            out.push_str(&lo.to_string());
        }
        out.push_str("..");
        if let Some(hi) = max {
            out.push_str(&hi.to_string());
        }
    }
    if let Some(t) = &spec.topic {
        out.push_str(";topic=");
        match t {
            TopicRef::Id(id) => out.push_str(&id.to_string()),
            TopicRef::Path(p) => out.push_str(p),
        }
    }
    if let Some(s) = spec.min_score {
        out.push_str(&format!(";min_score={}", s.to_bits()));
    }
    out.push(')');
}

/// Renders the program's canonical form (hashed into cursors).
pub fn canonical_steps(steps: &[Step]) -> String {
    let mut out = String::new();
    for step in steps {
        if !out.is_empty() {
            out.push('|');
        }
        match step {
            Step::Filter(spec) => push_filter(&mut out, spec),
            Step::Traverse { edge } => {
                out.push_str("traverse(");
                out.push_str(edge.name());
                if let Edge::Entities(Some(t)) = edge {
                    out.push_str(";type=");
                    out.push_str(t);
                }
                out.push(')');
            }
            Step::Path { to, edges, max_depth, mode, limit } => {
                out.push_str("path(to=");
                push_filter(&mut out, to);
                out.push_str(";edges=");
                for (i, e) in edges.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(e.name());
                }
                out.push_str(&format!(
                    ";max_depth={max_depth};mode={};limit={limit})",
                    match mode {
                        PathMode::Exists => "exists",
                        PathMode::Paths => "paths",
                    }
                ));
            }
            Step::Rank { by, topic, limit } => {
                out.push_str("rank(by=");
                out.push_str(match by {
                    RankBy::Pop => "pop",
                    RankBy::Pur => "pur",
                    RankBy::Combined => "combined",
                });
                out.push_str(";topic=");
                match topic {
                    TopicRef::Id(id) => out.push_str(&id.to_string()),
                    TopicRef::Path(p) => out.push_str(p),
                }
                if let Some(n) = limit {
                    out.push_str(&format!(";limit={n}"));
                }
                out.push(')');
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_program() {
        let req = parse_request(
            r#"{"steps": [
                {"filter": {"type": "author", "name": "alice"}},
                {"traverse": {"edge": "advisees"}},
                {"filter": {"topic": "o/1", "years": {"min": 2006}}},
                {"rank": {"by": "combined", "topic": "o/1", "limit": 10}}
            ], "page": 20}"#,
        )
        .unwrap();
        assert_eq!(req.steps.len(), 4);
        assert_eq!(req.page, Some(20));
        assert!(matches!(req.steps[1], Step::Traverse { edge: Edge::Advisees }));
    }

    #[test]
    fn canonical_form_ignores_field_order_and_whitespace() {
        let a = parse_request(r#"{"steps":[{"filter":{"type":"author","years":{"min":2000}}}]}"#)
            .unwrap();
        let b = parse_request(
            r#"{ "steps" : [ { "filter" : { "years" : { "min" : 2000 }, "type" : "author" } } ] }"#,
        )
        .unwrap();
        assert_eq!(canonical_steps(&a.steps), canonical_steps(&b.steps));
    }

    #[test]
    fn strict_rejection_of_malformed_programs() {
        for bad in [
            r#"{}"#,
            r#"{"steps": []}"#,
            r#"{"steps": [{"warp": {}}]}"#,
            r#"{"steps": [{"filter": {"type": "author"}, "rank": {}}]}"#,
            r#"{"steps": [{"traverse": {"edge": "coauthor"}}]}"#,
            r#"{"steps": [{"filter": {"name": "x"}}]}"#,
            r#"{"steps": [{"filter": {"type": "author"}}, {"rank": {"by": "pop", "topic": 0}}, {"traverse": {"edge": "coauthor"}}]}"#,
            r#"{"steps": [{"filter": {"type": "author"}}], "page": 0}"#,
            r#"{"steps": [{"filter": {"type": "author"}}], "page": 10, "cursor": "q1.x.0.10"}"#,
            r#"{"steps": [{"filter": {"type": "author", "min_score": 0.5}}]}"#,
            r#"{"steps": [{"filter": {"type": "author", "years": {"min": 2010, "max": 2000}}}]}"#,
            r#"{"steps": [{"filter": {"type": "author"}}, {"path": {"to": {"type": "author"}, "edges": ["coauthor"], "max_depth": 99}}]}"#,
            r#"{"steps": [{"filter": {"type": "author"}}, {"traverse": {"edge": "coauthor", "type": "venue"}}]}"#,
        ] {
            assert!(parse_request(bad).is_err(), "{bad} should be rejected");
        }
    }
}
