//! `lesm-query`: a composable typed query/traversal engine over the mined
//! THIN + topic hierarchy (ROADMAP item 3; the "heterogeneous web of
//! topics" exploration scenario).
//!
//! A query is a deterministic pipeline of steps — `filter`, `traverse`,
//! `path`, `rank` — parsed from a compact JSON representation by a
//! hand-rolled, dependency-free parser ([`json`]), compiled to a typed
//! program ([`program`]), and executed ([`engine`]) against a derived
//! index ([`index`]) built from a canonical model extract ([`parts`]).
//!
//! The whole stack honors the DESIGN.md §11 determinism contract
//! end-to-end: identical programs yield byte-identical responses on the
//! owned model, the v2 zero-copy snapshot, and a sharded front tier, and
//! cursors encode only a resume position — never wall-clock or
//! randomness. Each cursor is stamped with a content hash of both the
//! program and the indexed model, so a cursor outlives restarts and
//! rebuilds of the same model but is a typed [`QueryError::BadCursor`]
//! after a hot-swap replaces the model underneath a page stream. See
//! DESIGN.md §14 for the model and the argument.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod engine;
pub mod index;
pub mod json;
pub mod parts;
pub mod program;

pub use engine::{execute, fnv1a64, item_lines, run_query, Node, Rendered};
pub use index::{AdvisorEdges, QueryIndex};
pub use json::{parse_json, Json, JsonError};
pub use parts::{DocRecord, IndexParts, TopicMeta};
pub use program::{parse_request, QueryRequest, Step};

/// Errors surfaced by parsing or executing a query. Everything a hostile
/// request can trigger is represented here; the engine never panics.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The request body is not valid JSON.
    Json(JsonError),
    /// The JSON does not describe a valid program.
    Program(String),
    /// An entity type name that is not in the catalog.
    UnknownType(String),
    /// A topic index or path that is not in the hierarchy.
    UnknownTopic(String),
    /// A cursor that is malformed, from another program, or out of range.
    BadCursor(String),
    /// A bounded search exceeded its budget.
    TooLarge(String),
    /// The model is too large to index: an id range does not fit the
    /// engine's `u32` node ids. Raised at [`QueryIndex::build`] time so
    /// traversal never silently truncates ids.
    IndexOverflow(String),
    /// Malformed internal state (e.g. a bad shard parts payload).
    Internal(String),
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::Json(e) => write!(f, "invalid JSON: {e}"),
            QueryError::Program(m) => write!(f, "invalid program: {m}"),
            QueryError::UnknownType(t) => write!(f, "unknown entity type {t:?}"),
            QueryError::UnknownTopic(t) => write!(f, "unknown topic {t:?}"),
            QueryError::BadCursor(m) => write!(f, "bad cursor: {m}"),
            QueryError::TooLarge(m) => write!(f, "query too large: {m}"),
            QueryError::IndexOverflow(m) => write!(f, "model too large to index: {m}"),
            QueryError::Internal(m) => write!(f, "internal: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

impl QueryError {
    /// Whether the error blames the request (HTTP 400) rather than the
    /// server's own state (HTTP 500).
    pub fn is_request_error(&self) -> bool {
        !matches!(self, QueryError::Internal(_) | QueryError::IndexOverflow(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parts::{DocRecord, TopicMeta};
    use proptest::prelude::*;

    /// A small but structurally rich fixture: 3 topics, 2 entity types,
    /// 6 docs with years, enough for every edge kind to fire.
    fn fixture() -> QueryIndex {
        QueryIndex::build(fixture_parts()).expect("build fixture index")
    }

    fn run(body: &str) -> Result<String, QueryError> {
        run_query(&fixture(), body)
    }

    #[test]
    fn filter_by_name_and_years() {
        let out = run(
            r#"{"steps": [{"filter": {"type": "author", "years": {"min": 2006}}}]}"#,
        )
        .unwrap();
        // bob, carol and dan have post-2006 docs; alice does not.
        assert!(out.contains("\"name\":\"bob\"") && out.contains("\"name\":\"dan\""));
        assert!(!out.contains("alice"));
    }

    #[test]
    fn traverse_coauthor_and_topics() {
        let out = run(
            r#"{"steps": [
                {"filter": {"type": "author", "name": "alice"}},
                {"traverse": {"edge": "coauthor"}}
            ]}"#,
        )
        .unwrap();
        assert!(out.contains("\"name\":\"bob\""));
        assert!(!out.contains("\"name\":\"dan\""));
        let topics = run(
            r#"{"steps": [
                {"filter": {"type": "author", "name": "dan"}},
                {"traverse": {"edge": "topics"}}
            ]}"#,
        )
        .unwrap();
        assert!(topics.contains("\"path\":\"o/2\""));
        assert!(!topics.contains("\"path\":\"o/1\""));
    }

    #[test]
    fn topic_membership_uses_subtrees() {
        let out = run(
            r#"{"steps": [{"filter": {"type": "doc", "topic": "o/2"}}]}"#,
        )
        .unwrap();
        assert_eq!(out.matches("\"kind\":\"doc\"").count(), 2);
        let all = run(r#"{"steps": [{"filter": {"type": "doc", "topic": 0}}]}"#).unwrap();
        assert_eq!(all.matches("\"kind\":\"doc\"").count(), 6);
    }

    #[test]
    fn path_exists_and_enumerate() {
        let exists = run(
            r#"{"steps": [
                {"filter": {"type": "author", "name": "alice"}},
                {"path": {"to": {"type": "author", "name": "dan"}, "edges": ["coauthor"], "max_depth": 3}}
            ]}"#,
        )
        .unwrap();
        // alice—bob—carol… but dan only shares docs with nobody (doc 5 has
        // only dan), so no path exists.
        assert!(exists.contains("\"total\":0"), "{exists}");
        let paths = run(
            r#"{"steps": [
                {"filter": {"type": "author", "name": "alice"}},
                {"path": {"to": {"type": "author", "name": "carol"}, "edges": ["coauthor"], "max_depth": 2, "mode": "paths"}}
            ]}"#,
        )
        .unwrap();
        assert!(paths.contains("\"kind\":\"path\""));
        assert!(paths.contains("\"name\":\"carol\""));
    }

    #[test]
    fn rank_orders_are_pinned() {
        let out = run(
            r#"{"steps": [
                {"filter": {"type": "author"}},
                {"rank": {"by": "pop", "topic": "o/1", "limit": 2}}
            ]}"#,
        )
        .unwrap();
        // In o/1: alice 3 occurrences, bob 4, carol 1 → bob first.
        let bob = out.find("bob").unwrap();
        let alice = out.find("alice").unwrap();
        assert!(bob < alice, "{out}");
        assert!(out.contains("\"score\":"));
    }

    #[test]
    fn identical_queries_are_byte_identical() {
        let body = r#"{"steps": [
            {"filter": {"type": "author"}},
            {"traverse": {"edge": "coauthor"}},
            {"rank": {"by": "combined", "topic": "o/1"}}
        ]}"#;
        assert_eq!(run(body).unwrap(), run(body).unwrap());
    }

    #[test]
    fn hostile_requests_yield_typed_errors() {
        for bad in [
            "",
            "{",
            r#"{"steps": [{"filter": {"type": "spaceship"}}]}"#,
            r#"{"steps": [{"filter": {"type": "author", "topic": "o/9"}}]}"#,
            r#"{"steps": [{"filter": {"type": "author"}}], "cursor": "nope"}"#,
            r#"{"steps": [{"filter": {"type": "author"}}], "cursor": "q1.0000000000000000.0.10"}"#,
        ] {
            let err = run(bad).unwrap_err();
            assert!(err.is_request_error(), "{bad} → {err}");
        }
    }

    fn pages(body_steps: &str, page: usize) -> (String, Vec<String>) {
        let idx = fixture();
        let unpaged = run_query(&idx, &format!(r#"{{"steps": {body_steps}}}"#)).unwrap();
        let mut out = Vec::new();
        let mut resp =
            run_query(&idx, &format!(r#"{{"steps": {body_steps}, "page": {page}}}"#)).unwrap();
        loop {
            out.push(resp.clone());
            let Some(cursor) = extract_cursor(&resp) else { break };
            resp = run_query(
                &idx,
                &format!(r#"{{"steps": {body_steps}, "cursor": "{cursor}"}}"#),
            )
            .unwrap();
        }
        (unpaged, out)
    }

    fn extract_cursor(resp: &str) -> Option<String> {
        let tail = resp.split("\"next_cursor\":").nth(1)?;
        let tail = tail.strip_prefix('"')?;
        Some(tail.split('"').next()?.to_string())
    }

    fn extract_items(resp: &str) -> String {
        let inner = resp.split("\"items\":[").nth(1).unwrap();
        let end = inner.rfind("],\"next_cursor\"").unwrap();
        inner[..end].to_string()
    }

    const PAGED_STEPS: &str = r#"[{"filter": {"type": "author"}}, {"traverse": {"edge": "coauthor"}}]"#;

    proptest! {
        /// Satellite: any page size concatenates to the same byte stream
        /// as one unpaginated query.
        #[test]
        fn pagination_concatenates_to_unpaged(page in 1usize..8) {
            let (unpaged, paged) = pages(PAGED_STEPS, page);
            let full = extract_items(&unpaged);
            let joined = paged
                .iter()
                .map(|p| extract_items(p))
                .filter(|s| !s.is_empty())
                .collect::<Vec<_>>()
                .join(",");
            prop_assert_eq!(full, joined);
        }
    }

    #[test]
    fn cursor_replay_is_byte_identical() {
        let idx = fixture();
        let first = run_query(
            &idx,
            &format!(r#"{{"steps": {PAGED_STEPS}, "page": 2}}"#),
        )
        .unwrap();
        let cursor = extract_cursor(&first).unwrap();
        let body = format!(r#"{{"steps": {PAGED_STEPS}, "cursor": "{cursor}"}}"#);
        assert_eq!(run_query(&idx, &body).unwrap(), run_query(&idx, &body).unwrap());
    }

    #[test]
    fn cursor_is_position_only_and_survives_rebuilds() {
        // A fresh index (a "restart") accepts and answers the cursor
        // identically: nothing in it is tied to process state.
        let first = run_query(
            &fixture(),
            &format!(r#"{{"steps": {PAGED_STEPS}, "page": 2}}"#),
        )
        .unwrap();
        let cursor = extract_cursor(&first).unwrap();
        let body = format!(r#"{{"steps": {PAGED_STEPS}, "cursor": "{cursor}"}}"#);
        assert_eq!(
            run_query(&fixture(), &body).unwrap(),
            run_query(&fixture(), &body).unwrap()
        );
        assert!(!cursor.contains(':'), "opaque dotted format: {cursor}");
    }

    #[test]
    fn cursor_is_rejected_by_a_different_model_version() {
        // Mint a cursor against the fixture, then "hot-swap" to a model
        // that differs by one appended doc: resuming the same program's
        // cursor must be a typed BadCursor — never a silent resume at the
        // old offset over a different result list.
        let first = run_query(
            &fixture(),
            &format!(r#"{{"steps": {PAGED_STEPS}, "page": 2}}"#),
        )
        .unwrap();
        let cursor = extract_cursor(&first).unwrap();
        let mut parts = fixture_parts();
        parts.docs.push(DocRecord {
            gid: 99,
            year: None,
            leaf: 1,
            entities: vec![(0, 0), (0, 1)],
        });
        let swapped = QueryIndex::build(parts).unwrap();
        let body = format!(r#"{{"steps": {PAGED_STEPS}, "cursor": "{cursor}"}}"#);
        match run_query(&swapped, &body) {
            Err(QueryError::BadCursor(m)) => {
                assert!(m.contains("model version"), "unexpected message: {m}");
            }
            other => panic!("stale cursor must be a typed BadCursor, got {other:?}"),
        }
    }

    #[test]
    fn sharded_parts_merge_matches_single_build() {
        // Split the fixture docs across 3 "shards", merge, and compare a
        // doc-derived query byte-for-byte with the unsharded build.
        let parts = fixture_parts();
        let mut shards: Vec<IndexParts> = (0..3)
            .map(|s| {
                let mut p = parts.clone();
                p.docs = parts
                    .docs
                    .iter()
                    .filter(|d| (d.gid % 3) == s)
                    .cloned()
                    .collect();
                p
            })
            .collect();
        // Round-trip each shard's contribution through the wire format.
        for p in &mut shards {
            *p = IndexParts::parse_text(&p.to_text()).unwrap();
        }
        let merged = QueryIndex::build(IndexParts::merge(shards).unwrap()).unwrap();
        let single = QueryIndex::build(parts).unwrap();
        let body = r#"{"steps": [
            {"filter": {"type": "author", "years": {"min": 2001}}},
            {"traverse": {"edge": "coauthor"}},
            {"rank": {"by": "combined", "topic": "o/1"}}
        ]}"#;
        assert_eq!(run_query(&merged, body).unwrap(), run_query(&single, body).unwrap());
    }

    fn fixture_parts() -> IndexParts {
        IndexParts {
            type_names: vec!["author".into(), "venue".into()],
            entity_names: vec![
                vec!["alice".into(), "bob".into(), "carol".into(), "dan".into()],
                vec!["vldb".into(), "sigmod".into()],
            ],
            topics: vec![
                TopicMeta { parent: None, children: vec![1, 2], path: "o".into() },
                TopicMeta { parent: Some(0), children: vec![], path: "o/1".into() },
                TopicMeta { parent: Some(0), children: vec![], path: "o/2".into() },
            ],
            docs: vec![
                DocRecord { gid: 0, year: Some(2000), leaf: 1, entities: vec![(0, 0), (0, 1), (1, 0)] },
                DocRecord { gid: 1, year: Some(2001), leaf: 1, entities: vec![(0, 0), (0, 1), (1, 0)] },
                DocRecord { gid: 2, year: Some(2002), leaf: 1, entities: vec![(0, 0), (0, 1), (1, 1)] },
                DocRecord { gid: 3, year: Some(2006), leaf: 1, entities: vec![(0, 1), (0, 2), (1, 0)] },
                DocRecord { gid: 4, year: Some(2007), leaf: 2, entities: vec![(0, 1), (0, 2), (1, 1)] },
                DocRecord { gid: 5, year: Some(2008), leaf: 2, entities: vec![(0, 3), (1, 1)] },
            ],
        }
    }
}
