//! [`IndexParts`]: the canonical, serializable extract of a mined model
//! that the query engine indexes.
//!
//! Why this indirection exists: shards partition *documents* but replicate
//! the mined structure, so a front tier cannot answer traversal queries
//! from any single shard. Instead every shard exports its `IndexParts`
//! contribution (`/internal/qparts`) — replicated metadata plus its own
//! document records keyed by **global** doc id — and the front
//! reconstructs the exact parts a single unsharded server would build:
//! metadata taken from the first shard (replicated, byte-identical
//! everywhere) and document records merged in ascending global-id order.
//! Because every doc-derived quantity downstream is either a set union or
//! an integer count (see `lesm_core::access`), the rebuilt index — and
//! therefore every query response — is byte-identical regardless of shard
//! count (DESIGN.md §11, §14).
//!
//! The text format is line-based and versioned; parsing is defensive
//! (typed errors, hard caps) since it crosses a network boundary.

use crate::QueryError;
use lesm_core::export::json_string;
use lesm_core::MinedStructure;
use lesm_corpus::Corpus;

/// Hard cap on parsed text size (64 MiB) — a parts payload for a corpus
/// far larger than anything the serving tier handles.
pub const MAX_PARTS_BYTES: usize = 64 * 1024 * 1024;

/// Replicated metadata for one topic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopicMeta {
    pub parent: Option<usize>,
    pub children: Vec<usize>,
    pub path: String,
}

/// One document's query-relevant facts, keyed by global doc id.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocRecord {
    pub gid: u64,
    pub year: Option<i32>,
    /// Leaf-topic assignment ([`MinedStructure::doc_leaf`]).
    pub leaf: usize,
    /// Entity occurrences `(etype, id)` in stored order (duplicates count).
    pub entities: Vec<(u32, u32)>,
}

/// The canonical model extract the query engine is built from.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexParts {
    pub type_names: Vec<String>,
    /// Entity names per type, in id order.
    pub entity_names: Vec<Vec<String>>,
    pub topics: Vec<TopicMeta>,
    /// Ascending by `gid`.
    pub docs: Vec<DocRecord>,
}

impl IndexParts {
    /// Extracts parts from an owned model. `ids` maps local doc index to
    /// global doc id (shards); `None` means local ids are global.
    pub fn from_model(
        corpus: &Corpus,
        mined: &MinedStructure,
        ids: Option<&[u64]>,
    ) -> Result<IndexParts, QueryError> {
        if let Some(ids) = ids {
            if ids.len() != corpus.docs.len() {
                return Err(QueryError::Internal(format!(
                    "doc id table has {} entries for {} docs",
                    ids.len(),
                    corpus.docs.len()
                )));
            }
        }
        let n_types = corpus.entities.num_types();
        // Prove every id space fits the u32 wire fields before any
        // narrowing below; id32() relies on these bounds.
        crate::index::checked_id_range(n_types, "entity type")?;
        for t in 0..n_types {
            let type_name = corpus.entities.type_name(t).unwrap_or("?");
            crate::index::checked_id_range(
                corpus.entities.count(t),
                &format!("entity (type {type_name:?})"),
            )?;
        }
        let type_names: Vec<String> = (0..n_types)
            .map(|t| corpus.entities.type_name(t).unwrap_or("").to_string())
            .collect();
        let entity_names: Vec<Vec<String>> = (0..n_types)
            .map(|t| {
                let count = corpus.entities.count(t);
                let table = corpus.entities.table(t);
                (0..crate::index::id32(count))
                    .map(|id| {
                        table
                            .and_then(|v| v.name(id))
                            .unwrap_or("")
                            .to_string()
                    })
                    .collect()
            })
            .collect();
        let topics: Vec<TopicMeta> = mined
            .hierarchy
            .topics
            .iter()
            .map(|t| TopicMeta {
                parent: t.parent,
                children: t.children.clone(),
                path: t.path.clone(),
            })
            .collect();
        let mut docs: Vec<DocRecord> = corpus
            .docs
            .iter()
            .enumerate()
            .map(|(d, doc)| DocRecord {
                gid: ids.map_or(d as u64, |ids| ids[d]),
                year: doc.year,
                leaf: mined.doc_leaf(d),
                entities: doc.entities.iter().map(|e| (crate::index::id32(e.etype), e.id)).collect(),
            })
            .collect();
        docs.sort_by_key(|d| d.gid);
        Ok(IndexParts { type_names, entity_names, topics, docs })
    }

    /// Merges shard contributions: replicated metadata from the first
    /// part, document records concatenated and re-sorted by global id.
    pub fn merge(mut parts: Vec<IndexParts>) -> Result<IndexParts, QueryError> {
        let mut first = match parts.is_empty() {
            true => return Err(QueryError::Internal("no shard parts to merge".into())),
            false => parts.remove(0),
        };
        for p in parts {
            first.docs.extend(p.docs);
        }
        first.docs.sort_by_key(|d| d.gid);
        Ok(first)
    }

    /// Serializes to the versioned line format served by `/internal/qparts`.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str("lesmq-parts 1\n");
        out.push_str(&format!("types {}\n", self.type_names.len()));
        for (t, name) in self.type_names.iter().enumerate() {
            out.push_str(&format!("t {} {}\n", self.entity_names[t].len(), json_string(name)));
            for ename in &self.entity_names[t] {
                out.push_str(&format!("e {}\n", json_string(ename)));
            }
        }
        out.push_str(&format!("topics {}\n", self.topics.len()));
        for topic in &self.topics {
            let parent = topic.parent.map_or("-".to_string(), |p| p.to_string());
            let children = if topic.children.is_empty() {
                "-".to_string()
            } else {
                topic
                    .children
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!("topic {} {} {}\n", parent, children, json_string(&topic.path)));
        }
        out.push_str(&format!("docs {}\n", self.docs.len()));
        for doc in &self.docs {
            let year = doc.year.map_or("-".to_string(), |y| y.to_string());
            let ents = if doc.entities.is_empty() {
                "-".to_string()
            } else {
                doc.entities
                    .iter()
                    .map(|(t, id)| format!("{t}:{id}"))
                    .collect::<Vec<_>>()
                    .join(",")
            };
            out.push_str(&format!("d {} {} {} {}\n", doc.gid, year, doc.leaf, ents));
        }
        out
    }

    /// Parses the line format; the inverse of [`IndexParts::to_text`].
    pub fn parse_text(text: &str) -> Result<IndexParts, QueryError> {
        if text.len() > MAX_PARTS_BYTES {
            return Err(QueryError::Internal("parts payload too large".into()));
        }
        let mut lines = text.lines();
        let perr = |what: &str| QueryError::Internal(format!("parts: {what}"));
        if lines.next() != Some("lesmq-parts 1") {
            return Err(perr("bad header"));
        }
        let n_types = field_count(lines.next(), "types").ok_or_else(|| perr("bad types line"))?;
        let mut type_names = Vec::with_capacity(n_types);
        let mut entity_names = Vec::with_capacity(n_types);
        for _ in 0..n_types {
            let line = lines.next().ok_or_else(|| perr("truncated type table"))?;
            let rest = line.strip_prefix("t ").ok_or_else(|| perr("bad type line"))?;
            let (count_str, name_json) =
                rest.split_once(' ').ok_or_else(|| perr("bad type line"))?;
            let count: usize = count_str.parse().map_err(|_| perr("bad type count"))?;
            type_names.push(parse_json_string(name_json).ok_or_else(|| perr("bad type name"))?);
            let mut names = Vec::with_capacity(count);
            for _ in 0..count {
                let line = lines.next().ok_or_else(|| perr("truncated entity table"))?;
                let rest = line.strip_prefix("e ").ok_or_else(|| perr("bad entity line"))?;
                names.push(parse_json_string(rest).ok_or_else(|| perr("bad entity name"))?);
            }
            entity_names.push(names);
        }
        let n_topics = field_count(lines.next(), "topics").ok_or_else(|| perr("bad topics line"))?;
        let mut topics = Vec::with_capacity(n_topics);
        for _ in 0..n_topics {
            let line = lines.next().ok_or_else(|| perr("truncated topic table"))?;
            let rest = line.strip_prefix("topic ").ok_or_else(|| perr("bad topic line"))?;
            let mut fields = rest.splitn(3, ' ');
            let parent = match fields.next().ok_or_else(|| perr("bad topic line"))? {
                "-" => None,
                p => Some(p.parse::<usize>().map_err(|_| perr("bad topic parent"))?),
            };
            let children = match fields.next().ok_or_else(|| perr("bad topic line"))? {
                "-" => Vec::new(),
                list => list
                    .split(',')
                    .map(|c| c.parse::<usize>().map_err(|_| perr("bad topic child")))
                    .collect::<Result<_, _>>()?,
            };
            let path = parse_json_string(fields.next().ok_or_else(|| perr("bad topic line"))?)
                .ok_or_else(|| perr("bad topic path"))?;
            if let Some(p) = parent {
                if p >= n_topics {
                    return Err(perr("topic parent out of range"));
                }
            }
            if children.iter().any(|&c| c >= n_topics) {
                return Err(perr("topic child out of range"));
            }
            topics.push(TopicMeta { parent, children, path });
        }
        let n_docs = field_count(lines.next(), "docs").ok_or_else(|| perr("bad docs line"))?;
        let mut docs = Vec::with_capacity(n_docs.min(1 << 20));
        for _ in 0..n_docs {
            let line = lines.next().ok_or_else(|| perr("truncated doc table"))?;
            let rest = line.strip_prefix("d ").ok_or_else(|| perr("bad doc line"))?;
            let mut fields = rest.splitn(4, ' ');
            let gid: u64 = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| perr("bad doc gid"))?;
            let year = match fields.next().ok_or_else(|| perr("bad doc line"))? {
                "-" => None,
                y => Some(y.parse::<i32>().map_err(|_| perr("bad doc year"))?),
            };
            let leaf: usize = fields
                .next()
                .and_then(|f| f.parse().ok())
                .ok_or_else(|| perr("bad doc leaf"))?;
            if leaf >= n_topics {
                return Err(perr("doc leaf out of range"));
            }
            let entities = match fields.next().ok_or_else(|| perr("bad doc line"))? {
                "-" => Vec::new(),
                list => list
                    .split(',')
                    .map(|pair| {
                        let (t, id) = pair.split_once(':')?;
                        let t: u32 = t.parse().ok()?;
                        let id: u32 = id.parse().ok()?;
                        if (t as usize) < n_types
                            && (id as usize) < entity_names[t as usize].len()
                        {
                            Some((t, id))
                        } else {
                            None
                        }
                    })
                    .collect::<Option<Vec<_>>>()
                    .ok_or_else(|| perr("bad doc entity"))?,
            };
            docs.push(DocRecord { gid, year, leaf, entities });
        }
        if lines.next().is_some() {
            return Err(perr("trailing lines"));
        }
        Ok(IndexParts { type_names, entity_names, topics, docs })
    }
}

fn field_count(line: Option<&str>, tag: &str) -> Option<usize> {
    line?.strip_prefix(tag)?.strip_prefix(' ')?.parse().ok()
}

/// Decodes one JSON string literal (as produced by `json_string`).
fn parse_json_string(s: &str) -> Option<String> {
    match crate::json::parse_json(s).ok()? {
        crate::json::Json::Str(v) => Some(v),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IndexParts {
        IndexParts {
            type_names: vec!["author".into(), "venue".into()],
            entity_names: vec![
                vec!["alice \"a\"".into(), "bob".into()],
                vec!["sigmod\nnorth".into()],
            ],
            topics: vec![
                TopicMeta { parent: None, children: vec![1, 2], path: "o".into() },
                TopicMeta { parent: Some(0), children: vec![], path: "o/1".into() },
                TopicMeta { parent: Some(0), children: vec![], path: "o/2".into() },
            ],
            docs: vec![
                DocRecord { gid: 0, year: Some(2001), leaf: 1, entities: vec![(0, 0), (1, 0)] },
                DocRecord { gid: 3, year: None, leaf: 2, entities: vec![] },
            ],
        }
    }

    #[test]
    fn text_round_trips() {
        let parts = sample();
        let text = parts.to_text();
        let back = IndexParts::parse_text(&text).unwrap();
        assert_eq!(parts, back);
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn merge_interleaves_by_global_id() {
        let mut a = sample();
        let mut b = sample();
        a.docs = vec![DocRecord { gid: 2, year: None, leaf: 1, entities: vec![] }];
        b.docs = vec![
            DocRecord { gid: 0, year: None, leaf: 1, entities: vec![] },
            DocRecord { gid: 5, year: None, leaf: 2, entities: vec![] },
        ];
        let merged = IndexParts::merge(vec![a, b]).unwrap();
        let gids: Vec<u64> = merged.docs.iter().map(|d| d.gid).collect();
        assert_eq!(gids, vec![0, 2, 5]);
    }

    #[test]
    fn hostile_parts_rejected() {
        for bad in [
            "",
            "lesmq-parts 2\ntypes 0\ntopics 0\ndocs 0\n",
            "lesmq-parts 1\ntypes 1\n",
            "lesmq-parts 1\ntypes 0\ntopics 1\ntopic 9 - \"o\"\ndocs 0\n",
            "lesmq-parts 1\ntypes 0\ntopics 1\ntopic - - \"o\"\ndocs 1\nd 0 - 7 -\n",
            "lesmq-parts 1\ntypes 0\ntopics 0\ndocs 0\nextra\n",
        ] {
            assert!(IndexParts::parse_text(bad).is_err(), "{bad:?} should fail");
        }
    }
}
