//! The deterministic query executor.
//!
//! Execution threads a sorted, deduplicated node set through the program's
//! steps; every ordering is pinned (node total order, `f64::total_cmp`
//! with id tie-breaks for scores), every search walks sorted adjacency,
//! and bounded searches fail with a typed error rather than truncate
//! silently — so identical programs yield byte-identical responses on any
//! backend (DESIGN.md §11, §14).
//!
//! Cursors encode only `(program hash, resume offset, page size)` — never
//! wall-clock, randomness, or server identity — so a page stream can be
//! resumed on any replica, after any restart.

use crate::index::{id32, QueryIndex};
use crate::program::{
    canonical_steps, parse_request, Edge, FilterSpec, KindSel, PathMode, RankBy, Step, MAX_PAGE,
};
use crate::QueryError;
use lesm_core::export::{json_number, json_string};
use lesm_roles::type_b::{erank_pop, erank_pop_pur};
use std::collections::BTreeSet;

/// Total expansion budget for one `path` step; exceeding it is a typed
/// error (a silently truncated search would not be deterministic content,
/// and an unbounded one is a denial-of-service lever).
pub const PATH_EXPANSION_CAP: usize = 200_000;

/// A node in the queryable graph, with a pinned total order
/// (topics < entities < docs; then by type and id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Node {
    Topic(u32),
    Entity { etype: u32, id: u32 },
    Doc(u32),
}

/// The shape of a finished pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum Rendered {
    Plain(Vec<Node>),
    Ranked(Vec<(Node, f64)>),
    Paths(Vec<Vec<Node>>),
}

/// FNV-1a 64 over bytes (cursor program hashes).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Runs a full request body against the index, returning the JSON
/// response. The single entry point used by serve, the CLI, and benches.
pub fn run_query(index: &QueryIndex, body: &str) -> Result<String, QueryError> {
    let req = parse_request(body)?;
    // The cursor stamp binds both the program AND the model content: a
    // cursor from another program or from a hot-swapped-out model version
    // is a typed BadCursor, never a silent resume at the same offset in a
    // different result list.
    let hash = fnv1a64(canonical_steps(&req.steps).as_bytes()) ^ index.model_stamp;
    let lines = item_lines(index, &execute(index, &req.steps)?);
    let (offset, page) = match (&req.cursor, req.page) {
        (Some(cursor), _) => {
            let (offset, page) = decode_cursor(cursor, hash)?;
            if offset > lines.len() {
                return Err(QueryError::BadCursor(format!(
                    "cursor offset {offset} is beyond the {} results",
                    lines.len()
                )));
            }
            (offset, Some(page))
        }
        (None, page) => (0, page),
    };
    let end = page.map_or(lines.len(), |p| (offset + p).min(lines.len()));
    let next = match page {
        Some(p) if end < lines.len() => json_string(&encode_cursor(hash, end, p)),
        _ => "null".to_string(),
    };
    let mut out = String::with_capacity(64 + lines.iter().map(String::len).sum::<usize>());
    out.push_str(&format!("{{\"total\":{},\"offset\":{offset},\"items\":[", lines.len()));
    for (i, line) in lines[offset..end].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(line);
    }
    out.push_str(&format!("],\"next_cursor\":{next}}}"));
    Ok(out)
}

fn encode_cursor(hash: u64, offset: usize, page: usize) -> String {
    format!("q1.{hash:016x}.{offset}.{page}")
}

fn decode_cursor(cursor: &str, hash: u64) -> Result<(usize, usize), QueryError> {
    let bad = |what: &str| QueryError::BadCursor(what.to_string());
    let mut fields = cursor.split('.');
    if fields.next() != Some("q1") {
        return Err(bad("unknown cursor version"));
    }
    let stamp = fields.next().ok_or_else(|| bad("missing program hash"))?;
    if stamp.len() != 16 {
        return Err(bad("malformed program hash"));
    }
    let stamp = u64::from_str_radix(stamp, 16).map_err(|_| bad("malformed program hash"))?;
    if stamp != hash {
        return Err(bad("cursor belongs to a different program or model version"));
    }
    let offset: usize = fields
        .next()
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| bad("malformed offset"))?;
    let page: usize = fields
        .next()
        .and_then(|f| f.parse().ok())
        .ok_or_else(|| bad("malformed page size"))?;
    if fields.next().is_some() {
        return Err(bad("trailing cursor fields"));
    }
    if page == 0 || page > MAX_PAGE {
        return Err(bad("page size out of range"));
    }
    Ok((offset, page))
}

/// Executes the program steps against the index.
pub fn execute(index: &QueryIndex, steps: &[Step]) -> Result<Rendered, QueryError> {
    let mut set: Vec<Node> = Vec::new();
    let mut rendered: Option<Rendered> = None;
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Filter(spec) => {
                if i == 0 {
                    // Validated at parse time: the first filter names a type.
                    let kind = spec.kind.as_ref().ok_or_else(|| {
                        QueryError::Program("the first filter must name a type".into())
                    })?;
                    set = seed(index, kind)?;
                }
                set = apply_filter(index, spec, std::mem::take(&mut set), i == 0)?;
            }
            Step::Traverse { edge } => {
                let mut next = Vec::new();
                for &node in &set {
                    neighbors(index, node, edge, &mut next)?;
                }
                next.sort_unstable();
                next.dedup();
                set = next;
            }
            Step::Path { to, edges, max_depth, mode, limit } => {
                let targets: BTreeSet<Node> =
                    apply_filter(index, to, seed(index, to.kind.as_ref().ok_or_else(|| {
                        QueryError::Program("path target must name a type".into())
                    })?)?, true)?
                    .into_iter()
                    .collect();
                match mode {
                    PathMode::Exists => {
                        set = path_exists(index, &set, &targets, edges, *max_depth)?;
                    }
                    PathMode::Paths => {
                        rendered = Some(Rendered::Paths(path_enumerate(
                            index, &set, &targets, edges, *max_depth, *limit,
                        )?));
                    }
                }
            }
            Step::Rank { by, topic, limit } => {
                rendered = Some(Rendered::Ranked(rank(index, &set, *by, topic, *limit)?));
            }
        }
    }
    Ok(rendered.unwrap_or(Rendered::Plain(set)))
}

/// All nodes of one kind, ascending.
fn seed(index: &QueryIndex, kind: &KindSel) -> Result<Vec<Node>, QueryError> {
    Ok(match kind {
        KindSel::Topic => (0..id32(index.num_topics())).map(Node::Topic).collect(),
        KindSel::Doc => (0..id32(index.num_docs())).map(Node::Doc).collect(),
        KindSel::Entity(name) => {
            let etype = id32(index.resolve_type(name)?);
            (0..id32(index.num_entities(etype as usize)))
                .map(|id| Node::Entity { etype, id })
                .collect()
        }
    })
}

/// Applies a filter's predicates to a sorted node set. `seeded` marks
/// that the kind selector already shaped the set (first step / path
/// target), so it is not re-applied as a retain.
fn apply_filter(
    index: &QueryIndex,
    spec: &FilterSpec,
    mut set: Vec<Node>,
    seeded: bool,
) -> Result<Vec<Node>, QueryError> {
    if !seeded {
        if let Some(kind) = &spec.kind {
            let keep_etype = match kind {
                KindSel::Entity(name) => Some(id32(index.resolve_type(name)?)),
                _ => None,
            };
            set.retain(|n| match (kind, n) {
                (KindSel::Topic, Node::Topic(_)) => true,
                (KindSel::Doc, Node::Doc(_)) => true,
                (KindSel::Entity(_), Node::Entity { etype, .. }) => Some(*etype) == keep_etype,
                _ => false,
            });
        }
    }
    if !spec.names.is_empty() {
        // Resolve names against the set's kinds: entity names per type,
        // topic paths for topics. Docs have no names and never match.
        set.retain(|n| match n {
            Node::Entity { etype, id } => spec
                .names
                .iter()
                .any(|name| index.entity_by_name(*etype as usize, name) == Some(*id)),
            Node::Topic(t) => spec.names.iter().any(|p| {
                index
                    .resolve_topic(&crate::program::TopicRef::Path(p.clone()))
                    .ok()
                    == Some(*t as usize)
            }),
            Node::Doc(_) => false,
        });
    }
    if let Some((min, max)) = spec.years {
        let in_range = |year: Option<i32>| {
            year.is_some_and(|y| {
                min.is_none_or(|lo| y as i64 >= lo) && max.is_none_or(|hi| y as i64 <= hi)
            })
        };
        set.retain(|n| match n {
            Node::Doc(d) => in_range(index.doc_years[*d as usize]),
            Node::Entity { etype, id } => index.entity_docs[*etype as usize][*id as usize]
                .iter()
                .any(|&d| in_range(index.doc_years[d as usize])),
            // Topics carry no year; a year predicate never matches them.
            Node::Topic(_) => false,
        });
    }
    if let Some(topic_ref) = &spec.topic {
        let t = index.resolve_topic(topic_ref)?;
        let mut in_subtree = vec![false; index.num_topics()];
        for z in index.subtree(t) {
            in_subtree[z] = true;
        }
        // Per-type membership/score tables, computed once per filter for
        // the types actually present in the set.
        let mut tables: Vec<Option<(Vec<u64>, f64)>> = vec![None; index.num_types()];
        for n in &set {
            if let Node::Entity { etype, .. } = n {
                let etype = *etype as usize;
                if tables[etype].is_none() {
                    let counts = index.subtree_counts(etype, t);
                    let total = counts.iter().sum::<u64>() as f64;
                    tables[etype] = Some((counts, total.max(1e-12)));
                }
            }
        }
        let min_score = spec.min_score;
        set.retain(|n| match n {
            Node::Topic(z) => in_subtree[*z as usize],
            Node::Doc(d) => in_subtree[index.doc_leafs[*d as usize]],
            Node::Entity { etype, id } => match &tables[*etype as usize] {
                None => false,
                Some((counts, total)) => {
                    let f = counts[*id as usize];
                    match min_score {
                        None => f > 0,
                        Some(s) => f > 0 && (f as f64 / *total) >= s,
                    }
                }
            },
        });
    }
    Ok(set)
}

/// Appends `node`'s neighbors along `edge`. Nodes the edge does not apply
/// to contribute nothing (documented drop semantics, DESIGN.md §14).
fn neighbors(
    index: &QueryIndex,
    node: Node,
    edge: &Edge,
    out: &mut Vec<Node>,
) -> Result<(), QueryError> {
    match (edge, node) {
        (Edge::Coauthor, Node::Entity { etype, id }) => {
            out.extend(
                index.cooccur[etype as usize][id as usize]
                    .iter()
                    .map(|&peer| Node::Entity { etype, id: peer }),
            );
        }
        (Edge::Advisees, Node::Entity { etype, id })
            if index.author_type == Some(etype as usize) =>
        {
            out.extend(
                index.advisor_edges().advisees[id as usize]
                    .iter()
                    .map(|&a| Node::Entity { etype, id: a }),
            );
        }
        (Edge::Advisors, Node::Entity { etype, id })
            if index.author_type == Some(etype as usize) =>
        {
            out.extend(
                index.advisor_edges().advisors[id as usize]
                    .iter()
                    .map(|&a| Node::Entity { etype, id: a }),
            );
        }
        (Edge::Topics, Node::Entity { etype, id }) => {
            for &d in &index.entity_docs[etype as usize][id as usize] {
                out.push(Node::Topic(id32(index.doc_leafs[d as usize])));
            }
        }
        (Edge::Entities(sel), Node::Topic(t)) => {
            let types = resolve_type_sel(index, sel)?;
            for etype in types {
                let counts = index.subtree_counts(etype, t as usize);
                out.extend(counts.iter().enumerate().filter(|&(_, &c)| c > 0).map(
                    |(id, _)| Node::Entity { etype: id32(etype), id: id32(id) },
                ));
            }
        }
        (Edge::Entities(sel), Node::Doc(d)) => {
            let types = resolve_type_sel(index, sel)?;
            for &(etype, id) in &index.doc_entities[d as usize] {
                if types.contains(&(etype as usize)) {
                    out.push(Node::Entity { etype, id });
                }
            }
        }
        (Edge::Docs, Node::Entity { etype, id }) => {
            out.extend(
                index.entity_docs[etype as usize][id as usize].iter().map(|&d| Node::Doc(d)),
            );
        }
        (Edge::Docs, Node::Topic(t)) => {
            let mut in_subtree = vec![false; index.num_topics()];
            for z in index.subtree(t as usize) {
                in_subtree[z] = true;
            }
            out.extend(
                index
                    .doc_leafs
                    .iter()
                    .enumerate()
                    .filter(|&(_, &leaf)| in_subtree[leaf])
                    .map(|(d, _)| Node::Doc(id32(d))),
            );
        }
        (Edge::Parent, Node::Topic(t)) => {
            if let Some(p) = index.topics[t as usize].parent {
                out.push(Node::Topic(id32(p)));
            }
        }
        (Edge::Children, Node::Topic(t)) => {
            out.extend(index.topics[t as usize].children.iter().map(|&c| Node::Topic(id32(c))));
        }
        _ => {}
    }
    Ok(())
}

/// Resolves the optional type selector of an `entities` edge to a type
/// index list (all types when unset).
fn resolve_type_sel(index: &QueryIndex, sel: &Option<String>) -> Result<Vec<usize>, QueryError> {
    match sel {
        Some(name) => Ok(vec![index.resolve_type(name)?]),
        None => Ok((0..index.num_types()).collect()),
    }
}

/// Sorted, deduplicated neighbors along any of `edges`.
fn neighbors_multi(
    index: &QueryIndex,
    node: Node,
    edges: &[Edge],
) -> Result<Vec<Node>, QueryError> {
    let mut out = Vec::new();
    for edge in edges {
        neighbors(index, node, edge, &mut out)?;
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

/// Keeps sources with a path (≤ `max_depth` edges) to any target.
/// A source that is itself a target trivially qualifies.
fn path_exists(
    index: &QueryIndex,
    sources: &[Node],
    targets: &BTreeSet<Node>,
    edges: &[Edge],
    max_depth: usize,
) -> Result<Vec<Node>, QueryError> {
    let mut budget = PATH_EXPANSION_CAP;
    let mut out = Vec::new();
    for &source in sources {
        if targets.contains(&source) {
            out.push(source);
            continue;
        }
        let mut visited: BTreeSet<Node> = BTreeSet::new();
        visited.insert(source);
        let mut frontier = vec![source];
        let mut found = false;
        'bfs: for _ in 0..max_depth {
            let mut next = Vec::new();
            for &node in &frontier {
                budget = budget
                    .checked_sub(1)
                    .ok_or_else(|| QueryError::TooLarge("path search budget exhausted".into()))?;
                for peer in neighbors_multi(index, node, edges)? {
                    if targets.contains(&peer) {
                        found = true;
                        break 'bfs;
                    }
                    if visited.insert(peer) {
                        next.push(peer);
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        if found {
            out.push(source);
        }
    }
    Ok(out)
}

/// Enumerates simple paths from the sources to the target set, depth-first
/// over sorted adjacency: sources ascending, then lexicographic by node
/// sequence — a pinned order. Stops at `limit` paths.
fn path_enumerate(
    index: &QueryIndex,
    sources: &[Node],
    targets: &BTreeSet<Node>,
    edges: &[Edge],
    max_depth: usize,
    limit: usize,
) -> Result<Vec<Vec<Node>>, QueryError> {
    let mut budget = PATH_EXPANSION_CAP;
    let mut paths: Vec<Vec<Node>> = Vec::new();
    let mut current: Vec<Node> = Vec::new();
    for &source in sources {
        if paths.len() >= limit {
            break;
        }
        current.clear();
        current.push(source);
        dfs(index, targets, edges, max_depth, limit, &mut budget, &mut current, &mut paths)?;
    }
    Ok(paths)
}

#[allow(clippy::too_many_arguments)] // recursion state; bundling would obscure the search
fn dfs(
    index: &QueryIndex,
    targets: &BTreeSet<Node>,
    edges: &[Edge],
    depth_left: usize,
    limit: usize,
    budget: &mut usize,
    current: &mut Vec<Node>,
    paths: &mut Vec<Vec<Node>>,
) -> Result<(), QueryError> {
    let here = *current.last().unwrap_or(&Node::Topic(0));
    if targets.contains(&here) {
        paths.push(current.clone());
        if paths.len() >= limit {
            return Ok(());
        }
    }
    if depth_left == 0 {
        return Ok(());
    }
    *budget = budget
        .checked_sub(1)
        .ok_or_else(|| QueryError::TooLarge("path search budget exhausted".into()))?;
    for peer in neighbors_multi(index, here, edges)? {
        if current.contains(&peer) {
            continue; // simple paths only
        }
        current.push(peer);
        dfs(index, targets, edges, depth_left - 1, limit, budget, current, paths)?;
        current.pop();
        if paths.len() >= limit {
            return Ok(());
        }
    }
    Ok(())
}

/// Scores the entity members of the set by the §5.2 role criteria within
/// `topic`'s sibling group; non-entity nodes are dropped. Order is pinned:
/// score descending by `total_cmp`, then node order ascending.
fn rank(
    index: &QueryIndex,
    set: &[Node],
    by: RankBy,
    topic: &crate::program::TopicRef,
    limit: Option<usize>,
) -> Result<Vec<(Node, f64)>, QueryError> {
    let t = index.resolve_topic(topic)?;
    let siblings: Vec<usize> = match index.topics[t].parent {
        Some(p) if index.topics[p].children.contains(&t) => index.topics[p].children.clone(),
        _ => vec![t],
    };
    let ti = siblings.iter().position(|&z| z == t).unwrap_or(0);
    let mut per_type: Vec<Option<Vec<Option<f64>>>> = vec![None; index.num_types()];
    let mut scored: Vec<(Node, f64)> = Vec::new();
    for &node in set {
        let Node::Entity { etype, id } = node else { continue };
        let scores = per_type[etype as usize]
            .get_or_insert_with(|| type_scores(index, etype as usize, &siblings, ti, by));
        if let Some(score) = scores[id as usize] {
            scored.push((node, score));
        }
    }
    scored.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    if let Some(n) = limit {
        scored.truncate(n);
    }
    Ok(scored)
}

/// Per-entity scores for one type within a sibling group; `None` marks
/// zero frequency in the target subtree (dropped from rankings, matching
/// `lesm_roles::type_b`).
fn type_scores(
    index: &QueryIndex,
    etype: usize,
    siblings: &[usize],
    ti: usize,
    by: RankBy,
) -> Vec<Option<f64>> {
    let rows: Vec<Vec<f64>> = siblings
        .iter()
        .map(|&z| index.subtree_counts(etype, z).iter().map(|&c| c as f64).collect())
        .collect();
    let n = index.num_entities(etype);
    let mut out = vec![None; n];
    match by {
        RankBy::Pop => {
            for (e, score) in erank_pop(&rows, ti, n) {
                out[e as usize] = Some(score);
            }
        }
        RankBy::Combined => {
            for (e, score) in erank_pop_pur(&rows, ti, n) {
                out[e as usize] = Some(score);
            }
        }
        RankBy::Pur => {
            // The purity factor alone: log(p / worst mixed probability),
            // with the same guards and sibling semantics as
            // `erank_pop_pur` so "pur" and "combined" agree on supports.
            let totals: Vec<f64> = rows.iter().map(|r| r.iter().sum()).collect();
            let nt = totals[ti].max(1e-12);
            for e in 0..n {
                let f = rows[ti][e];
                if f <= 0.0 {
                    continue;
                }
                let p = f / nt;
                let mut worst_mix = p;
                for (z, row) in rows.iter().enumerate() {
                    if z == ti {
                        continue;
                    }
                    let mix = (f + row[e]) / (totals[ti] + totals[z]).max(1e-12);
                    if mix > worst_mix {
                        worst_mix = mix;
                    }
                }
                out[e] = Some((p / worst_mix.max(1e-300)).ln());
            }
        }
    }
    out
}

/// Renders each result item as one compact JSON object (pagination and
/// the concatenation property are defined over these lines).
pub fn item_lines(index: &QueryIndex, rendered: &Rendered) -> Vec<String> {
    match rendered {
        Rendered::Plain(nodes) => nodes.iter().map(|&n| node_json(index, n, None)).collect(),
        Rendered::Ranked(scored) => scored
            .iter()
            .map(|&(n, score)| node_json(index, n, Some(score)))
            .collect(),
        Rendered::Paths(paths) => paths
            .iter()
            .map(|path| {
                let inner: Vec<String> =
                    path.iter().map(|&n| node_json(index, n, None)).collect();
                format!("{{\"kind\":\"path\",\"nodes\":[{}]}}", inner.join(","))
            })
            .collect(),
    }
}

fn node_json(index: &QueryIndex, node: Node, score: Option<f64>) -> String {
    let mut out = match node {
        Node::Topic(t) => format!(
            "{{\"kind\":\"topic\",\"id\":{t},\"path\":{}}}",
            json_string(&index.topics[t as usize].path)
        ),
        Node::Entity { etype, id } => format!(
            "{{\"kind\":{},\"id\":{id},\"name\":{}}}",
            json_string(&index.type_names[etype as usize]),
            json_string(&index.entity_names[etype as usize][id as usize])
        ),
        Node::Doc(d) => {
            let year = index.doc_years[d as usize]
                .map_or("null".to_string(), |y| y.to_string());
            format!("{{\"kind\":\"doc\",\"id\":{},\"year\":{year}}}", index.doc_gids[d as usize])
        }
    };
    if let Some(s) = score {
        out.pop();
        out.push_str(&format!(",\"score\":{}}}", json_number(s)));
    }
    out
}
