//! Topical influence analysis — the §8.1.1 application.
//!
//! "In order to mine opinion leaders, one needs to specify the scope
//! because different communities may have different opinion leaders"
//! (§1.4.1). Given a mined topical community (a soft set of documents)
//! and the entity co-occurrence structure, this module scores entities by
//! a topic-conditioned PageRank: the random surfer walks the entity
//! co-occurrence graph, but every edge is weighted by the documents'
//! membership in the focal topic, so the same network yields different
//! leaders per community.

use lesm_corpus::Corpus;
use std::collections::HashMap;

/// Configuration for [`topical_influence`].
#[derive(Debug, Clone)]
pub struct InfluenceConfig {
    /// PageRank damping factor.
    pub damping: f64,
    /// Power iterations.
    pub iters: usize,
}

impl Default for InfluenceConfig {
    fn default() -> Self {
        Self { damping: 0.85, iters: 50 }
    }
}

/// Topic-conditioned entity influence scores.
///
/// * `doc_topic_weight[d]` — document `d`'s membership in the focal topic.
/// * `etype` — entity type to rank.
///
/// Returns `(entity id, score)` pairs sorted descending; scores sum to 1
/// over entities that appear in the topic. The teleport distribution is
/// each entity's topical activity, so inactive entities get no free mass.
pub fn topical_influence(
    corpus: &Corpus,
    doc_topic_weight: &[f64],
    etype: usize,
    config: &InfluenceConfig,
) -> Vec<(u32, f64)> {
    assert_eq!(doc_topic_weight.len(), corpus.num_docs());
    let n = corpus.entities.count(etype);
    if n == 0 {
        return Vec::new();
    }
    // Topic-weighted co-occurrence edges and activity.
    let mut edges: HashMap<(u32, u32), f64> = HashMap::new();
    let mut activity = vec![0.0f64; n];
    for (doc, &w) in corpus.docs.iter().zip(doc_topic_weight) {
        if w <= 0.0 {
            continue;
        }
        let ids: Vec<u32> = doc.entities_of(etype).collect();
        for (i, &a) in ids.iter().enumerate() {
            activity[a as usize] += w;
            for &b in &ids[i + 1..] {
                if a == b {
                    continue;
                }
                let key = if a < b { (a, b) } else { (b, a) };
                *edges.entry(key).or_insert(0.0) += w;
            }
        }
    }
    let act_total: f64 = activity.iter().sum();
    if act_total <= 0.0 {
        return Vec::new();
    }
    // Fix the edge order before the power iteration: HashMap iteration
    // order varies per process, and float accumulation is order-sensitive,
    // so near-tied ranks would otherwise flip between runs.
    let mut sorted_edges: Vec<((u32, u32), f64)> = edges.into_iter().collect();
    sorted_edges.sort_unstable_by_key(|&(key, _)| key);
    let teleport: Vec<f64> = activity.iter().map(|&a| a / act_total).collect();
    // Out-weights for the normalized walk.
    let mut out_weight = vec![0.0f64; n];
    for &((a, b), w) in &sorted_edges {
        out_weight[a as usize] += w;
        out_weight[b as usize] += w;
    }
    let mut rank = teleport.clone();
    let mut next = vec![0.0f64; n];
    for _ in 0..config.iters {
        for (slot, &t) in next.iter_mut().zip(&teleport) {
            *slot = (1.0 - config.damping) * t;
        }
        let mut dangling = 0.0;
        for (e, &r) in rank.iter().enumerate() {
            if out_weight[e] <= 0.0 {
                dangling += r;
            }
        }
        for &((a, b), w) in &sorted_edges {
            let (a, b) = (a as usize, b as usize);
            if out_weight[a] > 0.0 {
                next[b] += config.damping * rank[a] * w / out_weight[a];
            }
            if out_weight[b] > 0.0 {
                next[a] += config.damping * rank[b] * w / out_weight[b];
            }
        }
        // Dangling mass redistributes over the teleport distribution.
        for (slot, &t) in next.iter_mut().zip(&teleport) {
            *slot += config.damping * dangling * t;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    let mut out: Vec<(u32, f64)> = rank
        .iter()
        .enumerate()
        .filter(|&(_, &r)| r > 0.0)
        .map(|(e, &r)| (e as u32, r))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::Corpus;

    /// Topic A: hub author "leader_a" coauthors with everyone in A.
    /// Topic B: hub "leader_b". "bystander" appears only in topic B.
    fn fixture() -> (Corpus, Vec<f64>, Vec<f64>) {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        let mut w_a = Vec::new();
        let mut w_b = Vec::new();
        for i in 0..20 {
            let d = c.push_text("x");
            if i % 2 == 0 {
                c.link_entity(d, author, "leader_a").unwrap();
                c.link_entity(d, author, &format!("a{}", i % 4)).unwrap();
                w_a.push(1.0);
                w_b.push(0.0);
            } else {
                c.link_entity(d, author, "leader_b").unwrap();
                c.link_entity(d, author, &format!("b{}", i % 4)).unwrap();
                c.link_entity(d, author, "bystander").unwrap();
                w_a.push(0.0);
                w_b.push(1.0);
            }
        }
        (c, w_a, w_b)
    }

    #[test]
    fn leaders_differ_by_community() {
        let (c, w_a, w_b) = fixture();
        let ra = topical_influence(&c, &w_a, 0, &InfluenceConfig::default());
        let rb = topical_influence(&c, &w_b, 0, &InfluenceConfig::default());
        let name = |id: u32| c.entities.name(lesm_corpus::EntityRef::new(0, id));
        assert_eq!(name(ra[0].0), "leader_a", "topic A leader: {:?}", name(ra[0].0));
        assert_eq!(name(rb[0].0), "leader_b");
        // leader_a has no mass in topic B at all.
        let la = c.entities.table(0).unwrap().get("leader_a").unwrap();
        assert!(rb.iter().all(|&(e, _)| e != la));
    }

    #[test]
    fn scores_form_a_distribution() {
        let (c, w_a, _) = fixture();
        let r = topical_influence(&c, &w_a, 0, &InfluenceConfig::default());
        let s: f64 = r.iter().map(|&(_, x)| x).sum();
        assert!((s - 1.0).abs() < 1e-9, "scores sum to {s}");
    }

    #[test]
    fn empty_topic_returns_empty() {
        let (c, _, _) = fixture();
        let zeros = vec![0.0; c.num_docs()];
        assert!(topical_influence(&c, &zeros, 0, &InfluenceConfig::default()).is_empty());
    }
}
