//! Type-A role analysis: given entities, find their positions (§5.1).

use lesm_corpus::{Corpus, EntityRef};
use lesm_phrases::TopicalPhrase;
use std::collections::HashMap;

/// Entity-specific phrase ranking (eq. 5.1):
///
/// ```text
/// r(P | t, E) = p(P|t) * log( p(P|t,E) / p(P|t) )
/// ```
///
/// * `segments[d]` — the bag-of-phrases partition of document `d`.
/// * `doc_topic_weight[d]` — document `d`'s (soft) membership in topic `t`.
/// * `entity` — the focal entity `E`.
///
/// Returns phrases ranked by `r`, highest first. Phrases never co-occurring
/// with the entity in topic `t` are omitted (their pointwise KL is `-inf`).
pub fn entity_phrase_rank(
    corpus: &Corpus,
    segments: &[Vec<Vec<u32>>],
    doc_topic_weight: &[f64],
    entity: EntityRef,
) -> Vec<(Vec<u32>, f64)> {
    assert_eq!(segments.len(), corpus.num_docs());
    assert_eq!(doc_topic_weight.len(), corpus.num_docs());
    let mut ft: HashMap<&[u32], f64> = HashMap::new();
    let mut ft_e: HashMap<&[u32], f64> = HashMap::new();
    let mut n_t = 0.0f64;
    let mut n_te = 0.0f64;
    for (d, segs) in segments.iter().enumerate() {
        let w = doc_topic_weight[d];
        if w <= 0.0 {
            continue;
        }
        let has_entity = corpus.docs[d].entities.contains(&entity);
        n_t += w;
        if has_entity {
            n_te += w;
        }
        for seg in segs {
            if seg.is_empty() {
                continue;
            }
            *ft.entry(seg.as_slice()).or_insert(0.0) += w;
            if has_entity {
                *ft_e.entry(seg.as_slice()).or_insert(0.0) += w;
            }
        }
    }
    if n_t <= 0.0 || n_te <= 0.0 {
        return Vec::new();
    }
    let mut out: Vec<(Vec<u32>, f64)> = ft_e
        .iter()
        .map(|(&p, &fe)| {
            let p_t = ft[p] / n_t;
            let p_te = fe / n_te;
            (p.to_vec(), p_t * (p_te / p_t.max(1e-300)).ln())
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Combined ranking (eq. 5.2): `α r(P|t,E) + (1-α) r(P|t)`, where `r(P|t)`
/// is the topical phrase quality score from Chapter 4.
///
/// `quality` supplies `r(P|t)` (e.g. KERT or ToPMine output for topic `t`);
/// both inputs are z-normalized before mixing so the scales are comparable.
pub fn combined_phrase_rank(
    entity_rank: &[(Vec<u32>, f64)],
    quality: &[TopicalPhrase],
    alpha: f64,
) -> Vec<(Vec<u32>, f64)> {
    let alpha = alpha.clamp(0.0, 1.0);
    let qmap: HashMap<&[u32], f64> =
        quality.iter().map(|p| (p.tokens.as_slice(), p.score)).collect();
    let norm = |xs: &[f64]| -> (f64, f64) {
        if xs.is_empty() {
            return (0.0, 1.0);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let sd = (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64)
            .sqrt()
            .max(1e-12);
        (mean, sd)
    };
    let e_scores: Vec<f64> = entity_rank.iter().map(|(_, s)| *s).collect();
    let q_scores: Vec<f64> = entity_rank
        .iter()
        .map(|(p, _)| qmap.get(p.as_slice()).copied().unwrap_or(0.0))
        .collect();
    let (em, es) = norm(&e_scores);
    let (qm, qs) = norm(&q_scores);
    let mut out: Vec<(Vec<u32>, f64)> = entity_rank
        .iter()
        .zip(&q_scores)
        .map(|((p, e), &q)| {
            let score = alpha * (e - em) / es + (1.0 - alpha) * (q - qm) / qs;
            (p.clone(), score)
        })
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out
}

/// Per-phrase subtopic frequencies from a topic model (eq. 4.3 / eq. 5.3's
/// Bayes step): `f_{t/z}(P) ∝ ρ_z Π_{v ∈ P} φ_{z,v}`, normalized over `z`.
pub fn phrase_subtopic_posterior(
    phrase: &[u32],
    topic_word: &[Vec<f64>],
    rho: &[f64],
) -> Vec<f64> {
    let k = topic_word.len();
    let mut post = vec![0.0f64; k];
    for z in 0..k {
        let mut lp = rho[z].max(1e-12).ln();
        for &w in phrase {
            lp += topic_word[z][w as usize].max(1e-300).ln();
        }
        post[z] = lp;
    }
    let max_lp = post.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut total = 0.0;
    for p in &mut post {
        *p = (*p - max_lp).exp();
        total += *p;
    }
    if total > 0.0 {
        for p in &mut post {
            *p /= total;
        }
    }
    post
}

/// Document subtopic frequencies (eqs. 5.4–5.5): the total phrase frequency
/// `TPF_{t/z}(d)` aggregated from per-phrase posteriors, normalized so each
/// document's subtopic masses sum to its parent-topic weight. Documents
/// containing no frequent topical phrase contribute nothing (§5.1.2).
pub fn doc_subtopic_frequency(
    segments: &[Vec<Vec<u32>>],
    topic_word: &[Vec<f64>],
    rho: &[f64],
    doc_parent_weight: &[f64],
) -> Vec<Vec<f64>> {
    let k = topic_word.len();
    segments
        .iter()
        .zip(doc_parent_weight)
        .map(|(segs, &parent_w)| {
            let mut tpf = vec![0.0f64; k];
            for seg in segs {
                if seg.is_empty() {
                    continue;
                }
                let post = phrase_subtopic_posterior(seg, topic_word, rho);
                for (z, p) in post.iter().enumerate() {
                    tpf[z] += p;
                }
            }
            let total: f64 = tpf.iter().sum();
            if total > 0.0 {
                for v in &mut tpf {
                    *v = *v / total * parent_w;
                }
            }
            tpf
        })
        .collect()
}

/// Entity subtopic frequency (eq. 5.6): `f_{t/z}(E) = Σ_{d ∈ D_E} f_{t/z}(d)`.
pub fn entity_subtopic_distribution(
    corpus: &Corpus,
    doc_subtopic: &[Vec<f64>],
    entity: EntityRef,
) -> Vec<f64> {
    assert_eq!(doc_subtopic.len(), corpus.num_docs());
    let k = doc_subtopic.first().map_or(0, Vec::len);
    let mut out = vec![0.0; k];
    for (d, doc) in corpus.docs.iter().enumerate() {
        if doc.entities.contains(&entity) {
            for (z, v) in doc_subtopic[d].iter().enumerate() {
                out[z] += v;
            }
        }
    }
    out
}

/// A rendered Type-A profile: the entity's subtopic frequencies and its
/// top entity-specific phrases (the Figure 5.2/5.3 artifact).
#[derive(Debug, Clone)]
pub struct EntityProfile {
    /// The profiled entity.
    pub entity: EntityRef,
    /// `f_{t/z}(E)` per subtopic.
    pub subtopic_freq: Vec<f64>,
    /// Combined-ranked phrases (eq. 5.2), highest first.
    pub top_phrases: Vec<(Vec<u32>, f64)>,
}

impl EntityProfile {
    /// Builds a full Type-A profile for one entity within one topic:
    /// its subtopic frequency split (eqs. 5.3–5.6) plus the combined
    /// entity-specific phrase ranking (eq. 5.2) inside the topic.
    ///
    /// * `segments` — bag-of-phrases partitions of every document.
    /// * `doc_topic_weight` — per-document membership in the focal topic.
    /// * `topic_word`/`rho` — the focal topic's subtopic model (children's
    ///   word distributions and shares).
    /// * `quality` — the topic's quality-ranked phrases (Chapter 4 output).
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        corpus: &Corpus,
        segments: &[Vec<Vec<u32>>],
        doc_topic_weight: &[f64],
        topic_word: &[Vec<f64>],
        rho: &[f64],
        quality: &[TopicalPhrase],
        entity: EntityRef,
        alpha: f64,
        top_n: usize,
    ) -> Self {
        let doc_sub = doc_subtopic_frequency(segments, topic_word, rho, doc_topic_weight);
        let subtopic_freq = entity_subtopic_distribution(corpus, &doc_sub, entity);
        let er = entity_phrase_rank(corpus, segments, doc_topic_weight, entity);
        let mut top_phrases = combined_phrase_rank(&er, quality, alpha);
        top_phrases.truncate(top_n);
        Self { entity, subtopic_freq, top_phrases }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::Corpus;

    /// Docs 0-3 about phrase [0,1] with alice; docs 4-7 about [5,6] with bob;
    /// phrase [9] common.
    fn fixture() -> (Corpus, Vec<Vec<Vec<u32>>>) {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        let mut segments = Vec::new();
        for i in 0..8 {
            let d = c.push_text("x x x"); // tokens unused; segments below drive the test
            if i < 4 {
                c.link_entity(d, author, "alice").unwrap();
                segments.push(vec![vec![0, 1], vec![9]]);
            } else {
                c.link_entity(d, author, "bob").unwrap();
                segments.push(vec![vec![5, 6], vec![9]]);
            }
        }
        (c, segments)
    }

    #[test]
    fn entity_phrases_rank_their_specialty_first() {
        let (c, segs) = fixture();
        let alice = EntityRef::new(0, 0);
        let w = vec![1.0; 8];
        let ranked = entity_phrase_rank(&c, &segs, &w, alice);
        assert!(!ranked.is_empty());
        assert_eq!(ranked[0].0, vec![0, 1], "alice's specialty should rank first: {ranked:?}");
        // The common phrase [9] is shared, so its KL is lower.
        let common = ranked.iter().find(|(p, _)| p == &vec![9]).expect("common phrase present");
        assert!(ranked[0].1 > common.1);
    }

    #[test]
    fn entity_with_no_docs_yields_empty() {
        let (c, segs) = fixture();
        let ghost = EntityRef::new(0, 99);
        let w = vec![1.0; 8];
        assert!(entity_phrase_rank(&c, &segs, &w, ghost).is_empty());
    }

    #[test]
    fn phrase_posterior_sums_to_one_and_picks_right_topic() {
        // Topic 0 likes words 0,1; topic 1 likes 5,6.
        let tw = vec![
            vec![0.4, 0.4, 0.05, 0.05, 0.05, 0.025, 0.025],
            vec![0.025, 0.025, 0.05, 0.05, 0.05, 0.4, 0.4],
        ];
        let rho = vec![0.5, 0.5];
        let post = phrase_subtopic_posterior(&[0, 1], &tw, &rho);
        assert!((post.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(post[0] > 0.9);
    }

    #[test]
    fn doc_and_entity_subtopic_distributions() {
        let (c, segs) = fixture();
        let tw = vec![
            vec![0.3, 0.3, 0.0, 0.0, 0.0, 0.01, 0.01, 0.0, 0.0, 0.19],
            vec![0.01, 0.01, 0.0, 0.0, 0.0, 0.3, 0.3, 0.0, 0.0, 0.19],
        ];
        let rho = vec![0.5, 0.5];
        let parent_w = vec![1.0; 8];
        let ds = doc_subtopic_frequency(&segs, &tw, &rho, &parent_w);
        // Row masses equal parent weight.
        for row in &ds {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
        let alice = EntityRef::new(0, 0);
        let dist = entity_subtopic_distribution(&c, &ds, alice);
        assert!(dist[0] > dist[1], "alice concentrates in subtopic 0: {dist:?}");
        let bob = EntityRef::new(0, 1);
        let dist_b = entity_subtopic_distribution(&c, &ds, bob);
        assert!(dist_b[1] > dist_b[0]);
    }

    #[test]
    fn entity_profile_builder_assembles_everything() {
        let (c, segs) = fixture();
        let tw = vec![
            vec![0.3, 0.3, 0.0, 0.0, 0.0, 0.01, 0.01, 0.0, 0.0, 0.19],
            vec![0.01, 0.01, 0.0, 0.0, 0.0, 0.3, 0.3, 0.0, 0.0, 0.19],
        ];
        let rho = vec![0.5, 0.5];
        let quality = vec![TopicalPhrase { tokens: vec![0, 1], score: 1.0, topic_freq: 4.0 }];
        let profile = EntityProfile::build(
            &c,
            &segs,
            &[1.0; 8],
            &tw,
            &rho,
            &quality,
            EntityRef::new(0, 0),
            0.5,
            3,
        );
        assert_eq!(profile.subtopic_freq.len(), 2);
        assert!(profile.subtopic_freq[0] > profile.subtopic_freq[1]);
        assert!(!profile.top_phrases.is_empty());
        assert!(profile.top_phrases.len() <= 3);
    }

    #[test]
    fn combined_rank_mixes_quality() {
        let (c, segs) = fixture();
        let alice = EntityRef::new(0, 0);
        let w = vec![1.0; 8];
        let er = entity_phrase_rank(&c, &segs, &w, alice);
        // Quality strongly favors the common phrase [9].
        let quality = vec![
            TopicalPhrase { tokens: vec![9], score: 10.0, topic_freq: 8.0 },
            TopicalPhrase { tokens: vec![0, 1], score: 0.1, topic_freq: 4.0 },
        ];
        let pure_entity = combined_phrase_rank(&er, &quality, 1.0);
        let pure_quality = combined_phrase_rank(&er, &quality, 0.0);
        assert_eq!(pure_entity[0].0, vec![0, 1]);
        assert_eq!(pure_quality[0].0, vec![9]);
    }
}
