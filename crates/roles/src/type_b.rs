//! Type-B role analysis: given roles (topics), find the top contributing
//! entities (§5.2).
//!
//! Entities are ranked by popularity `p(e|t)` alone or by the unified
//! popularity × purity criterion `ERankPop+Pur`, which demotes prolific
//! entities whose contributions spread evenly across sibling topics
//! (Table 5.3's effect).

/// Ranks entities of one type by popularity within topic `t`.
///
/// `topic_entity_freq[z][e]` is the entity frequency `f_{t/z}(e)` for every
/// sibling subtopic `z` (as produced by
/// [`crate::type_a::entity_subtopic_distribution`] stacked over entities).
pub fn erank_pop(topic_entity_freq: &[Vec<f64>], t: usize, top_n: usize) -> Vec<(u32, f64)> {
    let nt: f64 = topic_entity_freq[t].iter().sum();
    let mut out: Vec<(u32, f64)> = topic_entity_freq[t]
        .iter()
        .enumerate()
        .filter(|&(_, &f)| f > 0.0)
        .map(|(e, &f)| (e as u32, f / nt.max(1e-12)))
        .collect();
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out.truncate(top_n);
    out
}

/// Ranks entities by `ERankPop+Pur(e, t) = p(e|t) log( p(e|t) / p(e|t,t*) )`
/// where `t*` is the sibling topic maximizing the mixed probability —
/// the entity analogue of phrase purity (§5.2).
///
/// ```
/// use lesm_roles::type_b::erank_pop_pur;
///
/// // Entity 0 is prolific everywhere; entity 1 is dedicated to topic 0.
/// let freq = vec![vec![30.0, 25.0], vec![30.0, 1.0]];
/// let top = erank_pop_pur(&freq, 0, 2);
/// assert_eq!(top[0].0, 1, "the dedicated entity wins under pop x pur");
/// ```
pub fn erank_pop_pur(topic_entity_freq: &[Vec<f64>], t: usize, top_n: usize) -> Vec<(u32, f64)> {
    let k = topic_entity_freq.len();
    let totals: Vec<f64> = topic_entity_freq.iter().map(|row| row.iter().sum()).collect();
    let nt = totals[t].max(1e-12);
    let n_entities = topic_entity_freq[t].len();
    let mut out: Vec<(u32, f64)> = Vec::new();
    for e in 0..n_entities {
        let f = topic_entity_freq[t][e];
        if f <= 0.0 {
            continue;
        }
        let p = f / nt;
        let mut worst_mix = p;
        for t2 in 0..k {
            if t2 == t {
                continue;
            }
            let mix = (f + topic_entity_freq[t2][e]) / (totals[t] + totals[t2]).max(1e-12);
            if mix > worst_mix {
                worst_mix = mix;
            }
        }
        let score = p * (p / worst_mix.max(1e-300)).ln();
        out.push((e as u32, score));
    }
    out.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    out.truncate(top_n);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Entity 0: prolific everywhere. Entity 1: dedicated to topic 0.
    /// Entity 2: dedicated to topic 1. Entity 3: small in topic 0.
    fn freqs() -> Vec<Vec<f64>> {
        vec![
            vec![30.0, 25.0, 1.0, 5.0], // topic 0
            vec![30.0, 1.0, 25.0, 0.0], // topic 1
        ]
    }

    #[test]
    fn popularity_ranks_prolific_first() {
        let f = freqs();
        let r = erank_pop(&f, 0, 4);
        assert_eq!(r[0].0, 0, "most frequent entity tops pure popularity");
    }

    #[test]
    fn purity_demotes_cross_topic_stars() {
        let f = freqs();
        let r = erank_pop_pur(&f, 0, 4);
        assert_eq!(r[0].0, 1, "dedicated entity should top pop+pur: {r:?}");
        // The prolific entity 0 must fall below the dedicated entity 1.
        let pos0 = r.iter().position(|&(e, _)| e == 0).unwrap();
        let pos1 = r.iter().position(|&(e, _)| e == 1).unwrap();
        assert!(pos1 < pos0);
    }

    #[test]
    fn topics_get_disjoint_winners_under_purity() {
        let f = freqs();
        let r0 = erank_pop_pur(&f, 0, 1);
        let r1 = erank_pop_pur(&f, 1, 1);
        assert_ne!(r0[0].0, r1[0].0, "purity should give each topic its own champion");
    }

    #[test]
    fn zero_frequency_entities_skipped() {
        let f = freqs();
        let r = erank_pop_pur(&f, 1, 10);
        assert!(r.iter().all(|&(e, _)| e != 3), "entity absent from topic 1 must not appear");
    }

    #[test]
    fn top_n_truncates() {
        let f = freqs();
        assert_eq!(erank_pop(&f, 0, 2).len(), 2);
    }
}
