//! Per-topic frequent *entity patterns* (§3.3.2).
//!
//! The intrusion study of Table 3.5 evaluates "entity patterns" — small
//! sets of entities (e.g. recurring coauthor groups) that characterize a
//! topic — with pattern length restricted to 1 for well-structured types
//! like venues. This module reuses the KERT machinery over entity
//! transactions: a document's entities of one type form a transaction,
//! weighted by the document's topic membership, and the mined sets are
//! ranked by the popularity × purity criterion.

use lesm_corpus::Corpus;
use lesm_phrases::kert::{Kert, KertConfig, TopicalPhrase};
use lesm_phrases::PhraseError;

/// Mines ranked entity patterns per topic.
///
/// * `doc_topic[d][t]` — topic membership of every document over the
///   sibling topics being contrasted (hard-assigns each doc to its argmax
///   topic, mirroring the topical-frequency attribution of Definition 3).
/// * `etype` — which entity type to mine.
/// * `max_len` — maximum pattern size (1 reproduces the CATHYHIN1 /
///   venue-style restriction).
///
/// Returns `patterns[t]`: ranked entity-id sets for each topic.
pub fn entity_patterns(
    corpus: &Corpus,
    doc_topic: &[Vec<f64>],
    etype: usize,
    min_support: u64,
    max_len: usize,
    top_n: usize,
) -> Result<Vec<Vec<TopicalPhrase>>, PhraseError> {
    assert_eq!(doc_topic.len(), corpus.num_docs());
    let k = doc_topic.first().map_or(0, Vec::len);
    if k == 0 {
        return Ok(Vec::new());
    }
    // Build pseudo-documents: the entity ids of each doc, all labeled with
    // the doc's argmax topic (KERT's per-token topic input).
    let mut docs: Vec<Vec<u32>> = Vec::with_capacity(corpus.num_docs());
    let mut topics: Vec<Vec<u16>> = Vec::with_capacity(corpus.num_docs());
    for (d, doc) in corpus.docs.iter().enumerate() {
        let ids: Vec<u32> = doc.entities_of(etype).collect();
        let (best_t, best_w) = doc_topic[d]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(t, &w)| (t, w))
            .unwrap_or((0, 0.0));
        if ids.is_empty() || best_w <= 0.0 {
            docs.push(Vec::new());
            topics.push(Vec::new());
            continue;
        }
        topics.push(vec![best_t as u16; ids.len()]);
        docs.push(ids);
    }
    let cfg = KertConfig {
        min_support,
        max_len,
        // Entity sets have no concordance analogue; rank by pop × purity.
        variant: lesm_phrases::kert::KertVariant::PopularityPurity,
        top_n,
        ..KertConfig::default()
    };
    Kert::run(&docs, &topics, k, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::Corpus;

    /// Topic 0 docs carry the coauthor pair (alice, adam); topic 1 docs
    /// carry bob; carol appears everywhere.
    fn fixture() -> (Corpus, Vec<Vec<f64>>) {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        let mut doc_topic = Vec::new();
        for i in 0..30 {
            let d = c.push_text("x y");
            if i % 2 == 0 {
                c.link_entity(d, author, "alice").unwrap();
                c.link_entity(d, author, "adam").unwrap();
                doc_topic.push(vec![1.0, 0.0]);
            } else {
                c.link_entity(d, author, "bob").unwrap();
                doc_topic.push(vec![0.0, 1.0]);
            }
            c.link_entity(d, author, "carol").unwrap();
        }
        (c, doc_topic)
    }

    #[test]
    fn finds_coauthor_pairs_in_their_topic() {
        let (c, dt) = fixture();
        let patterns = entity_patterns(&c, &dt, 0, 3, 2, 10).unwrap();
        assert_eq!(patterns.len(), 2);
        let alice = c.entities.table(0).unwrap().get("alice").unwrap();
        let adam = c.entities.table(0).unwrap().get("adam").unwrap();
        let pair = {
            let mut p = vec![alice, adam];
            p.sort_unstable();
            p
        };
        assert!(
            patterns[0].iter().any(|p| p.tokens == pair),
            "coauthor pair missing from topic 0: {:?}",
            patterns[0]
        );
        // The pair never appears in topic 1.
        assert!(!patterns[1].iter().any(|p| p.tokens == pair));
    }

    #[test]
    fn purity_demotes_ubiquitous_entities() {
        let (c, dt) = fixture();
        let patterns = entity_patterns(&c, &dt, 0, 3, 1, 10).unwrap();
        let carol = c.entities.table(0).unwrap().get("carol").unwrap();
        let alice = c.entities.table(0).unwrap().get("alice").unwrap();
        let score = |t: usize, id: u32| {
            patterns[t].iter().find(|p| p.tokens == vec![id]).map(|p| p.score)
        };
        let (Some(s_alice), Some(s_carol)) = (score(0, alice), score(0, carol)) else {
            panic!("singleton patterns missing");
        };
        assert!(s_alice > s_carol, "dedicated author must outrank the ubiquitous one");
    }

    #[test]
    fn max_len_one_restricts_to_singletons() {
        let (c, dt) = fixture();
        let patterns = entity_patterns(&c, &dt, 0, 3, 1, 10).unwrap();
        for t in &patterns {
            for p in t {
                assert_eq!(p.tokens.len(), 1);
            }
        }
    }
}
