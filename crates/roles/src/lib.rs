//! Entity topical role analysis (dissertation Chapter 5).
//!
//! Two question types over a constructed topical hierarchy:
//!
//! * **Type-A** (given entities, find their positions): entity-specific
//!   phrase ranking (eqs. 5.1–5.2) and entity distributions over subtopics
//!   (eqs. 5.3–5.6) — module [`type_a`].
//! * **Type-B** (given roles, find entities): the popularity × purity
//!   entity ranking `ERankPop+Pur` (§5.2) — module [`type_b`].

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

// Index-based loops are kept where they mirror the paper's equations.
#![allow(clippy::needless_range_loop)]

pub mod influence;
pub mod patterns;
pub mod type_a;
pub mod type_b;

pub use influence::{topical_influence, InfluenceConfig};
pub use patterns::entity_patterns;
pub use type_a::{combined_phrase_rank, entity_phrase_rank, entity_subtopic_distribution, EntityProfile};
pub use type_b::{erank_pop, erank_pop_pur};
