//! Text-attached heterogeneous information networks (THINs) and the
//! collapsed edge-weighted networks CATHY/CATHYHIN analyze.
//!
//! The dissertation's Definition 1 models data as typed nodes, typed link
//! weights, and per-node documents. Chapter 3 collapses the document nodes
//! away: documents become term–term co-occurrence links, and entity–document
//! links become entity–term links (Example 3.1). This crate provides:
//!
//! * [`TypedNetwork`] — an edge-weighted multi-typed network;
//! * [`co_occurrence_network`] — the text-only collapse of §3.1;
//! * [`collapsed_network`] — the heterogeneous collapse of §3.2.
//!
//! Link weights are *presence-based*: the weight between two nodes is the
//! number of documents in which both occur (Example 3.1).

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use lesm_corpus::Corpus;
use std::collections::HashMap;

/// Errors produced by network construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// A node type index was out of range.
    UnknownType(usize),
    /// A link refers to a node id beyond the declared node count.
    NodeOutOfRange {
        /// Offending node type.
        etype: usize,
        /// Offending node id.
        id: u32,
    },
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::UnknownType(t) => write!(f, "unknown node type {t}"),
            NetError::NodeOutOfRange { etype, id } => {
                write!(f, "node {id} out of range for type {etype}")
            }
        }
    }
}

impl std::error::Error for NetError {}

/// All links between one (unordered) pair of node types.
///
/// For `tx == ty` edges are stored with `i <= j`; self-links (`i == j`) are
/// permitted. For `tx < ty`, `i` indexes type `tx` and `j` type `ty`.
#[derive(Debug, Clone)]
pub struct LinkBlock {
    /// First node type.
    pub tx: usize,
    /// Second node type (`tx <= ty`).
    pub ty: usize,
    /// `(i, j, weight)` triples with strictly positive weights.
    pub edges: Vec<(u32, u32, f64)>,
}

impl LinkBlock {
    /// Total link weight in the block.
    pub fn total_weight(&self) -> f64 {
        self.edges.iter().map(|&(_, _, w)| w).sum()
    }

    /// Number of non-zero links.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the block holds no links.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// An edge-weighted network with typed nodes.
///
/// This is `G^t` in the dissertation's notation: the object that CATHYHIN
/// recursively soft-partitions into subtopic subnetworks.
#[derive(Debug, Clone)]
pub struct TypedNetwork {
    /// Human-readable type names, e.g. `["author", "venue", "term"]`.
    pub type_names: Vec<String>,
    /// Number of nodes of each type.
    pub node_counts: Vec<usize>,
    /// One block per unordered type pair that has at least one link.
    pub blocks: Vec<LinkBlock>,
}

impl TypedNetwork {
    /// Creates an empty network with the given types.
    pub fn new(type_names: Vec<String>, node_counts: Vec<usize>) -> Self {
        assert_eq!(type_names.len(), node_counts.len());
        Self { type_names, node_counts, blocks: Vec::new() }
    }

    /// Number of node types.
    pub fn num_types(&self) -> usize {
        self.type_names.len()
    }

    /// Total link weight across all blocks (`M^t`).
    pub fn total_weight(&self) -> f64 {
        self.blocks.iter().map(LinkBlock::total_weight).sum()
    }

    /// Total number of non-zero links.
    pub fn num_links(&self) -> usize {
        self.blocks.iter().map(LinkBlock::len).sum()
    }

    /// Looks up the block for an unordered type pair.
    pub fn block(&self, tx: usize, ty: usize) -> Option<&LinkBlock> {
        let (a, b) = if tx <= ty { (tx, ty) } else { (ty, tx) };
        self.blocks.iter().find(|blk| blk.tx == a && blk.ty == b)
    }

    /// Validates that every edge endpoint is within the declared node count.
    pub fn validate(&self) -> Result<(), NetError> {
        for blk in &self.blocks {
            if blk.tx >= self.num_types() {
                return Err(NetError::UnknownType(blk.tx));
            }
            if blk.ty >= self.num_types() {
                return Err(NetError::UnknownType(blk.ty));
            }
            for &(i, j, _) in &blk.edges {
                if i as usize >= self.node_counts[blk.tx] {
                    return Err(NetError::NodeOutOfRange { etype: blk.tx, id: i });
                }
                if j as usize >= self.node_counts[blk.ty] {
                    return Err(NetError::NodeOutOfRange { etype: blk.ty, id: j });
                }
            }
        }
        Ok(())
    }

    /// Per-type weighted degree: `deg[t][i]` is the total weight of links
    /// incident to node `i` of type `t` (self-links counted once).
    pub fn weighted_degrees(&self) -> Vec<Vec<f64>> {
        let mut deg: Vec<Vec<f64>> = self.node_counts.iter().map(|&n| vec![0.0; n]).collect();
        for blk in &self.blocks {
            for &(i, j, w) in &blk.edges {
                deg[blk.tx][i as usize] += w;
                if !(blk.tx == blk.ty && i == j) {
                    deg[blk.ty][j as usize] += w;
                }
            }
        }
        deg
    }

    /// Summary statistics (the Table 3.4 style counts).
    pub fn stats(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        for (t, (name, n)) in self.type_names.iter().zip(&self.node_counts).enumerate() {
            let _ = writeln!(s, "type {t} ({name}): {n} nodes");
        }
        for blk in &self.blocks {
            let _ = writeln!(
                s,
                "links {}-{}: {} edges, total weight {:.0}",
                self.type_names[blk.tx],
                self.type_names[blk.ty],
                blk.len(),
                blk.total_weight()
            );
        }
        s
    }
}

/// Builder that accumulates link weights in hash maps and freezes them into
/// sorted [`LinkBlock`]s.
#[derive(Debug, Default)]
pub struct NetworkBuilder {
    type_names: Vec<String>,
    node_counts: Vec<usize>,
    maps: HashMap<(usize, usize), HashMap<(u32, u32), f64>>,
}

impl NetworkBuilder {
    /// Starts a builder with the given node types.
    pub fn new(type_names: Vec<String>, node_counts: Vec<usize>) -> Self {
        assert_eq!(type_names.len(), node_counts.len());
        Self { type_names, node_counts, maps: HashMap::new() }
    }

    /// Adds `w` to the (undirected) link between `(tx, i)` and `(ty, j)`.
    pub fn add(&mut self, tx: usize, i: u32, ty: usize, j: u32, w: f64) {
        let (tx, i, ty, j) = if tx < ty || (tx == ty && i <= j) {
            (tx, i, ty, j)
        } else {
            (ty, j, tx, i)
        };
        *self.maps.entry((tx, ty)).or_default().entry((i, j)).or_insert(0.0) += w;
    }

    /// Freezes into a [`TypedNetwork`] with deterministic edge order.
    pub fn build(self) -> TypedNetwork {
        let mut blocks: Vec<LinkBlock> = self
            .maps
            .into_iter()
            .map(|((tx, ty), m)| {
                let mut edges: Vec<(u32, u32, f64)> =
                    m.into_iter().map(|((i, j), w)| (i, j, w)).collect();
                edges.sort_unstable_by_key(|a| (a.0, a.1));
                LinkBlock { tx, ty, edges }
            })
            .collect();
        blocks.sort_unstable_by_key(|a| (a.tx, a.ty));
        TypedNetwork { type_names: self.type_names, node_counts: self.node_counts, blocks }
    }
}

/// Builds the term co-occurrence network of §3.1 from a corpus.
///
/// One node type ("term"); the weight between two distinct terms is the
/// number of documents containing both. A term repeated within a document
/// contributes a self-link.
pub fn co_occurrence_network(corpus: &Corpus) -> TypedNetwork {
    let v = corpus.num_words();
    let mut b = NetworkBuilder::new(vec!["term".into()], vec![v]);
    let mut present: Vec<u32> = Vec::new();
    let mut counts: HashMap<u32, u32> = HashMap::new();
    for doc in &corpus.docs {
        present.clear();
        counts.clear();
        for &w in &doc.tokens {
            let c = counts.entry(w).or_insert(0);
            if *c == 0 {
                present.push(w);
            }
            *c += 1;
        }
        present.sort_unstable();
        for (a_idx, &wa) in present.iter().enumerate() {
            if counts[&wa] >= 2 {
                b.add(0, wa, 0, wa, 1.0);
            }
            for &wb in &present[a_idx + 1..] {
                b.add(0, wa, 0, wb, 1.0);
            }
        }
    }
    b.build()
}

/// Builds the collapsed heterogeneous network of §3.2 (Example 3.1).
///
/// Node types are the corpus' entity types followed by `"term"` (so in the
/// DBLP schema: author, venue, term). Weights are document co-occurrence
/// counts for every type pair; venue–venue links are naturally absent when
/// each document carries one venue.
pub fn collapsed_network(corpus: &Corpus) -> TypedNetwork {
    collapsed_network_from(corpus, 0)
}

/// The delta variant of [`collapsed_network`]: collapses only the
/// documents at index `from_doc` onward, over the **full** corpus node
/// space (all interned words and entities, including ones only earlier
/// documents mention). Because interning is append-only, the network
/// built from an updated corpus's tail is exactly the edge set the new
/// documents add to the base collapse — the input
/// `lesm_hier::EdgeState::append_delta` and `TopicHierarchy::update`
/// expect.
pub fn collapsed_network_from(corpus: &Corpus, from_doc: usize) -> TypedNetwork {
    let n_etypes = corpus.entities.num_types();
    let term_type = n_etypes;
    let mut names: Vec<String> = (0..n_etypes)
        .map(|t| corpus.entities.type_name(t).unwrap_or("entity").to_owned())
        .collect();
    names.push("term".into());
    let mut counts: Vec<usize> = (0..n_etypes).map(|t| corpus.entities.count(t)).collect();
    counts.push(corpus.num_words());
    let mut b = NetworkBuilder::new(names, counts);

    let mut terms: Vec<u32> = Vec::new();
    let mut seen: HashMap<u32, u32> = HashMap::new();
    for doc in corpus.docs.iter().skip(from_doc) {
        terms.clear();
        seen.clear();
        for &w in &doc.tokens {
            let c = seen.entry(w).or_insert(0);
            if *c == 0 {
                terms.push(w);
            }
            *c += 1;
        }
        terms.sort_unstable();
        // term-term
        for (a_idx, &wa) in terms.iter().enumerate() {
            if seen[&wa] >= 2 {
                b.add(term_type, wa, term_type, wa, 1.0);
            }
            for &wb in &terms[a_idx + 1..] {
                b.add(term_type, wa, term_type, wb, 1.0);
            }
        }
        // entity-term and entity-entity
        for (e_idx, ea) in doc.entities.iter().enumerate() {
            for &w in &terms {
                b.add(ea.etype, ea.id, term_type, w, 1.0);
            }
            for eb in &doc.entities[e_idx + 1..] {
                if ea.etype == eb.etype && ea.id == eb.id {
                    continue; // duplicate link of the same entity in one doc
                }
                b.add(ea.etype, ea.id, eb.etype, eb.id, 1.0);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lesm_corpus::Corpus;

    fn tiny_corpus() -> Corpus {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        let venue = c.entities.add_type("venue");
        let d0 = c.push_text("query processing query");
        c.link_entity(d0, author, "alice").unwrap();
        c.link_entity(d0, author, "bob").unwrap();
        c.link_entity(d0, venue, "SIGMOD").unwrap();
        let d1 = c.push_text("query optimization");
        c.link_entity(d1, author, "alice").unwrap();
        c.link_entity(d1, venue, "VLDB").unwrap();
        c
    }

    #[test]
    fn co_occurrence_counts_docs() {
        let c = tiny_corpus();
        let g = co_occurrence_network(&c);
        assert_eq!(g.num_types(), 1);
        let q = c.vocab.get("query").unwrap();
        let p = c.vocab.get("processing").unwrap();
        let o = c.vocab.get("optimization").unwrap();
        let blk = g.block(0, 0).unwrap();
        let find = |i: u32, j: u32| {
            let (i, j) = if i <= j { (i, j) } else { (j, i) };
            blk.edges.iter().find(|&&(a, b, _)| a == i && b == j).map(|&(_, _, w)| w)
        };
        assert_eq!(find(q, p), Some(1.0));
        assert_eq!(find(q, o), Some(1.0));
        assert_eq!(find(p, o), None);
        // "query" occurs twice in doc 0 -> self-link.
        assert_eq!(find(q, q), Some(1.0));
        g.validate().unwrap();
    }

    #[test]
    fn collapsed_network_schema() {
        let c = tiny_corpus();
        let g = collapsed_network(&c);
        assert_eq!(g.num_types(), 3);
        assert_eq!(g.type_names, vec!["author", "venue", "term"]);
        g.validate().unwrap();
        // author-term: alice co-occurs with "query" in 2 docs.
        let alice = 0u32;
        let q = c.vocab.get("query").unwrap();
        let at = g.block(0, 2).unwrap();
        let w = at
            .edges
            .iter()
            .find(|&&(i, j, _)| i == alice && j == q)
            .map(|&(_, _, w)| w)
            .unwrap();
        assert_eq!(w, 2.0);
        // author-author: alice-bob co-author once.
        let aa = g.block(0, 0).unwrap();
        assert_eq!(aa.edges.len(), 1);
        assert_eq!(aa.edges[0], (0, 1, 1.0));
        // no venue-venue block (one venue per doc).
        assert!(g.block(1, 1).is_none());
    }

    #[test]
    fn collapsed_network_from_covers_only_the_tail_over_the_full_node_space() {
        let mut c = tiny_corpus();
        let base_docs = c.docs.len();
        let author = 0usize;
        let d2 = c.push_text("query planning");
        c.link_entity(d2, author, "carol").unwrap();
        let delta = collapsed_network_from(&c, base_docs);
        // Full node space: every interned word and entity, old and new.
        assert_eq!(delta.node_counts[2], c.num_words());
        assert_eq!(delta.node_counts[0], c.entities.count(0));
        delta.validate().unwrap();
        // Only the tail document's co-occurrences are present.
        let q = c.vocab.get("query").unwrap();
        let p = c.vocab.get("processing").unwrap();
        let plan = c.vocab.get("planning").unwrap();
        let tt = delta.block(2, 2).unwrap();
        assert!(tt.edges.iter().any(|&(i, j, _)| (i, j) == (q.min(plan), q.max(plan))));
        assert!(!tt.edges.iter().any(|&(i, j, _)| (i, j) == (q.min(p), q.max(p))));
        // from_doc = 0 is exactly the full collapse.
        let full = collapsed_network(&c);
        let again = collapsed_network_from(&c, 0);
        assert_eq!(full.num_links(), again.num_links());
        assert_eq!(full.total_weight(), again.total_weight());
        // Past-the-end tail is an empty (but well-formed) network.
        let empty = collapsed_network_from(&c, c.docs.len());
        assert_eq!(empty.num_links(), 0);
        assert_eq!(empty.node_counts, full.node_counts);
    }

    #[test]
    fn builder_merges_directions() {
        let mut b = NetworkBuilder::new(vec!["a".into(), "b".into()], vec![3, 3]);
        b.add(1, 2, 0, 1, 1.0); // reversed order
        b.add(0, 1, 1, 2, 2.0);
        let g = b.build();
        let blk = g.block(0, 1).unwrap();
        assert_eq!(blk.edges, vec![(1, 2, 3.0)]);
    }

    #[test]
    fn degrees_count_self_links_once() {
        let mut b = NetworkBuilder::new(vec!["t".into()], vec![2]);
        b.add(0, 0, 0, 0, 2.0);
        b.add(0, 0, 0, 1, 3.0);
        let g = b.build();
        let deg = g.weighted_degrees();
        assert_eq!(deg[0][0], 5.0);
        assert_eq!(deg[0][1], 3.0);
        assert_eq!(g.total_weight(), 5.0);
    }

    #[test]
    fn validate_rejects_bad_ids() {
        let g = TypedNetwork {
            type_names: vec!["t".into()],
            node_counts: vec![1],
            blocks: vec![LinkBlock { tx: 0, ty: 0, edges: vec![(0, 5, 1.0)] }],
        };
        assert!(matches!(g.validate(), Err(NetError::NodeOutOfRange { .. })));
    }

    #[test]
    fn stats_renders() {
        let g = co_occurrence_network(&tiny_corpus());
        let s = g.stats();
        assert!(s.contains("term"));
        assert!(s.contains("edges"));
    }
}
