//! Property-based tests for network construction.

use lesm_net::{co_occurrence_network, collapsed_network, NetworkBuilder};
use lesm_corpus::Corpus;
use proptest::prelude::*;

fn random_corpus() -> impl Strategy<Value = Corpus> {
    proptest::collection::vec(
        (proptest::collection::vec(0u8..12, 1..8), 0u8..3, 0u8..2),
        1..20,
    )
    .prop_map(|docs| {
        let mut c = Corpus::new();
        let author = c.entities.add_type("author");
        let venue = c.entities.add_type("venue");
        for (words, a, v) in docs {
            let text: Vec<String> = words.iter().map(|w| format!("w{w}")).collect();
            let d = c.push_text(&text.join(" "));
            c.link_entity(d, author, &format!("a{a}")).unwrap();
            c.link_entity(d, venue, &format!("v{v}")).unwrap();
        }
        c
    })
}

proptest! {
    #[test]
    fn builder_preserves_total_weight(adds in proptest::collection::vec((0u32..5, 0u32..5, 0.1f64..4.0), 1..40)) {
        let mut b = NetworkBuilder::new(vec!["t".into()], vec![5]);
        let mut total = 0.0;
        for &(i, j, w) in &adds {
            b.add(0, i, 0, j, w);
            total += w;
        }
        let g = b.build();
        prop_assert!((g.total_weight() - total).abs() < 1e-9);
        g.validate().unwrap();
        // Edges stored canonically (i <= j) and deduplicated.
        let blk = g.block(0, 0).unwrap();
        for &(i, j, w) in &blk.edges {
            prop_assert!(i <= j);
            prop_assert!(w > 0.0);
        }
        let mut seen = std::collections::HashSet::new();
        for &(i, j, _) in &blk.edges {
            prop_assert!(seen.insert((i, j)), "duplicate edge ({i},{j})");
        }
    }

    #[test]
    fn co_occurrence_weight_bounded_by_doc_count(c in random_corpus()) {
        let g = co_occurrence_network(&c);
        g.validate().unwrap();
        if let Some(blk) = g.block(0, 0) {
            for &(_, _, w) in &blk.edges {
                prop_assert!(w <= c.num_docs() as f64, "presence-based weights are per-doc");
            }
        }
    }

    #[test]
    fn collapsed_network_is_valid_and_typed(c in random_corpus()) {
        let g = collapsed_network(&c);
        prop_assert_eq!(g.num_types(), 3);
        g.validate().unwrap();
        // Degrees are non-negative and sum consistently with weights:
        // every non-self link contributes to two endpoints.
        let deg = g.weighted_degrees();
        let deg_total: f64 = deg.iter().flat_map(|v| v.iter()).sum();
        let mut expect = 0.0;
        for blk in &g.blocks {
            for &(i, j, w) in &blk.edges {
                expect += if blk.tx == blk.ty && i == j { w } else { 2.0 * w };
            }
        }
        prop_assert!((deg_total - expect).abs() < 1e-9);
    }

    #[test]
    fn entity_term_weight_matches_shared_docs(c in random_corpus()) {
        // The author-term link weight must equal the number of docs where
        // the author and the word co-occur.
        let g = collapsed_network(&c);
        if let Some(blk) = g.block(0, 2) {
            for &(a, w, weight) in blk.edges.iter().take(10) {
                let count = c
                    .docs
                    .iter()
                    .filter(|d| {
                        d.entities_of(0).any(|id| id == a) && d.tokens.contains(&w)
                    })
                    .count();
                prop_assert!((weight - count as f64).abs() < 1e-9);
            }
        }
    }
}
