//! Supervised hierarchical-relation CRF (§6.2).
//!
//! A conditional random field over the candidate DAG: each author's parent
//! variable `y_i` carries log-linear node potentials over the heterogeneous
//! candidate features (§6.2.2), and pairwise potentials penalize the
//! time-conflict configurations of eq. 6.9. Exact partition-function
//! computation is intractable on loopy candidate graphs, so learning uses
//! regularized *pseudo-likelihood* (each `y_i` conditioned on the true
//! configuration of its neighbours), and prediction reuses the TPFG
//! message-passing machinery with learned potentials — both standard
//! approximations that the chapter's design allows (§6.2.3 trains by
//! gradient on an approximate objective).

use crate::preprocess::CandidateGraph;
use crate::tpfg::{Tpfg, TpfgConfig, TpfgResult};
use crate::RelError;

/// Number of node features (candidate features + root bias slot).
pub const N_FEATURES: usize = 6;

/// Configuration for [`HierCrf::train`].
#[derive(Debug, Clone)]
pub struct CrfConfig {
    /// Gradient-ascent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for CrfConfig {
    fn default() -> Self {
        Self { epochs: 200, lr: 0.05, l2: 1e-3 }
    }
}

/// A trained hierarchical-relation CRF.
#[derive(Debug, Clone)]
pub struct HierCrf {
    /// Feature weights (last slot = root-choice bias).
    pub w: [f64; N_FEATURES],
    /// Weight on the time-conflict pairwise potential (negative penalizes).
    pub conflict_w: f64,
    /// Per-feature standardization means (candidate features only).
    pub mean: [f64; 5],
    /// Per-feature standardization deviations.
    pub sd: [f64; 5],
}

impl HierCrf {
    /// Trains by regularized pseudo-likelihood on `train_authors`.
    pub fn train(
        graph: &CandidateGraph,
        truth: &[Option<u32>],
        train_authors: &[usize],
        config: &CrfConfig,
    ) -> Result<Self, RelError> {
        if config.epochs == 0 {
            return Err(RelError::InvalidConfig("epochs must be >= 1".into()));
        }
        let mut w = [0.0f64; N_FEATURES];
        let mut conflict_w = -1.0f64;
        // Standardize candidate features over the whole graph.
        let all_feats: Vec<[f64; 5]> =
            graph.candidates.iter().flatten().map(|c| c.features).collect();
        let (mean, sd) = crate::baselines::feature_stats(all_feats.iter().copied());
        // Precompute, per training author, the candidate feature matrix and
        // the gold choice index (candidates + 1 root option).
        struct Example {
            feats: Vec<[f64; N_FEATURES]>,
            conflicts: Vec<f64>,
            gold: usize,
        }
        let mut examples: Vec<Example> = Vec::new();
        for &i in train_authors {
            let Some(t) = truth[i] else { continue };
            let cands = &graph.candidates[i];
            if cands.is_empty() {
                continue;
            }
            let Some(gold) = cands.iter().position(|c| c.advisor == t) else {
                continue; // true advisor filtered out; cannot supervise
            };
            let mut feats: Vec<[f64; N_FEATURES]> = Vec::with_capacity(cands.len() + 1);
            let mut conflicts: Vec<f64> = Vec::with_capacity(cands.len() + 1);
            for c in cands {
                let mut f = [0.0; N_FEATURES];
                f[..5].copy_from_slice(&crate::baselines::standardize(&c.features, &mean, &sd));
                feats.push(f);
                // Conflict with the *true* neighbour configuration: does any
                // true advisee of i start before this candidate interval ends?
                let conflict = (0..graph.n_authors)
                    .filter(|&x| truth[x] == Some(i as u32))
                    .filter_map(|x| {
                        graph.candidates[x]
                            .iter()
                            .find(|cx| cx.advisor == i as u32)
                            .map(|cx| cx.interval.0)
                    })
                    .any(|st_xi| c.interval.1 >= st_xi);
                conflicts.push(if conflict { 1.0 } else { 0.0 });
            }
            // Root option: bias feature only, never in conflict.
            let mut root_f = [0.0; N_FEATURES];
            root_f[N_FEATURES - 1] = 1.0;
            feats.push(root_f);
            conflicts.push(0.0);
            examples.push(Example { feats, conflicts, gold });
        }
        if examples.is_empty() {
            return Err(RelError::NoCandidates);
        }
        for _ in 0..config.epochs {
            let mut grad_w = [0.0f64; N_FEATURES];
            let mut grad_c = 0.0f64;
            for ex in &examples {
                // Softmax over options.
                let scores: Vec<f64> = ex
                    .feats
                    .iter()
                    .zip(&ex.conflicts)
                    .map(|(f, &c)| dot(&w, f) + conflict_w * c)
                    .collect();
                let max_s = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let exps: Vec<f64> = scores.iter().map(|s| (s - max_s).exp()).collect();
                let z: f64 = exps.iter().sum();
                for (o, f) in ex.feats.iter().enumerate() {
                    let p = exps[o] / z;
                    let indicator = if o == ex.gold { 1.0 } else { 0.0 };
                    let coef = indicator - p;
                    for (gw, fi) in grad_w.iter_mut().zip(f) {
                        *gw += coef * fi;
                    }
                    grad_c += coef * ex.conflicts[o];
                }
            }
            let n = examples.len() as f64;
            for (wi, g) in w.iter_mut().zip(&grad_w) {
                *wi += config.lr * (g / n - config.l2 * *wi);
            }
            conflict_w += config.lr * (grad_c / n - config.l2 * conflict_w);
        }
        Ok(Self { w, conflict_w, mean, sd })
    }

    /// Node potential of a candidate (exponentiated score, usable as a TPFG
    /// local likelihood). Takes raw candidate features.
    pub fn potential(&self, features: &[f64; 5]) -> f64 {
        let mut f = [0.0; N_FEATURES];
        f[..5].copy_from_slice(&crate::baselines::standardize(features, &self.mean, &self.sd));
        dot(&self.w, &f).exp()
    }

    /// The root option's potential.
    pub fn root_potential(&self) -> f64 {
        self.w[N_FEATURES - 1].exp()
    }

    /// Predicts by running TPFG message passing with learned potentials as
    /// local likelihoods (the conflict penalty is enforced by the factor
    /// graph itself).
    pub fn infer(&self, graph: &CandidateGraph) -> Result<TpfgResult, RelError> {
        let mut reweighted = graph.clone();
        for cands in &mut reweighted.candidates {
            for c in cands.iter_mut() {
                c.likelihood = self.potential(&c.features);
            }
            cands.sort_by(|a, b| {
                b.likelihood.total_cmp(&a.likelihood).then_with(|| a.advisor.cmp(&b.advisor))
            });
        }
        let cfg = TpfgConfig { root_prior: self.root_potential(), ..TpfgConfig::default() };
        Tpfg::infer(&reweighted, &cfg)
    }
}

fn dot(a: &[f64; N_FEATURES], b: &[f64; N_FEATURES]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::indmax_predict;
    use crate::preprocess::PreprocessConfig;
    use lesm_corpus::synth::{Genealogy, GenealogyConfig};
    use lesm_eval::relation::parent_accuracy;

    fn setup(n: usize, seed: u64) -> (Genealogy, CandidateGraph) {
        let gen = Genealogy::generate(&GenealogyConfig {
            n_authors: n,
            seed,
            ..GenealogyConfig::default()
        })
        .unwrap();
        let g = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
            .unwrap();
        (gen, g)
    }

    #[test]
    fn crf_trains_and_beats_unsupervised_indmax_on_holdout() {
        let (gen, g) = setup(160, 23);
        let train: Vec<usize> = (0..gen.n_authors).filter(|i| i % 2 == 0).collect();
        let crf = HierCrf::train(&g, &gen.advisor, &train, &CrfConfig::default()).unwrap();
        let result = crf.infer(&g).unwrap();
        let pred = result.predict(1, 0.0);
        let holdout_truth: Vec<Option<u32>> = gen
            .advisor
            .iter()
            .enumerate()
            .map(|(i, a)| if i % 2 == 1 { *a } else { None })
            .collect();
        let acc_crf = parent_accuracy(&pred, &holdout_truth);
        let acc_ind = parent_accuracy(&indmax_predict(&g), &holdout_truth);
        assert!(
            acc_crf >= acc_ind - 0.05,
            "CRF ({acc_crf:.3}) should be competitive with IndMAX ({acc_ind:.3})"
        );
        assert!(acc_crf > 0.4, "CRF accuracy too low: {acc_crf:.3}");
    }

    #[test]
    fn conflict_weight_stays_negative_or_learns() {
        let (gen, g) = setup(100, 29);
        let train: Vec<usize> = (0..gen.n_authors).collect();
        let crf = HierCrf::train(&g, &gen.advisor, &train, &CrfConfig::default()).unwrap();
        // True configurations rarely conflict, so the learned weight should
        // not become strongly positive.
        assert!(crf.conflict_w < 1.0, "conflict weight drifted: {}", crf.conflict_w);
    }

    #[test]
    fn no_labels_is_error() {
        let (_, g) = setup(60, 31);
        let truth = vec![None; g.n_authors];
        assert!(matches!(
            HierCrf::train(&g, &truth, &[0, 1], &CrfConfig::default()),
            Err(RelError::NoCandidates)
        ));
    }

    #[test]
    fn zero_epochs_rejected() {
        let (gen, g) = setup(60, 37);
        let train: Vec<usize> = (0..gen.n_authors).collect();
        assert!(HierCrf::train(
            &g,
            &gen.advisor,
            &train,
            &CrfConfig { epochs: 0, ..Default::default() }
        )
        .is_err());
    }
}
