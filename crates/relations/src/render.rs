//! Rendering inferred genealogies — the "visualized chronological
//! hierarchies" of Figure 6.2's right panel.

use crate::tpfg::TpfgResult;

/// One node of the reconstructed advising forest.
#[derive(Debug, Clone)]
pub struct ForestNode {
    /// Author id.
    pub author: u32,
    /// Predicted advisor probability (`None` for roots).
    pub confidence: Option<f64>,
    /// Predicted advisees.
    pub children: Vec<usize>,
}

/// The advising forest induced by a set of parent predictions.
#[derive(Debug, Clone)]
pub struct AdvisingForest {
    /// Nodes, indexed by author id.
    pub nodes: Vec<ForestNode>,
    /// Root author ids (no predicted advisor).
    pub roots: Vec<u32>,
}

impl AdvisingForest {
    /// Builds the forest from a TPFG result with prediction rule
    /// `P@(k, θ)`. Predictions that would create a cycle are dropped (the
    /// candidate DAG already prevents this; the check is defensive).
    pub fn from_result(result: &TpfgResult, k: usize, theta: f64) -> Self {
        let pred = result.predict(k, theta);
        let n = pred.len();
        let mut nodes: Vec<ForestNode> = (0..n)
            .map(|i| ForestNode { author: i as u32, confidence: None, children: vec![] })
            .collect();
        for (i, p) in pred.iter().enumerate() {
            let Some(parent) = p else { continue };
            let parent = *parent as usize;
            if parent >= n || would_cycle(&nodes, i, parent) {
                continue;
            }
            nodes[parent].children.push(i);
            nodes[i].confidence = result.ranking[i]
                .iter()
                .find(|&&(a, _)| a as usize == parent)
                .map(|&(_, r)| r);
        }
        // Roots: nodes with no confidence (no accepted advisor) that have
        // descendants or appear as someone's ancestor — plus isolated
        // authors are omitted for readable output.
        let mut is_child = vec![false; n];
        for node in &nodes {
            for &c in &node.children {
                is_child[c] = true;
            }
        }
        let roots = (0..n)
            .filter(|&i| !is_child[i] && !nodes[i].children.is_empty())
            .map(|i| i as u32)
            .collect();
        Self { nodes, roots }
    }

    /// Renders the forest as an indented tree, one root lineage per block.
    ///
    /// `name` maps an author id to a display label (e.g. the author's name
    /// and start year).
    pub fn render(&self, name: &dyn Fn(u32) -> String, max_depth: usize) -> String {
        let mut out = String::new();
        for &r in &self.roots {
            self.render_node(&mut out, r as usize, 0, max_depth, name);
        }
        out
    }

    fn render_node(
        &self,
        out: &mut String,
        i: usize,
        depth: usize,
        max_depth: usize,
        name: &dyn Fn(u32) -> String,
    ) {
        let indent = "  ".repeat(depth);
        let conf = match self.nodes[i].confidence {
            Some(c) => format!(" (r={c:.2})"),
            None => String::new(),
        };
        out.push_str(&format!("{indent}{}{}\n", name(self.nodes[i].author), conf));
        if depth >= max_depth {
            return;
        }
        for &c in &self.nodes[i].children {
            self.render_node(out, c, depth + 1, max_depth, name);
        }
    }

    /// Number of predicted advising edges.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.children.len()).sum()
    }
}

fn would_cycle(nodes: &[ForestNode], child: usize, mut parent: usize) -> bool {
    // Walk up from `parent` through already-assigned edges.
    let mut hops = 0;
    loop {
        if parent == child {
            return true;
        }
        // Find parent's parent: the node that lists `parent` as a child.
        let up = nodes.iter().position(|n| n.children.contains(&parent));
        match up {
            Some(p) => parent = p,
            None => return false,
        }
        hops += 1;
        if hops > nodes.len() {
            return true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{CandidateGraph, PreprocessConfig};
    use crate::tpfg::{Tpfg, TpfgConfig};
    use lesm_corpus::synth::{Genealogy, GenealogyConfig};

    fn result() -> (Genealogy, TpfgResult) {
        let gen = Genealogy::generate(&GenealogyConfig {
            n_authors: 80,
            seed: 61,
            ..GenealogyConfig::default()
        })
        .unwrap();
        let g = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
            .unwrap();
        let r = Tpfg::infer(&g, &TpfgConfig::default()).unwrap();
        (gen, r)
    }

    #[test]
    fn forest_is_acyclic_and_renders() {
        let (gen, r) = result();
        let forest = AdvisingForest::from_result(&r, 1, 0.3);
        assert!(forest.num_edges() > 10);
        assert!(!forest.roots.is_empty());
        let text = forest.render(&|a| format!("author{a} ({})", gen.start_year[a as usize]), 6);
        assert!(text.contains("author"));
        assert!(text.contains("r=0."), "confidences rendered");
        // Sanity: every line's indentation depth <= max_depth.
        for line in text.lines() {
            let spaces = line.len() - line.trim_start().len();
            assert!(spaces / 2 <= 6);
        }
    }

    #[test]
    fn higher_theta_prunes_edges() {
        let (_, r) = result();
        let loose = AdvisingForest::from_result(&r, 1, 0.1);
        let strict = AdvisingForest::from_result(&r, 1, 0.8);
        assert!(strict.num_edges() <= loose.num_edges());
    }
}
