//! Baselines for advisor–advisee mining (§6.1.6): RULE, IndMAX and a
//! pairwise linear SVM.

use crate::preprocess::CandidateGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// RULE: pick the candidate with the most total co-publications — the
/// crude common-sense heuristic the paper compares against (no temporal
/// correlation analysis at all).
pub fn rule_predict(graph: &CandidateGraph) -> Vec<Option<u32>> {
    graph
        .candidates
        .iter()
        .map(|cands| {
            cands
                .iter()
                .max_by(|a, b| {
                    a.features[3]
                        .total_cmp(&b.features[3])
                        .then_with(|| b.advisor.cmp(&a.advisor))
                })
                .map(|c| c.advisor)
        })
        .collect()
}

/// IndMAX: pick the candidate with the largest local likelihood,
/// independently per author (TPFG without constraint propagation — the
/// ablation that isolates the factor graph's contribution).
pub fn indmax_predict(graph: &CandidateGraph) -> Vec<Option<u32>> {
    graph.candidates.iter().map(|cands| cands.first().map(|c| c.advisor)).collect()
}

/// A linear SVM trained with the Pegasos sub-gradient method on candidate
/// feature vectors (positive = true advisor pair, negative = other
/// candidates of the same author). Features are standardized with the
/// training set's mean/sd (stored in the model) so heterogeneous scales
/// (years vs ratios) don't destabilize the sub-gradient steps.
#[derive(Debug, Clone)]
pub struct PairSvm {
    /// Weight vector over standardized features.
    pub w: [f64; 5],
    /// Bias term.
    pub b: f64,
    /// Per-feature training means.
    pub mean: [f64; 5],
    /// Per-feature training standard deviations.
    pub sd: [f64; 5],
}

/// Standardization statistics over a set of feature vectors.
pub(crate) fn feature_stats(data: impl Iterator<Item = [f64; 5]> + Clone) -> ([f64; 5], [f64; 5]) {
    let mut mean = [0.0f64; 5];
    let mut n = 0usize;
    for x in data.clone() {
        for (m, v) in mean.iter_mut().zip(&x) {
            *m += v;
        }
        n += 1;
    }
    if n == 0 {
        return (mean, [1.0; 5]);
    }
    for m in mean.iter_mut() {
        *m /= n as f64;
    }
    let mut sd = [0.0f64; 5];
    for x in data {
        for ((s, m), v) in sd.iter_mut().zip(&mean).zip(&x) {
            *s += (v - m) * (v - m);
        }
    }
    for s in sd.iter_mut() {
        *s = (*s / n as f64).sqrt().max(1e-9);
    }
    (mean, sd)
}

pub(crate) fn standardize(x: &[f64; 5], mean: &[f64; 5], sd: &[f64; 5]) -> [f64; 5] {
    let mut out = [0.0f64; 5];
    for i in 0..5 {
        out[i] = (x[i] - mean[i]) / sd[i];
    }
    out
}

/// Configuration for [`PairSvm::train`].
#[derive(Debug, Clone)]
pub struct SvmConfig {
    /// Regularization λ.
    pub lambda: f64,
    /// Pegasos epochs over the training pairs.
    pub epochs: usize,
    /// RNG seed for sampling.
    pub seed: u64,
}

impl Default for SvmConfig {
    fn default() -> Self {
        Self { lambda: 1e-3, epochs: 40, seed: 42 }
    }
}

impl PairSvm {
    /// Trains on the candidates of `train_authors`, labeled by `truth`.
    pub fn train(
        graph: &CandidateGraph,
        truth: &[Option<u32>],
        train_authors: &[usize],
        config: &SvmConfig,
    ) -> Self {
        let mut data: Vec<([f64; 5], f64)> = Vec::new();
        for &i in train_authors {
            let Some(t) = truth[i] else { continue };
            for c in &graph.candidates[i] {
                let y = if c.advisor == t { 1.0 } else { -1.0 };
                data.push((c.features, y));
            }
        }
        let mut w = [0.0f64; 5];
        let mut b = 0.0f64;
        if data.is_empty() {
            return Self { w, b, mean: [0.0; 5], sd: [1.0; 5] };
        }
        let (mean, sd) = feature_stats(data.iter().map(|&(x, _)| x));
        for (x, _) in data.iter_mut() {
            *x = standardize(x, &mean, &sd);
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut t = 0usize;
        for _ in 0..config.epochs {
            for _ in 0..data.len() {
                t += 1;
                let (x, y) = data[rng.gen_range(0..data.len())];
                let eta = 1.0 / (config.lambda * t as f64);
                let margin = y * (dot(&w, &x) + b);
                for wi in w.iter_mut() {
                    *wi *= 1.0 - eta * config.lambda;
                }
                if margin < 1.0 {
                    for (wi, xi) in w.iter_mut().zip(&x) {
                        *wi += eta * y * xi;
                    }
                    b += eta * y;
                }
            }
        }
        Self { w, b, mean, sd }
    }

    /// Decision value for a (raw) feature vector.
    pub fn score(&self, x: &[f64; 5]) -> f64 {
        dot(&self.w, &standardize(x, &self.mean, &self.sd)) + self.b
    }

    /// Per-author prediction: the highest-scoring candidate, or `None` if
    /// every candidate scores below the decision boundary.
    pub fn predict(&self, graph: &CandidateGraph) -> Vec<Option<u32>> {
        graph
            .candidates
            .iter()
            .map(|cands| {
                cands
                    .iter()
                    .map(|c| (c.advisor, self.score(&c.features)))
                    .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                    .map(|(a, _)| a)
            })
            .collect()
    }
}

fn dot(a: &[f64; 5], b: &[f64; 5]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::PreprocessConfig;
    use lesm_corpus::synth::{Genealogy, GenealogyConfig};
    use lesm_eval::relation::parent_accuracy;

    fn setup(n: usize, seed: u64) -> (Genealogy, CandidateGraph) {
        let gen = Genealogy::generate(&GenealogyConfig {
            n_authors: n,
            seed,
            ..GenealogyConfig::default()
        })
        .unwrap();
        let g = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
            .unwrap();
        (gen, g)
    }

    #[test]
    fn rule_and_indmax_do_something_sensible() {
        let (gen, g) = setup(120, 13);
        let acc_rule = parent_accuracy(&rule_predict(&g), &gen.advisor);
        let acc_ind = parent_accuracy(&indmax_predict(&g), &gen.advisor);
        assert!(acc_rule > 0.3, "RULE accuracy {acc_rule}");
        assert!(acc_ind > 0.3, "IndMAX accuracy {acc_ind}");
    }

    #[test]
    fn svm_learns_from_labels() {
        let (gen, g) = setup(150, 17);
        // Train on even authors, evaluate on odd.
        let train: Vec<usize> = (0..gen.n_authors).filter(|i| i % 2 == 0).collect();
        let svm = PairSvm::train(&g, &gen.advisor, &train, &SvmConfig::default());
        let pred = svm.predict(&g);
        let eval_truth: Vec<Option<u32>> = gen
            .advisor
            .iter()
            .enumerate()
            .map(|(i, a)| if i % 2 == 1 { *a } else { None })
            .collect();
        let acc = parent_accuracy(&pred, &eval_truth);
        assert!(acc > 0.4, "SVM held-out accuracy {acc}");
    }

    #[test]
    fn empty_training_set_gives_zero_model() {
        let (_, g) = setup(60, 19);
        let truth = vec![None; g.n_authors];
        let svm = PairSvm::train(&g, &truth, &[0, 1, 2], &SvmConfig::default());
        assert_eq!(svm.w, [0.0; 5]);
        assert_eq!(svm.b, 0.0);
    }
}
