//! TPFG — the Time-constrained Probabilistic Factor Graph (§6.1.4–6.1.5).
//!
//! Each author `i` carries a hidden variable `y_i` ranging over its
//! candidate advisors `Y_i` plus the virtual root `0`. The joint
//! probability is a product of local factors `f_i(y_i | {y_x})` combining
//! the local likelihood `g` with the time-conflict indicator of eq. 6.9:
//! `y_x = i` is incompatible with `y_i = j` whenever `ed_{ij} >= st_{xi}`
//! (one cannot still be advised when starting to advise).
//!
//! Inference runs sum-product message passing over the candidate DAG with
//! the paper's two-phase schedule: a descending pass (old → young) and an
//! ascending pass (young → old), repeated until the ranking probabilities
//! `r_{ij}` stabilize. Because every conflict couples an author only with
//! its potential advisees, messages reduce to per-edge compatibility terms
//! `1 - r_x(i) · I(conflict)`, and each sweep costs `O(|E'|)`.

use crate::preprocess::CandidateGraph;
use crate::RelError;

/// Configuration for [`Tpfg::infer`].
#[derive(Debug, Clone)]
pub struct TpfgConfig {
    /// Prior (unnormalized) likelihood of the virtual root advisor — the
    /// chance the advisor is missing from the data.
    pub root_prior: f64,
    /// Maximum two-phase sweeps.
    pub max_sweeps: usize,
    /// Convergence tolerance on the max change of any `r_ij`.
    pub tol: f64,
    /// Message damping in `[0, 1)` (0 = undamped).
    pub damping: f64,
}

impl Default for TpfgConfig {
    fn default() -> Self {
        Self { root_prior: 0.15, max_sweeps: 30, tol: 1e-6, damping: 0.0 }
    }
}

/// Inference output.
#[derive(Debug, Clone)]
pub struct TpfgResult {
    /// `ranking[i]` — `(advisor, r_ij)` pairs sorted by descending
    /// probability, excluding the virtual root.
    pub ranking: Vec<Vec<(u32, f64)>>,
    /// `r_{i0}`: probability mass on the virtual root per author.
    pub root_prob: Vec<f64>,
    /// Number of sweeps executed.
    pub sweeps: usize,
}

impl TpfgResult {
    /// P@(k, θ) prediction (§6.1.1): the top-ranked advisor if it falls in
    /// the top `k` and its probability exceeds both the root's and `θ`.
    pub fn predict(&self, k: usize, theta: f64) -> Vec<Option<u32>> {
        self.ranking
            .iter()
            .zip(&self.root_prob)
            .map(|(cands, &r0)| {
                cands
                    .iter()
                    .take(k.max(1))
                    .find(|&&(_, r)| r > r0 && r > theta)
                    .map(|&(a, _)| a)
            })
            .collect()
    }
}

/// TPFG inference engine.
#[derive(Debug, Default)]
pub struct Tpfg;

impl Tpfg {
    /// Runs two-phase message passing on the candidate graph.
    pub fn infer(graph: &CandidateGraph, config: &TpfgConfig) -> Result<TpfgResult, RelError> {
        if config.root_prior < 0.0 {
            return Err(RelError::InvalidConfig("root_prior must be >= 0".into()));
        }
        if !(0.0..1.0).contains(&config.damping) {
            return Err(RelError::InvalidConfig("damping must be in [0,1)".into()));
        }
        let n = graph.n_authors;
        // Advisee adjacency: for author j, the list of (advisee x, candidate
        // index within x's list).
        let mut advisees: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for (x, cands) in graph.candidates.iter().enumerate() {
            for (ci, c) in cands.iter().enumerate() {
                advisees[c.advisor as usize].push((x, ci));
            }
        }
        // r[i]: belief over candidates (index-aligned) plus root at the end.
        let mut r: Vec<Vec<f64>> = graph
            .candidates
            .iter()
            .map(|cands| init_belief(cands.iter().map(|c| c.likelihood), config.root_prior))
            .collect();
        // Processing order: two-phase schedule over first-publication years.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| graph.first_year[i]);
        let mut sweeps = 0;
        for sweep in 0..config.max_sweeps {
            sweeps = sweep + 1;
            let mut max_delta = 0.0f64;
            let pass: Box<dyn Iterator<Item = &usize>> = if sweep % 2 == 0 {
                Box::new(order.iter().rev()) // ascending phase: young → old
            } else {
                Box::new(order.iter()) // descending phase: old → young
            };
            for &i in pass {
                let cands = &graph.candidates[i];
                if cands.is_empty() {
                    continue;
                }
                let mut belief: Vec<f64> = Vec::with_capacity(cands.len() + 1);
                for (ci, c) in cands.iter().enumerate() {
                    let _ = ci;
                    // Compatibility with every potential advisee of i: if x
                    // picks i with probability r_x(i) and i's advising-by-j
                    // ends at ed_ij on/after x's start st_xi, the
                    // configurations conflict.
                    let mut compat = c.likelihood;
                    for &(x, xi) in &advisees[i] {
                        let st_xi = graph.candidates[x][xi].interval.0;
                        if c.interval.1 >= st_xi {
                            let r_xi = r[x][xi];
                            compat *= (1.0 - r_xi).max(1e-9);
                        }
                    }
                    belief.push(compat);
                }
                belief.push(config.root_prior);
                normalize(&mut belief);
                for (slot, new) in r[i].iter_mut().zip(&belief) {
                    let updated = if config.damping > 0.0 {
                        config.damping * *slot + (1.0 - config.damping) * new
                    } else {
                        *new
                    };
                    max_delta = max_delta.max((updated - *slot).abs());
                    *slot = updated;
                }
            }
            if max_delta < config.tol {
                break;
            }
        }
        let mut ranking = Vec::with_capacity(n);
        let mut root_prob = Vec::with_capacity(n);
        for (i, cands) in graph.candidates.iter().enumerate() {
            let mut list: Vec<(u32, f64)> =
                cands.iter().zip(&r[i]).map(|(c, &p)| (c.advisor, p)).collect();
            list.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
            root_prob.push(*r[i].last().unwrap_or(&1.0));
            ranking.push(list);
        }
        Ok(TpfgResult { ranking, root_prob, sweeps })
    }
}

fn init_belief(likelihoods: impl Iterator<Item = f64>, root_prior: f64) -> Vec<f64> {
    let mut v: Vec<f64> = likelihoods.collect();
    v.push(root_prior);
    normalize(&mut v);
    v
}

fn normalize(v: &mut [f64]) {
    let s: f64 = v.iter().sum();
    if s > 0.0 {
        v.iter_mut().for_each(|x| *x /= s);
    } else if !v.is_empty() {
        let u = 1.0 / v.len() as f64;
        v.iter_mut().for_each(|x| *x = u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preprocess::{CandidateGraph, PreprocessConfig};
    use lesm_corpus::synth::{Genealogy, GenealogyConfig};
    use lesm_eval::relation::parent_accuracy;

    fn genealogy(n: usize, seed: u64) -> Genealogy {
        Genealogy::generate(&GenealogyConfig { n_authors: n, seed, ..GenealogyConfig::default() })
            .unwrap()
    }

    fn run(gen: &Genealogy) -> (CandidateGraph, TpfgResult) {
        let g = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
            .unwrap();
        let r = Tpfg::infer(&g, &TpfgConfig::default()).unwrap();
        (g, r)
    }

    #[test]
    fn probabilities_normalize() {
        let gen = genealogy(100, 5);
        let (g, r) = run(&gen);
        for i in 0..g.n_authors {
            if g.candidates[i].is_empty() {
                continue;
            }
            let s: f64 = r.ranking[i].iter().map(|&(_, p)| p).sum::<f64>() + r.root_prob[i];
            assert!((s - 1.0).abs() < 1e-6, "beliefs of {i} sum to {s}");
        }
    }

    #[test]
    fn recovers_most_advisors() {
        let gen = genealogy(150, 7);
        let (_, r) = run(&gen);
        let pred = r.predict(3, 0.2);
        let acc = parent_accuracy(&pred, &gen.advisor);
        assert!(acc > 0.6, "TPFG accuracy too low: {acc:.3}");
    }

    #[test]
    fn beats_or_matches_independent_maximization() {
        let gen = genealogy(150, 11);
        let g = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
            .unwrap();
        let r = Tpfg::infer(&g, &TpfgConfig::default()).unwrap();
        let tpfg_pred = r.predict(1, 0.0);
        // IndMAX: top local likelihood, ignoring joint constraints.
        let ind_pred: Vec<Option<u32>> = g
            .candidates
            .iter()
            .map(|cands| cands.first().map(|c| c.advisor))
            .collect();
        let acc_tpfg = parent_accuracy(&tpfg_pred, &gen.advisor);
        let acc_ind = parent_accuracy(&ind_pred, &gen.advisor);
        assert!(
            acc_tpfg >= acc_ind - 0.02,
            "TPFG ({acc_tpfg:.3}) should not lose to IndMAX ({acc_ind:.3})"
        );
    }

    #[test]
    fn predict_respects_threshold() {
        let gen = genealogy(80, 3);
        let (_, r) = run(&gen);
        let none_pred = r.predict(3, 1.1); // impossible threshold
        assert!(none_pred.iter().all(Option::is_none));
    }

    #[test]
    fn invalid_config_rejected() {
        let gen = genealogy(50, 1);
        let g = CandidateGraph::build(&gen.papers, gen.n_authors, &PreprocessConfig::default())
            .unwrap();
        assert!(Tpfg::infer(&g, &TpfgConfig { root_prior: -1.0, ..Default::default() }).is_err());
        assert!(Tpfg::infer(&g, &TpfgConfig { damping: 1.0, ..Default::default() }).is_err());
    }

    #[test]
    fn converges_within_sweeps() {
        let gen = genealogy(100, 9);
        let (_, r) = run(&gen);
        assert!(r.sweeps <= 30);
    }
}
