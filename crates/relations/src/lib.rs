//! Mining hierarchical relations (dissertation Chapter 6).
//!
//! The case study is advisor–advisee discovery from temporal collaboration
//! networks:
//!
//! * [`preprocess`] — Stage 1 (§6.1.3): project papers onto a coauthor
//!   network with per-year publication vectors, compute the Kulczynski and
//!   imbalance-ratio sequences (eqs. 6.1–6.2), apply filter rules R1–R4,
//!   estimate advising intervals (YEAR1/YEAR2/YEAR) and local likelihoods,
//!   and emit the candidate DAG.
//! * [`tpfg`] — Stage 2 (§6.1.4–6.1.5): the Time-constrained Probabilistic
//!   Factor Graph and its two-phase message-passing inference, producing
//!   ranked advisor probabilities `r_ij` and P@(k, θ) predictions.
//! * [`baselines`] — RULE, IndMAX and a linear-SVM pairwise classifier
//!   (the comparators of §6.1.6).
//! * [`crf`] — the supervised conditional-random-field variant (§6.2) with
//!   log-linear potentials trained by regularized pseudo-likelihood.

// DESIGN.md §10: library code must surface typed errors, not unwraps.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod baselines;
pub mod crf;
pub mod preprocess;
pub mod render;
pub mod tpfg;

pub use preprocess::{CandidateGraph, Candidate, PreprocessConfig, LocalLikelihood, YearRule};
pub use render::AdvisingForest;
pub use tpfg::{Tpfg, TpfgConfig, TpfgResult};

/// Errors produced by relation mining.
#[derive(Debug, Clone, PartialEq)]
pub enum RelError {
    /// Invalid configuration value.
    InvalidConfig(String),
    /// The candidate graph is empty (no pair passed the filters).
    NoCandidates,
}

impl std::fmt::Display for RelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RelError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
            RelError::NoCandidates => write!(f, "no candidate relations after filtering"),
        }
    }
}

impl std::error::Error for RelError {}
